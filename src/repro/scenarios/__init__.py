"""Declarative multi-tenant scenarios with built-in verifiers.

A :class:`Scenario` composes a workload mix, N tenants with per-tenant
SLOs and admission quotas, an arrival shape per tenant (diurnal,
flash-crowd, poisson, bursty), and failure injection (shard kills,
forced live migrations). The runner executes it on the sharded
runtime; the verifiers make every scenario an end-to-end correctness
test (Definition-1 vs. the serial oracle, quota/SLO isolation,
byte-identical post-fault recovery). See ``docs/SCENARIOS.md``.

Importing this package registers the seed scenarios
(``flash_sale``, ``noisy_neighbor``, ``block_execution``).
"""

from repro.scenarios.registry import (
    ForcedMigration,
    Scenario,
    ScenarioSetup,
    ShardKill,
    TenantSpec,
    all_scenarios,
    get,
    names,
    register,
    unregister,
)
from repro.scenarios.runner import (
    SMOKE_ENV,
    ScenarioRun,
    default_scale,
    run_scenario,
)
from repro.scenarios.verify import (
    Check,
    VerificationReport,
    check_definition1,
    check_isolation,
    verify_recovery,
    verify_scenario,
)
from repro.scenarios import seeds as seeds  # noqa: PLC0414 - registers seeds

__all__ = [
    "Check",
    "ForcedMigration",
    "Scenario",
    "ScenarioRun",
    "ScenarioSetup",
    "ShardKill",
    "SMOKE_ENV",
    "TenantSpec",
    "VerificationReport",
    "all_scenarios",
    "check_definition1",
    "check_isolation",
    "default_scale",
    "get",
    "names",
    "register",
    "run_scenario",
    "seeds",
    "unregister",
    "verify_recovery",
    "verify_scenario",
]
