"""Scenario verifiers: every scenario doubles as a correctness test.

Three first-class checks, each returning a :class:`Check`:

* **definition-1** -- the run's final merged logical state must equal
  a serial replay of the *admitted* transactions, in timestamp order,
  on the single-core CPU oracle (:class:`~repro.cpu.engine.CpuEngine`
  with ``num_cores=1``). Shedding changes *which* transactions run,
  never the equivalence of the ones that did.
* **isolation** -- no tenant's pending depth ever exceeded its quota
  (the admission high-water mark is the witness), every tenant with an
  SLO met its p95, and every tenant declared ``expect_shed`` actually
  was shed (its offered load exceeded its quota).
* **recovery** -- re-run the scenario twice on identical workloads
  (admission unbounded, so shedding cannot legitimately diverge):
  once fault-free, once with the shard kills injected. After automatic
  failover the two runs must agree byte-for-byte per shard
  (:func:`~repro.cluster.durability.replay.states_identical`) and on
  every commit/abort outcome.

:func:`verify_scenario` bundles the applicable checks into a
:class:`VerificationReport`; the CLI's ``scenarios verify`` and the CI
smoke lane run it for every registered scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.cluster.durability.replay import states_identical
from repro.core.txn import TransactionPool
from repro.cpu.engine import CpuEngine
from repro.scenarios.registry import Scenario, ShardKill, get
from repro.scenarios.runner import ScenarioRun, run_scenario


@dataclass(frozen=True)
class Check:
    """Outcome of one verifier."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


@dataclass
class VerificationReport:
    """All checks run against one scenario."""

    scenario: str
    checks: List[Check]

    @property
    def ok(self) -> bool:
        return all(check.passed for check in self.checks)

    def format(self) -> str:
        lines = [f"scenario {self.scenario}:"]
        lines.extend(f"  {check}" for check in self.checks)
        lines.append(f"  => {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def check_definition1(scenario: Scenario, run: ScenarioRun) -> Check:
    """Final state == serial oracle replay of the admitted set."""
    setup = scenario.setup(run.n, run.seed)
    oracle = CpuEngine(setup.db, procedures=setup.procedures, num_cores=1)
    pool = TransactionPool()
    replayed = [
        pool.submit(t.type_name, t.params, t.submit_time)
        for t in sorted(run.admitted, key=lambda t: t.txn_id)
    ]
    oracle.execute(replayed)
    cluster_state = run.logical_state
    oracle_state = setup.db.logical_state()
    if cluster_state == oracle_state:
        return Check(
            "definition-1",
            True,
            f"{len(replayed)} admitted txns replay to identical logical "
            "state on the serial oracle",
        )
    diverged = sorted(
        name
        for name in set(cluster_state) | set(oracle_state)
        if cluster_state.get(name) != oracle_state.get(name)
    )
    return Check(
        "definition-1",
        False,
        f"logical state diverges from the serial oracle in tables "
        f"{diverged}",
    )


def check_isolation(scenario: Scenario, run: ScenarioRun) -> Check:
    """Per-tenant quota and SLO isolation held for the whole run."""
    if not scenario.tenants or run.serve is None:
        return Check(
            "isolation", True, "no tenants declared; nothing to isolate"
        )
    stats = run.serve.admission
    problems: List[str] = []
    details: List[str] = []
    for tenant in scenario.tenants:
        high = stats.tenant_high_water.get(tenant.name, 0)
        shed = stats.rejected_by_tenant.get(tenant.name, 0)
        if high > tenant.quota:
            problems.append(
                f"{tenant.name} pending peaked at {high} > quota "
                f"{tenant.quota}"
            )
        if tenant.slo_p95_s is not None:
            summary = run.tenants.get(tenant.name)
            p95 = summary.p95_total_s if summary is not None else float("inf")
            if p95 > tenant.slo_p95_s:
                problems.append(
                    f"{tenant.name} p95 {p95 * 1e3:.2f}ms breaches SLO "
                    f"{tenant.slo_p95_s * 1e3:.2f}ms"
                )
            else:
                details.append(
                    f"{tenant.name} p95 {p95 * 1e3:.2f}ms <= SLO "
                    f"{tenant.slo_p95_s * 1e3:.2f}ms"
                )
        if tenant.expect_shed and shed == 0:
            problems.append(
                f"{tenant.name} was expected to overflow its quota but "
                "nothing was shed"
            )
        elif tenant.expect_shed:
            details.append(f"{tenant.name} shed {shed} (as declared)")
        details.append(
            f"{tenant.name} peak pending {high}/{tenant.quota}"
        )
    if problems:
        return Check("isolation", False, "; ".join(problems))
    return Check("isolation", True, "; ".join(details))


def verify_recovery(
    scenario: Scenario,
    *,
    kills: Optional[Sequence[ShardKill]] = None,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> Check:
    """Byte-identical per-shard state, faulted vs. fault-free twin.

    Both runs use unbounded admission (identical admitted sets) and
    keep the scenario's forced migrations (identical topology); only
    the kills differ. ``kills`` defaults to the scenario's declared
    ones, or one canonical mid-run kill when it declares none.
    """
    if kills is None:
        kills = scenario.kills or (ShardKill(shard=0, at_bulk=1),)
    reference = run_scenario(
        scenario,
        scale=scale,
        seed=seed,
        faults="migrations",
        unbounded_admission=True,
    )
    faulted = run_scenario(
        scenario,
        scale=scale,
        seed=seed,
        faults="migrations",
        extra_kills=kills,
        unbounded_admission=True,
    )
    assert reference.cluster is not None and faulted.cluster is not None
    if [t.txn_id for t in reference.admitted] != [
        t.txn_id for t in faulted.admitted
    ]:
        return Check(
            "recovery",
            False,
            "faulted and fault-free twins admitted different workloads "
            "(unbounded admission should make this impossible)",
        )
    problems: List[str] = []
    for shard in range(scenario.n_shards):
        if not states_identical(
            faulted.cluster.shards[shard].db,
            reference.cluster.shards[shard].db,
        ):
            problems.append(f"shard {shard} physical state diverged")
    def outcomes(run: ScenarioRun) -> dict:
        assert run.cluster is not None
        out = {}
        for t in run.admitted:
            result = run.cluster.results.get(t.txn_id)
            out[t.txn_id] = None if result is None else result.committed
        return out

    outcomes_ref = outcomes(reference)
    outcomes_faulted = outcomes(faulted)
    if outcomes_ref != outcomes_faulted:
        flipped = sum(
            1
            for txn_id, committed in outcomes_ref.items()
            if outcomes_faulted.get(txn_id) != committed
        )
        problems.append(f"{flipped} commit/abort outcomes flipped")
    if problems:
        return Check(
            "recovery",
            False,
            f"after {len(kills)} injected kill(s): " + "; ".join(problems),
        )
    return Check(
        "recovery",
        True,
        f"{len(kills)} kill(s) injected; all {scenario.n_shards} shards "
        "byte-identical to the fault-free twin, every outcome preserved",
    )


def verify_scenario(
    scenario: Union[Scenario, str],
    *,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
) -> VerificationReport:
    """Run every applicable verifier against one scenario."""
    if isinstance(scenario, str):
        scenario = get(scenario)
    run = run_scenario(scenario, scale=scale, seed=seed)
    checks = [
        check_definition1(scenario, run),
        check_isolation(scenario, run),
    ]
    if scenario.durable:
        checks.append(
            verify_recovery(scenario, scale=scale, seed=seed)
        )
    return VerificationReport(scenario=scenario.name, checks=checks)
