"""The three seed scenarios, registered at import.

* ``flash_sale`` -- a SmallBank hot-item flash crowd: shopper traffic
  spikes an order of magnitude onto a zipfian-hot account range while
  a back-office tenant audits balances at a steady trickle; shard 1 is
  killed mid-run and must recover byte-identically.
* ``noisy_neighbor`` -- TM1 tenant isolation: an aggressor tenant
  offers saturating bursts against a tight admission quota while the
  victim tenant's diurnal load must keep meeting its p95 SLO. The
  SCENARIO-1 bench runs this same scenario with quotas on vs. off.
* ``block_execution`` -- the DiPETrans-style blockchain model: fixed
  blocks of transfer transactions execute as conflict-graph bulks
  (one block = one bulk), with a forced live range migration and a
  shard kill landing between/within blocks.

Each scenario's ``setup(n, seed)`` rebuilds its database from scratch,
so runs never share mutable state -- the runner and the verifiers each
replay from a clean copy.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.scenarios.registry import (
    ForcedMigration,
    Scenario,
    ScenarioSetup,
    ShardKill,
    TenantSpec,
    register,
)
from repro.serve.stream import Arrival
from repro.workloads import smallbank, tm1
from repro.workloads.base import (
    TxnSpec,
    bursty_arrival_times,
    diurnal_arrival_times,
    flash_crowd_arrival_times,
    make_rng,
    poisson_arrival_times,
)

#: TM1 mix restricted to single-subscriber, insert-free types: keeps
#: every run's physical row set fixed, so byte-identity diffs compare
#: column values only (the strongest form of the recovery check).
_TM1_STEADY_MIX = [
    ("tm1_get_subscriber_data", 35.0),
    ("tm1_get_new_destination", 10.0),
    ("tm1_get_access_data", 35.0),
    ("tm1_update_subscriber_data", 20.0),
]


def _merge_tenant_arrivals(
    *streams: "tuple[str, List[TxnSpec], np.ndarray]",
) -> List[Arrival]:
    """Tag each tenant's (specs, times) and merge by submit time."""
    arrivals: List[Arrival] = []
    for tenant, specs, times in streams:
        if len(specs) != len(times):
            raise ValueError(
                f"tenant {tenant!r}: {len(specs)} specs for "
                f"{len(times)} arrival times"
            )
        arrivals.extend(
            Arrival(name, tuple(params), float(t), tenant)
            for (name, params), t in zip(specs, times)
        )
    arrivals.sort(key=lambda a: a.submit_time)
    return arrivals


# ---------------------------------------------------------------------------
# flash_sale: SmallBank hot item under a flash crowd + mid-run shard kill.
# ---------------------------------------------------------------------------
def _flash_sale_setup(n: int, seed: int) -> ScenarioSetup:
    db = smallbank.build_database(scale_factor=1)
    n_shoppers = max(2, (3 * n) // 4)
    n_backoffice = max(1, n - n_shoppers)
    shopper_specs = smallbank.generate_transactions(
        db, n_shoppers, seed=seed, theta=1.1
    )
    shopper_times = flash_crowd_arrival_times(
        make_rng(seed + 1),
        n_shoppers,
        base_rate_tps=40_000.0,
        flash_at_s=0.004,
        flash_rate_tps=150_000.0,
        flash_duration_s=0.003,
    )
    backoffice_specs = smallbank.generate_transactions(
        db,
        n_backoffice,
        seed=seed + 2,
        theta=0.0,
        mix=[("smallbank_balance", 1.0)],
    )
    backoffice_times = poisson_arrival_times(
        make_rng(seed + 3), n_backoffice, 8_000.0
    )
    return ScenarioSetup(
        db=db,
        procedures=smallbank.PROCEDURES,
        arrivals=_merge_tenant_arrivals(
            ("shoppers", shopper_specs, shopper_times),
            ("backoffice", backoffice_specs, backoffice_times),
        ),
    )


FLASH_SALE = register(
    Scenario(
        name="flash_sale",
        description=(
            "SmallBank hot-item flash crowd: shopper load spikes ~4x "
            "onto a zipfian-hot account range, back-office audits ride "
            "along under their own quota, and shard 1 dies mid-run."
        ),
        workload="smallbank",
        setup=_flash_sale_setup,
        mode="serve",
        n_txns=1600,
        n_shards=4,
        router="range",
        tenants=(
            TenantSpec("shoppers", quota=4096, slo_p95_s=0.25),
            TenantSpec("backoffice", quota=512, slo_p95_s=0.25),
        ),
        faults=(ShardKill(shard=1, at_bulk=1),),
        durable=True,
        target_p95_s=0.02,
        min_bulk=8,
        max_bulk=1024,
        seed=11,
    )
)


# ---------------------------------------------------------------------------
# noisy_neighbor: TM1 aggressor vs. SLO-holding victim.
# ---------------------------------------------------------------------------
def _noisy_neighbor_setup(n: int, seed: int) -> ScenarioSetup:
    db = tm1.build_database(scale_factor=1)
    n_aggressor = max(2, (4 * n) // 5)
    n_victim = max(2, n - n_aggressor)
    victim_specs = tm1.generate_transactions(
        db, n_victim, seed=seed, mix=_TM1_STEADY_MIX
    )
    victim_times = diurnal_arrival_times(
        make_rng(seed + 1),
        n_victim,
        base_rate_tps=15_000.0,
        peak_rate_tps=45_000.0,
        period_s=0.02,
    )
    aggressor_specs = tm1.generate_transactions(
        db, n_aggressor, seed=seed + 2, mix=_TM1_STEADY_MIX
    )
    aggressor_times = bursty_arrival_times(
        make_rng(seed + 3),
        n_aggressor,
        rate_tps=600_000.0,
        period_s=0.002,
        duty=0.2,
    )
    return ScenarioSetup(
        db=db,
        procedures=tm1.PROCEDURES,
        arrivals=_merge_tenant_arrivals(
            ("victim", victim_specs, victim_times),
            ("aggressor", aggressor_specs, aggressor_times),
        ),
    )


NOISY_NEIGHBOR = register(
    Scenario(
        name="noisy_neighbor",
        description=(
            "TM1 tenant isolation: an aggressor bursts at ~600 ktps "
            "against a 24-transaction quota (overflow shed) while the "
            "victim's diurnal load must keep meeting its p95 SLO."
        ),
        workload="tm1",
        setup=_noisy_neighbor_setup,
        mode="serve",
        n_txns=6000,
        n_shards=4,
        router="range",
        tenants=(
            TenantSpec("victim", quota=2048, slo_p95_s=0.012),
            TenantSpec("aggressor", quota=24, expect_shed=True),
        ),
        faults=(),
        durable=True,
        target_p95_s=0.01,
        min_bulk=32,
        max_bulk=128,
        seed=23,
    )
)


# ---------------------------------------------------------------------------
# block_execution: blockchain blocks as conflict-graph bulks.
# ---------------------------------------------------------------------------
_BLOCK_SIZE = 48


def _block_execution_setup(n: int, seed: int) -> ScenarioSetup:
    db = smallbank.build_database(scale_factor=1)
    specs = smallbank.generate_transactions(
        db,
        n,
        seed=seed,
        theta=0.8,
        mix=[
            ("smallbank_send_payment", 55.0),
            ("smallbank_deposit_checking", 25.0),
            ("smallbank_amalgamate", 10.0),
            ("smallbank_balance", 10.0),
        ],
    )
    blocks = [
        specs[i:i + _BLOCK_SIZE]
        for i in range(0, len(specs), _BLOCK_SIZE)
    ]
    return ScenarioSetup(
        db=db, procedures=smallbank.PROCEDURES, blocks=blocks
    )


BLOCK_EXECUTION = register(
    Scenario(
        name="block_execution",
        description=(
            "Blockchain block execution (DiPETrans): fixed blocks of "
            "payment transactions run as conflict-graph bulks, with a "
            "forced live range migration and a mid-block shard kill."
        ),
        workload="smallbank",
        setup=_block_execution_setup,
        mode="blocks",
        n_txns=1200,
        n_shards=4,
        router="range",
        tenants=(),
        faults=(
            ShardKill(shard=3, at_bulk=1),
            ForcedMigration(src=0, dst=2, key_lo=125, key_hi=250, at_bulk=2),
        ),
        durable=True,
        seed=31,
    )
)
