"""Declarative multi-tenant scenario registry.

A :class:`Scenario` is a *description*, not a run: which workload, how
many shards, which tenants (each with an admission quota and optionally
a p95 SLO), what arrival shape each tenant offers, and which faults to
inject mid-run (shard kills through the
:class:`~repro.cluster.coordinator.FailoverController`, forced range
migrations through the live-migration machinery). The runner
(:mod:`repro.scenarios.runner`) turns a scenario into a
:class:`~repro.cluster.runtime.ClusterTx` +
:class:`~repro.serve.runtime.ServeRuntime` execution; the verifiers
(:mod:`repro.scenarios.verify`) assert Definition-1 equivalence against
the serial oracle, per-tenant quota/SLO isolation, and byte-identical
recovery after the injected faults -- so every registered scenario
doubles as an end-to-end correctness test.

Scenarios register by name; ``python -m repro scenarios list|run|verify``
is the front door. The three seed scenarios live in
:mod:`repro.scenarios.seeds`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.serve.stream import Arrival
from repro.workloads.base import TxnSpec

#: Serve mode drives an arrival stream through admission + the adaptive
#: bulk former; blocks mode executes pre-formed bulks directly (the
#: blockchain block-execution model: one block = one conflict-graph
#: bulk).
MODES = ("serve", "blocks")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's admission quota and latency expectations."""

    name: str
    #: Most pending (admitted-but-unexecuted) transactions the tenant
    #: may hold; overflow is shed as backpressure.
    quota: int
    #: End-to-end p95 target, seconds. ``None`` = no SLO assertion
    #: (e.g. a deliberately saturating aggressor).
    slo_p95_s: Optional[float] = None
    #: The verifier asserts this tenant *was* shed (it offered more
    #: than its quota admits) -- the aggressor side of the isolation
    #: contract.
    expect_shed: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.quota < 1:
            raise ConfigError(f"tenant {self.name!r} quota must be >= 1")
        if self.slo_p95_s is not None and self.slo_p95_s <= 0:
            raise ConfigError(
                f"tenant {self.name!r} slo_p95_s must be positive"
            )


@dataclass(frozen=True)
class ShardKill:
    """Kill one shard at a (bulk, wave) point mid-run.

    Scheduled through :meth:`FailoverController.schedule_kill`;
    requires the scenario to run durable (WAL + checkpoints +
    replicas), since that is what recovery replays from.
    """

    shard: int
    at_bulk: int
    wave: int = 0

    def __post_init__(self) -> None:
        if self.shard < 0 or self.at_bulk < 0 or self.wave < 0:
            raise ConfigError("ShardKill coordinates must be >= 0")


@dataclass(frozen=True)
class ForcedMigration:
    """Force a live range move ``[key_lo, key_hi)`` src -> dst.

    ``at_bulk=0`` lands at the first wave boundary (the mid-bulk
    requeue path); later bulks are applied as the runner counts bulk
    dispatches. Requires ``router='range'``.
    """

    src: int
    dst: int
    key_lo: int
    key_hi: int
    at_bulk: int = 0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ConfigError("ForcedMigration src and dst must differ")
        if self.key_lo >= self.key_hi:
            raise ConfigError("ForcedMigration needs key_lo < key_hi")
        if self.at_bulk < 0:
            raise ConfigError("ForcedMigration at_bulk must be >= 0")


FaultSpec = Union[ShardKill, ForcedMigration]


@dataclass
class ScenarioSetup:
    """What a scenario's ``setup`` callable materialises for one run."""

    #: Freshly built database (never shared between runs: the runner
    #: partitions it into shards and the oracle replays into it).
    db: object
    procedures: Sequence[object]
    #: Serve mode: tenant-tagged arrivals, nondecreasing submit times.
    arrivals: Optional[List[Arrival]] = None
    #: Blocks mode: pre-formed bulks of (type_name, params) specs.
    blocks: Optional[List[List[TxnSpec]]] = None


@dataclass(frozen=True)
class Scenario:
    """A declarative multi-tenant serving scenario."""

    name: str
    description: str
    #: Workload family label (shown by ``scenarios list``).
    workload: str
    #: ``setup(n, seed) -> ScenarioSetup`` builds a fresh database and
    #: the (scaled) workload for one run.
    setup: Callable[[int, int], ScenarioSetup]
    mode: str = "serve"
    #: Workload size at ``scale=1.0``.
    n_txns: int = 1600
    n_shards: int = 4
    router: str = "range"
    tenants: Tuple[TenantSpec, ...] = ()
    faults: Tuple[FaultSpec, ...] = ()
    #: Run with WAL + checkpoints + replicas (required by kills).
    durable: bool = True
    #: Bulk former config (serve mode).
    target_p95_s: float = 0.05
    min_bulk: int = 8
    max_bulk: int = 2048
    #: Global admission cap. Keep it >= the sum of tenant quotas so the
    #: quota -- not the shared buffer -- is what isolates tenants.
    max_pending: int = 1 << 14
    max_pending_per_shard: Optional[int] = None
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario name must be non-empty")
        if self.mode not in MODES:
            raise ConfigError(
                f"unknown scenario mode {self.mode!r}; expected one of "
                f"{MODES}"
            )
        if self.n_txns < 1:
            raise ConfigError("n_txns must be >= 1")
        if self.n_shards < 2:
            raise ConfigError("scenarios run sharded: n_shards must be >= 2")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {self.name!r}")
        kills = [f for f in self.faults if isinstance(f, ShardKill)]
        if kills and not self.durable:
            raise ConfigError(
                f"scenario {self.name!r} injects shard kills but is not "
                "durable: recovery needs WAL + checkpoints + replicas"
            )
        migrations = [
            f for f in self.faults if isinstance(f, ForcedMigration)
        ]
        if migrations and self.router != "range":
            raise ConfigError(
                f"scenario {self.name!r} forces migrations but uses "
                f"router={self.router!r}: live migration splits a range "
                "table"
            )
        for fault in kills:
            if fault.shard >= self.n_shards:
                raise ConfigError(
                    f"scenario {self.name!r} kills shard {fault.shard} "
                    f"but has only {self.n_shards} shards"
                )

    @property
    def quotas(self) -> Dict[str, int]:
        return {t.name: t.quota for t in self.tenants}

    @property
    def kills(self) -> Tuple[ShardKill, ...]:
        return tuple(
            f for f in self.faults if isinstance(f, ShardKill)
        )

    @property
    def migrations(self) -> Tuple[ForcedMigration, ...]:
        return tuple(
            f for f in self.faults if isinstance(f, ForcedMigration)
        )


_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry; duplicate names are an error."""
    if scenario.name in _REGISTRY:
        raise ConfigError(
            f"scenario {scenario.name!r} is already registered"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister(name: str) -> None:
    """Remove a scenario (tests); unknown names are an error."""
    if name not in _REGISTRY:
        raise ConfigError(f"unknown scenario {name!r}")
    del _REGISTRY[name]


def get(name: str) -> Scenario:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; registered: {names()}"
        ) from None


def names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, in name order."""
    return [_REGISTRY[name] for name in names()]
