"""Scenario runner: declarative :class:`Scenario` -> one executed run.

Builds the sharded cluster (durable when the scenario says so),
schedules the declared shard kills on the
:class:`~repro.cluster.coordinator.FailoverController`, injects forced
range migrations as bulk boundaries pass, then drives either

* **serve mode**: the tenant-tagged arrival stream through an
  :class:`~repro.serve.admission.AdmissionController` configured with
  the scenario's per-tenant quotas and an
  :class:`~repro.serve.controller.AdaptiveBulkFormer` sized by its SLO;
* **blocks mode**: each pre-formed block as one bulk through
  ``ClusterTx.execute_bulk`` (the blockchain block-execution model).

Every run records the admitted transactions in admission order -- the
replay input the verifiers feed the serial oracle -- and returns a
:class:`ScenarioRun` with per-tenant latency summaries and the fault
outcomes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.durability import DurabilityConfig
from repro.cluster.elastic import MigrationPlan, MigrationReport
from repro.cluster.runtime import ClusterExecutionResult, ClusterTx
from repro.config import ClusterOptions
from repro.core.txn import Transaction
from repro.errors import ConfigError
from repro.scenarios.registry import (
    ForcedMigration,
    Scenario,
    ScenarioSetup,
    ShardKill,
    get,
)
from repro.serve.admission import AdmissionController
from repro.serve.controller import AdaptiveBulkFormer, SLOConfig
from repro.serve.metrics import LatencySummary
from repro.serve.runtime import ServeReport, ServeRuntime

#: Environment switch the CI smoke lane sets: shrinks the default run
#: scale so every registered scenario (plus its verifier reruns) stays
#: seconds-cheap, in the spirit of ``REPRO_BENCH_SMOKE``.
SMOKE_ENV = "REPRO_SCENARIO_SMOKE"
_SMOKE_SCALE = 1.0 / 16.0

#: Fault-selection values accepted by :func:`run_scenario`.
FAULT_MODES = ("all", "migrations", "none")


def default_scale() -> float:
    """1.0, or the smoke scale when :data:`SMOKE_ENV` is set."""
    return _SMOKE_SCALE if os.environ.get(SMOKE_ENV) else 1.0


@dataclass
class ScenarioRun:
    """Everything one scenario execution produced."""

    scenario: str
    mode: str
    #: Workload size and seed actually used (after scaling) -- the
    #: verifiers rebuild the oracle database from these.
    n: int
    seed: int
    executed: int = 0
    committed: int = 0
    aborted: int = 0
    #: Admitted transactions in admission (= timestamp) order.
    admitted: List[Transaction] = field(default_factory=list)
    #: Serve-mode report (None in blocks mode).
    serve: Optional[ServeReport] = None
    #: Per-tenant latency summaries (serve mode).
    tenants: Dict[str, LatencySummary] = field(default_factory=dict)
    #: Blocks-mode per-bulk results.
    results: List[ClusterExecutionResult] = field(default_factory=list)
    #: The cluster the run executed on (its shards hold final state).
    cluster: Optional[ClusterTx] = None
    #: Fault outcomes observed.
    kills_injected: int = 0
    migrations: List[MigrationReport] = field(default_factory=list)
    #: Simulated seconds the cluster spent executing.
    busy_s: float = 0.0

    @property
    def logical_state(self) -> Dict[str, List[Tuple[Any, ...]]]:
        assert self.cluster is not None
        return self.cluster.logical_state()


class _MigrationInjectingEngine:
    """ClusterTx proxy that requests forced migrations on schedule.

    The serve loop owns the bulk cadence, so the runner cannot call
    ``request_migration`` "at bulk k" itself; this proxy counts
    ``execute_bulk`` dispatches and queues each due migration right
    before the dispatch it targets (the move lands at the next wave
    boundary, the mid-bulk requeue path).
    """

    def __init__(
        self, cluster: ClusterTx, migrations: Sequence[ForcedMigration]
    ) -> None:
        self._cluster = cluster
        self._due = sorted(migrations, key=lambda m: m.at_bulk)
        self._bulk_n = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._cluster, name)

    def execute_bulk(self, batch: Any, **kwargs: Any) -> Any:
        while self._due and self._due[0].at_bulk <= self._bulk_n:
            m = self._due.pop(0)
            self._cluster.request_migration(
                MigrationPlan(
                    src=m.src, dst=m.dst, key_lo=m.key_lo, key_hi=m.key_hi
                )
            )
        self._bulk_n += 1
        return self._cluster.execute_bulk(batch, **kwargs)


def _build_cluster(scenario: Scenario, setup: ScenarioSetup) -> ClusterTx:
    durability = DurabilityConfig() if scenario.durable else None
    return ClusterTx(
        setup.db,
        procedures=setup.procedures,
        n_shards=scenario.n_shards,
        router=scenario.router,
        options=ClusterOptions(durability=durability),
    )


def run_scenario(
    scenario: Union[Scenario, str],
    *,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    faults: str = "all",
    extra_kills: Sequence[ShardKill] = (),
    unbounded_admission: bool = False,
    quotas: bool = True,
) -> ScenarioRun:
    """Execute one scenario and return its :class:`ScenarioRun`.

    ``faults`` selects which *declared* faults fire: ``"all"``,
    ``"migrations"`` (skip the declared kills -- the fault-free twin a
    recovery check diffs against), or ``"none"``. ``extra_kills`` adds
    kills on top (the random kill points of the recovery property
    suite). ``unbounded_admission`` lifts the global cap and the tenant
    quotas so both runs of a recovery diff admit identical workloads;
    shedding decisions would otherwise legitimately diverge after a
    fault perturbs queue depths. ``quotas=False`` keeps the global
    bounds but drops the per-tenant quotas -- the no-isolation twin
    the SCENARIO-1 bench compares against.
    """
    if isinstance(scenario, str):
        scenario = get(scenario)
    if faults not in FAULT_MODES:
        raise ConfigError(
            f"unknown faults mode {faults!r}; expected one of {FAULT_MODES}"
        )
    scale = default_scale() if scale is None else scale
    if scale <= 0:
        raise ConfigError("scale must be positive")
    seed = scenario.seed if seed is None else seed
    n = max(16, int(round(scenario.n_txns * scale)))
    setup = scenario.setup(n, seed)
    cluster = _build_cluster(scenario, setup)

    kills: List[ShardKill] = list(extra_kills)
    if faults == "all":
        kills.extend(scenario.kills)
    migrations = (
        list(scenario.migrations) if faults in ("all", "migrations") else []
    )
    if kills and cluster.failover is None:
        raise ConfigError(
            f"scenario {scenario.name!r} cannot inject kills without "
            "durability"
        )
    for kill in kills:
        if kill.shard >= scenario.n_shards:
            raise ConfigError(
                f"kill targets shard {kill.shard} of {scenario.n_shards}"
            )
        cluster.failover.schedule_kill(
            kill.shard, bulk=kill.at_bulk, wave=kill.wave
        )

    run = ScenarioRun(
        scenario=scenario.name,
        mode=scenario.mode,
        n=n,
        seed=seed,
        cluster=cluster,
        kills_injected=len(kills),
    )
    if scenario.mode == "serve":
        _run_serve(scenario, setup, cluster, migrations, run,
                   unbounded_admission, quotas)
    else:
        _run_blocks(scenario, setup, cluster, migrations, run)
    return run


def _run_serve(
    scenario: Scenario,
    setup: ScenarioSetup,
    cluster: ClusterTx,
    migrations: Sequence[ForcedMigration],
    run: ScenarioRun,
    unbounded_admission: bool,
    quotas: bool,
) -> None:
    if setup.arrivals is None:
        raise ConfigError(
            f"scenario {scenario.name!r} is serve-mode but its setup "
            "produced no arrivals"
        )
    engine: Any = cluster
    if migrations:
        engine = _MigrationInjectingEngine(cluster, migrations)
    if unbounded_admission:
        admission = AdmissionController(
            max_pending=1 << 30, record_admitted=True
        )
    else:
        admission = AdmissionController(
            max_pending=scenario.max_pending,
            max_pending_per_shard=scenario.max_pending_per_shard,
            router=cluster.router if scenario.max_pending_per_shard else None,
            registry=(
                cluster.registry if scenario.max_pending_per_shard else None
            ),
            tenant_quotas=(scenario.quotas or None) if quotas else None,
            record_admitted=True,
        )
    former = AdaptiveBulkFormer(
        SLOConfig(
            target_p95_s=scenario.target_p95_s,
            min_bulk=scenario.min_bulk,
            max_bulk=scenario.max_bulk,
        )
    )
    runtime = ServeRuntime(engine, former=former, admission=admission)
    report = runtime.run(setup.arrivals)
    run.serve = report
    run.tenants = dict(report.tenants)
    run.admitted = list(admission.admitted_log)
    run.executed = report.executed
    run.committed = report.committed
    run.aborted = report.aborted
    run.migrations = list(report.migrations)
    run.busy_s = report.busy_s


def _run_blocks(
    scenario: Scenario,
    setup: ScenarioSetup,
    cluster: ClusterTx,
    migrations: Sequence[ForcedMigration],
    run: ScenarioRun,
) -> None:
    if setup.blocks is None:
        raise ConfigError(
            f"scenario {scenario.name!r} is blocks-mode but its setup "
            "produced no blocks"
        )
    due = sorted(migrations, key=lambda m: m.at_bulk)
    # Count *blocks*, not bulk dispatches: a mid-bulk shard kill makes
    # the failover requeue in-flight transactions, so one block can
    # drain as several bulks -- keying moves on the dispatch count
    # would slide them relative to the workload in exactly the faulted
    # runs the recovery verifier diffs.
    block_n = 0
    for block in setup.blocks:
        # Forced moves land *between* blocks here: nothing is in
        # flight, so the migration needs no requeue and both runs of a
        # recovery diff see identical block compositions.
        while due and due[0].at_bulk <= block_n:
            m = due.pop(0)
            report = cluster.migrate(
                MigrationPlan(
                    src=m.src, dst=m.dst, key_lo=m.key_lo, key_hi=m.key_hi
                )
            )
            run.migrations.append(report)
        for name, params in block:
            run.admitted.append(cluster.submit(name, params))
        while len(cluster.pool):
            result = cluster.execute_bulk(cluster.pool.take())
            run.results.append(result)
            run.executed += len(result.results)
            run.committed += result.committed
            run.aborted += sum(
                1 for r in result.results if not r.committed
            )
            run.busy_s += result.seconds
        block_n += 1
    # A move scheduled past the last block still fires (the scenario
    # promised it), so recovery diffs compare identical topologies.
    for m in due:
        report = cluster.migrate(
            MigrationPlan(
                src=m.src, dst=m.dst, key_lo=m.key_lo, key_hi=m.key_hi
            )
        )
        run.migrations.append(report)
