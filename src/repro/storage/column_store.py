"""Column-oriented in-memory table.

The storage format of GPUTx (Section 3.2, Appendix E): each
fixed-length column is a contiguous array; variable-length values live
in a pool addressed by (offset, length) descriptors. Consecutive rows
of one column are adjacent in the device address space, so warp
accesses to one column coalesce -- the mechanism behind the ~10 %
speedup over the row store the paper reports (Appendix F.2).

Deletes are tombstones (a validity bitmap); inserts are appended in
batches by the catalog's insert buffer after kernel completion.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.errors import StorageError
from repro.storage.schema import ColumnDef, DataType, TableSchema

_GROWTH = 1.5
_MIN_CAPACITY = 64


class _Column:
    """One column's backing storage (typed array or object array).

    ``shared`` marks the backing array as co-owned by a copy-on-write
    fork (:meth:`ColumnTable.fork`); the first mutation copies it.
    """

    __slots__ = ("definition", "data", "size", "shared")

    def __init__(self, definition: ColumnDef, capacity: int) -> None:
        self.definition = definition
        self.size = 0
        self.shared = False
        if definition.is_string:
            self.data = np.empty(capacity, dtype=object)
        else:
            self.data = np.zeros(capacity, dtype=definition.numpy_dtype)

    def prepare_write(self) -> None:
        """Detach from any fork before mutating in place."""
        if self.shared:
            self.data = self.data.copy()
            self.shared = False

    def ensure_capacity(self, n: int) -> None:
        cap = len(self.data)
        if n <= cap:
            return
        new_cap = max(n, int(cap * _GROWTH) + 1, _MIN_CAPACITY)
        if self.definition.is_string:
            grown = np.empty(new_cap, dtype=object)
        else:
            grown = np.zeros(new_cap, dtype=self.data.dtype)
        grown[: self.size] = self.data[: self.size]
        self.data = grown
        self.shared = False


class ColumnTable:
    """A table stored column-major. See module docstring."""

    layout = "column"

    def __init__(self, schema: TableSchema, capacity: int = _MIN_CAPACITY) -> None:
        self.schema = schema
        self._columns = {
            c.name: _Column(c, capacity) for c in schema.columns
        }
        self._deleted = np.zeros(capacity, dtype=bool)
        self._deleted_shared = False
        self.n_rows = 0

    # ------------------------------------------------------------------
    # Copy-on-write forking (checkpoints, Appendix D's replication).
    # ------------------------------------------------------------------
    def fork(self) -> "ColumnTable":
        """A copy-on-write twin of this table.

        Both tables share the backing arrays until either side mutates
        a column (or the tombstone bitmap), which copies just that
        array. Forking is O(columns), not O(rows) -- cheap enough to
        take a checkpoint of a shard partition after every bulk.
        """
        other = ColumnTable.__new__(ColumnTable)
        other.schema = self.schema
        other._columns = {}
        for name, col in self._columns.items():
            col.shared = True
            twin = _Column.__new__(_Column)
            twin.definition = col.definition
            twin.data = col.data
            twin.size = col.size
            twin.shared = True
            other._columns[name] = twin
        self._deleted_shared = True
        other._deleted = self._deleted
        other._deleted_shared = True
        other.n_rows = self.n_rows
        return other

    def _prepare_deleted_write(self) -> None:
        if self._deleted_shared:
            self._deleted = self._deleted.copy()
            self._deleted_shared = False

    # ------------------------------------------------------------------
    # Cell access.
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.n_rows:
            raise StorageError(
                f"row {row} out of range [0, {self.n_rows}) in "
                f"table {self.schema.name!r}"
            )

    def read(self, column: str, row: int) -> Any:
        self._check_row(row)
        try:
            col = self._columns[column]
        except KeyError:
            raise StorageError(
                f"no column {column!r} in table {self.schema.name!r}"
            ) from None
        value = col.data[row]
        return value.item() if isinstance(value, np.generic) else value

    def write(self, column: str, row: int, value: Any) -> Any:
        self._check_row(row)
        try:
            col = self._columns[column]
        except KeyError:
            raise StorageError(
                f"no column {column!r} in table {self.schema.name!r}"
            ) from None
        old = col.data[row]
        col.prepare_write()
        col.data[row] = value
        return old.item() if isinstance(old, np.generic) else old

    def read_row(self, row: int) -> Tuple[Any, ...]:
        self._check_row(row)
        return tuple(self.read(c.name, row) for c in self.schema.columns)

    # ------------------------------------------------------------------
    # Bulk mutation (used by load and by the batched insert apply).
    # ------------------------------------------------------------------
    def append_rows(self, rows: Sequence[Sequence[Any]]) -> List[int]:
        """Append rows; returns their new row ids."""
        if not rows:
            return []
        width = len(self.schema.columns)
        start = self.n_rows
        new_size = start + len(rows)
        for col in self._columns.values():
            col.ensure_capacity(new_size)
            col.prepare_write()
            col.size = new_size
        if len(self._deleted) < new_size:
            grown = np.zeros(
                max(new_size, int(len(self._deleted) * _GROWTH) + 1), dtype=bool
            )
            grown[: self.n_rows] = self._deleted[: self.n_rows]
            self._deleted = grown
            self._deleted_shared = False
        for i, row in enumerate(rows):
            if len(row) != width:
                raise StorageError(
                    f"row has {len(row)} values; table {self.schema.name!r} "
                    f"has {width} columns"
                )
            for col_def, value in zip(self.schema.columns, row):
                self._columns[col_def.name].data[start + i] = value
        self.n_rows = new_size
        return list(range(start, new_size))

    def append_columns(self, columns: dict) -> None:
        """Bulk load pre-built column arrays (fast path for loaders)."""
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise StorageError("bulk-load columns have differing lengths")
        n = lengths.pop()
        expected = set(self.schema.column_names)
        if set(columns) != expected:
            raise StorageError(
                f"bulk load must provide exactly columns {sorted(expected)}"
            )
        start = self.n_rows
        new_size = start + n
        for name, values in columns.items():
            col = self._columns[name]
            col.ensure_capacity(new_size)
            col.prepare_write()
            col.data[start:new_size] = values
            col.size = new_size
        if len(self._deleted) < new_size:
            grown = np.zeros(new_size, dtype=bool)
            grown[: self.n_rows] = self._deleted[: self.n_rows]
            self._deleted = grown
            self._deleted_shared = False
        self.n_rows = new_size

    def mark_deleted(self, row: int) -> None:
        self._check_row(row)
        self._prepare_deleted_write()
        self._deleted[row] = True

    def unmark_deleted(self, row: int) -> None:
        """Restore a tombstoned row (abort rollback of a delete)."""
        self._check_row(row)
        self._prepare_deleted_write()
        self._deleted[row] = False

    def is_deleted(self, row: int) -> bool:
        self._check_row(row)
        return bool(self._deleted[row])

    @property
    def live_row_count(self) -> int:
        return self.n_rows - int(self._deleted[: self.n_rows].sum())

    def deleted_mask(self) -> np.ndarray:
        """Tombstone bitmap over the table's rows (read-only view)."""
        return self._deleted[: self.n_rows]

    # ------------------------------------------------------------------
    # Device layout (for coalescing + memory accounting).
    # ------------------------------------------------------------------
    def column_device_offset(self, column: str) -> int:
        """Byte offset of a column's array within the table's region.

        Columns are laid out back-to-back in schema order; rows within
        a column are contiguous -- the defining property of the column
        store.
        """
        offset = 0
        for col in self.schema.columns:
            if col.name == column:
                return offset
            if col.device_resident:
                offset += col.width * max(self.n_rows, 1)
        raise StorageError(
            f"no column {column!r} in table {self.schema.name!r}"
        )

    def cell_address(self, column: str, row: int) -> Tuple[int, int]:
        """(offset-in-table, width) of one cell."""
        col = self.schema.column(column)
        return self.column_device_offset(column) + row * col.width, col.width

    def device_bytes(self) -> int:
        """Device memory: resident columns only (Appendix E)."""
        total = 0
        for col in self.schema.columns:
            if col.device_resident:
                total += col.width * self.n_rows
                if col.dtype is DataType.VARCHAR:
                    total += self._string_pool_bytes(col.name)
        return total

    def host_bytes(self) -> int:
        """Host copy: every column."""
        total = 0
        for col in self.schema.columns:
            total += col.width * self.n_rows
            if col.dtype is DataType.VARCHAR:
                total += self._string_pool_bytes(col.name)
        return total

    def _string_pool_bytes(self, column: str) -> int:
        data = self._columns[column].data[: self.n_rows]
        return int(sum(len(v) for v in data if v is not None))

    def column_array(self, column: str) -> np.ndarray:
        """Direct (read-only by convention) view of a column's values."""
        return self._columns[column].data[: self.n_rows]

    # ------------------------------------------------------------------
    # Bulk cell access (the vectorized execution backend's fast path).
    # ------------------------------------------------------------------
    def gather(self, column: str, rows: np.ndarray) -> np.ndarray:
        """Read ``column`` at many ``rows`` in one fancy-index pass.

        Element types match :meth:`read` applied per row (numpy scalars
        before their ``.item()`` conversion); callers that need Python
        scalars convert at the edge, exactly like the interpreter does.
        Out-of-range rows raise, like :meth:`read` -- silently wrapping
        a ``-1`` probe miss to the buffer tail would turn a kernel bug
        into wrong results instead of a loud error.
        """
        try:
            col = self._columns[column]
        except KeyError:
            raise StorageError(
                f"no column {column!r} in table {self.schema.name!r}"
            ) from None
        if len(rows) and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise StorageError(
                f"gather rows out of range [0, {self.n_rows}) in "
                f"table {self.schema.name!r}"
            )
        return col.data[rows]

    def gather1(self, column: str, row: int) -> np.ndarray:
        """Single-row :meth:`gather`: identical dtype, bounds check,
        and copy semantics without the fancy-index machinery."""
        try:
            col = self._columns[column]
        except KeyError:
            raise StorageError(
                f"no column {column!r} in table {self.schema.name!r}"
            ) from None
        if not 0 <= row < self.n_rows:
            raise StorageError(
                f"gather rows out of range [0, {self.n_rows}) in "
                f"table {self.schema.name!r}"
            )
        return col.data[row:row + 1].copy()

    def scatter(self, column: str, rows: np.ndarray, values: np.ndarray) -> None:
        """Write many cells of ``column`` in one fancy-index pass.

        Equivalent to :meth:`write` per (row, value) pair; respects the
        copy-on-write fork protocol. Rows must be in-range and unique
        (the vectorized backend only scatters conflict-free waves).
        """
        try:
            col = self._columns[column]
        except KeyError:
            raise StorageError(
                f"no column {column!r} in table {self.schema.name!r}"
            ) from None
        if len(rows) == 0:
            return
        if rows.min() < 0 or rows.max() >= self.n_rows:
            raise StorageError(
                f"scatter rows out of range [0, {self.n_rows}) in "
                f"table {self.schema.name!r}"
            )
        col.prepare_write()
        col.data[rows] = values
