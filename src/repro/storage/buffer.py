"""Mutation journal backing the temporary insert buffer (Section 3.2).

The paper stages inserts in "a temporary buffer that is sufficiently
large for the new inserted data" and applies them as a batched update
after the kernel. In this reproduction the *cost* of that design is
preserved (buffer-tail allocation is an atomicAdd, the batch apply is a
streaming pass, both charged by the executors), while the *functional*
effect of an insert or delete is applied immediately so that later
transactions in the same bulk observe it -- required for Definition 1
correctness when, e.g., a PART thread runs a TPC-C NEW_ORDER and then
a DELIVERY of the same warehouse back to back.

What remains of the buffer at the functional level is this journal: the
set of rows inserted/deleted since the last batch apply, which is what
abort rollback needs to cancel a transaction's mutations.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple


class MutationJournal:
    """Tracks inserts/deletes between batch boundaries."""

    def __init__(self) -> None:
        self._inserted: Dict[str, Set[int]] = {}
        self._deleted: Dict[str, Set[int]] = {}
        self.total_inserts = 0
        self.total_deletes = 0
        #: Batch boundaries crossed so far. The durability layer stamps
        #: this into WAL records so replayed state can be audited
        #: against the batch boundary it was captured at.
        self.epoch = 0

    # ------------------------------------------------------------------
    def record_insert(self, table: str, row: int) -> None:
        self._inserted.setdefault(table, set()).add(row)
        self.total_inserts += 1

    def record_delete(self, table: str, row: int) -> None:
        self._deleted.setdefault(table, set()).add(row)
        self.total_deletes += 1

    def was_inserted(self, table: str, row: int) -> bool:
        return row in self._inserted.get(table, ())

    def was_deleted(self, table: str, row: int) -> bool:
        return row in self._deleted.get(table, ())

    def forget_insert(self, table: str, row: int) -> None:
        self._inserted.get(table, set()).discard(row)

    def forget_delete(self, table: str, row: int) -> None:
        self._deleted.get(table, set()).discard(row)

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        inserted = sum(len(rows) for rows in self._inserted.values())
        deleted = sum(len(rows) for rows in self._deleted.values())
        return inserted + deleted

    def pending_by_table(self) -> Dict[str, Tuple[int, int]]:
        """table -> (inserts, deletes) accumulated since the last apply."""
        tables = set(self._inserted) | set(self._deleted)
        return {
            t: (len(self._inserted.get(t, ())), len(self._deleted.get(t, ())))
            for t in sorted(tables)
        }

    def clear(self) -> None:
        """Batch boundary: the staged mutations become permanent."""
        self._inserted.clear()
        self._deleted.clear()
        self.epoch += 1
