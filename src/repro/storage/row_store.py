"""Row-oriented table: the comparison baseline of Appendix F.2.

Functionally identical to :class:`~repro.storage.column_store.ColumnTable`
(it reuses it internally for value storage); what differs is the
*device layout*: a row's columns are adjacent, so two warp lanes
reading the same column of neighbouring rows are ``row_width`` bytes
apart and do not coalesce. The whole row width also counts against
device memory -- a row store cannot leave cold columns on the host.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.column_store import ColumnTable
from repro.storage.schema import TableSchema


class RowTable:
    """A table stored row-major. Same API as :class:`ColumnTable`."""

    layout = "row"

    def __init__(self, schema: TableSchema, capacity: int = 64) -> None:
        self.schema = schema
        self._inner = ColumnTable(schema, capacity)
        # Pre-compute column byte offsets within a row (4-byte aligned,
        # matching TableSchema.row_width).
        self._offsets = {}
        offset = 0
        for col in schema.columns:
            self._offsets[col.name] = offset
            offset += col.width + (-col.width % 4)
        self._stride = offset

    # -- copy-on-write forking ------------------------------------------
    def fork(self) -> "RowTable":
        """A copy-on-write twin (same semantics as ColumnTable.fork)."""
        other = RowTable.__new__(RowTable)
        other.schema = self.schema
        other._inner = self._inner.fork()
        other._offsets = self._offsets
        other._stride = self._stride
        return other

    # -- delegated functional operations --------------------------------
    @property
    def n_rows(self) -> int:
        return self._inner.n_rows

    def read(self, column: str, row: int) -> Any:
        return self._inner.read(column, row)

    def write(self, column: str, row: int, value: Any) -> Any:
        return self._inner.write(column, row, value)

    def read_row(self, row: int) -> Tuple[Any, ...]:
        return self._inner.read_row(row)

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> List[int]:
        return self._inner.append_rows(rows)

    def append_columns(self, columns: dict) -> None:
        self._inner.append_columns(columns)

    def mark_deleted(self, row: int) -> None:
        self._inner.mark_deleted(row)

    def unmark_deleted(self, row: int) -> None:
        self._inner.unmark_deleted(row)

    def is_deleted(self, row: int) -> bool:
        return self._inner.is_deleted(row)

    @property
    def live_row_count(self) -> int:
        return self._inner.live_row_count

    def column_array(self, column: str):
        return self._inner.column_array(column)

    def deleted_mask(self):
        return self._inner.deleted_mask()

    # -- row-major device layout ----------------------------------------
    def cell_address(self, column: str, row: int) -> Tuple[int, int]:
        """(offset-in-table, width): strided by the full row width."""
        if column not in self._offsets:
            raise StorageError(
                f"no column {column!r} in table {self.schema.name!r}"
            )
        col = self.schema.column(column)
        return row * self._stride + self._offsets[column], col.width

    def device_bytes(self) -> int:
        """Rows are indivisible: every column rides along to the GPU."""
        return self._stride * self.n_rows

    def host_bytes(self) -> int:
        return self._stride * self.n_rows
