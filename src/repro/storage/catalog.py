"""Database catalog: tables, indexes, and the device-store adapter.

:class:`Database` owns tables (column- or row-layout), hash indexes,
and the static key maps the paper uses for string lookups (e.g. the
"static mapping from the string representation to the subscriber ID"
in TM1, Appendix E). :class:`StoreAdapter` exposes a database to the
SIMT engine through the :class:`~repro.gpu.memory.DeviceStore`
protocol, including the temporary insert buffer with post-kernel
batched apply (Section 3.2).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import CatalogError, StorageError
from repro.storage.buffer import MutationJournal
from repro.storage.column_store import ColumnTable
from repro.storage.index import HashIndex, MultiHashIndex
from repro.storage.row_store import RowTable
from repro.storage.schema import TableSchema

Table = Union[ColumnTable, RowTable]
Index = Union[HashIndex, MultiHashIndex]

#: Address stride separating tables in the pretend device address space.
_TABLE_REGION_STRIDE = 1 << 38


def static_map_cost_base(map_name: str, key: Any) -> int:
    """Bucket-header address of one static-map probe.

    The single source of the static maps' cost-address formula (hash
    indexes own theirs in :meth:`HashIndex.cost_address_base`); one
    probe is two dependent 8-byte reads at ``base`` and ``base + 8``.
    Shared by the SIMT adapter path and the vectorized backend.
    """
    return (hash((map_name, key)) & 0xFFFFFF) * 16


class Database:
    """An in-memory database: schema + data + indexes + static maps."""

    def __init__(self, layout: str = "column") -> None:
        if layout not in ("column", "row"):
            raise CatalogError(f"unknown layout {layout!r}")
        self.layout = layout
        self.tables: Dict[str, Table] = {}
        self.indexes: Dict[str, Index] = {}
        self.static_maps: Dict[str, Dict[Any, int]] = {}
        self._table_order: List[str] = []

    # ------------------------------------------------------------------
    # DDL.
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema, capacity: int = 64) -> Table:
        if schema.name in self.tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table: Table
        if self.layout == "column":
            table = ColumnTable(schema, capacity)
        else:
            table = RowTable(schema, capacity)
        self.tables[schema.name] = table
        self._table_order.append(schema.name)
        return table

    def create_index(
        self,
        name: str,
        table: str,
        columns: Sequence[str],
        unique: bool = True,
    ) -> Index:
        if name in self.indexes:
            raise CatalogError(f"index {name!r} already exists")
        tbl = self.table(table)
        for col in columns:
            tbl.schema.column(col)  # validates existence
        index: Index
        if unique:
            index = HashIndex(name, table, tuple(columns))
        else:
            index = MultiHashIndex(name, table, tuple(columns))
        # Build over existing rows.
        for row in range(tbl.n_rows):
            if not tbl.is_deleted(row):
                index.insert(self._key_of(tbl, index.columns, row), row)
        self.indexes[name] = index
        return index

    def create_static_map(self, name: str, mapping: Dict[Any, int]) -> None:
        """Register a read-only key map (e.g. sub_nbr string -> s_id)."""
        if name in self.static_maps or name in self.indexes:
            raise CatalogError(f"map/index {name!r} already exists")
        self.static_maps[name] = dict(mapping)

    # ------------------------------------------------------------------
    # Lookup helpers.
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def index(self, name: str) -> Index:
        try:
            return self.indexes[name]
        except KeyError:
            raise CatalogError(f"no index {name!r}") from None

    def indexes_on(self, table: str) -> List[Index]:
        return [ix for ix in self.indexes.values() if ix.table == table]

    def table_base_address(self, name: str) -> int:
        try:
            ordinal = self._table_order.index(name)
        except ValueError:
            raise CatalogError(f"no table {name!r}") from None
        return ordinal * _TABLE_REGION_STRIDE

    @staticmethod
    def _key_of(table: Table, columns: Tuple[str, ...], row: int) -> Any:
        if len(columns) == 1:
            return table.read(columns[0], row)
        return tuple(table.read(c, row) for c in columns)

    @staticmethod
    def _key_from_values(
        schema: TableSchema, columns: Tuple[str, ...], values: Sequence[Any]
    ) -> Any:
        if len(columns) == 1:
            return values[schema.column_index(columns[0])]
        return tuple(values[schema.column_index(c)] for c in columns)

    # ------------------------------------------------------------------
    # Memory accounting (Figure 16, storage comparison).
    # ------------------------------------------------------------------
    def device_bytes_report(self) -> Dict[str, int]:
        tables = sum(t.device_bytes() for t in self.tables.values())
        indexes = sum(ix.device_bytes() for ix in self.indexes.values())
        maps = sum(len(m) * 24 for m in self.static_maps.values())
        return {
            "tables": tables,
            "indexes": indexes,
            "static_maps": maps,
            "total": tables + indexes + maps,
        }

    # ------------------------------------------------------------------
    # Cloning and canonical state (tests + Definition 1 checks).
    # ------------------------------------------------------------------
    def clone(self) -> "Database":
        """Deep copy: independent data, rebuilt indexes, copied maps."""
        other = Database(self.layout)
        for name in self._table_order:
            table = self.tables[name]
            clone = other.create_table(table.schema, capacity=max(table.n_rows, 64))
            rows = [table.read_row(r) for r in range(table.n_rows)]
            clone.append_rows(rows)
            for r in range(table.n_rows):
                if table.is_deleted(r):
                    clone.mark_deleted(r)
        for ix in self.indexes.values():
            other.create_index(ix.name, ix.table, ix.columns, unique=ix.unique)
        for name, mapping in self.static_maps.items():
            other.create_static_map(name, mapping)
        return other

    def fork(self) -> "Database":
        """A copy-on-write fork of the *data*: tables and static maps.

        Indexes are deliberately not forked -- they are derived state,
        rebuilt from the rows when a checkpoint is restored (see
        :class:`repro.cluster.durability.checkpoint.Checkpoint`).
        Static maps are shared by reference (read-only by
        construction). Forking is O(tables x columns), independent of
        row count, which is what makes per-bulk checkpoints viable.
        """
        other = Database(self.layout)
        for name in self._table_order:
            other.tables[name] = self.tables[name].fork()
            other._table_order.append(name)
        for name, mapping in self.static_maps.items():
            other.static_maps[name] = mapping
        return other

    def index_specs(self) -> List[Tuple[str, str, Tuple[str, ...], bool]]:
        """(name, table, columns, unique) for every index -- the
        metadata needed to rebuild indexes over restored rows."""
        return [
            (ix.name, ix.table, ix.columns, ix.unique)
            for ix in self.indexes.values()
        ]

    def physical_state(
        self,
    ) -> Dict[str, List[Tuple[Tuple[Any, ...], bool]]]:
        """Exact physical content per table: every slot, in row order,
        with its tombstone flag.

        Stricter than :meth:`logical_state` (which canonicalises row
        order): two databases with equal physical state are
        byte-identical stores. This is the equality the durability
        layer guarantees between a promoted replica and the failed
        shard's last durable state.
        """
        state: Dict[str, List[Tuple[Tuple[Any, ...], bool]]] = {}
        for name, table in self.tables.items():
            state[name] = [
                (table.read_row(r), table.is_deleted(r))
                for r in range(table.n_rows)
            ]
        return state

    def logical_state(self) -> Dict[str, List[Tuple[Any, ...]]]:
        """Canonical content per table: sorted live row tuples.

        Physical row order is not logical state (batched inserts may
        land in a different order than a serial execution would have
        appended them), so rows are sorted by their repr -- stable for
        the mixed int/float/str tuples the workloads produce.
        """
        state: Dict[str, List[Tuple[Any, ...]]] = {}
        for name, table in self.tables.items():
            rows = [
                table.read_row(r)
                for r in range(table.n_rows)
                if not table.is_deleted(r)
            ]
            rows.sort(key=repr)
            state[name] = rows
        return state


class StoreAdapter:
    """Adapts a :class:`Database` to the SIMT engine's DeviceStore.

    Inserts and deletes take effect immediately (including index
    maintenance) so later transactions of the bulk observe them; the
    :class:`~repro.storage.buffer.MutationJournal` remembers them until
    the next batch boundary so an aborting transaction can cancel its
    own mutations. The *performance* of the paper's temporary insert
    buffer (atomicAdd allocation, post-kernel batched apply) is charged
    by the SIMT engine and executors, not here -- see buffer.py.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self.journal = MutationJournal()
        #: Redo recorders (``repro.cluster.durability.wal``) observing
        #: every physical mutation in application order. Kept as a
        #: plain list so the hot path is one truthiness check when no
        #: durability layer is attached.
        self._recorders: List[Any] = []

    def attach_recorder(self, recorder: Any) -> None:
        """Start streaming physical mutations to ``recorder``."""
        if recorder not in self._recorders:
            self._recorders.append(recorder)

    def detach_recorder(self, recorder: Any) -> None:
        if recorder in self._recorders:
            self._recorders.remove(recorder)

    # -- DeviceStore protocol -------------------------------------------
    def read(self, table: str, column: str, row: int) -> Any:
        return self.db.table(table).read(column, row)

    def write(self, table: str, column: str, row: int, value: Any) -> Any:
        old = self.db.table(table).write(column, row, value)
        if self._recorders:
            for recorder in self._recorders:
                recorder.on_write(table, column, row, value)
        return old

    def address_of(self, table: str, column: str, row: int) -> Tuple[int, int]:
        tbl = self.db.table(table)
        offset, width = tbl.cell_address(column, row)
        return self.db.table_base_address(table) + offset, width

    def probe(self, index: str, key: Any) -> Any:
        """Unique index -> row id or -1; multi index -> tuple of rows;
        static map -> mapped id or -1."""
        static = self.db.static_maps.get(index)
        if static is not None:
            return static.get(key, -1)
        ix = self.db.index(index)
        if ix.unique:
            return ix.probe(key)
        return tuple(ix.probe_all(key))

    def probe_cost_addresses(self, index: str, key: Any) -> List[Tuple[int, int]]:
        if index in self.db.static_maps:
            base = static_map_cost_base(index, key)
            return [(base, 8), (base + 8, 8)]
        return self.db.index(index).probe_cost_addresses(key)

    def insert(self, table: str, values: Sequence[Any]) -> int:
        tbl = self.db.table(table)
        if len(values) != len(tbl.schema.columns):
            raise StorageError(
                f"insert into {table!r}: {len(values)} values for "
                f"{len(tbl.schema.columns)} columns"
            )
        row = tbl.append_rows([values])[0]
        for ix in self.db.indexes_on(table):
            key = Database._key_from_values(tbl.schema, ix.columns, values)
            ix.insert(key, row)
        self.journal.record_insert(table, row)
        if self._recorders:
            for recorder in self._recorders:
                recorder.on_insert(table, row, tuple(values))
        return row

    def delete(self, table: str, row: int) -> None:
        tbl = self.db.table(table)
        if not 0 <= row < tbl.n_rows:
            raise StorageError(
                f"delete of row {row} out of range in table {table!r}"
            )
        if tbl.is_deleted(row):
            raise StorageError(
                f"row {row} of table {table!r} is already deleted"
            )
        self._unindex_row(table, row)
        tbl.mark_deleted(row)
        self.journal.record_delete(table, row)
        if self._recorders:
            for recorder in self._recorders:
                recorder.on_delete(table, row)

    def insert_bulk(
        self, table: str, values_rows: Sequence[Sequence[Any]]
    ) -> List[int]:
        """Batched :meth:`insert`: the post-kernel batched update of
        Section 3.2.

        Semantically identical to calling ``insert`` once per row in
        order -- same index maintenance, journal records, and recorder
        hooks -- with the appends applied columnar in one pass, which
        is what makes the vectorized backend's mutation replay cheap.
        """
        if not values_rows:
            return []
        tbl = self.db.table(table)
        schema = tbl.schema
        n_cols = len(schema.columns)
        for values in values_rows:
            if len(values) != n_cols:
                raise StorageError(
                    f"insert into {table!r}: {len(values)} values for "
                    f"{n_cols} columns"
                )
        start = tbl.n_rows
        rows = list(range(start, start + len(values_rows)))
        columns = zip(*values_rows)
        tbl.append_columns(
            {c.name: list(v) for c, v in zip(schema.columns, columns)}
        )
        for ix in self.db.indexes_on(table):
            idxs = [schema.column_index(c) for c in ix.columns]
            if len(idxs) == 1:
                ci = idxs[0]
                keys: List[Any] = [v[ci] for v in values_rows]
            else:
                keys = [tuple(v[i] for i in idxs) for v in values_rows]
            for key, row in zip(keys, rows):
                ix.insert(key, row)
        for row in rows:
            self.journal.record_insert(table, row)
        if self._recorders:
            for row, values in zip(rows, values_rows):
                frozen = tuple(values)
                for recorder in self._recorders:
                    recorder.on_insert(table, row, frozen)
        return rows

    def row_width(self, table: str) -> int:
        schema = self.db.table(table).schema
        if self.db.layout == "row":
            return schema.row_width
        return schema.device_row_width

    # -- abort rollback ---------------------------------------------------
    def cancel_insert(self, table: str, row: int) -> None:
        """Undo one insert of an aborting transaction."""
        self._unindex_row(table, row)
        self.db.table(table).mark_deleted(row)
        self.journal.forget_insert(table, row)
        if self._recorders:
            for recorder in self._recorders:
                recorder.on_cancel_insert(table, row)

    def cancel_delete(self, table: str, row: int) -> None:
        """Undo one delete of an aborting transaction."""
        tbl = self.db.table(table)
        tbl.unmark_deleted(row)
        for ix in self.db.indexes_on(table):
            key = Database._key_of(tbl, ix.columns, row)
            ix.insert(key, row)
        self.journal.forget_delete(table, row)
        if self._recorders:
            for recorder in self._recorders:
                recorder.on_cancel_delete(table, row)

    # -- bulk access (vectorized backend fast path) -------------------------
    def gather_bulk(self, table: str, column: str, rows: Any) -> Any:
        """Read ``table.column`` at many rows in one pass.

        Functionally equivalent to :meth:`read` per row (values are
        numpy scalars; the vectorized kernels convert at the result
        edge, where the interpreter's ``.item()`` conversion happens).
        Requires a column-layout table.
        """
        return self.db.table(table).gather(column, rows)

    def scatter_bulk(self, table: str, column: str, rows: Any, values: Any) -> None:
        """Write many cells of ``table.column`` in one pass.

        Equivalent to :meth:`write` per (row, value) pair, including
        the durability journal hooks: every cell is streamed to any
        attached redo recorder in element order, so a WAL written under
        the vectorized backend replays to the same physical state as
        one written under the interpreter (write sets of a conflict-
        free wave are disjoint, so element order within the wave does
        not affect the replayed state).
        """
        self.db.table(table).scatter(column, rows, values)
        if self._recorders:
            for row, value in zip(rows, values):
                py = value.item() if isinstance(value, np.generic) else value
                for recorder in self._recorders:
                    recorder.on_write(table, column, int(row), py)

    # -- batch boundary -----------------------------------------------------
    def apply_batch(self) -> None:
        """Commit the staged mutations (post-kernel batched update)."""
        self.journal.clear()

    # ------------------------------------------------------------------
    def _unindex_row(self, table: str, row: int) -> None:
        tbl = self.db.table(table)
        for ix in self.db.indexes_on(table):
            key = Database._key_of(tbl, ix.columns, row)
            if ix.unique:
                if ix.probe(key) == row:
                    ix.remove(key)
            else:
                ix.remove(key, row)
