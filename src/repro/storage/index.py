"""Hash indexes over table rows.

OLTP transactions in the paper's benchmarks fetch "a small number of
tuples according to the primary key" (Section 5.1); GPUTx copies
indexes to device memory alongside the tables (Appendix E, Figure 16).
Two flavours:

* :class:`HashIndex` -- unique key -> row id (primary keys, and the
  static string -> id maps the paper uses to split TM1/TPC-C
  transactions that look rows up by name).
* :class:`MultiHashIndex` -- key -> sorted list of row ids (e.g. the
  CALL_FORWARDING rows of one subscriber, the order lines of one
  order).

Cost shape: one probe is modelled as two dependent device reads (bucket
header + entry), which is what the SIMT engine charges via
``probe_cost_addresses``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import IndexError_

#: Pretend device base for index buckets (only for traffic accounting).
_INDEX_REGION_STRIDE = 1 << 34


def _bucket_base(region: int, key: Any) -> int:
    """Device address of ``key``'s bucket header in ``region``.

    The single source of the bucket-address formula: one probe is two
    dependent 8-byte reads at ``base`` and ``base + 8``. Both index
    flavours use it, and the vectorized backend's replay reuses it to
    reproduce the interpreter's coalescing byte-for-byte (static maps
    have their own variant in ``repro.storage.catalog``).
    """
    return region + (hash(key) & 0xFFFFFF) * 16


class HashIndex:
    """Unique hash index: key -> row id."""

    unique = True

    def __init__(self, name: str, table: str, columns: Tuple[str, ...]) -> None:
        self.name = name
        self.table = table
        self.columns = tuple(columns)
        self._map: Dict[Any, int] = {}
        self._region = (hash(name) & 0xFF) * _INDEX_REGION_STRIDE

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Any) -> bool:
        return key in self._map

    def insert(self, key: Any, row: int) -> None:
        if key in self._map:
            raise IndexError_(
                f"duplicate key {key!r} in unique index {self.name!r}"
            )
        self._map[key] = row

    def remove(self, key: Any) -> None:
        if self._map.pop(key, None) is None:
            raise IndexError_(f"key {key!r} not in index {self.name!r}")

    def probe(self, key: Any) -> int:
        """Row id for ``key``, or -1 (the device convention)."""
        return self._map.get(key, -1)

    @property
    def mapping(self) -> Dict[Any, int]:
        """The key -> row dict (read-only by convention; the vectorized
        backend's bulk probes iterate it directly)."""
        return self._map

    def cost_address_base(self, key: Any) -> int:
        """Device address of ``key``'s bucket header (:func:`_bucket_base`)."""
        return _bucket_base(self._region, key)

    def probe_cost_addresses(self, key: Any) -> List[Tuple[int, int]]:
        base = self.cost_address_base(key)
        return [(base, 8), (base + 8, 8)]

    def items(self) -> Iterator[Tuple[Any, int]]:
        return iter(self._map.items())

    def device_bytes(self) -> int:
        """16 B per entry (hash bucket + row id), 1.5x load headroom."""
        return int(len(self._map) * 16 * 1.5)


class MultiHashIndex:
    """Non-unique hash index: key -> sorted row ids."""

    unique = False

    def __init__(self, name: str, table: str, columns: Tuple[str, ...]) -> None:
        self.name = name
        self.table = table
        self.columns = tuple(columns)
        self._map: Dict[Any, List[int]] = {}
        self._region = (hash(name) & 0xFF) * _INDEX_REGION_STRIDE

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: Any) -> bool:
        return key in self._map

    def insert(self, key: Any, row: int) -> None:
        rows = self._map.setdefault(key, [])
        # Keep sorted for deterministic iteration.
        import bisect

        bisect.insort(rows, row)

    def remove(self, key: Any, row: Optional[int] = None) -> None:
        rows = self._map.get(key)
        if not rows:
            raise IndexError_(f"key {key!r} not in index {self.name!r}")
        if row is None:
            del self._map[key]
            return
        try:
            rows.remove(row)
        except ValueError:
            raise IndexError_(
                f"row {row} not under key {key!r} in index {self.name!r}"
            ) from None
        if not rows:
            del self._map[key]

    def probe(self, key: Any) -> int:
        """First row id for ``key``, or -1."""
        rows = self._map.get(key)
        return rows[0] if rows else -1

    def probe_all(self, key: Any) -> List[int]:
        return list(self._map.get(key, ()))

    @property
    def mapping(self) -> Dict[Any, List[int]]:
        """The key -> rows dict (read-only by convention)."""
        return self._map

    def cost_address_base(self, key: Any) -> int:
        """Device address of ``key``'s bucket header (:func:`_bucket_base`)."""
        return _bucket_base(self._region, key)

    def probe_cost_addresses(self, key: Any) -> List[Tuple[int, int]]:
        base = self.cost_address_base(key)
        return [(base, 8), (base + 8, 8)]

    def items(self) -> Iterator[Tuple[Any, List[int]]]:
        return iter(self._map.items())

    def device_bytes(self) -> int:
        entries = sum(len(rows) for rows in self._map.values())
        return int((len(self._map) * 16 + entries * 8) * 1.5)
