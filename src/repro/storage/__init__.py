"""In-memory storage: column/row tables, indexes, catalog, buffers."""

from repro.storage.buffer import MutationJournal
from repro.storage.catalog import Database, StoreAdapter
from repro.storage.column_store import ColumnTable
from repro.storage.index import HashIndex, MultiHashIndex
from repro.storage.row_store import RowTable
from repro.storage.schema import ColumnDef, DataType, TableSchema, schema_dict

__all__ = [
    "MutationJournal",
    "Database",
    "StoreAdapter",
    "ColumnTable",
    "RowTable",
    "HashIndex",
    "MultiHashIndex",
    "ColumnDef",
    "DataType",
    "TableSchema",
    "schema_dict",
]
