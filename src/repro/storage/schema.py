"""Relational schema definitions for the in-memory stores.

GPUTx stores relations as arrays in device memory (Section 3.2) with a
column-based layout (Appendix E): fixed-length columns are plain
arrays; variable-length columns are (offset, length) pairs into a value
pool. Appendix E also notes that *read-only columns are kept in main
memory* to save device memory and that only necessary columns are
copied to the GPU -- :attr:`ColumnDef.device_resident` models exactly
that, and is what produces the paper's 27 % device-memory saving of the
column store over the row store (Appendix F.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SchemaError


class DataType(enum.Enum):
    """Supported column types with their device byte widths."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT32 = "float32"
    FLOAT64 = "float64"
    BOOL = "bool"
    CHAR = "char"        # fixed-length string
    VARCHAR = "varchar"  # variable-length string (offset + length)


_NUMPY_DTYPES = {
    DataType.INT32: np.int32,
    DataType.INT64: np.int64,
    DataType.FLOAT32: np.float32,
    DataType.FLOAT64: np.float64,
    DataType.BOOL: np.bool_,
}

_FIXED_WIDTHS = {
    DataType.INT32: 4,
    DataType.INT64: 8,
    DataType.FLOAT32: 4,
    DataType.FLOAT64: 8,
    DataType.BOOL: 1,
}


@dataclass(frozen=True)
class ColumnDef:
    """One column: name, type, and device placement.

    ``length`` is required for CHAR (the fixed width). VARCHAR values
    are stored in a pool; their in-array width is the 8-byte
    (offset, length) descriptor the paper describes.
    """

    name: str
    dtype: DataType
    length: int = 0
    device_resident: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"bad column name {self.name!r}")
        if self.dtype is DataType.CHAR and self.length <= 0:
            raise SchemaError(f"CHAR column {self.name!r} needs a length")

    @property
    def width(self) -> int:
        """Device bytes per value (descriptor width for VARCHAR)."""
        if self.dtype is DataType.CHAR:
            return self.length
        if self.dtype is DataType.VARCHAR:
            return 8
        return _FIXED_WIDTHS[self.dtype]

    @property
    def numpy_dtype(self) -> Optional[np.dtype]:
        """The numpy dtype backing this column, or None for strings."""
        dt = _NUMPY_DTYPES.get(self.dtype)
        return np.dtype(dt) if dt is not None else None

    @property
    def is_string(self) -> bool:
        return self.dtype in (DataType.CHAR, DataType.VARCHAR)


@dataclass(frozen=True)
class TableSchema:
    """A table definition: ordered columns plus key metadata.

    ``primary_key`` names the column(s) forming the unique key;
    ``partition_key`` names the column whose value drives PART's
    horizontal partitioning (Section 5.2; e.g. the branch id in TPC-B,
    the subscriber id in TM1).
    """

    name: str
    columns: Tuple[ColumnDef, ...]
    primary_key: Tuple[str, ...] = ()
    partition_key: Optional[str] = None

    def __init__(
        self,
        name: str,
        columns: Sequence[ColumnDef],
        primary_key: Sequence[str] = (),
        partition_key: Optional[str] = None,
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"bad table name {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        for key in primary_key:
            if key not in names:
                raise SchemaError(f"pk column {key!r} not in table {name!r}")
        if partition_key is not None and partition_key not in names:
            raise SchemaError(
                f"partition column {partition_key!r} not in table {name!r}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "primary_key", tuple(primary_key))
        object.__setattr__(self, "partition_key", partition_key)

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> ColumnDef:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    @property
    def row_width(self) -> int:
        """Bytes per row if stored row-wise (all columns, 4-byte align)."""
        width = 0
        for col in self.columns:
            w = col.width
            width += w + (-w % 4)
        return width

    @property
    def device_row_width(self) -> int:
        """Bytes per row counting only device-resident columns."""
        return sum(c.width for c in self.columns if c.device_resident)


def schema_dict(schemas: Sequence[TableSchema]) -> Dict[str, TableSchema]:
    """Index a list of schemas by table name."""
    out: Dict[str, TableSchema] = {}
    for schema in schemas:
        if schema.name in out:
            raise SchemaError(f"duplicate table {schema.name!r}")
        out[schema.name] = schema
    return out
