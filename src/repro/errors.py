"""Exception hierarchy for the GPUTx reproduction.

Every error raised by the library derives from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still distinguishing the common cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table/column definition is invalid or violated."""


class StorageError(ReproError):
    """A storage-level operation failed (bad row id, full buffer, ...)."""


class CatalogError(ReproError):
    """Unknown table, duplicate table, or invalid catalog operation."""


class IndexError_(ReproError):
    """An index lookup/maintenance operation failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`; exported as ``ReproIndexError`` from the package
    root.
    """


class ProcedureError(ReproError):
    """A stored procedure is malformed or was invoked incorrectly."""


class RegistrationError(ProcedureError):
    """Registering a transaction type with the engine failed."""


class ExecutionError(ReproError):
    """A bulk execution failed in a way that is not a transaction abort."""


class DeadlockError(ExecutionError):
    """The SIMT engine detected that no thread can make progress.

    Raised by the basic (non-counter) spin-lock TPL variant, which --
    exactly as Appendix C of the paper warns -- can deadlock. The
    counter-based lock keyed by T-dependency ranks never deadlocks.
    """


class KernelTimeoutError(ExecutionError):
    """A simulated kernel exceeded the configured round budget."""


class TransactionAborted(ReproError):
    """Internal signal: a transaction requested an abort.

    Not a user-facing error; executors catch it, roll back via the undo
    log when necessary, and record the abort in the result pool.
    """

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason or "transaction aborted")
        self.reason = reason


class RecoveryError(ReproError):
    """Log-based recovery could not roll back an aborted transaction."""


class ConfigError(ReproError):
    """An engine/simulator configuration value is out of range."""


class ClusterError(ReproError):
    """The sharded cluster runtime hit a routing or partitioning failure."""


class ShardFailure(ClusterError):
    """A shard's device is down (killed by failure injection).

    Raised when anything touches a dead shard's engine or store
    adapter before the shard has been recovered by replica promotion.
    """


class DurabilityError(ReproError):
    """WAL/checkpoint/replica bookkeeping was used incorrectly."""


class ServeError(ReproError):
    """The online ingest runtime was misused (e.g. an arrival stream
    whose submit times go backwards)."""
