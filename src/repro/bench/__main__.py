"""``python -m repro.bench --out BENCH_PR<k>.json``.

Delegates to :func:`repro.bench.harness.main`: runs every figure
function in smoke mode and writes the headline-metric JSON the CI
perf-trajectory lane uploads and gates on.
"""

import sys

from repro.bench.harness import main

sys.exit(main())
