"""``python -m repro.bench --out BENCH_PR<k>.json``.

Alias of ``python -m repro bench``: routes through the unified CLI
front door (:mod:`repro.cli`), which delegates to
:func:`repro.bench.harness.main` -- runs every figure function in
smoke mode and writes the headline-metric JSON the CI perf-trajectory
lane uploads and gates on.
"""

import sys

from repro.cli import main

sys.exit(main(["bench", *sys.argv[1:]]))
