"""Online-serving experiments (beyond the paper: the streaming front
half the bulk model assumes away).

Four series, in the style of the figure reproductions:

* ``serving_offered_load`` -- sustained throughput and end-to-end p95
  vs. offered load on TM1 Poisson arrivals: below capacity the server
  tracks the offered rate at low latency; past saturation throughput
  plateaus, the queue fills, and admission control starts shedding.
* ``serving_latency_cdf`` -- the end-to-end latency distribution at
  one load level, split into the queue/execution/transfer components
  of the serve breakdown, against the SLO target.
* ``serving_adaptive_vs_fixed`` -- the tentpole comparison: the
  SLO-driven adaptive bulk former vs. fixed bulk sizes, per load
  level. The adaptive former sizes each cut from the chooser-keyed
  service model, so it lands between grid points a fixed size cannot
  express and re-sizes across load levels.
* ``serving_sharded`` -- the same ingest path over a sharded
  :class:`~repro.cluster.runtime.ClusterTx` backend with per-shard
  admission queues.
* ``serving_admission_sweep`` -- SERVE-5: the array-batched admission
  front half swept to a 10M-tps offered rate, asserted
  decision-identical to the per-arrival ``offer`` loop on the same
  stream (the DiPETrans lesson: once execution is parallel, the
  serial per-transaction front half is the bottleneck).
"""

from __future__ import annotations

import gc
import time
from typing import Iterable, List

from repro.bench.harness import FigureResult, scaled
from repro.cluster.runtime import ClusterTx
from repro.core.engine import GPUTx
from repro.core.txn import TransactionPool
from repro.serve import (
    AdaptiveBulkFormer,
    AdmissionController,
    FixedBulkFormer,
    ServeReport,
    ServeRuntime,
    SLOConfig,
)
from repro.serve.stream import Arrival
from repro.workloads import tm1
from repro.workloads.base import (
    TimedTxnSpec,
    make_rng,
    poisson_arrival_times,
    timed_specs,
)

#: Workload sizes (pre-scale); kept modest so the simulator stays fast.
_SERVE_SF = 2
_SERVE_TXNS = 3_000
_SHARDED_TXNS = 1_200
#: Default SLO: 5 ms end-to-end p95 -- roughly the knee of the
#: simulated engine's latency/throughput curve at these sizes.
_SLO_P95_S = 0.005
#: Offered loads (ktps) swept by the load figure (the last one is
#: past what the bounded queue can absorb during the ramp, so
#: admission shedding shows up).
_LOADS_KTPS = (60.0, 140.0, 260.0, 1_000.0)
#: Overload burst for the adaptive-vs-fixed comparison: far above any
#: former's capacity, so bulk size determines the drain rate.
_OVERLOAD_KTPS = 2_000.0
_OVERLOAD_TXNS = 30_000
#: Fixed-former grid the adaptive former competes against.
_FIXED_SIZES = (64, 256, 1024)
#: SERVE-5 arrival-rate sweep (ktps); the last point is the ROADMAP's
#: 10M-tps target for the batched front half.
_ADMIT_LOADS_KTPS = (2_000.0, 10_000.0)
_ADMIT_TXNS = 48_000
#: Slice width the stream hands to ``offer_batch`` (matches the serve
#: loop's clock-tick slices in spirit; fates are slice-independent).
_ADMIT_SLICE = 4_096
_ADMIT_CAP = 1 << 14


def _slo() -> SLOConfig:
    return SLOConfig(target_p95_s=_SLO_P95_S, min_bulk=24, max_bulk=4096)


def _serve_tm1(
    arrivals: Iterable[TimedTxnSpec],
    former,
    *,
    max_pending: int = 1 << 16,
) -> ServeReport:
    db = tm1.build_database(_SERVE_SF)
    engine = GPUTx(db, procedures=tm1.PROCEDURES)
    runtime = ServeRuntime(
        engine,
        former=former,
        admission=AdmissionController(max_pending),
    )
    return runtime.run(arrivals)


def _tm1_arrivals(n: int, rate_tps: float, seed: int) -> List[TimedTxnSpec]:
    db = tm1.build_database(_SERVE_SF)
    return tm1.generate_timed_transactions(
        db, n, rate_tps=rate_tps, pattern="poisson", seed=seed
    )


def serving_offered_load() -> FigureResult:
    """Sustained throughput and p95 latency vs. offered load."""
    n = scaled(_SERVE_TXNS)
    rows = []
    for load_ktps in _LOADS_KTPS:
        arrivals = _tm1_arrivals(n, load_ktps * 1e3, seed=21)
        report = _serve_tm1(
            arrivals, AdaptiveBulkFormer(_slo()), max_pending=2048
        )
        rows.append(
            (
                load_ktps,
                report.sustained_ktps,
                report.latency["queue"].p95 * 1e3,
                report.latency["total"].p95 * 1e3,
                report.mean_bulk,
                report.admission.rejected,
            )
        )
    return FigureResult(
        figure_id="SERVE-1",
        title="Online serving: sustained throughput vs. offered load "
        "(TM1, Poisson arrivals, adaptive former)",
        columns=["offered_ktps", "sustained_ktps", "queue_p95_ms",
                 "p95_ms", "mean_bulk", "rejected"],
        rows=rows,
        notes=[
            "Below capacity the server sustains the offered rate at "
            "low latency; past saturation throughput plateaus and the "
            "bounded queue sheds arrivals (backpressure).",
            f"SLO target: p95 <= {_SLO_P95_S * 1e3:.1f} ms end-to-end.",
        ],
    )


def serving_latency_cdf() -> FigureResult:
    """End-to-end latency distribution at one load level, by component."""
    n = scaled(_SERVE_TXNS)
    arrivals = _tm1_arrivals(n, _LOADS_KTPS[1] * 1e3, seed=23)
    report = _serve_tm1(arrivals, AdaptiveBulkFormer(_slo()))
    rows = []
    for label in ("mean", "p50", "p95", "p99", "max"):
        rows.append(
            (
                label,
                getattr(report.latency["queue"], label) * 1e3,
                getattr(report.latency["execution"], label) * 1e3,
                getattr(report.latency["transfer"], label) * 1e3,
                getattr(report.latency["total"], label) * 1e3,
            )
        )
    return FigureResult(
        figure_id="SERVE-2",
        title="Online serving: end-to-end latency breakdown "
        f"(TM1 at {_LOADS_KTPS[1]:.0f} ktps offered)",
        columns=["stat", "queue_ms", "execution_ms", "transfer_ms",
                 "total_ms"],
        rows=rows,
        notes=[
            "queue = admission to bulk start (the former's knob); "
            "execution/transfer = the bulk-level device and "
            "interconnect shares every transaction of a bulk pays "
            "together.",
            f"SLO target: p95 <= {_SLO_P95_S * 1e3:.1f} ms end-to-end.",
        ],
    )


def serving_adaptive_vs_fixed() -> FigureResult:
    """Adaptive former vs. fixed bulk sizes, per load level."""
    slo = _slo()
    rows = []
    adaptive_best = 0.0
    # Two regimes: a tracking load (under capacity for every former
    # that meets the SLO) and an overload burst (arrivals far above
    # any former's capacity), where bulk size directly sets the drain
    # rate and the latency a bounded queue can promise.
    levels = (
        (_LOADS_KTPS[1], scaled(_SERVE_TXNS)),
        (_OVERLOAD_KTPS, scaled(_OVERLOAD_TXNS)),
    )
    for load_ktps, n in levels:
        arrivals = _tm1_arrivals(n, load_ktps * 1e3, seed=29)
        formers = [
            FixedBulkFormer(size, max_form_wait_s=slo.form_wait_s)
            for size in _FIXED_SIZES
        ] + [AdaptiveBulkFormer(slo)]
        labels = [f"fixed-{size}" for size in _FIXED_SIZES] + ["adaptive"]
        for label, former in zip(labels, formers):
            report = _serve_tm1(arrivals, former)
            met = report.met_slo(slo.target_p95_s)
            if label == "adaptive":
                adaptive_best = max(adaptive_best, report.sustained_ktps)
            rows.append(
                (
                    load_ktps,
                    label,
                    report.sustained_ktps,
                    report.latency["total"].p95 * 1e3,
                    report.mean_bulk,
                    met,
                )
            )
    return FigureResult(
        figure_id="SERVE-3",
        title="Online serving: adaptive vs. fixed bulk former (TM1)",
        columns=["offered_ktps", "former", "sustained_ktps", "p95_ms",
                 "mean_bulk", "met_slo"],
        rows=rows,
        notes=[
            "At the tracking load every SLO-feasible former sustains "
            "the offered rate; the deadline guard makes large fixed "
            "sizes behave alike there.",
            "At the overload burst, bulk size sets the drain rate: "
            "the adaptive former detects the queue-driven p95 breach, "
            "ramps multiplicatively to the largest SLO-service-"
            "compatible bulk, and sustains strictly higher throughput "
            "at equal-or-lower p95 than the best fixed size -- "
            "without a pre-tuned size.",
        ],
        headline=("adaptive_sustained_ktps", adaptive_best),
    )


def serving_sharded() -> FigureResult:
    """The ingest path over a sharded ClusterTx backend."""
    n = scaled(_SHARDED_TXNS)
    slo = _slo()
    rows = []
    for n_shards in (1, 2, 4):
        db = tm1.build_database(_SERVE_SF)
        cluster = ClusterTx(
            db, procedures=tm1.CLUSTER_PROCEDURES, n_shards=n_shards
        )
        specs = tm1.generate_cluster_transactions(
            db,
            n,
            shard_of=cluster.router.shard_of_key,
            cross_shard_fraction=0.05,
            seed=31,
        )
        times = poisson_arrival_times(make_rng(33), len(specs), 40_000.0)
        runtime = ServeRuntime(
            cluster,
            former=AdaptiveBulkFormer(slo),
            admission=AdmissionController(
                1 << 16,
                max_pending_per_shard=1 << 14,
                router=cluster.router,
                registry=cluster.registry,
            ),
        )
        report = runtime.run(timed_specs(specs, times))
        rows.append(
            (
                n_shards,
                report.executed,
                report.sustained_ktps,
                report.latency["total"].p95 * 1e3,
                report.mean_bulk,
            )
        )
    return FigureResult(
        figure_id="SERVE-4",
        title="Online serving: sharded ingest (TM1 + 5% cross-shard sync)",
        columns=["shards", "txns", "sustained_ktps", "p95_ms", "mean_bulk"],
        rows=rows,
        notes=[
            "Arrivals route through the ShardRouter at admission; "
            "per-shard queues bound each device's backlog "
            "independently. Timestamp order is preserved within and "
            "across bulks (Definition 1).",
            "Scaling is sublinear-to-inverted at serving bulk sizes: "
            "per-shard sub-bulks underutilise each GPU and cross-"
            "shard waves add barriers (CLUSTER-1/2's small-bulk "
            "effect).",
        ],
    )


def serving_admission_sweep() -> FigureResult:
    """SERVE-5: the batched admission front half up to 10M tps."""
    rows = []
    sustained_at_peak = 0.0
    n = scaled(_ADMIT_TXNS)
    for load_ktps in _ADMIT_LOADS_KTPS:
        arrivals = [
            Arrival.of(a)
            for a in _tm1_arrivals(n, load_ktps * 1e3, seed=37)
        ]
        n_arr = len(arrivals)
        # The front half in isolation: the same stream through
        # offer_batch slices and through the per-arrival offer loop on
        # twin pools. Identity of fates, counters, and pool ids is the
        # contract (asserted in every lane, smoke included); the wall
        # columns show what batching buys.
        pool_b, pool_o = TransactionPool(), TransactionPool()
        adm_b = AdmissionController(_ADMIT_CAP, record_admitted=True)
        adm_o = AdmissionController(_ADMIT_CAP, record_admitted=True)
        gc.collect()
        start = time.perf_counter()
        fates_b: List[bool] = []
        for i in range(0, len(arrivals), _ADMIT_SLICE):
            fates_b.extend(
                adm_b.offer_batch(arrivals[i:i + _ADMIT_SLICE], pool_b)
            )
        t_batch = time.perf_counter() - start
        start = time.perf_counter()
        fates_o = [adm_o.offer(a, pool_o) for a in arrivals]
        t_loop = time.perf_counter() - start
        assert fates_b == fates_o, (
            f"admission fates diverged at {load_ktps} ktps"
        )
        assert adm_b.stats == adm_o.stats, (
            f"admission counters diverged at {load_ktps} ktps"
        )
        assert (
            [t.txn_id for t in adm_b.admitted_log]
            == [t.txn_id for t in adm_o.admitted_log]
        ), f"admitted pool ids diverged at {load_ktps} ktps"
        # The served sweep: the same arrivals through the full runtime
        # (batched admission is its only ingest path).
        report = _serve_tm1(
            arrivals,
            AdaptiveBulkFormer(_slo()),
            max_pending=_ADMIT_CAP,
        )
        if load_ktps == max(_ADMIT_LOADS_KTPS):
            sustained_at_peak = report.sustained_ktps
        rows.append(
            (
                load_ktps,
                n_arr,
                n_arr / t_batch / 1e3 if t_batch > 0 else 0.0,
                n_arr / t_loop / 1e3 if t_loop > 0 else 0.0,
                t_loop / t_batch if t_batch > 0 else 0.0,
                adm_b.stats.admitted,
                adm_b.stats.rejected,
                report.sustained_ktps,
            )
        )
    return FigureResult(
        figure_id="SERVE-5",
        title="Online serving: batched admission front half "
        "(TM1 arrivals up to 10M tps offered)",
        columns=[
            "offered_ktps",
            "arrivals",
            "batch_admit_ktps",
            "loop_admit_ktps",
            "batch_speedup",
            "admitted",
            "rejected",
            "sustained_ktps",
        ],
        rows=rows,
        notes=[
            "offer_batch on arrival slices is asserted decision-"
            "identical to the per-arrival offer loop on the same "
            "stream: same admit/shed fates, same counters and "
            "high-water marks, same pool ids (Definition-1 "
            "timestamps).",
            "batch_admit_ktps is the front half's wall-clock intake "
            "rate in isolation; the untenanted, unsharded fast path "
            "admits a slice with one batched pool stamp instead of "
            "per-arrival bookkeeping.",
            "sustained_ktps is the simulated-clock throughput of the "
            "full runtime on the same arrivals (deterministic; the "
            "headline metric).",
        ],
        headline=("admission_10m_sustained_ktps", sustained_at_peak),
    )


#: Registry for the CI perf-trajectory lane (see repro.bench.harness).
FIGURES = {
    "serving_offered_load": serving_offered_load,
    "serving_latency_cdf": serving_latency_cdf,
    "serving_adaptive_vs_fixed": serving_adaptive_vs_fixed,
    "serving_sharded": serving_sharded,
    "serving_admission_sweep": serving_admission_sweep,
}
