"""Scenario harness benchmark: tenant isolation under a noisy neighbor.

One series, in the style of the figure reproductions:

* ``scenario_noisy_neighbor_isolation`` -- the registered
  ``noisy_neighbor`` scenario run twice on identical arrivals: once
  with its per-tenant admission quotas enforced, once with quotas off
  (the no-isolation twin). With quotas on, the saturating aggressor is
  shed at its 24-transaction quota and the victim tenant's diurnal
  load keeps its p95 SLO with room to spare; with quotas off, the
  aggressor's bursts flood the shared admission queue and (at full
  scale) push the victim past its SLO.

The point: per-tenant quotas are what isolates tenants sharing one
bulk-execution pipeline -- the bulk former and the cluster see one
merged stream, so without admission-side isolation a burst from any
tenant is everyone's queueing delay.
"""

from __future__ import annotations

from repro.bench.harness import FigureResult, scaled
from repro.scenarios import get, run_scenario

_SCENARIO = "noisy_neighbor"


def scenario_noisy_neighbor_isolation() -> FigureResult:
    """Quota-on vs. quota-off twin runs of ``noisy_neighbor``."""
    scenario = get(_SCENARIO)
    victim = next(t for t in scenario.tenants if t.slo_p95_s is not None)
    aggressor = next(t for t in scenario.tenants if t.expect_shed)
    # Reuse the bench smoke knob: the scenario's own n_txns, shrunk
    # under REPRO_BENCH_SMOKE exactly like every other figure.
    scale = scaled(scenario.n_txns) / scenario.n_txns
    rows = []
    p95 = {}
    for mode, quotas in (("quotas", True), ("no_quotas", False)):
        run = run_scenario(scenario, scale=scale, quotas=quotas)
        victim_summary = run.tenants[victim.name]
        aggressor_summary = run.tenants[aggressor.name]
        p95[mode] = victim_summary.p95_total_s
        rows.append(
            (
                mode,
                run.n,
                run.executed,
                aggressor_summary.shed,
                victim_summary.shed,
                victim_summary.p95_total_s * 1e3,
                victim.slo_p95_s * 1e3,
            )
        )
    by_mode = {row[0]: row for row in rows}
    aggressor_shed, victim_p95_ms = 3, 5
    # The isolation contract SCENARIO-1 gates on: with quotas enforced
    # the victim holds its SLO while the aggressor's overflow is shed;
    # the no-quota twin sheds nothing (the flood is admitted in full).
    assert by_mode["quotas"][aggressor_shed] > 0
    assert by_mode["quotas"][victim_p95_ms] <= victim.slo_p95_s * 1e3
    assert by_mode["no_quotas"][aggressor_shed] == 0
    return FigureResult(
        figure_id="SCENARIO-1",
        title="Tenant isolation: noisy_neighbor scenario with admission "
        "quotas on vs. off (TM1)",
        columns=["mode", "n", "executed", "aggressor_shed", "victim_shed",
                 "victim_p95_ms", "victim_slo_ms"],
        rows=rows,
        # Gate on the victim's SLO headroom under isolation: how many
        # times under its p95 target the quota-protected victim lands.
        headline=(
            "victim_slo_margin",
            (
                victim.slo_p95_s / p95["quotas"]
                if p95["quotas"] > 0
                else 1.0
            ),
        ),
        notes=[
            f"Scenario {_SCENARIO!r}: aggressor bursts ~600 ktps "
            f"(quota {aggressor.quota}, overflow shed) against the "
            f"victim's 15-45 ktps diurnal load "
            f"(quota {victim.quota}, p95 SLO "
            f"{victim.slo_p95_s * 1e3:.0f}ms), identical arrivals in "
            "both runs.",
            "Quotas bound each tenant's pending depth at admission; "
            "without them the aggressor's bursts occupy the shared "
            "queue and bulk former, so its backlog becomes the "
            "victim's queueing delay (at full scale the victim "
            "breaches its SLO roughly 2x).",
        ],
    )


#: Registry for the CI perf-trajectory lane (see repro.bench.harness).
FIGURES = {
    "scenario_noisy_neighbor_isolation": scenario_noisy_neighbor_isolation,
}
