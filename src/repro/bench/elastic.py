"""Elastic shards under a skew shift (beyond the paper: online
rebalancing of the sharded runtime).

One series, in the style of the figure reproductions:

* ``cluster_elastic_skew_shift`` -- a SmallBank cluster serves a
  two-phase arrival stream whose zipfian hot range *moves* between
  phases (the hot-set drift every static partitioning eventually
  loses to). The static cluster keeps its initial even range split;
  the elastic cluster runs the :class:`~repro.cluster.elastic.
  ElasticController` between bulks -- hot-shard detection from the
  telemetry metrics, then a live range split via checkpoint fork +
  WAL tail toward the coolest peer. Compared head to head on the
  same arrivals: end-to-end p95 latency and admission shed rate.

The point mirrors the paper's own skew story (Figure 6: K-SET
throughput degrades monotonically with zipfian ``theta``): skew the
bulk model cannot remove can still be *spread* -- a hot range split
across two shards halves the wave the slowest shard serializes on,
which is exactly the cluster's clock.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import repro.telemetry as telemetry
from repro.bench.harness import FigureResult, scaled
from repro.cluster.elastic import ElasticConfig
from repro.cluster.runtime import ClusterTx
from repro.config import ClusterOptions
from repro.serve import (
    AdaptiveBulkFormer,
    AdmissionController,
    ServeReport,
    ServeRuntime,
    SLOConfig,
)
from repro.workloads import smallbank
from repro.workloads.base import (
    TimedTxnSpec,
    make_rng,
    poisson_arrival_times,
    timed_specs,
    zipfian_items,
)

#: Workload sizes (pre-scale); kept modest so the simulator stays fast.
_N_TXNS = 4_000
_SMALLBANK_SF = 1  # 1000 customers -> 4 range shards of 250 keys
_N_SHARDS = 4
#: Offered load: past what one shard can drain alone, under what the
#: fleet drains together -- the regime where spreading a hot range
#: changes the outcome.
_RATE_TPS = 150_000.0
#: Share of arrivals drawn from the hot range (the rest are uniform
#: background over the full key space).
_HOT_FRACTION = 0.9
#: Zipfian skew *within* the hot range (ranks are scattered across
#: the range, so the range is hot without collapsing to one key).
_HOT_THETA = 0.6
#: The skew shift: phase 1 hammers shard 2's range, phase 2 moves the
#: hot set onto shard 0's range.
_PHASE_WINDOWS: Tuple[Tuple[int, int], ...] = ((500, 750), (0, 250))
#: Admission bounds -- the per-shard cap is what a hot shard overruns.
_MAX_PENDING = 1 << 14
_MAX_PENDING_PER_SHARD = 192
_SLO_P95_S = 0.005


def _skew_shift_arrivals(
    n: int, rate_tps: float, seed: int
) -> List[TimedTxnSpec]:
    """Single-customer SmallBank ops whose hot range moves mid-run."""
    rng = make_rng(seed)
    key_space = 1000 * _SMALLBANK_SF
    phases = len(_PHASE_WINDOWS)
    per_phase = n // phases
    specs = []
    for lo, hi in _PHASE_WINDOWS:
        width = hi - lo
        # Scatter the zipfian ranks over the window: the *range* is
        # hot, not one key, so a midpoint split moves real load.
        scatter = rng.permutation(width)
        ranks = zipfian_items(rng, width, _HOT_THETA, per_phase)
        for rank in ranks:
            if rng.random() < _HOT_FRACTION:
                customer = lo + int(scatter[int(rank)])
            else:
                customer = int(rng.integers(0, key_space))
            kind = rng.random()
            if kind < 0.45:
                specs.append(
                    (
                        "smallbank_deposit_checking",
                        (customer, float(rng.integers(1, 100))),
                    )
                )
            elif kind < 0.70:
                specs.append(
                    (
                        "smallbank_transact_savings",
                        (customer, float(rng.integers(1, 200))),
                    )
                )
            elif kind < 0.85:
                specs.append(
                    (
                        "smallbank_write_check",
                        (customer, float(rng.integers(1, 150))),
                    )
                )
            else:
                specs.append(("smallbank_balance", (customer,)))
    times = poisson_arrival_times(make_rng(seed + 1), len(specs), rate_tps)
    return timed_specs(specs, times)


def _serve_skew_shift(
    arrivals: List[TimedTxnSpec], elastic: Optional[ElasticConfig]
) -> ServeReport:
    db = smallbank.build_database(_SMALLBANK_SF)
    cluster = ClusterTx(
        db,
        procedures=smallbank.PROCEDURES,
        n_shards=_N_SHARDS,
        router="range",
        options=ClusterOptions(elastic=elastic),
    )
    slo = SLOConfig(target_p95_s=_SLO_P95_S, min_bulk=16, max_bulk=512)
    with telemetry.session():
        runtime = ServeRuntime(
            cluster,
            former=AdaptiveBulkFormer(slo),
            admission=AdmissionController(
                _MAX_PENDING,
                max_pending_per_shard=_MAX_PENDING_PER_SHARD,
                router=cluster.router,
                registry=cluster.registry,
            ),
        )
        report = runtime.run(arrivals)
    return report


def cluster_elastic_skew_shift() -> FigureResult:
    """Static vs. elastic range sharding under a moving hot range."""
    arrivals = _skew_shift_arrivals(scaled(_N_TXNS), _RATE_TPS, seed=43)
    rows = []
    p95 = {}
    shed = {}
    for mode, config in (
        ("static", None),
        (
            "elastic",
            ElasticConfig(
                queue_ratio=2.0,
                min_queue_depth=24,
                split_fraction=0.5,
                cooldown_bulks=2,
                max_migrations=4,
            ),
        ),
    ):
        report = _serve_skew_shift(arrivals, config)
        p95[mode] = report.latency["total"].p95
        shed[mode] = report.latency.shed_rate
        rows.append(
            (
                mode,
                report.executed,
                len(report.migrations),
                sum(m.moved_rows for m in report.migrations),
                report.sustained_ktps,
                report.latency["total"].p95 * 1e3,
                report.latency.shed_rate,
            )
        )
    return FigureResult(
        figure_id="CLUSTER-5",
        title="Elastic shards: static vs. live-migrated range split "
        "under a moving zipfian hot range (SmallBank)",
        columns=["mode", "executed", "migrations", "moved_rows",
                 "sustained_ktps", "p95_ms", "shed_rate"],
        rows=rows,
        # Gate on the latency win: how much end-to-end p95 the live
        # split buys over the static range table on the same arrivals.
        headline=(
            "p95_speedup",
            p95["static"] / p95["elastic"] if p95["elastic"] > 0 else 1.0,
        ),
        notes=[
            f"Two phases of {_RATE_TPS / 1e3:.0f} ktps arrivals, "
            f"{_HOT_FRACTION:.0%} drawn zipfian "
            f"(theta={_HOT_THETA}) from a hot range that moves "
            f"{_PHASE_WINDOWS[0]} -> {_PHASE_WINDOWS[1]} at half-time.",
            "The elastic controller detects the runaway admission "
            "queue from the telemetry metrics and splits the hot "
            "shard's range toward the coolest peer (checkpoint fork + "
            "WAL tail + atomic router swap, between bulks); the "
            "static cluster serializes the hot range on one shard "
            "and sheds at its per-shard admission cap.",
        ],
    )


#: Registry for the CI perf-trajectory lane (see repro.bench.harness).
FIGURES = {
    "cluster_elastic_skew_shift": cluster_elastic_skew_shift,
}
