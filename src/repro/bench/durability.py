"""Durability-overhead experiments (beyond the paper: WAL + replicas).

Two series, in the style of the figure reproductions:

* ``durability_overhead`` -- TM1 cluster throughput under per-shard
  WAL replication and copy-on-write checkpoints, swept over the two
  knobs of :class:`~repro.cluster.durability.DurabilityConfig`:
  checkpoint interval (shorter = more checkpoint bytes shipped, less
  WAL to replay on failure) and replica count (the primary's single
  copy engine serialises the K feeds, so replication time is linear
  in K). The volatile cluster of PR 1 is the baseline row.
* ``failover_recovery`` -- cost of a replica promotion as a function
  of the WAL suffix length: a shard is killed k bulks after its last
  checkpoint, and recovery replays exactly those k bulks' records on
  top of the restored snapshot.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bench.harness import FigureResult, scaled
from repro.cluster.durability import DurabilityConfig, PHASE_CHECKPOINT, PHASE_WAL_SYNC
from repro.cluster.runtime import ClusterTx
from repro.workloads import tm1

#: Workload sizes (pre-scale); kept modest so the simulator stays fast.
_N_SHARDS = 4
_N_BULKS = 6
_BULK_TXNS = 250
_SCALE_FACTOR = 1
_CROSS_FRACTION = 0.1


def _run_cluster(
    bulks: List[List[Tuple[str, tuple]]],
    durability: Optional[DurabilityConfig],
) -> Tuple[ClusterTx, float, int, dict]:
    db = tm1.build_database(_SCALE_FACTOR)
    cluster = ClusterTx(
        db,
        procedures=tm1.CLUSTER_PROCEDURES,
        n_shards=_N_SHARDS,
        durability=durability,
    )
    seconds = 0.0
    executed = 0
    phases: dict = {}
    for bulk in bulks:
        cluster.submit_many(bulk)
        while len(cluster.pool):
            result = cluster.run_bulk(strategy="kset")
            seconds += result.seconds
            executed += len(result.results)
            for phase, phase_seconds in result.breakdown.phases.items():
                phases[phase] = phases.get(phase, 0.0) + phase_seconds
    return cluster, seconds, executed, phases


def _tm1_bulks(n_bulks: int, bulk_txns: int) -> List[List[Tuple[str, tuple]]]:
    db = tm1.build_database(_SCALE_FACTOR)
    probe = ClusterTx(db, procedures=tm1.CLUSTER_PROCEDURES, n_shards=_N_SHARDS)
    return [
        tm1.generate_cluster_transactions(
            db,
            bulk_txns,
            shard_of=probe.router.shard_of_key,
            cross_shard_fraction=_CROSS_FRACTION,
            seed=400 + k,
        )
        for k in range(n_bulks)
    ]


def durability_overhead() -> FigureResult:
    """Throughput vs. checkpoint interval and replica count."""
    bulks = _tm1_bulks(_N_BULKS, scaled(_BULK_TXNS))
    configs: List[Tuple[str, Optional[DurabilityConfig]]] = [
        ("volatile (PR 1)", None),
        ("K=1, ckpt/8", DurabilityConfig(checkpoint_interval=8, n_replicas=1)),
        ("K=1, ckpt/2", DurabilityConfig(checkpoint_interval=2, n_replicas=1)),
        ("K=1, ckpt/1", DurabilityConfig(checkpoint_interval=1, n_replicas=1)),
        ("K=0, ckpt/2", DurabilityConfig(checkpoint_interval=2, n_replicas=0)),
        ("K=2, ckpt/2", DurabilityConfig(checkpoint_interval=2, n_replicas=2)),
        ("K=3, ckpt/2", DurabilityConfig(checkpoint_interval=2, n_replicas=3)),
    ]
    rows = []
    base_seconds = None
    for label, config in configs:
        cluster, seconds, executed, phases = _run_cluster(bulks, config)
        if base_seconds is None:
            base_seconds = seconds
        durability_share = (
            phases.get(PHASE_WAL_SYNC, 0.0) + phases.get(PHASE_CHECKPOINT, 0.0)
        ) / seconds
        rows.append(
            (
                label,
                config.checkpoint_interval if config else 0,
                config.n_replicas if config else 0,
                executed,
                seconds * 1e3,
                executed / seconds / 1e3,
                durability_share,
                (seconds / base_seconds - 1.0) * 100.0,
            )
        )
    return FigureResult(
        figure_id="DUR-1",
        title="Durable ClusterTx: WAL/checkpoint/replication overhead (TM1, 4 shards)",
        columns=["config", "ckpt_interval", "replicas", "txns", "sim_ms",
                 "ktps", "durability_share", "overhead_pct"],
        rows=rows,
        notes=[
            "Overhead = makespan vs. the volatile cluster. WAL records "
            "replicate synchronously per wave; checkpoints ship the "
            "whole partition, so interval=1 is the worst case.",
            "The primary's single copy engine serialises the K replica "
            "feeds: replication cost grows with K.",
        ],
    )


def failover_recovery() -> FigureResult:
    """Replica-promotion cost vs. WAL suffix length."""
    rows = []
    for bulks_since in (1, 3, 6):
        n_bulks = bulks_since + 1
        bulks = _tm1_bulks(n_bulks, scaled(_BULK_TXNS))
        db = tm1.build_database(_SCALE_FACTOR)
        cluster = ClusterTx(
            db,
            procedures=tm1.CLUSTER_PROCEDURES,
            n_shards=_N_SHARDS,
            # Interval larger than the run: only the seed checkpoint
            # (plus the post-recovery reseed) is ever taken, so the
            # whole history up to the kill is WAL suffix.
            durability=DurabilityConfig(
                checkpoint_interval=100, n_replicas=1,
            ),
        )
        cluster.failover.schedule_kill(1, bulk=bulks_since, wave=0)
        reports = []
        for bulk in bulks:
            cluster.submit_many(bulk)
            while len(cluster.pool):
                result = cluster.run_bulk(strategy="kset")
                reports.extend(result.failovers)
        assert len(reports) == 1, "exactly one scheduled failover"
        report = reports[0]
        rows.append(
            (
                bulks_since,
                report.replayed_records,
                report.replayed_entries,
                report.seconds * 1e3,
                report.verified,
            )
        )
    return FigureResult(
        figure_id="DUR-2",
        title="Replica promotion: recovery cost vs. WAL suffix length",
        columns=["bulks_since_ckpt", "replayed_records", "replayed_entries",
                 "recovery_ms", "verified"],
        rows=rows,
        notes=[
            "Recovery = checkpoint image + WAL suffix over the "
            "interconnect, then deterministic redo replay; cost grows "
            "with the un-checkpointed suffix.",
            "verified = promoted state diffed byte-identical against "
            "the shard's last durable state.",
        ],
    )


#: Registry for the CI perf-trajectory lane (see repro.bench.harness).
FIGURES = {
    "durability_overhead": durability_overhead,
    "failover_recovery": failover_recovery,
}
