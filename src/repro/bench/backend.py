"""Execution-backend benchmarks: vectorized vs. interpreted.

BACKEND-1 measures the vectorized backend's wall-clock win on TM1
bulks while *asserting* the equivalence contract on every row: both
backends must produce byte-identical outcomes, identical final
physical state, and an identical simulated clock. Two wall-clock
views are reported:

* ``exec_speedup`` -- the kernel-execution phase only
  (``backend.wall_launch_seconds``): the code path the backend
  actually replaces. This is the gated >=5x figure.
* ``e2e_speedup`` -- end-to-end ``run_bulk`` wall time, which also
  contains the backend-independent bulk-generation and transfer
  accounting both backends share.

BACKEND-2 pins the fallback contract: waves whose types have no
vector form (or a row-layout store) silently run through the
interpreter with identical results.

The headline metric is the (simulated, deterministic) throughput of
the largest vectorized K-SET bulk -- wall-clock speedups are real
measurements and too noisy to gate the perf-trajectory lane on.
"""

from __future__ import annotations

import dataclasses
import gc
import time
from typing import List, Tuple

from repro.bench.harness import FigureResult, scaled
from repro.core.backends import EngineOptions
from repro.core.engine import GPUTx
from repro.workloads import micro, tm1

_TM1_SF = 4
_SIZES = (2_000, 8_000)
_STRATEGIES = ("kset", "part", "auto")


def _outcomes(result) -> List[Tuple]:
    return [
        (r.txn_id, r.committed, r.abort_reason, r.value)
        for r in result.results
    ]


def _run_tm1(backend: str, n: int, strategy: str):
    db = tm1.build_database(_TM1_SF, seed=3)
    engine = GPUTx(
        db,
        procedures=tm1.PROCEDURES,
        options=EngineOptions(backend=backend),
    )
    engine.submit_many(tm1.generate_transactions(db, n, seed=5))
    # Wall-clock hygiene: collect leftover garbage from the previous
    # row's multi-hundred-thousand-object database, then keep the
    # collector out of the timed region -- an unlucky gen-2 pause is
    # the size of the whole vectorized execution phase.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = engine.run_bulk(strategy=strategy)
        e2e = time.perf_counter() - start
    finally:
        gc.enable()
    return db, engine, result, e2e


def backend_speedup() -> FigureResult:
    """BACKEND-1: wall-clock speedup at identical simulated figures."""
    rows = []
    headline_ktps = 0.0
    for n_raw in _SIZES:
        n = scaled(n_raw)
        for strategy in _STRATEGIES:
            # Best-of-N wall measurements: the ratio is robust, the
            # absolute numbers are one scheduler hiccup away from
            # noise (the simulated figures are identical either way).
            # The gated >=8k rows get an extra repetition.
            reps = 3 if n_raw >= 8_000 else 2
            db_i, eng_i, res_i, e2e_i = _run_tm1("interpreted", n, strategy)
            db_v, eng_v, res_v, e2e_v = _run_tm1("vectorized", n, strategy)
            exec_i2 = exec_v2 = float("inf")
            for _rep in range(reps - 1):
                _dbi, eng_i2, _ri, e2e_i_r = _run_tm1(
                    "interpreted", n, strategy
                )
                _dbv, eng_v2, _rv, e2e_v_r = _run_tm1(
                    "vectorized", n, strategy
                )
                exec_i2 = min(exec_i2, eng_i2.backend.wall_launch_seconds)
                exec_v2 = min(exec_v2, eng_v2.backend.wall_launch_seconds)
                e2e_i = min(e2e_i, e2e_i_r)
                e2e_v = min(e2e_v, e2e_v_r)
            # The contract, asserted on every row (smoke lane included):
            # byte-identical outcomes, state, and simulated clock.
            assert _outcomes(res_i) == _outcomes(res_v), (
                f"backend outcomes diverged ({strategy}, n={n})"
            )
            assert db_i.physical_state() == db_v.physical_state(), (
                f"backend final state diverged ({strategy}, n={n})"
            )
            assert res_i.seconds == res_v.seconds, (
                f"simulated clock diverged ({strategy}, n={n})"
            )
            exec_i = min(eng_i.backend.wall_launch_seconds, exec_i2)
            exec_v = min(eng_v.backend.wall_launch_seconds, exec_v2)
            if strategy == "kset":
                headline_ktps = max(headline_ktps, res_v.throughput_ktps)
            rows.append(
                (
                    n,
                    strategy,
                    res_i.strategy,
                    exec_i * 1e3,
                    exec_v * 1e3,
                    exec_i / exec_v if exec_v > 0 else 0.0,
                    e2e_i / e2e_v if e2e_v > 0 else 0.0,
                    res_v.throughput_ktps,
                )
            )
    return FigureResult(
        figure_id="BACKEND-1",
        title="Vectorized backend: wall-clock speedup, identical simulated clock (TM1)",
        columns=[
            "bulk",
            "strategy",
            "chosen",
            "interp_exec_ms",
            "vector_exec_ms",
            "exec_speedup",
            "e2e_speedup",
            "sim_ktps",
        ],
        rows=rows,
        notes=[
            "Every row asserts byte-identical outcomes, final physical "
            "state, and simulated clock across backends; only wall "
            "clock differs.",
            "exec_speedup compares the kernel-execution phase the "
            "backend owns (backend.wall_launch_seconds); e2e_speedup "
            "includes the shared bulk-generation and transfer "
            "accounting outside it.",
            "Gate: >=5x exec_speedup for K-SET/auto on bulks >= 8k "
            "(asserted in benchmarks/bench_backend_speedup.py at full "
            "size; wall measurements are skipped under the smoke lane).",
        ],
        headline=("vector_sim_ktps", headline_ktps),
    )


def backend_fallback() -> FigureResult:
    """BACKEND-2: per-wave fallback keeps results identical."""
    rows = []

    def run_case(case: str, layout: str, procedures, specs):
        results = {}
        for backend in ("interpreted", "vectorized"):
            db = micro.build_database(scaled(96), layout=layout)
            engine = GPUTx(
                db,
                procedures=procedures,
                options=EngineOptions(backend=backend),
            )
            engine.submit_many(specs)
            result = engine.run_bulk(strategy="kset")
            results[backend] = (db, engine, result)
        db_i, _eng_i, res_i = results["interpreted"]
        db_v, eng_v, res_v = results["vectorized"]
        identical = (
            _outcomes(res_i) == _outcomes(res_v)
            and db_i.physical_state() == db_v.physical_state()
            and res_i.seconds == res_v.seconds
        )
        backend_obj = eng_v.backend
        rows.append(
            (
                case,
                backend_obj.waves_vectorized,
                backend_obj.waves_interpreted,
                identical,
            )
        )

    n = scaled(96)
    specs = micro.generate_transactions(n, n_tuples=n, n_branches=4, seed=9)
    run_case("column+vector-forms", "column", micro.build_procedures(4), specs)
    run_case("row-layout", "row", micro.build_procedures(4), specs)
    stripped = [
        dataclasses.replace(t, vector_body=None)
        for t in micro.build_procedures(4)
    ]
    run_case("no-vector-form", "column", stripped, specs)
    return FigureResult(
        figure_id="BACKEND-2",
        title="Vectorized backend: per-wave fallback coverage",
        columns=["case", "waves_vectorized", "waves_interpreted", "identical"],
        rows=rows,
        notes=[
            "Waves the vectorized backend cannot express (row-layout "
            "store, types without a vector form) run through the "
            "interpreter; outcomes, state, and simulated clock stay "
            "identical either way.",
        ],
    )


#: Registry for the CI perf-trajectory lane (see repro.bench.harness).
FIGURES = {
    "BACKEND-1": backend_speedup,
    "BACKEND-2": backend_fallback,
}
