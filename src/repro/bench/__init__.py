"""Benchmark harness: one experiment per paper figure/table."""

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import FigureResult, save_result, scaled

__all__ = ["ALL_FIGURES", "FigureResult", "save_result", "scaled"]
