"""Workload-coverage benchmarks: the full suite on the fast path.

BACKEND-3 is the per-workload interpreted-vs-vectorized matrix: every
workload the repo can generate (micro, TM1, TPC-B, TPC-C, SmallBank)
runs the same bulk through both execution backends under K-SET, PART,
and (for the full TPC-C mix) columnar TPL, asserting byte-identical
outcomes, final physical state, and simulated clock on every row, and
reporting the exec-phase wall speedup plus the per-row fallback rate.
The fallback column is the coverage contract: every transaction type
of every workload ships a vector kernel (the matrix in
docs/WORKLOADS.md) and every schedule shape -- TPL's counter locks
included -- runs on the vectorized backend, so no wave ever falls
back to the interpreter -- asserted as ``fallback_rate == 0`` in
``benchmarks/bench_workload_coverage.py`` together with the >=4x
exec-phase gates on TPC-B, NewOrder-heavy TPC-C, and full-mix TPC-C
(TPL) bulks >= 8k.

SMALLBANK-1 sweeps the SmallBank zipfian skew knob across strategies:
skew deepens the T-dependency graph, K-SET degrades gracefully while
PART (whose two-customer transactions go cross-partition) falls back
to TPL -- the same contention story as the paper's Figure 6, told on
a workload with a full popularity tail.

Headline metrics come from the simulated clock (deterministic);
wall-clock assertions are skipped under the smoke lane, where the
48x-shrunk bulks are all fixed overhead.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, List, Tuple

from repro.bench.harness import FigureResult, scaled
from repro.core.backends import EngineOptions
from repro.core.engine import GPUTx
from repro.workloads import micro, smallbank, tm1, tpcb, tpcc

#: NewOrder-heavy TPC-C mix: the gated BACKEND-3 configuration.
NEW_ORDER_MIX = [("tpcc_new_order", 90.0), ("tpcc_payment", 10.0)]

#: SmallBank mix restricted to the four single-customer types, used
#: for the PART rows: the two-customer types are cross-partition, so
#: the full mix would measure PART's TPL fallback instead of PART.
SMALLBANK_LOCAL_MIX = [
    ("smallbank_balance", 25.0),
    ("smallbank_deposit_checking", 25.0),
    ("smallbank_transact_savings", 25.0),
    ("smallbank_write_check", 25.0),
]

#: SMALLBANK-1 skew sweep.
THETAS = (0.0, 0.6, 0.9, 1.2)


def _outcomes(result) -> List[Tuple]:
    return [
        (r.txn_id, r.committed, r.abort_reason, r.value)
        for r in result.results
    ]


def _workload_cases() -> List[Tuple[str, Callable, list, list, List[str]]]:
    """(name, build_db, procedures, specs, strategies) per workload."""
    n = scaled(8_000)
    cases: List[Tuple[str, Callable, list, list, List[str]]] = []

    n_tuples = scaled(100_000)
    cases.append((
        "micro",
        lambda: micro.build_database(n_tuples),
        micro.build_procedures(),
        micro.generate_transactions(n, n_tuples=n_tuples, seed=5),
        ["kset", "part"],
    ))

    tm1_db = tm1.build_database(4, seed=3)
    cases.append((
        "tm1",
        lambda: tm1.build_database(4, seed=3),
        tm1.PROCEDURES,
        tm1.generate_transactions(tm1_db, n, seed=5),
        ["kset", "part"],
    ))

    branches = scaled(2_048)
    tpcb_db = tpcb.build_database(branches, accounts_per_branch=20)
    cases.append((
        "tpcb",
        lambda: tpcb.build_database(branches, accounts_per_branch=20),
        tpcb.PROCEDURES,
        tpcb.generate_transactions(tpcb_db, n, seed=5),
        ["kset", "part"],
    ))

    warehouses = max(2, scaled(64))
    tpcc_db = tpcc.build_database(warehouses, seed=3)
    cases.append((
        "tpcc-neworder",
        lambda: tpcc.build_database(warehouses, seed=3),
        tpcc.PROCEDURES,
        tpcc.generate_transactions(tpcc_db, n, seed=5, mix=NEW_ORDER_MIX),
        ["kset", "part"],
    ))
    cases.append((
        "tpcc-mix",
        lambda: tpcc.build_database(warehouses, seed=3),
        tpcc.PROCEDURES,
        tpcc.generate_transactions(tpcc_db, n, seed=5),
        ["kset", "tpl"],
    ))

    sb_db = smallbank.build_database(8, seed=3)
    cases.append((
        "smallbank",
        lambda: smallbank.build_database(8, seed=3),
        smallbank.PROCEDURES,
        smallbank.generate_transactions(sb_db, n, seed=5),
        ["kset"],
    ))
    cases.append((
        "smallbank-local",
        lambda: smallbank.build_database(8, seed=3),
        smallbank.PROCEDURES,
        smallbank.generate_transactions(
            sb_db, n, seed=5, mix=SMALLBANK_LOCAL_MIX
        ),
        ["part"],
    ))
    return cases


def _run(build_db, procedures, specs, backend: str, strategy: str):
    db = build_db()
    engine = GPUTx(
        db,
        procedures=procedures,
        options=EngineOptions(backend=backend),
    )
    engine.submit_many(list(specs))
    # Keep the collector out of the timed region (see bench/backend.py).
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = engine.run_bulk(strategy=strategy)
        e2e = time.perf_counter() - start
    finally:
        gc.enable()
    return db, engine, result, e2e


def workload_coverage() -> FigureResult:
    """BACKEND-3: every workload on both backends, zero fallback."""
    rows = []
    headline = 0.0
    for name, build_db, procedures, specs, strategies in _workload_cases():
        vector_types = sum(
            1 for t in procedures if t.vector_body is not None
        )
        coverage = f"{vector_types}/{len(procedures)}"
        for strategy in strategies:
            reps = 2
            db_i, eng_i, res_i, _e_i = _run(
                build_db, procedures, specs, "interpreted", strategy
            )
            db_v, eng_v, res_v, _e_v = _run(
                build_db, procedures, specs, "vectorized", strategy
            )
            exec_i = eng_i.backend.wall_launch_seconds
            exec_v = eng_v.backend.wall_launch_seconds
            for _rep in range(reps - 1):
                _db, eng_i2, _r, _e = _run(
                    build_db, procedures, specs, "interpreted", strategy
                )
                _db, eng_v2, _r, _e = _run(
                    build_db, procedures, specs, "vectorized", strategy
                )
                exec_i = min(exec_i, eng_i2.backend.wall_launch_seconds)
                exec_v = min(exec_v, eng_v2.backend.wall_launch_seconds)
            # The contract, asserted on every row (smoke included).
            assert _outcomes(res_i) == _outcomes(res_v), (
                f"backend outcomes diverged ({name}, {strategy})"
            )
            assert db_i.physical_state() == db_v.physical_state(), (
                f"backend final state diverged ({name}, {strategy})"
            )
            assert res_i.seconds == res_v.seconds, (
                f"simulated clock diverged ({name}, {strategy})"
            )
            waves_v = eng_v.backend.waves_vectorized
            waves_f = eng_v.backend.waves_interpreted
            fallback = waves_f / max(1, waves_v + waves_f)
            if name == "tpcc-mix" and strategy == "tpl":
                headline = res_v.throughput_ktps
            rows.append(
                (
                    name,
                    strategy,
                    len(specs),
                    coverage,
                    exec_i * 1e3,
                    exec_v * 1e3,
                    exec_i / exec_v if exec_v > 0 else 0.0,
                    waves_v,
                    waves_f,
                    fallback,
                    res_v.throughput_ktps,
                )
            )
    return FigureResult(
        figure_id="BACKEND-3",
        title="Vectorized coverage: every workload on both backends",
        columns=[
            "workload",
            "strategy",
            "bulk",
            "vector_types",
            "interp_exec_ms",
            "vector_exec_ms",
            "exec_speedup",
            "waves_vec",
            "waves_interp",
            "fallback_rate",
            "sim_ktps",
        ],
        rows=rows,
        notes=[
            "Every row asserts byte-identical outcomes, final physical "
            "state, and simulated clock across backends.",
            "fallback_rate is the fraction of waves the vectorized "
            "backend routed to the interpreter; the coverage matrix in "
            "docs/WORKLOADS.md promises 0 for every workload, asserted "
            "in benchmarks/bench_workload_coverage.py.",
            "Gate: >=4x exec-phase speedup (best strategy per row) on "
            "TPC-B, NewOrder-heavy TPC-C, and the full TPC-C mix under "
            "TPL at bulks >= 8k at full size; wall assertions are "
            "skipped under the smoke lane.",
            "tpcc-mix runs the full five-type mix under K-SET and "
            "columnar TPL: the lock schedule is computed closed-form "
            "on the vectorized backend (no interpreter fallback), so "
            "the formerly honest ~1.7x row now clears the 4x gate.",
            "smallbank-local restricts the mix to the single-customer "
            "types so the PART row measures PART, not its TPL "
            "fallback (the two-customer types are cross-partition).",
        ],
        headline=("tpcc_mix_sim_ktps", headline),
    )


def smallbank_skew() -> FigureResult:
    """SMALLBANK-1: throughput vs zipfian skew across strategies."""
    rows = []
    n = scaled(4_000)
    build_db = lambda: smallbank.build_database(4, seed=3)  # noqa: E731
    db0 = build_db()
    for theta in THETAS:
        specs = smallbank.generate_transactions(
            db0, n, seed=7, theta=theta
        )
        for strategy in ("kset", "part"):
            _db, _eng, result, _e2e = _run(
                build_db, smallbank.PROCEDURES, specs, "vectorized",
                strategy,
            )
            rows.append(
                (
                    theta,
                    strategy,
                    result.strategy,
                    result.committed,
                    result.aborted,
                    result.throughput_ktps,
                )
            )
    return FigureResult(
        figure_id="SMALLBANK-1",
        title="SmallBank: throughput vs zipfian skew across strategies",
        columns=[
            "theta", "strategy", "chosen", "committed", "aborted", "ktps",
        ],
        rows=rows,
        notes=[
            "theta is the zipfian skew of customer choice (0 = "
            "uniform; ~1 = YCSB-like): skew deepens the T-dependency "
            "graph, so K-SET needs more waves per bulk.",
            "PART reports its chosen strategy: the two-customer types "
            "(amalgamate, send_payment) are cross-partition, so PART "
            "degrades to its TPL fallback on the full mix -- the "
            "Section 5.2 story on a contention-heavy workload.",
            "All rows run the vectorized backend; the simulated-clock "
            "throughput is deterministic and backend-independent.",
        ],
    )


#: Registry for the CI perf-trajectory lane (see repro.bench.harness).
FIGURES = {
    "BACKEND-3": workload_coverage,
    "SMALLBANK-1": smallbank_skew,
}
