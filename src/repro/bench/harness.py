"""Shared machinery for the figure-reproduction benchmarks.

Every experiment in :mod:`repro.bench.figures` returns a
:class:`FigureResult` -- the series the paper's figure plots, as rows.
The bench scripts under ``benchmarks/`` print the table and persist it
under ``benchmarks/results/`` so a full run leaves the whole evaluation
section on disk.

Scale handling: the paper's experiments run millions of transactions on
real silicon; the simulator steps micro-ops in Python, so default sizes
are scaled down (every *ratio* is preserved -- both sides of each
comparison use one cost model). Set ``REPRO_SCALE=paper`` to multiply
workload sizes by 8 if you can spare the hours.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.engine import GPUTx
from repro.core.txn import TransactionPool
from repro.cpu.engine import CpuEngine

#: Multiplier applied to workload sizes (REPRO_SCALE=paper -> 8).
SCALE = 8 if os.environ.get("REPRO_SCALE", "").lower() == "paper" else 1

#: Divisor applied under the CI smoke lane (REPRO_BENCH_SMOKE=1): the
#: figure functions run end to end on tiny workloads, so API drift in
#: any bench breaks CI in seconds instead of rotting silently. Read
#: per call (not at import) so a test can flip the lane on and off.
SMOKE_DIVISOR = 48
SMOKE_FLOOR = 24


def scaled(n: int) -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return max(SMOKE_FLOOR, n // SMOKE_DIVISOR)
    return n * SCALE


@dataclass
class FigureResult:
    """One reproduced figure/table: header + rows + commentary."""

    figure_id: str
    title: str
    columns: List[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)

    def format_table(self) -> str:
        """Render as a markdown table with the notes below."""
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [_format_cell(v) for v in row]
            widths = [max(w, len(r)) for w, r in zip(widths, rendered)]
            rendered_rows.append(rendered)
        header = " | ".join(
            c.ljust(w) for c, w in zip(self.columns, widths)
        )
        rule = "-|-".join("-" * w for w in widths)
        lines = [
            f"## {self.figure_id}: {self.title}",
            "",
            f"| {header} |",
            f"|-{rule}-|",
        ]
        for rendered in rendered_rows:
            body = " | ".join(r.ljust(w) for r, w in zip(rendered, widths))
            lines.append(f"| {body} |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def run_gpu_bulk(
    build_db: Callable[[], Any],
    procedures,
    specs,
    strategy: str,
    block_size: int = 256,
    **options: Any,
):
    """Build a fresh engine, run one bulk, return the ExecutionResult."""
    db = build_db()
    engine = GPUTx(db, procedures=procedures, block_size=block_size)
    engine.submit_many(specs)
    return engine.run_bulk(strategy=strategy, **options)


def run_cpu_batch(build_db, procedures, specs, num_cores: Optional[int] = None):
    """Run the same specs through the CPU counterpart."""
    db = build_db()
    engine = CpuEngine(db, procedures=procedures, num_cores=num_cores)
    pool = TransactionPool()
    txns = [pool.submit(name, params) for name, params in specs]
    return engine.execute(txns)


def throughput_ktps(result) -> float:
    """ktps of either engine's result object."""
    if hasattr(result, "throughput_ktps"):
        return result.throughput_ktps
    return result.throughput_tps() / 1e3


def save_result(result: FigureResult, directory: str = "benchmarks/results") -> str:
    """Persist the rendered table; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.figure_id.lower()}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.format_table())
        handle.write("\n")
    return path


def collect_all(figure_fns: Dict[str, Callable[[], FigureResult]]) -> List[FigureResult]:
    """Run a set of figure functions (used by the EXPERIMENTS generator)."""
    return [fn() for fn in figure_fns.values()]
