"""Shared machinery for the figure-reproduction benchmarks.

Every experiment in :mod:`repro.bench.figures` returns a
:class:`FigureResult` -- the series the paper's figure plots, as rows.
The bench scripts under ``benchmarks/`` print the table and persist it
under ``benchmarks/results/`` so a full run leaves the whole evaluation
section on disk.

Scale handling: the paper's experiments run millions of transactions on
real silicon; the simulator steps micro-ops in Python, so default sizes
are scaled down (every *ratio* is preserved -- both sides of each
comparison use one cost model). Set ``REPRO_SCALE=paper`` to multiply
workload sizes by 8 if you can spare the hours.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.engine import GPUTx
from repro.core.txn import TransactionPool
from repro.cpu.engine import CpuEngine

#: Multiplier applied to workload sizes (REPRO_SCALE=paper -> 8).
SCALE = 8 if os.environ.get("REPRO_SCALE", "").lower() == "paper" else 1

#: Divisor applied under the CI smoke lane (REPRO_BENCH_SMOKE=1): the
#: figure functions run end to end on tiny workloads, so API drift in
#: any bench breaks CI in seconds instead of rotting silently. Read
#: per call (not at import) so a test can flip the lane on and off.
SMOKE_DIVISOR = 48
SMOKE_FLOOR = 24


def scaled(n: int) -> int:
    if os.environ.get("REPRO_BENCH_SMOKE"):
        return max(SMOKE_FLOOR, n // SMOKE_DIVISOR)
    return n * SCALE


@dataclass
class FigureResult:
    """One reproduced figure/table: header + rows + commentary."""

    figure_id: str
    title: str
    columns: List[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)
    #: Optional explicit (metric name, value) headline for the CI
    #: perf-trajectory lane; when absent, :func:`headline_metric`
    #: falls back to the best value of a known throughput column.
    headline: Optional[Tuple[str, float]] = None

    def format_table(self) -> str:
        """Render as a markdown table with the notes below."""
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [_format_cell(v) for v in row]
            widths = [max(w, len(r)) for w, r in zip(widths, rendered)]
            rendered_rows.append(rendered)
        header = " | ".join(
            c.ljust(w) for c, w in zip(self.columns, widths)
        )
        rule = "-|-".join("-" * w for w in widths)
        lines = [
            f"## {self.figure_id}: {self.title}",
            "",
            f"| {header} |",
            f"|-{rule}-|",
        ]
        for rendered in rendered_rows:
            body = " | ".join(r.ljust(w) for r, w in zip(rendered, widths))
            lines.append(f"| {body} |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)

    def column(self, name: str) -> List[Any]:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def run_gpu_bulk(
    build_db: Callable[[], Any],
    procedures,
    specs,
    strategy: str,
    block_size: int = 256,
    **options: Any,
):
    """Build a fresh engine, run one bulk, return the ExecutionResult."""
    db = build_db()
    engine = GPUTx(db, procedures=procedures, block_size=block_size)
    engine.submit_many(specs)
    return engine.run_bulk(strategy=strategy, **options)


def run_cpu_batch(build_db, procedures, specs, num_cores: Optional[int] = None):
    """Run the same specs through the CPU counterpart."""
    db = build_db()
    engine = CpuEngine(db, procedures=procedures, num_cores=num_cores)
    pool = TransactionPool()
    txns = [pool.submit(name, params) for name, params in specs]
    return engine.execute(txns)


def throughput_ktps(result) -> float:
    """ktps of either engine's result object."""
    if hasattr(result, "throughput_ktps"):
        return result.throughput_ktps
    return result.throughput_tps() / 1e3


def save_result(result: FigureResult, directory: str = "benchmarks/results") -> str:
    """Persist the rendered table; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{result.figure_id.lower()}.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(result.format_table())
        handle.write("\n")
    return path


def collect_all(figure_fns: Dict[str, Callable[[], FigureResult]]) -> List[FigureResult]:
    """Run a set of figure functions (used by the EXPERIMENTS generator)."""
    return [fn() for fn in figure_fns.values()]


# ---------------------------------------------------------------------------
# CI perf trajectory: headline metrics as machine-readable JSON.
# ---------------------------------------------------------------------------
#: Column names eligible as a figure's headline metric, in preference
#: order. All are higher-is-better, so the regression gate
#: (``scripts/bench_compare.py``) only needs one comparison direction;
#: figures without any of these (byte-count tables, pure-latency
#: series) simply have no headline and are not gated.
HEADLINE_COLUMNS = (
    "sustained_ktps",
    "ktps",
    "gpu_ktps",
    "kset_ktps",
    "bulk_ktps",
    "base_ktps",
    "wal_ktps",
    "speedup",
    "gputx_norm",
)


def headline_metric(result: FigureResult) -> Optional[Tuple[str, float]]:
    """The figure's one-number summary for the perf-trajectory lane.

    An explicit ``result.headline`` wins; otherwise the best (max)
    value of the first :data:`HEADLINE_COLUMNS` column present.
    """
    if result.headline is not None:
        name, value = result.headline
        return name, float(value)
    for column in HEADLINE_COLUMNS:
        if column in result.columns:
            values = [
                float(v)
                for v in result.column(column)
                if isinstance(v, (int, float))
            ]
            if values:
                return column, max(values)
    return None


def collect_headlines(
    figure_fns: Dict[str, Callable[[], FigureResult]],
) -> Dict[str, Dict[str, Any]]:
    """Run figure functions; map figure id -> headline metric record."""
    out: Dict[str, Dict[str, Any]] = {}
    for fn in figure_fns.values():
        result = fn()
        metric = headline_metric(result)
        if metric is None:
            continue
        out[result.figure_id] = {"metric": metric[0], "value": metric[1]}
    return out


def write_bench_json(
    headlines: Dict[str, Dict[str, Any]], path: str
) -> str:
    """Persist a ``BENCH_PR<k>.json`` perf-trajectory artifact."""
    payload = {
        "schema": 1,
        "smoke": bool(os.environ.get("REPRO_BENCH_SMOKE")),
        "scale": SCALE,
        "figures": headlines,
    }
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def trajectory_figures() -> Dict[str, Callable[[], FigureResult]]:
    """Every zero-arg figure function the perf lane runs.

    Imported lazily so ``repro.bench.harness`` stays importable
    without dragging every workload module in.
    """
    from repro.bench import backend as bench_backend
    from repro.bench import cluster as bench_cluster
    from repro.bench import coverage as bench_coverage
    from repro.bench import durability as bench_durability
    from repro.bench import elastic as bench_elastic
    from repro.bench import scenarios as bench_scenarios
    from repro.bench import serving as bench_serving
    from repro.bench.figures import ALL_FIGURES

    fns: Dict[str, Callable[[], FigureResult]] = dict(ALL_FIGURES)
    fns.update(bench_cluster.FIGURES)
    fns.update(bench_durability.FIGURES)
    fns.update(bench_serving.FIGURES)
    fns.update(bench_backend.FIGURES)
    fns.update(bench_coverage.FIGURES)
    fns.update(bench_elastic.FIGURES)
    fns.update(bench_scenarios.FIGURES)
    return fns


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.bench.harness --out BENCH_PR3.json``.

    Runs every figure function in smoke mode (tiny workloads; the
    simulated-clock metrics are deterministic, so runner speed does
    not leak into the numbers) and writes the headline-metric JSON
    the CI perf-trajectory lane uploads and gates on.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Emit the perf-trajectory headline-metric JSON."
    )
    parser.add_argument(
        "--out",
        default="BENCH_PR.json",
        help="output path (CI names this BENCH_PR<k>.json)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at full (non-smoke) workload sizes",
    )
    parser.add_argument(
        "--trace",
        metavar="TRACE_JSON",
        default=None,
        help="record the run's telemetry and write a Chrome/Perfetto "
        "trace-event JSON here (plus <path>.metrics.json)",
    )
    args = parser.parse_args(argv)
    if args.full:
        # A stale REPRO_BENCH_SMOKE from the shell would silently turn
        # a "full" run into a 48x-shrunk one.
        os.environ.pop("REPRO_BENCH_SMOKE", None)
    else:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    if args.trace:
        import repro.telemetry as telemetry

        with telemetry.session() as tel:
            headlines = collect_headlines(trajectory_figures())
        trace_path = tel.write(args.trace)
        metrics_path = telemetry.write_metrics(
            f"{args.trace}.metrics.json", tel.metrics
        )
        print(f"wrote trace to {trace_path} and metrics to {metrics_path}")
    else:
        headlines = collect_headlines(trajectory_figures())
    path = write_bench_json(headlines, args.out)
    print(f"wrote {len(headlines)} headline metrics to {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI lane
    raise SystemExit(main())
