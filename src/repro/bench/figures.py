"""One function per figure/table of the paper's evaluation (Section 6).

Each returns a :class:`~repro.bench.harness.FigureResult` holding the
same series the paper plots. Sizes are scaled down per the policy in
DESIGN.md; the *shape* of each result (who wins, by what factor, where
crossovers fall) is the reproduction target, recorded against the paper
in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List

from repro.bench.harness import (
    FigureResult,
    run_cpu_batch,
    run_gpu_bulk,
    scaled,
)
from repro.core.engine import GPUTx
from repro.gpu.spec import CPU_PRICE_USD, GPU_PRICE_USD
from repro.workloads import micro, tm1, tpcb, tpcc


# ---------------------------------------------------------------------------
# Micro-benchmark figures.
# ---------------------------------------------------------------------------
def fig03_branch_divergence() -> FigureResult:
    """Figure 3: throughput vs. #branches, with/without grouping."""
    n_txns = scaled(8_192)
    n_tuples = scaled(32_768)
    rows = []
    for x, label in ((1, "L"), (16, "H")):
        for branches in (2, 8, 32, 128):
            procedures = micro.build_procedures(branches, x=x)
            specs = micro.generate_transactions(
                n_txns, n_tuples=n_tuples, n_branches=branches, seed=3
            )
            build = lambda: micro.build_database(n_tuples)
            full_passes = max(1, math.ceil(math.log2(branches) / 4))
            basic = run_gpu_bulk(build, procedures, specs, "kset",
                                 grouping_passes=0)
            grouped = run_gpu_bulk(build, procedures, specs, "kset",
                                   grouping_passes=full_passes)
            rows.append(
                (
                    f"{branches}_{label}",
                    branches,
                    label,
                    basic.throughput_ktps,
                    grouped.throughput_ktps,
                    grouped.throughput_ktps / basic.throughput_ktps,
                )
            )
    return FigureResult(
        figure_id="Fig03",
        title="Branch divergence: grouping by transaction type",
        columns=["config", "branches", "cost", "basic_ktps",
                 "grouped_ktps", "speedup"],
        rows=rows,
        notes=[
            "L: x=1 (low compute), H: x=16 (high compute); paper finds "
            "grouping wins everywhere for H, and only at larger branch "
            "counts for L (crossover).",
        ],
    )


def fig04_bulk_size() -> FigureResult:
    """Figure 4: TPL/PART/K-SET throughput vs. bulk size.

    The paper fixes the table at 8M tuples while bulks grow to 16M+
    transactions, i.e. contention *rises* with bulk size; the scaled
    table is fixed likewise.
    """
    n_tuples = scaled(8_192)
    rows = []
    for bulk in (scaled(2_048), scaled(8_192), scaled(32_768)):
        specs = micro.generate_transactions(
            bulk, n_tuples=n_tuples, n_branches=8, seed=5
        )
        procedures = micro.build_procedures(8, x=1)
        build = lambda: micro.build_database(n_tuples)
        tpl = run_gpu_bulk(build, procedures, specs, "tpl")
        part = run_gpu_bulk(build, procedures, specs, "part",
                            partition_size=8)
        kset = run_gpu_bulk(build, procedures, specs, "kset")
        rows.append(
            (bulk, tpl.throughput_ktps, part.throughput_ktps,
             kset.throughput_ktps)
        )
    return FigureResult(
        figure_id="Fig04",
        title="Execution strategies vs. bulk size",
        columns=["bulk_size", "tpl_ktps", "part_ktps", "kset_ktps"],
        rows=rows,
        notes=[
            "Paper: TPL declines with bulk size (lock contention); PART "
            "and K-SET stay stable with K-SET slightly ahead.",
        ],
    )


def fig05_time_breakdown() -> FigureResult:
    """Figure 5: sort (generation) vs. execution share per strategy.

    Matches the paper's contention regime (~2 transactions per tuple:
    16M transactions over 8M tuples there, scaled here).
    """
    n_tuples = scaled(8_192)
    bulk = scaled(16_384)
    specs = micro.generate_transactions(
        bulk, n_tuples=n_tuples, n_branches=8, seed=7
    )
    procedures = micro.build_procedures(8, x=1)
    build = lambda: micro.build_database(n_tuples)
    rows = []
    for strategy in ("tpl", "part", "kset"):
        result = run_gpu_bulk(build, procedures, specs, strategy)
        gen = result.breakdown.phases.get("generation", 0.0)
        execution = result.breakdown.phases.get("execution", 0.0)
        total = gen + execution
        rows.append(
            (
                strategy,
                gen * 1e3,
                execution * 1e3,
                100.0 * gen / total if total else 0.0,
                100.0 * execution / total if total else 0.0,
            )
        )
    return FigureResult(
        figure_id="Fig05",
        title="Time breakdown: bulk generation (sort) vs. execution",
        columns=["strategy", "sort_ms", "execution_ms", "sort_pct",
                 "execution_pct"],
        rows=rows,
        notes=[
            "Paper (16M txns): sort is 66%/70% of PART/K-SET; execution "
            "is ~70% of TPL.",
        ],
    )


def fig06_skew() -> FigureResult:
    """Figure 6: throughput vs. lock-acquisition skew (alpha).

    TPL and PART "naively pick the transactions in the transaction pool
    as a bulk"; K-SET "extract[s] the 0-set continuously from the
    transactions in transaction pool" -- i.e. it runs in streaming mode
    (a few 0-set rounds per bulk, blocked work stays pooled and merges
    with new arrivals), which is what keeps it stable under skew.
    """
    n_tuples = scaled(4_096)
    bulk = scaled(4_096)
    procedures = micro.build_procedures(8, x=1)
    build = lambda: micro.build_database(n_tuples)
    rows = []
    for alpha in (0.001, 0.01, 0.05, 0.1):
        specs = micro.generate_transactions(
            bulk, n_tuples=n_tuples, n_branches=8, alpha=alpha, seed=9
        )
        tpl = run_gpu_bulk(build, procedures, specs, "tpl")
        part = run_gpu_bulk(build, procedures, specs, "part")
        # Streaming K-SET: throughput over the first rounds, the regime
        # sustained while submissions keep refilling the 0-set.
        engine = GPUTx(build(), procedures=procedures)
        engine.submit_many(specs)
        executed = 0
        seconds = 0.0
        while executed < int(0.8 * len(specs)) and len(engine.pool):
            result = engine.run_bulk(strategy="kset", max_rounds=2)
            executed += len(result.results)
            seconds += result.seconds
        kset_ktps = executed / seconds / 1e3 if seconds else 0.0
        rows.append(
            (alpha, tpl.throughput_ktps, part.throughput_ktps, kset_ktps)
        )
    return FigureResult(
        figure_id="Fig06",
        title="Execution strategies vs. workload skew",
        columns=["alpha", "tpl_ktps", "part_ktps", "kset_ktps"],
        rows=rows,
        notes=[
            "Skew deepens the T-dependency graph; the paper finds K-SET "
            "the most stable (continuous 0-set extraction), TPL/PART "
            "degrading with alpha.",
        ],
    )


def fig12_grouping_passes() -> FigureResult:
    """Figure 12: grouping/execution breakdown vs. radix passes."""
    n_tuples = scaled(16_384)
    bulk = scaled(8_192)
    branches = 16
    procedures = micro.build_procedures(branches, x=32)
    specs = micro.generate_transactions(
        bulk, n_tuples=n_tuples, n_branches=branches, seed=11
    )
    build = lambda: micro.build_database(n_tuples)
    rows = []
    for passes in range(0, 5):
        result = run_gpu_bulk(build, procedures, specs, "kset",
                              grouping_passes=passes)
        gen = result.breakdown.phases.get("generation", 0.0)
        execution = result.breakdown.phases.get("execution", 0.0)
        rows.append(
            (
                passes,
                min(2 ** (passes * 4), branches),
                gen * 1e3,
                execution * 1e3,
                result.throughput_ktps,
            )
        )
    return FigureResult(
        figure_id="Fig12",
        title="Grouping passes: overhead vs. divergence reduction",
        columns=["passes", "partitions", "grouping_ms", "execution_ms",
                 "ktps"],
        rows=rows,
        notes=[
            "Paper (x=32, T=16): execution time falls as partitions "
            "approach the branch count while grouping cost rises; an "
            "interior optimum emerges.",
        ],
    )


def fig13_partition_size() -> FigureResult:
    """Figure 13: PART throughput vs. partition size (concave)."""
    n_tuples = scaled(32_768)
    bulk = scaled(16_384)
    procedures = micro.build_procedures(8, x=16)
    specs = micro.generate_transactions(
        bulk, n_tuples=n_tuples, n_branches=8, seed=13
    )
    build = lambda: micro.build_database(n_tuples)
    rows = []
    for size in (1, 8, 32, 128, 512, 2048):
        result = run_gpu_bulk(build, procedures, specs, "part",
                              partition_size=size)
        rows.append((size, n_tuples // size, result.throughput_ktps))
    return FigureResult(
        figure_id="Fig13",
        title="PART throughput vs. partition size",
        columns=["partition_size", "n_partitions", "ktps"],
        rows=rows,
        notes=[
            "Paper: a concave curve with the optimum at 128 -- small "
            "partitions pay sort/boundary overhead, large ones lengthen "
            "the serial critical path.",
        ],
    )


def fig14_tuples() -> FigureResult:
    """Figure 14: throughput vs. relation cardinality."""
    bulk = scaled(8_192)
    procedures = micro.build_procedures(8, x=1)
    rows = []
    for n_tuples in (scaled(1_024), scaled(4_096), scaled(16_384),
                     scaled(65_536)):
        specs = micro.generate_transactions(
            bulk, n_tuples=n_tuples, n_branches=8, seed=15
        )
        build = lambda n=n_tuples: micro.build_database(n)
        tpl = run_gpu_bulk(build, procedures, specs, "tpl")
        part = run_gpu_bulk(build, procedures, specs, "part")
        kset = run_gpu_bulk(build, procedures, specs, "kset")
        rows.append(
            (n_tuples, tpl.throughput_ktps, part.throughput_ktps,
             kset.throughput_ktps)
        )
    return FigureResult(
        figure_id="Fig14",
        title="Execution strategies vs. number of tuples",
        columns=["tuples", "tpl_ktps", "part_ktps", "kset_ktps"],
        rows=rows,
        notes=[
            "More tuples = fewer conflicts: all three strategies rise "
            "(TPL: less lock contention; PART: shorter critical path; "
            "K-SET: wider 0-set).",
        ],
    )


def fig15_response_micro() -> FigureResult:
    """Figure 15: response time vs. throughput (micro, 4M tx/s)."""
    n_tuples = scaled(16_384)
    n_txns = scaled(16_384)
    procedures = micro.build_procedures(8, x=1)
    specs = micro.generate_transactions(
        n_txns, n_tuples=n_tuples, n_branches=8, seed=17
    )
    # Arrival rate scaled to the simulated engine's capacity (the
    # paper's 4M tx/s sat near its engine's saturation point).
    rows = []
    for interval_ms in (0.02, 0.1, 0.5, 2.0):
        for strategy in ("tpl", "part", "kset"):
            engine = GPUTx(micro.build_database(n_tuples),
                           procedures=procedures)
            report = engine.simulate_arrivals(
                specs,
                arrival_rate_tps=16e6,
                interval_s=interval_ms * 1e-3,
                strategy=strategy,
            )
            rows.append(
                (
                    interval_ms,
                    strategy,
                    report.avg_response_s * 1e3,
                    report.throughput_ktps,
                )
            )
    return FigureResult(
        figure_id="Fig15",
        title="Response time vs. throughput (micro benchmark)",
        columns=["interval_ms", "strategy", "avg_response_ms", "ktps"],
        rows=rows,
        notes=[
            "Paper: throughput peaks once responses pass ~260 ms; TPL "
            "leads at tiny intervals (small 0-sets), PART/K-SET win as "
            "bulks grow.",
        ],
    )


def fig17_relaxed() -> FigureResult:
    """Figure 17: time breakdown without the timestamp constraint."""
    n_tuples = scaled(8_192)
    bulk = scaled(16_384)
    specs = micro.generate_transactions(
        bulk, n_tuples=n_tuples, n_branches=8, seed=19
    )
    procedures = micro.build_procedures(8, x=1)
    build = lambda: micro.build_database(n_tuples)
    rows = []
    for constrained, relaxed in (
        ("tpl", "tpl-relaxed"),
        ("part", "part-relaxed"),
        ("kset", "kset-relaxed"),
    ):
        base = run_gpu_bulk(build, procedures, specs, constrained)
        fast = run_gpu_bulk(build, procedures, specs, relaxed)
        rows.append(
            (
                constrained,
                base.breakdown.phases.get("generation", 0.0) * 1e3,
                base.breakdown.phases.get("execution", 0.0) * 1e3,
                fast.breakdown.phases.get("generation", 0.0) * 1e3,
                fast.breakdown.phases.get("execution", 0.0) * 1e3,
                fast.throughput_ktps,
            )
        )
    return FigureResult(
        figure_id="Fig17",
        title="Relaxing the timestamp constraint (Appendix G)",
        columns=["strategy", "gen_ms", "exec_ms", "relaxed_gen_ms",
                 "relaxed_exec_ms", "relaxed_ktps"],
        rows=rows,
        notes=[
            "Paper: both bulk generation and execution shrink; with "
            "cheap locks TPL comes out ahead, reversing Figure 5.",
        ],
    )


# ---------------------------------------------------------------------------
# Public-benchmark figures.
# ---------------------------------------------------------------------------
def _tm1_build(sf: int):
    return lambda: tm1.build_database(sf, subscribers_per_sf=2_000)


def _tpcb_build(sf: int):
    return lambda: tpcb.build_database(sf, accounts_per_branch=25)


def _tpcc_build(sf: int):
    return lambda: tpcc.build_database(
        sf, customers_per_district=20, n_items=500,
        init_orders_per_district=6,
    )


_PUBLIC = {
    "tm1": {
        "build": _tm1_build,
        "procedures": tm1.PROCEDURES,
        "generate": lambda db, n, seed: tm1.generate_transactions(
            db, n, seed=seed
        ),
        "scale_factors": (2, 4, 8),
        "n_txns": scaled(24_000),
        "gpu_options": {"strategy": "kset", "grouping_passes": 1},
        "block_size": 256,
    },
    "tpcb": {
        "build": _tpcb_build,
        "procedures": tpcb.PROCEDURES,
        "generate": lambda db, n, seed: tpcb.generate_transactions(
            db, n, seed=seed
        ),
        "scale_factors": (1_024, 2_048, 4_096),
        "n_txns": scaled(12_000),
        "gpu_options": {"strategy": "part"},
        "block_size": 32,
    },
    "tpcc": {
        "build": _tpcc_build,
        "procedures": tpcc.PROCEDURES,
        "generate": lambda db, n, seed: tpcc.generate_transactions(
            db, n, seed=seed
        ),
        "scale_factors": (16, 32, 64),
        "n_txns": scaled(6_000),
        "gpu_options": {"strategy": "kset", "grouping_passes": 1},
        "block_size": 32,
    },
}


def fig07_public_benchmarks() -> FigureResult:
    """Figure 7: normalized throughput + cost efficiency."""
    rows = []
    for name, cfg in _PUBLIC.items():
        for sf in cfg["scale_factors"]:
            build = cfg["build"](sf)
            specs = cfg["generate"](build(), cfg["n_txns"], 21)
            cpu1 = run_cpu_batch(build, cfg["procedures"], specs, num_cores=1)
            cpu4 = run_cpu_batch(build, cfg["procedures"], specs)
            gpu = run_gpu_bulk(
                build, cfg["procedures"], specs,
                block_size=cfg["block_size"], **cfg["gpu_options"]
            )
            adhoc = run_gpu_bulk(build, cfg["procedures"], specs, "adhoc")
            cpu1_ktps = cpu1.throughput_ktps
            gpu_ktps = gpu.throughput_ktps
            cpu4_ktps = cpu4.throughput_ktps
            cost_eff = (gpu_ktps / GPU_PRICE_USD) / (
                cpu4_ktps / CPU_PRICE_USD
            )
            rows.append(
                (
                    name,
                    sf,
                    gpu_ktps / cpu1_ktps,
                    cpu4_ktps / cpu1_ktps,
                    adhoc.throughput_ktps / cpu1_ktps,
                    gpu_ktps / cpu4_ktps,
                    cost_eff,
                )
            )
    return FigureResult(
        figure_id="Fig07",
        title="Public benchmarks: normalized throughput (CPU 1-core = 1)",
        columns=["benchmark", "scale", "gputx_norm", "cpu_quad_norm",
                 "gpu_1core_norm", "gputx_vs_quad", "cost_eff_ratio"],
        rows=rows,
        notes=[
            "Paper: GPU single core = 25-50% of a CPU core; GPUTx = "
            "4-10x the quad-core engine, rising with scale factor; "
            "throughput/$ improves 52%/214%/98% on TM1/TPC-B/TPC-C.",
        ],
    )


def fig08_tm1_strategies() -> FigureResult:
    """Figure 8: the three strategies on TM1 vs. scale factor."""
    n_txns = scaled(12_000)
    rows = []
    for sf in (2, 4, 8):
        build = _tm1_build(sf)
        specs = tm1.generate_transactions(build(), n_txns, seed=23)
        tpl = run_gpu_bulk(build, tm1.PROCEDURES, specs, "tpl")
        part = run_gpu_bulk(build, tm1.PROCEDURES, specs, "part",
                            partition_size=4)
        kset = run_gpu_bulk(build, tm1.PROCEDURES, specs, "kset",
                            grouping_passes=1)
        rows.append(
            (sf, tpl.throughput_ktps, part.throughput_ktps,
             kset.throughput_ktps)
        )
    return FigureResult(
        figure_id="Fig08",
        title="TM1: execution strategies vs. scale factor",
        columns=["scale_factor", "tpl_ktps", "part_ktps", "kset_ktps"],
        rows=rows,
        notes=[
            "Paper: the 0-set grows with scale, K-SET ends up fastest; "
            "TPL underperforms at every scale factor.",
        ],
    )


def fig09_response_tm1() -> FigureResult:
    """Figure 9: response time vs. throughput on TM1 (1M tx/s)."""
    build = _tm1_build(4)
    specs = tm1.generate_transactions(build(), scaled(16_000), seed=25)
    # The paper drives TM1 at 1M tx/s, near its engine's capacity; the
    # simulated engine is faster, so the arrival rate is scaled to keep
    # the same load regime (arrivals ~ saturation throughput).
    rows = []
    for interval_ms in (0.05, 0.2, 1.0, 5.0):
        engine = GPUTx(build(), procedures=tm1.PROCEDURES)
        report = engine.simulate_arrivals(
            specs,
            arrival_rate_tps=16e6,
            interval_s=interval_ms * 1e-3,
            strategy="kset",
        )
        rows.append(
            (
                interval_ms,
                report.avg_response_s * 1e3,
                report.throughput_ktps,
                max(report.bulk_sizes),
            )
        )
    return FigureResult(
        figure_id="Fig09",
        title="TM1: response time vs. throughput (near-capacity arrivals)",
        columns=["interval_ms", "avg_response_ms", "ktps", "max_bulk"],
        rows=rows,
        notes=[
            "Paper: throughput rises sharply with the bulk interval and "
            "peaks once the application tolerates ~534 ms of latency.",
        ],
    )


def fig16_transfer() -> FigureResult:
    """Figure 16: host<->device transfer costs on TM1."""
    build = _tm1_build(4)
    engine = GPUTx(build(), procedures=tm1.PROCEDURES)
    init_seconds = engine.initialize_device()
    specs = tm1.generate_transactions(engine.db, scaled(12_000), seed=27)
    engine.submit_many(specs)
    result = engine.run_bulk(strategy="kset")
    ledger = engine.pcie.ledger
    execution = result.breakdown.phases.get("execution", 0.0) + \
        result.breakdown.phases.get("generation", 0.0)
    rows = [
        ("initialization", ledger.bytes_by_component["initialization"],
         init_seconds * 1e3, "-"),
        ("input", ledger.bytes_by_component.get("input", 0),
         ledger.seconds_by_component.get("input", 0.0) * 1e3,
         f"{100 * ledger.seconds_by_component.get('input', 0) / execution:.1f}%"),
        ("output", ledger.bytes_by_component.get("output", 0),
         ledger.seconds_by_component.get("output", 0.0) * 1e3,
         f"{100 * ledger.seconds_by_component.get('output', 0) / execution:.1f}%"),
    ]
    return FigureResult(
        figure_id="Fig16",
        title="TM1: memory transfer between host and device",
        columns=["component", "bytes", "ms", "share_of_execution"],
        rows=rows,
        notes=[
            "Paper: initialization is one-off; per-bulk input+output "
            "contribute less than 5% of total execution time.",
        ],
    )


def tbl_adhoc_vs_bulk() -> FigureResult:
    """Section 6.3 claim: bulk execution is 16-146x ad-hoc execution."""
    rows = []
    for name in ("tm1", "tpcb"):
        cfg = _PUBLIC[name]
        sf = cfg["scale_factors"][1]
        build = cfg["build"](sf)
        specs = cfg["generate"](build(), min(cfg["n_txns"], scaled(8_000)), 29)
        bulk = run_gpu_bulk(
            build, cfg["procedures"], specs,
            block_size=cfg["block_size"], **cfg["gpu_options"]
        )
        adhoc = run_gpu_bulk(build, cfg["procedures"], specs, "adhoc")
        adhoc_launch = run_gpu_bulk(
            build, cfg["procedures"], specs, "adhoc",
            per_task_launch_overhead=True,
        )
        rows.append(
            (
                name,
                bulk.throughput_ktps,
                adhoc.throughput_ktps,
                bulk.throughput_ktps / adhoc.throughput_ktps,
                bulk.throughput_ktps / adhoc_launch.throughput_ktps,
            )
        )
    return FigureResult(
        figure_id="TblAdhoc",
        title="Bulk execution model vs. ad-hoc GPU execution",
        columns=["benchmark", "bulk_ktps", "adhoc_ktps", "speedup",
                 "speedup_with_per_txn_launch"],
        rows=rows,
        notes=["Paper: bulk execution is 16-146x ad-hoc execution."],
    )


def tbl_storage() -> FigureResult:
    """Appendix F.2: column vs. row storage on TM1."""
    specs = tm1.generate_transactions(
        tm1.build_database(2, subscribers_per_sf=2_000), scaled(8_000),
        seed=31,
    )
    rows = []
    results = {}
    for layout in ("column", "row"):
        build = lambda lo=layout: tm1.build_database(
            2, subscribers_per_sf=2_000, layout=lo
        )
        db = build()
        memory = db.device_bytes_report()
        result = run_gpu_bulk(build, tm1.PROCEDURES, specs, "kset",
                              grouping_passes=1)
        results[layout] = (memory["total"], result.throughput_ktps)
        rows.append((layout, memory["tables"], memory["indexes"],
                     memory["total"], result.throughput_ktps))
    col_mem, col_ktps = results["column"]
    row_mem, row_ktps = results["row"]
    return FigureResult(
        figure_id="TblStorage",
        title="Column- vs. row-based storage (TM1)",
        columns=["layout", "table_bytes", "index_bytes", "total_bytes",
                 "ktps"],
        rows=rows,
        notes=[
            f"Measured: column store uses {100 * (1 - col_mem / row_mem):.0f}% "
            f"less device memory and is {100 * (col_ktps / row_ktps - 1):.0f}% "
            "faster. Paper: 27% less memory, ~10% faster.",
        ],
    )


#: Registry used by the EXPERIMENTS.md generator and the bench files.
ALL_FIGURES: Dict[str, Callable[[], FigureResult]] = {
    "fig03": fig03_branch_divergence,
    "fig04": fig04_bulk_size,
    "fig05": fig05_time_breakdown,
    "fig06": fig06_skew,
    "fig07": fig07_public_benchmarks,
    "fig08": fig08_tm1_strategies,
    "fig09": fig09_response_tm1,
    "fig12": fig12_grouping_passes,
    "fig13": fig13_partition_size,
    "fig14": fig14_tuples,
    "fig15": fig15_response_micro,
    "fig16": fig16_transfer,
    "fig17": fig17_relaxed,
    "tbl_adhoc": tbl_adhoc_vs_bulk,
    "tbl_storage": tbl_storage,
}
