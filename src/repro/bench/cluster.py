"""Cluster-scaling experiments (beyond the paper: multi-GPU sharding).

Three series, in the style of the figure reproductions:

* ``cluster_shard_scaling`` -- throughput of a TM1 bulk vs. shard
  count {1, 2, 4, 8} at 0 % cross-shard work. Scaling is sublinear at
  these bulk sizes for the reason the paper gives for small bulks
  (Figure 4): each shard's sub-bulk underutilises its GPU, and the
  k-set sort's fixed passes (Figure 5's dominant generation share)
  do not shrink with the per-shard bulk.
* ``cluster_cross_shard`` -- throughput vs. the fraction of
  transactions spanning two shards {0, 0.1, 0.3}: every cross-shard
  run forces a barrier and a serial leader pass, so throughput decays
  sharply -- the DiPETrans motivation for minimising cross-shard work.
* ``cluster_parallel_commit`` -- the fix for that ceiling: the
  grouped leader/follower commit (``cross_shard="parallel"``) vs. the
  serial-leader oracle at 0.3 cross-shard fraction, swept over shard
  count {2, 4, 8}. Conflict-aware wave packing coalesces the tiny
  coordinator runs and independent conflict groups execute on their
  home shards in parallel, so cross-shard throughput scales with the
  shard count instead of flatlining. Every row asserts Definition-1
  equivalence against the serial-leader oracle.
* ``cluster_pipeline`` -- double-buffered bulk pipelining on one
  device: PCIe transfer of bulk k+1 overlaps kernel execution of
  bulk k, recovering most of the transfer share of Figure 16.
"""

from __future__ import annotations

from repro.bench.harness import FigureResult, scaled
from repro.cluster.pipeline import run_pipelined
from repro.cluster.runtime import ClusterTx
from repro.core.engine import GPUTx
from repro.workloads import micro, tm1

#: Workload sizes (pre-scale); kept modest so the simulator stays fast.
_SCALING_TXNS = 6_000
_SCALING_SF = 4
_CROSS_TXNS = 600
_CROSS_SF = 1
_PARALLEL_FRACTION = 0.3
_PIPELINE_BULKS = 6
_PIPELINE_BULK_SIZE = 400


def cluster_shard_scaling() -> FigureResult:
    """Throughput vs. shard count on a 0%-cross-shard TM1 bulk."""
    db = tm1.build_database(_SCALING_SF)
    specs = tm1.generate_transactions(db, scaled(_SCALING_TXNS), seed=11)
    rows = []
    base_seconds = None
    for n_shards in (1, 2, 4, 8):
        cluster = ClusterTx(db, procedures=tm1.PROCEDURES, n_shards=n_shards)
        cluster.submit_many(specs)
        result = cluster.run_bulk(strategy="kset")
        if base_seconds is None:
            base_seconds = result.seconds
        rows.append(
            (
                n_shards,
                len(result.results),
                result.seconds * 1e3,
                result.throughput_ktps,
                base_seconds / result.seconds,
                result.utilization,
            )
        )
    return FigureResult(
        figure_id="CLUSTER-1",
        title="ClusterTx: TM1 throughput vs. shard count (0% cross-shard)",
        columns=["shards", "txns", "sim_ms", "ktps", "speedup_vs_1",
                 "utilization"],
        rows=rows,
        notes=[
            "Sublinear scaling: per-shard sub-bulks underutilise each "
            "GPU and the k-set sort's fixed passes dominate generation "
            "(the small-bulk effect of Figures 4/5).",
        ],
    )


def cluster_cross_shard() -> FigureResult:
    """Throughput vs. cross-shard fraction on a 4-shard cluster."""
    rows = []
    for fraction in (0.0, 0.1, 0.3):
        db = tm1.build_database(_CROSS_SF)
        cluster = ClusterTx(db, procedures=tm1.CLUSTER_PROCEDURES, n_shards=4)
        specs = tm1.generate_cluster_transactions(
            db,
            scaled(_CROSS_TXNS),
            shard_of=cluster.router.shard_of_key,
            cross_shard_fraction=fraction,
            seed=11,
        )
        cluster.submit_many(specs)
        result = cluster.run_bulk(strategy="kset")
        coord_share = result.breakdown.fraction("coordinator") + (
            result.breakdown.fraction("sync")
        )
        rows.append(
            (
                fraction,
                len(result.results),
                result.n_cross_shard,
                len(result.waves),
                result.seconds * 1e3,
                result.throughput_ktps,
                coord_share,
            )
        )
    return FigureResult(
        figure_id="CLUSTER-2",
        title="ClusterTx: TM1 throughput vs. cross-shard fraction (4 shards)",
        columns=["cross_fraction", "txns", "cross_txns", "waves", "sim_ms",
                 "ktps", "coordinator_share"],
        rows=rows,
        notes=[
            "Cross-shard work still forces barriers and leader-driven "
            "waves (grouped parallel commit, the default mode), so "
            "throughput decays faster than the fraction itself -- see "
            "CLUSTER-3 for how the grouped commit scales the leader "
            "with shard count.",
        ],
    )


def _run_cross_shard_mode(n_shards: int, mode: str):
    """One CLUSTER-3 cell: a 0.3-cross TM1 bulk under one commit mode."""
    db = tm1.build_database(_CROSS_SF)
    cluster = ClusterTx(
        db,
        procedures=tm1.CLUSTER_PROCEDURES,
        n_shards=n_shards,
        cross_shard=mode,
    )
    specs = tm1.generate_cluster_transactions(
        db,
        scaled(_CROSS_TXNS),
        shard_of=cluster.router.shard_of_key,
        cross_shard_fraction=_PARALLEL_FRACTION,
        seed=11,
    )
    cluster.submit_many(specs)
    result = cluster.run_bulk(strategy="kset")
    coordinator_seconds = sum(
        wave.seconds for wave in result.waves if wave.kind == "coordinator"
    )
    return result, coordinator_seconds, cluster.logical_state()


def cluster_parallel_commit() -> FigureResult:
    """Grouped parallel commit vs. serial leader, by shard count."""
    rows = []
    for n_shards in (2, 4, 8):
        serial, serial_coord_s, serial_state = _run_cross_shard_mode(
            n_shards, "serial"
        )
        parallel, parallel_coord_s, parallel_state = _run_cross_shard_mode(
            n_shards, "parallel"
        )
        # Definition 1 on every row: the grouped commit must be
        # byte-identical to the serial-leader oracle -- same merged
        # state and the same per-transaction outcomes.
        assert parallel_state == serial_state, (
            f"parallel commit diverged from the serial-leader oracle "
            f"at {n_shards} shards"
        )
        assert [
            (r.txn_id, r.committed, r.abort_reason) for r in parallel.results
        ] == [
            (r.txn_id, r.committed, r.abort_reason) for r in serial.results
        ], f"outcomes diverged from the serial-leader oracle at {n_shards}"
        cross = parallel.n_cross_shard
        serial_cross_ktps = (
            cross / serial_coord_s / 1e3 if serial_coord_s > 0 else 0.0
        )
        parallel_cross_ktps = (
            cross / parallel_coord_s / 1e3 if parallel_coord_s > 0 else 0.0
        )
        rows.append(
            (
                n_shards,
                cross,
                parallel.n_groups,
                sum(
                    1 for w in parallel.waves if w.kind == "coordinator"
                ),
                serial_cross_ktps,
                parallel_cross_ktps,
                (
                    parallel_cross_ktps / serial_cross_ktps
                    if serial_cross_ktps > 0
                    else 1.0
                ),
                serial.seconds / parallel.seconds,
            )
        )
    return FigureResult(
        figure_id="CLUSTER-3",
        title="ClusterTx: parallel cross-shard commit vs. serial leader "
        "(TM1, 0.3 cross fraction)",
        columns=["shards", "cross_txns", "groups", "coord_waves",
                 "serial_cross_ktps", "cross_ktps", "cross_speedup",
                 "bulk_speedup"],
        rows=rows,
        # Gate on the 8-shard grouped cross-shard throughput: the
        # figure's point is that it scales with shards now.
        headline=("cross_ktps", rows[-1][5]),
        notes=[
            "cross_ktps = cross-shard transactions / coordinator-wave "
            "seconds. Conflict-aware packing coalesces coordinator "
            "runs; independent conflict groups execute on their home "
            "shards in parallel (clock = max over lanes + dispatch), "
            "so the leader stops being the scaling ceiling. Every row "
            "asserts Definition-1 equivalence against the serial "
            "oracle.",
        ],
    )


def cluster_pipeline() -> FigureResult:
    """Double-buffered bulk pipelining vs. serial bulk execution."""
    n_tuples = scaled(4_000)
    rows = []
    for depth in (1, 2, 3):
        db = micro.build_database(n_tuples)
        engine = GPUTx(db, procedures=micro.build_procedures(4, x=4))
        bulks = [
            micro.generate_transactions(
                scaled(_PIPELINE_BULK_SIZE),
                n_tuples=n_tuples,
                n_branches=4,
                seed=100 + k,
            )
            for k in range(_PIPELINE_BULKS)
        ]
        report = run_pipelined(engine, bulks, strategy="kset", depth=depth)
        pipe = report.pipeline
        rows.append(
            (
                depth,
                report.executed,
                pipe.serial_seconds * 1e3,
                pipe.pipelined_seconds * 1e3,
                pipe.speedup,
                pipe.exposed_transfer_seconds * 1e3,
            )
        )
    return FigureResult(
        figure_id="CLUSTER-4",
        title="PipelineScheduler: bulk transfer/kernel overlap by depth",
        columns=["depth", "txns", "serial_ms", "pipelined_ms", "speedup",
                 "exposed_transfer_ms"],
        rows=rows,
        notes=[
            "depth = number of device-side signature buffers; 2 is the "
            "classic double buffer. Exposed transfer is the copy time the "
            "pipeline failed to hide behind kernels.",
        ],
    )


#: Registry for the CI perf-trajectory lane (see repro.bench.harness).
FIGURES = {
    "cluster_shard_scaling": cluster_shard_scaling,
    "cluster_cross_shard": cluster_cross_shard,
    "cluster_parallel_commit": cluster_parallel_commit,
    "cluster_pipeline": cluster_pipeline,
}
