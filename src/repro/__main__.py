"""``python -m repro`` -- the unified CLI front door (repro.cli)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
