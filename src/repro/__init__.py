"""GPUTx reproduction: high-throughput bulk transaction execution on a
simulated GPU.

Reproduces He & Yu, "High-Throughput Transaction Executions on Graphics
Processors", PVLDB 4(5), 2011. See DESIGN.md for the system inventory
and EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import GPUTx
    from repro.workloads import tpcb

    db = tpcb.build_database(scale_factor=4)
    engine = GPUTx(db, procedures=tpcb.PROCEDURES)
    engine.submit_many(tpcb.generate_transactions(db, n=4000, seed=7))
    report = engine.run_bulk(strategy="kset")
    print(f"{report.throughput_ktps:.1f} ktps")
"""

from repro.cluster.coordinator import FailoverController
from repro.cluster.durability import DurabilityConfig, RecoveryReport
from repro.cluster.elastic import (
    ElasticConfig,
    ElasticController,
    HotShardDetector,
    HotShardReport,
    MigrationPlan,
    MigrationReport,
    ShardMigrator,
)
from repro.cluster.pipeline import (
    PipelinedRunReport,
    PipelineScheduler,
    run_pipelined,
)
from repro.cluster.router import HashShardRouter, RangeShardRouter, ShardRouter
from repro.cluster.runtime import ClusterExecutionResult, ClusterTx
from repro.config import ClusterOptions
from repro.core.backends import EngineOptions
from repro.core.chooser import ChooserThresholds
from repro.core.engine import ArrivalReport, GPUTx
from repro.core.executor import ExecutionResult
from repro.core.procedure import Access, ProcedureRegistry, TransactionType
from repro.core.txn import Transaction, TransactionPool, TxnResult
from repro.cpu.engine import CpuEngine, CpuExecutionResult
from repro.errors import (
    ClusterError,
    ConfigError,
    DeadlockError,
    DurabilityError,
    ExecutionError,
    RecoveryError,
    ReproError,
    SchemaError,
    ServeError,
    ShardFailure,
    StorageError,
)
# NOTE: the convenience function ``repro.serve.serve`` is deliberately
# not re-exported here -- binding the name ``serve`` on the package
# would shadow the ``repro.serve`` submodule attribute and break
# ``import repro.serve`` users.
from repro.serve import (
    AdaptiveBulkFormer,
    AdmissionController,
    Arrival,
    ArrivalStream,
    FixedBulkFormer,
    LatencySummary,
    ServeReport,
    ServeRuntime,
    SLOConfig,
)
from repro.scenarios import (
    Scenario,
    ScenarioRun,
    TenantSpec,
    VerificationReport,
    run_scenario,
    verify_scenario,
)
from repro.scenarios import all_scenarios as all_scenarios
from repro.scenarios import names as scenario_names
from repro.storage.catalog import Database, StoreAdapter
from repro.storage.schema import ColumnDef, DataType, TableSchema
from repro.telemetry import TelemetrySession
# The telemetry session context manager, under a package-level name
# that cannot shadow the ``repro.telemetry`` submodule attribute.
from repro.telemetry import session as telemetry_session
from repro import workloads

__version__ = "1.0.0"

__all__ = [
    "ArrivalReport",
    "GPUTx",
    "ClusterTx",
    "ClusterExecutionResult",
    "ClusterError",
    "ClusterOptions",
    "DurabilityConfig",
    "DurabilityError",
    "ElasticConfig",
    "ElasticController",
    "HotShardDetector",
    "HotShardReport",
    "MigrationPlan",
    "MigrationReport",
    "ShardMigrator",
    "FailoverController",
    "RecoveryError",
    "RecoveryReport",
    "ShardFailure",
    "ShardRouter",
    "HashShardRouter",
    "RangeShardRouter",
    "PipelineScheduler",
    "PipelinedRunReport",
    "run_pipelined",
    "ChooserThresholds",
    "EngineOptions",
    "ExecutionResult",
    "Access",
    "ProcedureRegistry",
    "TransactionType",
    "Transaction",
    "TransactionPool",
    "TxnResult",
    "CpuEngine",
    "CpuExecutionResult",
    "ConfigError",
    "DeadlockError",
    "ExecutionError",
    "ReproError",
    "SchemaError",
    "ServeError",
    "StorageError",
    "AdaptiveBulkFormer",
    "AdmissionController",
    "Arrival",
    "ArrivalStream",
    "FixedBulkFormer",
    "LatencySummary",
    "SLOConfig",
    "ServeReport",
    "ServeRuntime",
    "Scenario",
    "ScenarioRun",
    "TenantSpec",
    "VerificationReport",
    "all_scenarios",
    "run_scenario",
    "scenario_names",
    "verify_scenario",
    "Database",
    "StoreAdapter",
    "ColumnDef",
    "DataType",
    "TableSchema",
    "TelemetrySession",
    "telemetry_session",
    "workloads",
    "__version__",
]

# ``REPRO_TRACE=1`` traces any repro-importing process (examples,
# benches, scripts) and writes a Chrome trace at exit -- no per-caller
# wiring needed. A no-op unless the environment asks for it.
from repro.telemetry import install_from_env as _telemetry_install_from_env

_telemetry_install_from_env()
