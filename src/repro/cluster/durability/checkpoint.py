"""Copy-on-write checkpoints of a shard's partition.

A checkpoint is a :meth:`~repro.storage.catalog.Database.fork` of the
shard database -- O(tables x columns), independent of row count -- plus
the metadata needed to rebuild derived state (indexes) when the
checkpoint is restored during replica promotion. The fork shares the
column arrays with the live store until either side writes, so taking a
checkpoint after every bulk costs almost nothing up front; the copy
cost is paid incrementally, only for columns the subsequent workload
actually touches.

Cadence is bulk-based (``interval`` bulks between checkpoints), the
unit the durability overhead bench sweeps: a short interval shortens
the WAL suffix recovery must replay but ships more checkpoint bytes to
the replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigError, DurabilityError
from repro.storage.catalog import Database


@dataclass
class Checkpoint:
    """An immutable snapshot of one shard partition at one WAL position."""

    shard: int
    #: WAL records with ``lsn <= lsn`` are folded into this snapshot.
    lsn: int
    #: Bulk sequence number the snapshot was taken after (-1 = initial).
    bulk_id: int
    #: Host-side size (what a replica feed has to ship).
    nbytes: int
    #: The COW fork holding the rows (no indexes -- derived state).
    data: Database
    #: (name, table, columns, unique) per index, for rebuild on restore.
    index_specs: Tuple[Tuple[str, str, Tuple[str, ...], bool], ...]

    def restore(self) -> Database:
        """Materialise a live database from this snapshot.

        The snapshot itself is forked again (so the checkpoint stays
        pristine for other replicas) and the indexes are rebuilt over
        the restored rows -- index *content* is a pure function of the
        rows, and probe results are canonical (sorted buckets), so the
        rebuilt indexes behave identically to the lost originals.
        """
        db = self.data.fork()
        for name, table, columns, unique in self.index_specs:
            db.create_index(name, table, columns, unique=unique)
        return db


def take_checkpoint(shard: int, db: Database, lsn: int, bulk_id: int) -> Checkpoint:
    """Snapshot ``db`` (a shard partition) at WAL position ``lsn``."""
    nbytes = sum(t.host_bytes() for t in db.tables.values())
    nbytes += sum(len(m) * 24 for m in db.static_maps.values())
    return Checkpoint(
        shard=shard,
        lsn=lsn,
        bulk_id=bulk_id,
        nbytes=nbytes,
        data=db.fork(),
        index_specs=tuple(db.index_specs()),
    )


class CheckpointManager:
    """Bulk-cadenced checkpointing for one shard."""

    def __init__(self, shard: int, interval: int) -> None:
        if interval < 1:
            raise ConfigError("checkpoint interval must be >= 1 bulk")
        self.shard = shard
        self.interval = interval
        self._bulks_since = 0
        self.taken = 0
        self.checkpoint_bytes = 0
        self._latest: Optional[Checkpoint] = None
        self.history_lsns: List[int] = []

    @property
    def latest(self) -> Checkpoint:
        if self._latest is None:
            raise DurabilityError(
                f"shard {self.shard} has no checkpoint yet"
            )
        return self._latest

    def take(self, db: Database, lsn: int, bulk_id: int) -> Checkpoint:
        """Unconditionally checkpoint (initial seed, post-recovery)."""
        checkpoint = take_checkpoint(self.shard, db, lsn, bulk_id)
        self._latest = checkpoint
        self._bulks_since = 0
        self.taken += 1
        self.checkpoint_bytes += checkpoint.nbytes
        self.history_lsns.append(lsn)
        return checkpoint

    def note_bulk(self, db: Database, lsn: int, bulk_id: int) -> Optional[Checkpoint]:
        """Count one committed bulk; checkpoint when the interval is due."""
        self._bulks_since += 1
        if self._bulks_since < self.interval:
            return None
        return self.take(db, lsn, bulk_id)
