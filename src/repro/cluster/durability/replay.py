"""Deterministic replay of WAL records onto restored checkpoints.

Recovery is checkpoint + suffix: restore the newest replicated
checkpoint, then apply every WAL record past its LSN, in LSN order.
Each record's redo images are physical post-images in application
order, so replay is byte-identical to the original execution --
:func:`repro.core.tx_logging.apply_redo` verifies that replayed
inserts land on the same physical rows they originally did, and
promotion (``ShardDurability.promote``) can additionally diff the
result against the failed shard's last durable state when the
simulation still has it (``DurabilityConfig.verify_recovery``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.cluster.durability.checkpoint import Checkpoint
from repro.cluster.durability.wal import WalRecord
from repro.core.tx_logging import apply_redo
from repro.errors import RecoveryError
from repro.storage.catalog import Database, StoreAdapter


@dataclass
class ReplayStats:
    """What a recovery replayed, for reports and benches."""

    records: int = 0
    entries: int = 0
    replayed_bytes: int = 0
    #: (txn_id -> committed) across the replayed records, for auditing
    #: the recovered shard's outcome set against the host result pool.
    outcomes: Dict[int, bool] = field(default_factory=dict)


def replay_records(
    db: Database, records: Sequence[WalRecord]
) -> ReplayStats:
    """Apply ``records`` (LSN-ascending) onto ``db`` in order."""
    stats = ReplayStats()
    adapter = StoreAdapter(db)
    last_lsn = 0
    for record in records:
        if record.lsn <= last_lsn:
            raise RecoveryError(
                f"WAL records out of order: lsn {record.lsn} after "
                f"{last_lsn}"
            )
        last_lsn = record.lsn
        stats.entries += apply_redo(adapter, record.redo)
        adapter.apply_batch()
        stats.records += 1
        stats.replayed_bytes += record.record_bytes()
        for txn_id, committed, _reason in record.outcomes:
            stats.outcomes[txn_id] = committed
    return stats


def recover_database(
    checkpoint: Checkpoint, records: Sequence[WalRecord]
) -> Tuple[Database, ReplayStats]:
    """Checkpoint restore + WAL suffix replay, in one step.

    ``records`` must be the suffix past the checkpoint's LSN; records
    at or before it are rejected (they are already folded into the
    snapshot, and double-applying them would corrupt the restore).
    """
    for record in records:
        if record.lsn <= checkpoint.lsn:
            raise RecoveryError(
                f"record lsn {record.lsn} is already covered by the "
                f"checkpoint at lsn {checkpoint.lsn}"
            )
    db = checkpoint.restore()
    stats = replay_records(db, records)
    return db, stats


def states_identical(a: Database, b: Database) -> bool:
    """Byte-identity proxy: exact rows, row order, and tombstones."""
    return a.physical_state() == b.physical_state()
