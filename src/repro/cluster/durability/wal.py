"""Per-shard write-ahead logging for the durable cluster runtime.

The single-device engine needs no re-do logging (Appendix D drops it:
"applications may achieve durability with non-logging methods, such as
replications on multiple machines"). The cluster runtime implements
exactly that method: every shard appends one :class:`WalRecord` per
committed wave -- bulk id, wave index, timestamp range, the strategy
Algorithm 1 chose, per-transaction outcomes, and the wave's physical
redo images -- and ships it synchronously to the shard's replicas
(:mod:`repro.cluster.durability.failover`) before the wave is reported
committed. Records are wave-granular so that *everything the cluster
has reported executed is durable*: a crash can only lose work that was
never acknowledged.

Redo capture piggybacks on the store adapter
(:meth:`repro.storage.catalog.StoreAdapter.attach_recorder`): a
:class:`RedoRecorder` observes every physical mutation in application
order, including abort rollbacks (which appear as ordinary writes and
cancel records), so replaying a shard's entries in order against a
checkpoint is byte-identical to the original execution. The entry
format and :func:`~repro.core.tx_logging.apply_redo` live in
:mod:`repro.core.tx_logging`, next to their undo-log siblings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Sequence, Tuple

from repro.core.tx_logging import (
    REDO_CANCEL_DELETE,
    REDO_CANCEL_INSERT,
    REDO_DELETE,
    REDO_INSERT,
    REDO_WRITE,
    RedoEntry,
    redo_bytes,
)
from repro.core.txn import TxnResult
from repro.errors import DurabilityError

#: Breakdown phases charged by the durability layer.
PHASE_WAL_SYNC = "wal_sync"
PHASE_CHECKPOINT = "checkpoint"
PHASE_RECOVERY = "recovery"
PHASE_MIGRATION = "migration"

#: Strategy name recorded for leader (cross-shard coordinator) waves.
LEADER_STRATEGY = "leader"
#: Strategy name recorded for grouped (parallel-commit) leader waves.
#: Replay never branches on the label -- redo entries are what replay
#: applies -- so the two modes' WAL suffixes replay identically; the
#: label only attributes records to a commit path for observability.
PARALLEL_STRATEGY = "leader-parallel"
#: Strategy name recorded for the row moves of a live range migration
#: (``repro.cluster.elastic``). Like the leader labels, replay never
#: branches on it: the migrating inserts/deletes are ordinary redo
#: entries, so a WAL suffix spanning a migration replays identically.
MIGRATION_STRATEGY = "migration"


class RedoRecorder:
    """Observes a StoreAdapter's physical mutations in order.

    One recorder is attached per shard adapter; :meth:`cut` harvests
    the entries accumulated since the previous cut (one wave's worth)
    for the shard's next WAL record.
    """

    def __init__(self) -> None:
        self.entries: List[RedoEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    # -- StoreAdapter recorder protocol ---------------------------------
    def on_write(self, table: str, column: str, row: int, value: Any) -> None:
        self.entries.append((REDO_WRITE, table, column, row, value))

    def on_insert(self, table: str, row: int, values: Tuple[Any, ...]) -> None:
        self.entries.append((REDO_INSERT, table, "", row, values))

    def on_delete(self, table: str, row: int) -> None:
        self.entries.append((REDO_DELETE, table, "", row, None))

    def on_cancel_insert(self, table: str, row: int) -> None:
        self.entries.append((REDO_CANCEL_INSERT, table, "", row, None))

    def on_cancel_delete(self, table: str, row: int) -> None:
        self.entries.append((REDO_CANCEL_DELETE, table, "", row, None))

    # -------------------------------------------------------------------
    def cut(self) -> Tuple[RedoEntry, ...]:
        """Harvest and clear the accumulated entries."""
        entries = tuple(self.entries)
        self.entries.clear()
        return entries


@dataclass(frozen=True)
class WalRecord:
    """One committed wave of one shard, as shipped to its replicas."""

    lsn: int
    shard: int
    bulk_id: int
    wave: int
    #: Timestamp (= txn id) range of the wave's transactions.
    ts_lo: int
    ts_hi: int
    #: Execution strategy the shard chose (or ``"leader"``).
    strategy: str
    #: (txn_id, committed, abort_reason) per transaction.
    outcomes: Tuple[Tuple[int, bool, str], ...]
    #: Physical redo images, in application order.
    redo: Tuple[RedoEntry, ...]
    #: The shard's mutation-journal epoch at commit (audit anchor).
    journal_epoch: int = 0

    def record_bytes(self) -> int:
        """Wire size: 40 B header + 17 B/outcome + redo payload."""
        return 40 + 17 * len(self.outcomes) + redo_bytes(self.redo)


def outcomes_of(results: Iterable[TxnResult]) -> Tuple[Tuple[int, bool, str], ...]:
    """Compress TxnResults into WAL outcome triples."""
    return tuple(
        (r.txn_id, r.committed, r.abort_reason) for r in results
    )


class ShardWAL:
    """Append-only log of one shard's committed waves.

    The WAL is host/replica-resident state: it survives the shard
    device's failure by construction. ``truncate_through`` discards the
    prefix a replicated checkpoint has made redundant; ``suffix`` is
    what replica promotion replays on top of that checkpoint.
    """

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.records: List[WalRecord] = []
        self._next_lsn = 1
        #: Lifetime counters (survive truncation).
        self.appended_records = 0
        self.appended_bytes = 0
        self.truncated_records = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def latest_lsn(self) -> int:
        """LSN of the newest record ever appended (0 when none)."""
        return self._next_lsn - 1

    def append(
        self,
        *,
        bulk_id: int,
        wave: int,
        strategy: str,
        results: Sequence[TxnResult],
        redo: Tuple[RedoEntry, ...],
        journal_epoch: int = 0,
    ) -> WalRecord:
        """Seal one committed wave into a record; returns it."""
        txn_ids = [r.txn_id for r in results]
        record = WalRecord(
            lsn=self._next_lsn,
            shard=self.shard,
            bulk_id=bulk_id,
            wave=wave,
            ts_lo=min(txn_ids) if txn_ids else -1,
            ts_hi=max(txn_ids) if txn_ids else -1,
            strategy=strategy,
            outcomes=outcomes_of(results),
            redo=redo,
            journal_epoch=journal_epoch,
        )
        self._next_lsn += 1
        self.records.append(record)
        self.appended_records += 1
        self.appended_bytes += record.record_bytes()
        return record

    def suffix(self, after_lsn: int) -> List[WalRecord]:
        """Records with ``lsn > after_lsn`` (the replay tail)."""
        return [r for r in self.records if r.lsn > after_lsn]

    def truncate_through(self, lsn: int) -> int:
        """Drop records with ``lsn <= lsn``; returns how many.

        Only legal once a checkpoint covering ``lsn`` has been made
        durable -- the caller (ShardDurability) enforces that ordering.
        """
        if lsn > self.latest_lsn:
            raise DurabilityError(
                f"cannot truncate shard {self.shard} WAL through lsn "
                f"{lsn}: latest appended lsn is {self.latest_lsn}"
            )
        kept = [r for r in self.records if r.lsn > lsn]
        dropped = len(self.records) - len(kept)
        self.records = kept
        self.truncated_records += dropped
        return dropped
