"""Replica sets and shard-level durability orchestration.

Durability is "replications on multiple machines" (Appendix D), made
concrete: each shard keeps K synchronous replicas, placed on peer
devices by chained declustering
(:func:`repro.cluster.durability.failover` uses
:func:`repro.cluster.router.replica_placement`). Every WAL record and
every checkpoint is shipped to all K replicas over the shard's
simulated PCIe/DMA link (:class:`~repro.gpu.transfer.TransferTimeline`
per endpoint; the primary's single copy engine serialises the K feeds)
and the wave is not acknowledged until the last replica has it -- that
wait is the ``wal_sync`` phase the durability bench sweeps.

:class:`ShardDurability` bundles one shard's WAL, redo recorder,
checkpoint manager and replica set; :class:`ClusterDurability` holds
one unit per shard and the cluster-wide accounting. Promotion
(:meth:`ShardDurability.promote`) restores the newest checkpoint,
replays the WAL suffix, and hands back a database that is
byte-identical to the failed shard's last durable state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import repro.telemetry as telemetry
from repro.cluster.durability.checkpoint import Checkpoint, CheckpointManager
from repro.cluster.durability.replay import ReplayStats, recover_database
from repro.cluster.durability.wal import RedoRecorder, ShardWAL, WalRecord
from repro.cluster.router import replica_placement
from repro.errors import ConfigError, DurabilityError
from repro.gpu.transfer import PCIeModel, TransferTimeline
from repro.storage.catalog import Database


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning knobs for the durable cluster runtime."""

    #: Bulks between copy-on-write checkpoints of each partition.
    checkpoint_interval: int = 8
    #: Synchronous replicas per shard. 0 keeps WAL + checkpoints on the
    #: host only (no replication traffic); recovery still works in the
    #: simulation, but a real deployment would want K >= 1.
    n_replicas: int = 1
    #: Recover dead shards automatically at the end of the bulk that
    #: observed the failure (younger waves are requeued either way).
    auto_failover: bool = True
    #: After a promotion, reseed a fresh replica from a new checkpoint
    #: so the shard returns to K replicas.
    restore_redundancy: bool = True
    #: Diff the promoted state against the failed shard's last durable
    #: state (available because failures are injected, not real) and
    #: fail recovery on any divergence.
    verify_recovery: bool = True
    #: Drop WAL prefixes once a checkpoint covering them is replicated.
    truncate_on_checkpoint: bool = True

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigError("checkpoint_interval must be >= 1")
        if self.n_replicas < 0:
            raise ConfigError("n_replicas must be >= 0")


@dataclass
class Replica:
    """One synchronous replica of a shard, on a peer device."""

    shard: int
    device: int
    timeline: TransferTimeline
    synced_lsn: int = 0
    checkpoint_lsn: int = -1
    bytes_received: int = 0


@dataclass
class RecoveryReport:
    """What one replica promotion did, and what it cost."""

    shard: int
    #: Device the promoted replica lived on (None with K == 0).
    replica_device: Optional[int]
    checkpoint_lsn: int
    checkpoint_bulk: int
    replayed_records: int
    replayed_entries: int
    #: Simulated seconds: checkpoint restore + WAL suffix replay (plus
    #: the reseed checkpoint when redundancy is restored).
    seconds: float
    #: Decomposed recovery cost: moving the checkpoint image to the
    #: promoted device ...
    restore_seconds: float = 0.0
    #: ... and moving + replaying the WAL suffix past it.
    replay_seconds: float = 0.0
    #: Promoted state diffed clean against the last durable state.
    verified: bool = False


class ReplicaSet:
    """K synchronous replicas of one shard, fed over the DMA model.

    The source device has a *single* copy engine (the C1060's one DMA
    engine, the same constraint the pipeline scheduler models), so the
    K feeds serialise at the sender: replica count buys fault
    tolerance at a linear cost in replication time -- the trade the
    durability bench sweeps.
    """

    def __init__(
        self, shard: int, n_replicas: int, pcie: PCIeModel, n_shards: int
    ) -> None:
        self.shard = shard
        self.pcie = pcie
        #: The primary's copy engine; all outbound feeds queue here.
        self.sender: TransferTimeline = pcie.timeline()
        devices = replica_placement(shard, n_shards, n_replicas)
        self.replicas = [
            Replica(shard=shard, device=device, timeline=pcie.timeline())
            for device in devices
        ]
        self.sync_seconds = 0.0
        self.shipped_bytes = 0

    def __len__(self) -> int:
        return len(self.replicas)

    def _ship(self, nbytes: int, now: float, lsn: int, is_checkpoint: bool) -> float:
        """Feed ``nbytes`` to every replica; returns the synchronous
        wait (time until the last replica has it)."""
        if not self.replicas:
            return 0.0
        done = now
        for replica in self.replicas:
            seconds = self.pcie.to_peer(
                nbytes,
                component="checkpoint" if is_checkpoint else "replication",
            )
            start, _ = self.sender.schedule(seconds, ready_at=now)
            # The receiving device sees the copy once the sender's
            # engine gets to it.
            _, end = replica.timeline.schedule(seconds, ready_at=start)
            replica.bytes_received += nbytes
            if is_checkpoint:
                replica.checkpoint_lsn = lsn
            else:
                replica.synced_lsn = max(replica.synced_lsn, lsn)
            done = max(done, end)
        wait = done - now
        self.sync_seconds += wait
        self.shipped_bytes += nbytes * len(self.replicas)
        return wait

    def replicate_record(self, record: WalRecord, now: float) -> float:
        return self._ship(
            record.record_bytes(), now, record.lsn, is_checkpoint=False
        )

    def replicate_checkpoint(self, checkpoint: Checkpoint, now: float) -> float:
        return self._ship(
            checkpoint.nbytes, now, checkpoint.lsn, is_checkpoint=True
        )


class ShardDurability:
    """One shard's WAL + redo recorder + checkpoints + replicas."""

    def __init__(
        self,
        shard: int,
        db: Database,
        pcie: PCIeModel,
        config: DurabilityConfig,
        n_shards: int,
    ) -> None:
        self.shard = shard
        self.config = config
        self.pcie = pcie
        self.wal = ShardWAL(shard)
        self.recorder = RedoRecorder()
        self.checkpoints = CheckpointManager(shard, config.checkpoint_interval)
        self.replicas = ReplicaSet(shard, config.n_replicas, pcie, n_shards)
        self.wal_sync_seconds = 0.0
        self.checkpoint_sync_seconds = 0.0
        self.promotions = 0
        # Seed: the initial partition is checkpoint 0, replicated
        # before the cluster executes anything -- a shard is always
        # recoverable, even if it dies before its first bulk.
        seed = self.checkpoints.take(db, lsn=0, bulk_id=-1)
        self.replicas.replicate_checkpoint(seed, now=0.0)

    # ------------------------------------------------------------------
    def commit_wave(
        self,
        *,
        bulk_id: int,
        wave: int,
        strategy: str,
        results: Sequence,
        journal_epoch: int = 0,
        now: float = 0.0,
    ) -> float:
        """Seal the recorder's entries + ``results`` into a WAL record
        and replicate it; returns the synchronous wait in seconds.

        A wave in which this shard neither executed transactions nor
        mutated its store appends nothing.
        """
        redo = self.recorder.cut()
        if not redo and not results:
            return 0.0
        record = self.wal.append(
            bulk_id=bulk_id,
            wave=wave,
            strategy=strategy,
            results=results,
            redo=redo,
            journal_epoch=journal_epoch,
        )
        wait = self.replicas.replicate_record(record, now)
        self.wal_sync_seconds += wait
        session = telemetry.current()
        if session is not None:
            session.metrics.counter(
                "wal_bytes", "WAL record bytes appended"
            ).inc(record.record_bytes(), shard=self.shard)
            session.metrics.counter(
                "wal_records", "WAL records appended"
            ).inc(shard=self.shard)
        return wait

    def note_bulk(self, db: Database, bulk_id: int, now: float) -> float:
        """Advance the checkpoint cadence; returns checkpoint-ship
        seconds (0.0 when no checkpoint was due)."""
        checkpoint = self.checkpoints.note_bulk(
            db, self.wal.latest_lsn, bulk_id
        )
        if checkpoint is None:
            return 0.0
        return self._after_checkpoint(checkpoint, now)

    def _after_checkpoint(self, checkpoint: Checkpoint, now: float) -> float:
        wait = self.replicas.replicate_checkpoint(checkpoint, now)
        self.checkpoint_sync_seconds += wait
        if self.config.truncate_on_checkpoint:
            self.wal.truncate_through(checkpoint.lsn)
        session = telemetry.current()
        if session is not None:
            session.metrics.counter(
                "checkpoint_bytes", "checkpoint image bytes shipped"
            ).inc(checkpoint.nbytes, shard=self.shard)
        return wait

    # ------------------------------------------------------------------
    def durable_snapshot(self) -> Tuple[Database, int, float, float]:
        """Materialise the shard's current durable state off to the side.

        COW-forks the newest checkpoint and replays the WAL tail past
        it -- the same checkpoint + suffix composition promotion uses,
        but on the *live* shard: because waves are sealed synchronously,
        the result is byte-identical to the shard's volatile partition,
        without touching it. This is the read side of a live range
        migration (:mod:`repro.cluster.elastic`).

        Returns ``(db, tail_records, fork_seconds, replay_seconds)``.
        The fork is metadata-only (O(tables x columns), the COW
        property checkpoints are built on); the tail replay pays the
        same per-record interconnect cost promotion charges.
        """
        if self.recorder.entries:
            raise DurabilityError(
                f"shard {self.shard} has unsealed redo entries; a "
                "durable snapshot is only defined at a wave boundary"
            )
        checkpoint = self.checkpoints.latest
        records = self.wal.suffix(checkpoint.lsn)
        db, _stats = recover_database(checkpoint, records)
        fork_bytes = sum(
            24 * len(table.schema.columns) for table in db.tables.values()
        )
        fork_seconds = self.pcie.transfer_seconds(fork_bytes)
        replay_seconds = sum(
            self.pcie.transfer_seconds(record.record_bytes())
            for record in records
        )
        return db, len(records), fork_seconds, replay_seconds

    def promote(self) -> Tuple[Database, ReplayStats, RecoveryReport]:
        """Restore the newest checkpoint and replay the WAL suffix.

        Returns the recovered database (byte-identical to the shard's
        last durable state), the replay statistics, and a report with
        the simulated recovery cost: the checkpoint image and the WAL
        suffix both cross the interconnect to the promoted device.
        """
        if self.recorder.entries:
            raise DurabilityError(
                f"shard {self.shard} has uncommitted redo entries; "
                "discard them (recorder.cut()) before promoting"
            )
        checkpoint = self.checkpoints.latest
        records = self.wal.suffix(checkpoint.lsn)
        db, stats = recover_database(checkpoint, records)
        # ``seconds`` keeps the historical accumulation order (restore
        # first, then each record) so recovery cost is bit-stable; the
        # restore/replay decomposition is accumulated alongside.
        restore_seconds = self.pcie.transfer_seconds(checkpoint.nbytes)
        seconds = restore_seconds
        replay_seconds = 0.0
        for record in records:
            record_seconds = self.pcie.transfer_seconds(record.record_bytes())
            seconds += record_seconds
            replay_seconds += record_seconds
        self.promotions += 1
        report = RecoveryReport(
            shard=self.shard,
            replica_device=(
                self.replicas.replicas[0].device if self.replicas.replicas else None
            ),
            checkpoint_lsn=checkpoint.lsn,
            checkpoint_bulk=checkpoint.bulk_id,
            replayed_records=stats.records,
            replayed_entries=stats.entries,
            seconds=seconds,
            restore_seconds=restore_seconds,
            replay_seconds=replay_seconds,
        )
        return db, stats, report

    def reseed(self, db: Database, bulk_id: int, now: float) -> float:
        """Fresh post-recovery checkpoint, restoring full redundancy."""
        checkpoint = self.checkpoints.take(db, self.wal.latest_lsn, bulk_id)
        return self._after_checkpoint(checkpoint, now)


class ClusterDurability:
    """Per-shard durability units plus cluster-wide accounting."""

    def __init__(
        self,
        config: DurabilityConfig,
        engines: Sequence,
        n_shards: int,
    ) -> None:
        self.config = config
        self.units: List[ShardDurability] = [
            ShardDurability(shard, engine.db, engine.pcie, config, n_shards)
            for shard, engine in enumerate(engines)
        ]
        for engine, unit in zip(engines, self.units):
            engine.adapter.attach_recorder(unit.recorder)

    def __iter__(self):
        return iter(self.units)

    def unit(self, shard: int) -> ShardDurability:
        return self.units[shard]

    # -- aggregate stats -------------------------------------------------
    @property
    def wal_records(self) -> int:
        return sum(u.wal.appended_records for u in self.units)

    @property
    def wal_bytes(self) -> int:
        return sum(u.wal.appended_bytes for u in self.units)

    @property
    def checkpoints_taken(self) -> int:
        return sum(u.checkpoints.taken for u in self.units)

    @property
    def checkpoint_bytes(self) -> int:
        return sum(u.checkpoints.checkpoint_bytes for u in self.units)

    @property
    def replication_bytes(self) -> int:
        return sum(u.replicas.shipped_bytes for u in self.units)

    @property
    def promotions(self) -> int:
        return sum(u.promotions for u in self.units)
