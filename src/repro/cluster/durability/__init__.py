"""Durability for the sharded cluster: WAL, checkpoints, failover.

The paper's durability story is one sentence -- "applications may
achieve durability with non-logging methods, such as replications on
multiple machines" (Appendix D) -- and this package is that sentence,
engineered: per-shard write-ahead logs of committed waves
(:mod:`~repro.cluster.durability.wal`), copy-on-write checkpoints of
each partition (:mod:`~repro.cluster.durability.checkpoint`), K
synchronous replicas fed over the simulated interconnect with
promotion on failure (:mod:`~repro.cluster.durability.failover`), and
deterministic byte-identical replay
(:mod:`~repro.cluster.durability.replay`). Definition 1 is what makes
this cheap: committed bulks are equivalent to a serial timestamp-order
execution, so a physical redo log replayed in order reproduces the
exact store state -- no quiescing, no cross-shard coordination on
recovery.
"""

from repro.cluster.durability.checkpoint import (
    Checkpoint,
    CheckpointManager,
    take_checkpoint,
)
from repro.cluster.durability.failover import (
    ClusterDurability,
    DurabilityConfig,
    RecoveryReport,
    Replica,
    ReplicaSet,
    ShardDurability,
)
from repro.cluster.durability.replay import (
    ReplayStats,
    recover_database,
    replay_records,
    states_identical,
)
from repro.cluster.durability.wal import (
    LEADER_STRATEGY,
    PARALLEL_STRATEGY,
    PHASE_CHECKPOINT,
    PHASE_RECOVERY,
    PHASE_WAL_SYNC,
    RedoRecorder,
    ShardWAL,
    WalRecord,
    outcomes_of,
)

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "ClusterDurability",
    "DurabilityConfig",
    "LEADER_STRATEGY",
    "PARALLEL_STRATEGY",
    "PHASE_CHECKPOINT",
    "PHASE_RECOVERY",
    "PHASE_WAL_SYNC",
    "RecoveryReport",
    "RedoRecorder",
    "Replica",
    "ReplicaSet",
    "ReplayStats",
    "ShardDurability",
    "ShardWAL",
    "WalRecord",
    "outcomes_of",
    "recover_database",
    "replay_records",
    "states_identical",
    "take_checkpoint",
]
