"""Sharded multi-GPU cluster runtime with pipelined bulk scheduling.

Scales the single-device GPUTx engine to N simulated GPUs: a
:class:`~repro.cluster.router.ShardRouter` partitions the database,
:class:`~repro.cluster.runtime.ClusterTx` executes single-shard waves
in parallel and cross-shard waves through a serial leader pass, and
:class:`~repro.cluster.pipeline.PipelineScheduler` overlaps PCIe
transfer of one bulk with kernel execution of the previous one.
"""

from repro.cluster.coordinator import (
    ClusterStoreAdapter,
    CoordinatorResult,
    CrossShardCoordinator,
    FailoverController,
    KillOrder,
)
from repro.cluster.durability import (
    ClusterDurability,
    DurabilityConfig,
    RecoveryReport,
    ReplicaSet,
    ShardDurability,
    ShardWAL,
    WalRecord,
)
from repro.cluster.partition import key_space_of, partition_database
from repro.cluster.pipeline import (
    BulkTiming,
    PipelineReport,
    PipelineScheduler,
    PipelinedRunReport,
    run_pipelined,
)
from repro.cluster.router import (
    HashShardRouter,
    RangeShardRouter,
    ShardRouter,
    make_router,
    replica_placement,
)
from repro.cluster.runtime import (
    ClusterExecutionResult,
    ClusterTx,
    WaveReport,
)

__all__ = [
    "BulkTiming",
    "ClusterDurability",
    "ClusterExecutionResult",
    "ClusterStoreAdapter",
    "ClusterTx",
    "CoordinatorResult",
    "CrossShardCoordinator",
    "DurabilityConfig",
    "FailoverController",
    "HashShardRouter",
    "KillOrder",
    "PipelineReport",
    "PipelineScheduler",
    "PipelinedRunReport",
    "RangeShardRouter",
    "RecoveryReport",
    "ReplicaSet",
    "ShardDurability",
    "ShardRouter",
    "ShardWAL",
    "WalRecord",
    "WaveReport",
    "key_space_of",
    "make_router",
    "partition_database",
    "replica_placement",
    "run_pipelined",
]
