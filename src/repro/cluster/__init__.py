"""Sharded multi-GPU cluster runtime with pipelined bulk scheduling.

Scales the single-device GPUTx engine to N simulated GPUs: a
:class:`~repro.cluster.router.ShardRouter` partitions the database,
:class:`~repro.cluster.runtime.ClusterTx` executes single-shard waves
in parallel and cross-shard waves through a serial leader pass, and
:class:`~repro.cluster.pipeline.PipelineScheduler` overlaps PCIe
transfer of one bulk with kernel execution of the previous one.
"""

from repro.cluster.coordinator import (
    ClusterStoreAdapter,
    CoordinatorResult,
    CrossShardCoordinator,
)
from repro.cluster.partition import key_space_of, partition_database
from repro.cluster.pipeline import (
    BulkTiming,
    PipelineReport,
    PipelineScheduler,
    PipelinedRunReport,
    run_pipelined,
)
from repro.cluster.router import (
    HashShardRouter,
    RangeShardRouter,
    ShardRouter,
    make_router,
)
from repro.cluster.runtime import (
    ClusterExecutionResult,
    ClusterTx,
    WaveReport,
)

__all__ = [
    "BulkTiming",
    "ClusterExecutionResult",
    "ClusterStoreAdapter",
    "ClusterTx",
    "CoordinatorResult",
    "CrossShardCoordinator",
    "HashShardRouter",
    "PipelineReport",
    "PipelineScheduler",
    "PipelinedRunReport",
    "RangeShardRouter",
    "ShardRouter",
    "WaveReport",
    "key_space_of",
    "make_router",
    "partition_database",
    "run_pipelined",
]
