"""Shard routing: which simulated GPU owns which data item.

The cluster runtime partitions the database horizontally over N
devices, keyed by each table's ``partition_key`` column -- the same
key the paper uses for PART's partitions and for conflict detection
(Section 5.1: the primary key of the root relation of the tree-shaped
schema). A :class:`ShardRouter` maps such a key to the shard that owns
it, and classifies a transaction by the set of shards its declared
accesses touch:

* one shard  -> *single-shard*: executes on that shard's own GPUTx
  engine, concurrently with other shards' work;
* several    -> *cross-shard*: handed to the leader/coordinator pass
  (DiPETrans-style), which executes it serially against a global view.

Routing uses the same static metadata as bulk generation (the access
function / partition function of the transaction type), so a
transaction's home is known before execution -- no speculative
re-routing is ever needed.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.procedure import TransactionType
from repro.errors import ClusterError, ConfigError

#: One row of a range table: keys in ``[lo, hi)`` belong to ``shard``.
RangeEntry = Tuple[int, int, int]


class ShardRouter:
    """Base router: key -> shard, plus transaction classification."""

    kind = "base"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        self.n_shards = n_shards

    # ------------------------------------------------------------------
    def shard_of_key(self, key: Any) -> int:
        """Owning shard of one partition-key value."""
        raise NotImplementedError

    def shard_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`shard_of_key` over an integer key array.

        The base implementation loops; the shipped routers override it
        with pure numpy so database partitioning stays O(1) Python
        calls per *table*, not per row.
        """
        return np.fromiter(
            (self.shard_of_key(k) for k in keys),
            dtype=np.int64,
            count=len(keys),
        )

    # ------------------------------------------------------------------
    def shards_of(
        self, txn_type: TransactionType, params: Tuple[Any, ...]
    ) -> FrozenSet[int]:
        """Shards a transaction touches, from its static metadata.

        The declared access set (conflict items) is authoritative when
        present; otherwise the partition function is consulted. An
        empty result means the transaction touches no shard-resident
        state (e.g. a static-map lookup) and may run anywhere.
        """
        accesses = txn_type.accesses(params)
        if accesses:
            return frozenset(self.shard_of_key(a.item) for a in accesses)
        partition = txn_type.partition_of(params)
        if partition is not None:
            return frozenset((self.shard_of_key(partition),))
        return frozenset()

    def is_cross_shard(
        self, txn_type: TransactionType, params: Tuple[Any, ...]
    ) -> bool:
        return len(self.shards_of(txn_type, params)) > 1

    # ------------------------------------------------------------------
    def split(self, lo: int, hi: int, dst: int) -> List[RangeEntry]:
        """Reassign the key range ``[lo, hi)`` to shard ``dst``.

        Only routers with an explicit range table support live splits;
        everything else (hash most prominently) scatters a contiguous
        key range over every shard, so there is no contiguous slice of
        data a migration could move.
        """
        raise ConfigError(
            f"{self.kind} router has no range table to split; live "
            "shard migration requires router='range'"
        )


class HashShardRouter(ShardRouter):
    """Modulo hashing over the integer partition key.

    The workloads' keys are dense non-negative integers, so plain
    modulo both balances load and keeps the mapping obvious in tests.
    """

    kind = "hash"

    def shard_of_key(self, key: Any) -> int:
        return int(key) % self.n_shards

    def shard_of_keys(self, keys: np.ndarray) -> np.ndarray:
        return np.asarray(keys, dtype=np.int64) % self.n_shards


class RangeShardRouter(ShardRouter):
    """Contiguous key ranges over an explicit, mutable range table.

    Shard ``i`` initially owns its arithmetic slice of
    ``[0, key_space)`` (``lo = ceil(i * key_space / n_shards)``), the
    same mapping the original closed-form router produced. The table is
    an ordered list of ``(lo, hi, shard)`` entries covering the key
    space exactly; :meth:`split` rewrites it *in place*, so every
    holder of this router object -- admission controller, cross-shard
    coordinator, cluster store adapter -- observes the swap atomically
    at the next lookup. Out-of-range keys clamp to the edge entries.
    """

    kind = "range"

    def __init__(self, n_shards: int, key_space: int) -> None:
        super().__init__(n_shards)
        if key_space < 1:
            raise ConfigError("key_space must be >= 1")
        self.key_space = key_space
        #: bumped on every table swap; serving-layer consumers can use
        #: it to detect that routing changed under them.
        self.table_version = 0
        entries = []
        for shard in range(n_shards):
            lo = -(-shard * key_space // n_shards)
            hi = -(-(shard + 1) * key_space // n_shards)
            if hi > lo:
                entries.append((lo, hi, shard))
        self._install(entries)

    # -- table plumbing ------------------------------------------------
    def _install(self, entries: Sequence[RangeEntry]) -> None:
        self._entries: List[RangeEntry] = list(entries)
        self._lows: List[int] = [e[0] for e in self._entries]
        self._lows_arr = np.asarray(self._lows, dtype=np.int64)
        self._owners_arr = np.asarray(
            [e[2] for e in self._entries], dtype=np.int64
        )

    @property
    def range_table(self) -> Tuple[RangeEntry, ...]:
        """The live table, ordered by ``lo`` and gap-free."""
        return tuple(self._entries)

    def ranges_of(self, shard: int) -> Tuple[Tuple[int, int], ...]:
        """The ``(lo, hi)`` ranges currently owned by ``shard``."""
        return tuple(
            (lo, hi) for lo, hi, owner in self._entries if owner == shard
        )

    # -- lookups -------------------------------------------------------
    def shard_of_key(self, key: Any) -> int:
        k = min(max(int(key), 0), self.key_space - 1)
        return self._entries[bisect_right(self._lows, k) - 1][2]

    def shard_of_keys(self, keys: np.ndarray) -> np.ndarray:
        clamped = np.clip(
            np.asarray(keys, dtype=np.int64), 0, self.key_space - 1
        )
        idx = np.searchsorted(self._lows_arr, clamped, side="right") - 1
        return self._owners_arr[idx]

    # -- live splits ---------------------------------------------------
    def split(self, lo: int, hi: int, dst: int) -> List[RangeEntry]:
        """Atomically reassign ``[lo, hi)`` to ``dst``, in place.

        Returns the segments that actually changed owner, as
        ``(lo, hi, previous_owner)`` entries -- exactly the data a
        migration has to move. Adjacent entries with the same owner are
        coalesced, so repeated splits never fragment the table beyond
        the distinct ownership boundaries.
        """
        if not 0 <= dst < self.n_shards:
            raise ConfigError(
                f"split destination shard {dst} out of range for "
                f"{self.n_shards}-shard cluster"
            )
        if not 0 <= lo < hi <= self.key_space:
            raise ConfigError(
                f"split range [{lo}, {hi}) is not a non-empty subrange "
                f"of [0, {self.key_space})"
            )
        moved: List[RangeEntry] = []
        rebuilt: List[RangeEntry] = []
        for e_lo, e_hi, owner in self._entries:
            cut_lo, cut_hi = max(e_lo, lo), min(e_hi, hi)
            if cut_lo >= cut_hi:
                rebuilt.append((e_lo, e_hi, owner))
                continue
            if e_lo < cut_lo:
                rebuilt.append((e_lo, cut_lo, owner))
            rebuilt.append((cut_lo, cut_hi, dst))
            if owner != dst:
                moved.append((cut_lo, cut_hi, owner))
            if cut_hi < e_hi:
                rebuilt.append((cut_hi, e_hi, owner))
        merged: List[RangeEntry] = []
        for entry in rebuilt:
            if merged and merged[-1][2] == entry[2]:
                merged[-1] = (merged[-1][0], entry[1], entry[2])
            else:
                merged.append(entry)
        self._install(merged)
        self.table_version += 1
        return moved


def replica_placement(shard: int, n_shards: int, k: int) -> Tuple[int, ...]:
    """Ring placement of ``k`` replicas for ``shard``.

    Replica ``i`` of shard ``s`` lives on device ``(s + 1 + i) mod N``
    -- the classic chained-declustering layout: no replica shares its
    primary's device, and a device failure leaves every partition it
    hosted recoverable from its successors. ``k >= N`` is rejected
    (the ring would wrap a copy back onto the primary, silently
    providing less fault tolerance than configured). With a single
    device (``N == 1``) the placement degenerates to co-location,
    which is still useful for overhead accounting in benches.
    """
    if not 0 <= shard < n_shards:
        raise ConfigError(
            f"shard {shard} out of range for {n_shards}-shard cluster"
        )
    if k < 0:
        raise ConfigError("replica count must be >= 0")
    if n_shards == 1:
        return tuple(0 for _ in range(k))
    if k >= n_shards:
        raise ConfigError(
            f"{k} replicas do not fit a {n_shards}-device ring without "
            "co-locating a copy with its primary; use k <= "
            f"{n_shards - 1}"
        )
    return tuple((shard + 1 + i) % n_shards for i in range(k))


def make_router(
    router: Union[str, ShardRouter],
    n_shards: int,
    key_space: Optional[int] = None,
) -> ShardRouter:
    """Resolve a router spec: an instance, ``"hash"``, or ``"range"``."""
    if isinstance(router, ShardRouter):
        if router.n_shards != n_shards:
            raise ClusterError(
                f"router covers {router.n_shards} shards, "
                f"cluster has {n_shards}"
            )
        return router
    if router == "hash":
        return HashShardRouter(n_shards)
    if router == "range":
        if key_space is None:
            raise ClusterError("range routing needs a key_space")
        return RangeShardRouter(n_shards, key_space)
    raise ClusterError(
        f"unknown router {router!r}; use 'hash', 'range', or a ShardRouter"
    )
