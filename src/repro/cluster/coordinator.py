"""The leader pass for cross-shard transactions.

Following DiPETrans's leader/follower split, transactions whose access
set spans several shards are not farmed out to shard engines as
independent work: the *leader* (host CPU) quiesces the shards they
touch and drives the wave itself. Two commit paths share one
interpreter:

* **serial** (:meth:`CrossShardCoordinator.execute`) -- the original
  leader pass: every transaction interpreted on the host, serially,
  in timestamp order, the wave's cost being the *sum* of the
  transactions' cycles. Serial execution in timestamp order is
  trivially Definition-1 equivalent; it remains the equivalence
  oracle and the fallback mode.
* **parallel** (:meth:`CrossShardCoordinator.execute_parallel`) -- the
  DiPETrans protocol proper: the leader statically conflict-partitions
  the wave into independent *groups* (connected components of the
  conflict graph, built from the same access declarations the TDG /
  K-SET extractor uses), serialises one signature batch per group
  over its interconnect, and the groups execute on their home shards
  in parallel -- the wave's cost is the *max* over the shard lanes,
  not the sum. Groups are mutually conflict-free, so any interleaving
  of them is Definition-1 equivalent; the simulation interprets the
  wave in timestamp order (exactly the serial pass), which keeps
  outcomes, redo capture and per-shard physical state byte-identical
  to the serial oracle while the simulated clock models the
  follower-parallel schedule.

Two pieces live here besides the coordinator:

* :class:`ClusterStoreAdapter` -- a DeviceStore-protocol view that
  spans every shard: index probes fan out across the shards' rebuilt
  indexes, and row handles are *encoded* as ``shard * stride + local``
  so later reads/writes route back to the owning shard.
* :class:`FailoverController` / :class:`KillOrder` -- failure
  injection at wave boundaries plus recovery orchestration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.cluster.durability.failover import RecoveryReport
from repro.core.procedure import ProcedureRegistry
from repro.core.tdg import TDependencyGraph
from repro.core.txn import Transaction, TxnResult
from repro.cpu.costmodel import CpuCostModel
from repro.cluster.router import ShardRouter
from repro.errors import ClusterError, ExecutionError
from repro.gpu import ops as op_ir
from repro.gpu.spec import XEON_E5520, CPUSpec
from repro.storage.catalog import StoreAdapter

#: Row-handle stride separating shards in the leader's address space.
_SHARD_ROW_STRIDE = 1 << 32


def encode_row(shard: int, row: int) -> int:
    """Pack a shard-local row id into a cluster-global handle."""
    return shard * _SHARD_ROW_STRIDE + row


def decode_row(handle: int) -> Tuple[int, int]:
    """Inverse of :func:`encode_row`."""
    return handle // _SHARD_ROW_STRIDE, handle % _SHARD_ROW_STRIDE


class ClusterStoreAdapter:
    """A global DeviceStore view over every shard's adapter.

    Reads, writes and deletes route by the shard encoded in the row
    handle; inserts route by the inserted row's partition-key value;
    unique-index probes try each shard (keys are disjoint across
    shards, so at most one hits); multi-index probes concatenate the
    shards' results. Static maps are replicated, so shard 0 answers.
    """

    def __init__(
        self, adapters: Sequence[StoreAdapter], router: ShardRouter
    ) -> None:
        if len(adapters) != router.n_shards:
            raise ClusterError(
                f"{len(adapters)} shard adapters for "
                f"{router.n_shards}-shard router"
            )
        self.adapters = list(adapters)
        self.router = router

    # -- DeviceStore protocol -------------------------------------------
    def read(self, table: str, column: str, row: int) -> Any:
        shard, local = decode_row(row)
        return self.adapters[shard].read(table, column, local)

    def write(self, table: str, column: str, row: int, value: Any) -> Any:
        self._reject_replicated_mutation(table)
        shard, local = decode_row(row)
        return self.adapters[shard].write(table, column, local, value)

    def probe(self, index: str, key: Any) -> Any:
        db0 = self.adapters[0].db
        if index in db0.static_maps:
            return self.adapters[0].probe(index, key)
        if db0.index(index).unique:
            for shard, adapter in enumerate(self.adapters):
                row = adapter.probe(index, key)
                if row >= 0:
                    return encode_row(shard, row)
            return -1
        hits: List[int] = []
        for shard, adapter in enumerate(self.adapters):
            hits.extend(
                encode_row(shard, r) for r in adapter.probe(index, key)
            )
        return tuple(hits)

    def insert(self, table: str, values: Sequence[Any]) -> int:
        schema = self.adapters[0].db.table(table).schema
        if schema.partition_key is None:
            raise ClusterError(
                f"cannot route insert into replicated table {table!r}"
            )
        key = values[schema.column_index(schema.partition_key)]
        shard = self.router.shard_of_key(key)
        return encode_row(shard, self.adapters[shard].insert(table, values))

    def delete(self, table: str, row: int) -> None:
        self._reject_replicated_mutation(table)
        shard, local = decode_row(row)
        self.adapters[shard].delete(table, local)

    def _reject_replicated_mutation(self, table: str) -> None:
        """Replicated (partition-key-less) tables are read-only: a
        mutation would touch one replica and desync the others."""
        if self.adapters[0].db.table(table).schema.partition_key is None:
            raise ClusterError(
                f"cannot mutate replicated table {table!r} in the "
                "leader pass; replicated tables are read-only"
            )

    def cancel_insert(self, table: str, row: int) -> None:
        shard, local = decode_row(row)
        self.adapters[shard].cancel_insert(table, local)

    def cancel_delete(self, table: str, row: int) -> None:
        shard, local = decode_row(row)
        self.adapters[shard].cancel_delete(table, local)

    def row_width(self, table: str) -> int:
        return self.adapters[0].row_width(table)

    def apply_batch(self) -> None:
        for adapter in self.adapters:
            adapter.apply_batch()


@dataclass(frozen=True)
class GroupReport:
    """One independent conflict group of a parallel coordinator wave.

    ``start_s``/``seconds`` position the group's execution on its home
    shard's lane, measured from the wave start: the group starts once
    the leader has serialised its dispatch batch *and* the lane is
    free, mirroring how the telemetry layer draws it.
    """

    index: int
    home: int
    size: int
    shards: Tuple[int, ...]
    start_s: float
    seconds: float
    txn_lo: int
    txn_hi: int


@dataclass
class CoordinatorResult:
    """Outcome and timing of one leader wave."""

    results: List[TxnResult] = field(default_factory=list)
    #: Execution time: the serial host interpretation (serial mode) or
    #: the makespan of the follower lanes net of dispatch (parallel).
    exec_seconds: float = 0.0
    #: Quiesce/release round trips for the shards this wave touched.
    sync_seconds: float = 0.0
    #: Leader-side serialisation of the per-group signature batches
    #: (zero for the serial leader, which dispatches nothing).
    dispatch_seconds: float = 0.0
    shards_touched: Tuple[int, ...] = ()
    #: Conflict groups of a parallel wave (empty for the serial pass).
    groups: List[GroupReport] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.exec_seconds + self.dispatch_seconds + self.sync_seconds


@dataclass(frozen=True)
class KillOrder:
    """A scheduled shard failure: fires before ``wave`` of ``bulk``."""

    shard: int
    bulk: int
    wave: int = 0


class FailoverController:
    """Failure injection and recovery orchestration for a durable
    :class:`~repro.cluster.runtime.ClusterTx`.

    Killing a shard models a device loss: the shard's engine and
    partition become unreachable, younger waves of the in-flight bulk
    are halted (requeued in timestamp order), and recovery promotes a
    replica -- checkpoint restore plus WAL-suffix replay -- then
    re-routes the shard id to the promoted device. The controller only
    *drives* the machinery; the durable state itself lives in
    :class:`~repro.cluster.durability.failover.ShardDurability`.
    """

    def __init__(self, cluster: Any) -> None:
        self._cluster = cluster
        self._orders: List[KillOrder] = []

    # -- failure injection ----------------------------------------------
    def kill(self, shard: int) -> None:
        """Take ``shard`` down immediately (between bulks)."""
        self._cluster._kill_shard(shard)

    def schedule_kill(self, shard: int, *, bulk: int, wave: int = 0) -> None:
        """Arrange for ``shard`` to die just before ``wave`` of
        ``bulk`` (bulks and waves are 0-indexed; a kill scheduled for
        a point the run has already passed fires at the next wave
        boundary)."""
        if not 0 <= shard < self._cluster.n_shards:
            raise ClusterError(
                f"no shard {shard} in a {self._cluster.n_shards}-shard "
                "cluster"
            )
        if bulk < 0 or wave < 0:
            raise ClusterError("kill bulk/wave must be >= 0")
        self._orders.append(KillOrder(shard=shard, bulk=bulk, wave=wave))

    def due_kills(self, bulk: int, wave: int) -> List[int]:
        """Pop the shards whose scheduled failure point has arrived."""
        due = [
            o.shard for o in self._orders if (o.bulk, o.wave) <= (bulk, wave)
        ]
        if due:
            self._orders = [
                o for o in self._orders if (o.bulk, o.wave) > (bulk, wave)
            ]
        return due

    @property
    def pending(self) -> Tuple[KillOrder, ...]:
        return tuple(self._orders)

    # -- recovery --------------------------------------------------------
    @property
    def dead(self) -> "frozenset[int]":
        return frozenset(self._cluster._dead)

    def recover(self, shard: int) -> RecoveryReport:
        """Promote a replica of ``shard`` and bring it back online."""
        return self._cluster.recover_shard(shard)

    def recover_all(self) -> List[RecoveryReport]:
        return [self.recover(shard) for shard in sorted(self.dead)]


class CrossShardCoordinator:
    """Leader executor for cross-shard transactions (serial + grouped)."""

    def __init__(
        self,
        registry: ProcedureRegistry,
        adapters: Sequence[StoreAdapter],
        router: ShardRouter,
        *,
        cpu_spec: CPUSpec = XEON_E5520,
        sync_latency_s: float = 0.0,
        dispatch_bytes_per_s: float = 3.4e9,
    ) -> None:
        self.registry = registry
        self.router = router
        self.adapter = ClusterStoreAdapter(adapters, router)
        self.cost = CpuCostModel(cpu_spec)
        #: One-way latency of a leader<->shard control message; a wave
        #: pays a gather and a release hop (the quiesce barrier).
        self.sync_latency_s = sync_latency_s
        #: Leader NIC bandwidth for group dispatch batches: the leader
        #: serialises one signature batch per group, so dispatch time
        #: is bytes-proportional and independent of the shard count.
        self.dispatch_bytes_per_s = dispatch_bytes_per_s

    def barrier_seconds(self) -> float:
        """Cost of one quiesce/release control round trip.

        The same gather + release pair a coordinator wave pays; a live
        router-table swap (:mod:`repro.cluster.elastic`) fences the
        affected shards with exactly one such barrier.
        """
        return 2.0 * self.sync_latency_s

    # ------------------------------------------------------------------
    def _interpret(
        self, transactions: Sequence[Transaction]
    ) -> Tuple[
        List[Transaction],
        List[TxnResult],
        List[float],
        "List[frozenset[int]]",
    ]:
        """Interpret one wave in timestamp order, one txn at a time.

        Shared by both commit paths so their outcomes, store mutations
        and redo capture are identical by construction. Returns the
        timestamp-sorted transactions plus parallel lists of results,
        per-transaction cycles (dispatch included) and shard sets.
        """
        order = sorted(transactions, key=lambda t: t.txn_id)
        results: List[TxnResult] = []
        cycles: List[float] = []
        shard_sets: "List[frozenset[int]]" = []
        for txn in order:
            txn_type = self.registry.get(txn.type_name)
            shard_sets.append(self.router.shards_of(txn_type, txn.params))
            txn_cycles, committed, reason, value = self._run_one(txn)
            cycles.append(txn_cycles + self.cost.dispatch())
            results.append(
                TxnResult(
                    txn_id=txn.txn_id,
                    type_name=txn.type_name,
                    committed=committed,
                    abort_reason=reason,
                    value=value,
                )
            )
        self.adapter.apply_batch()
        return order, results, cycles, shard_sets

    # ------------------------------------------------------------------
    def execute(
        self, transactions: Sequence[Transaction]
    ) -> CoordinatorResult:
        """Run one wave serially, in timestamp order (the oracle)."""
        out = CoordinatorResult()
        if not transactions:
            return out
        order, results, cycles, shard_sets = self._interpret(transactions)
        out.results = results
        total = 0.0
        touched: set = set()
        for txn_cycles, shards in zip(cycles, shard_sets):
            total += txn_cycles
            touched |= shards
        out.exec_seconds = self.cost.seconds(total)
        out.sync_seconds = 2.0 * self.sync_latency_s
        out.shards_touched = tuple(sorted(touched))
        return out

    # ------------------------------------------------------------------
    def conflict_groups(
        self, transactions: Sequence[Transaction]
    ) -> List[List[Transaction]]:
        """Partition a wave into independent conflict groups.

        Groups are the connected components of the wave's conflict
        graph, computed over the TDG's (reduced) edge set -- edge
        reduction never disconnects a component, since every dropped
        conflict edge is covered by a path of retained ones. Members
        of different groups share no data item, so the groups can
        execute in any interleaving (DiPETrans's static analysis).
        Returned in deterministic order (by oldest member), each
        group's members in timestamp order.
        """
        order = sorted(transactions, key=lambda t: t.txn_id)
        graph = TDependencyGraph.build(
            (t.txn_id, self.registry.get(t.type_name).accesses(t.params))
            for t in order
        )
        parent: Dict[int, int] = {t.txn_id: t.txn_id for t in order}

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        for src, dsts in graph.succ.items():
            for dst in dsts:
                ra, rb = find(src), find(dst)
                if ra != rb:
                    # Union by smaller id keeps roots = oldest member.
                    if rb < ra:
                        ra, rb = rb, ra
                    parent[rb] = ra
        members: Dict[int, List[Transaction]] = {}
        for txn in order:
            members.setdefault(find(txn.txn_id), []).append(txn)
        return [members[root] for root in sorted(members)]

    # ------------------------------------------------------------------
    def execute_parallel(
        self, transactions: Sequence[Transaction]
    ) -> CoordinatorResult:
        """Run one wave via the leader/follower group protocol.

        The leader conflict-partitions the wave, serialises one
        signature batch per group over its interconnect, and each
        group executes on its *home shard* -- the least-loaded shard
        among those the group touches. A group starts once its batch
        is dispatched and its lane is free; the wave's execution time
        is the completion of the slowest lane, not the serial sum.

        Physically the wave is interpreted in timestamp order exactly
        like :meth:`execute` -- groups are mutually conflict-free, so
        the timestamp-order interleaving is one of the schedules the
        protocol admits, and outcomes, store state and redo capture
        stay byte-identical to the serial oracle on every path.
        """
        out = CoordinatorResult()
        if not transactions:
            return out
        order, results, cycles, shard_sets = self._interpret(transactions)
        out.results = results
        position = {t.txn_id: i for i, t in enumerate(order)}
        lanes = [0.0] * self.router.n_shards
        dispatch_end = 0.0
        touched: set = set()
        for index, group in enumerate(self.conflict_groups(order)):
            group_shards: set = set()
            group_cycles = 0.0
            group_bytes = 0
            for txn in group:
                at = position[txn.txn_id]
                group_shards |= shard_sets[at]
                group_cycles += cycles[at]
                group_bytes += txn.signature_bytes()
            touched |= group_shards
            dispatch_end += group_bytes / self.dispatch_bytes_per_s
            if group_shards:
                home = min(
                    sorted(group_shards), key=lambda s: (lanes[s], s)
                )
            else:
                # Access-free transactions touch no shard state; spread
                # them round-robin like the runtime's home_shard does.
                home = group[0].txn_id % self.router.n_shards
            seconds = self.cost.seconds(group_cycles)
            start = max(dispatch_end, lanes[home])
            lanes[home] = start + seconds
            out.groups.append(
                GroupReport(
                    index=index,
                    home=home,
                    size=len(group),
                    shards=tuple(sorted(group_shards)),
                    start_s=start,
                    seconds=seconds,
                    txn_lo=group[0].txn_id,
                    txn_hi=group[-1].txn_id,
                )
            )
        makespan = max(lanes)
        # The last dispatched group starts at or after dispatch_end,
        # so the makespan always covers the dispatch serialisation.
        out.dispatch_seconds = dispatch_end
        out.exec_seconds = makespan - dispatch_end
        out.sync_seconds = 2.0 * self.sync_latency_s
        out.shards_touched = tuple(sorted(touched))
        return out

    # ------------------------------------------------------------------
    def _run_one(self, txn: Transaction) -> Tuple[float, bool, str, Any]:
        """Interpret one op stream; serial, with inline rollback."""
        stream = self.registry.build_stream(txn.type_name, txn.params)
        adapter = self.adapter
        cost = self.cost
        cycles = 0.0
        undo: List[Tuple[str, str, int, Any]] = []
        pending_inserts: List[Tuple[str, int]] = []
        pending_deletes: List[Tuple[str, int]] = []
        send: Any = None
        while True:
            try:
                op = stream.send(send)
            except StopIteration as stop:
                return cycles, True, "", stop.value
            except Exception as exc:
                raise ExecutionError(
                    f"cross-shard transaction {txn.txn_id} raised {exc!r}"
                ) from exc
            send = None
            kind = op.kind
            if kind == op_ir.READ:
                send = adapter.read(op.table, op.column, op.row)
                cycles += cost.memory_access()
            elif kind == op_ir.WRITE:
                old = adapter.write(op.table, op.column, op.row, op.value)
                undo.append((op.table, op.column, op.row, old))
                cycles += cost.memory_access()
            elif kind == op_ir.COMPUTE:
                cycles += cost.compute(op.amount)
            elif kind == op_ir.SFU_COMPUTE:
                cycles += cost.sfu(op.amount)
            elif kind == op_ir.INDEX_PROBE:
                send = adapter.probe(op.index, op.key)
                cycles += 2 * cost.memory_access()
            elif kind == op_ir.INSERT_ROW:
                provisional = adapter.insert(op.table, op.values)
                pending_inserts.append((op.table, provisional))
                send = provisional
                cycles += cost.insert(adapter.row_width(op.table))
            elif kind == op_ir.DELETE_ROW:
                adapter.delete(op.table, op.row)
                pending_deletes.append((op.table, op.row))
                cycles += cost.memory_access()
            elif kind == op_ir.ABORT:
                # Serial leader: nothing has observed our writes yet.
                for table, column, row, old in reversed(undo):
                    adapter.write(table, column, row, old)
                    cycles += cost.memory_access()
                for table, provisional in pending_inserts:
                    adapter.cancel_insert(table, provisional)
                for table, row in pending_deletes:
                    adapter.cancel_delete(table, row)
                return cycles, False, op.reason, None
            elif kind in (op_ir.THREAD_FENCE, op_ir.SET_BRANCH):
                cycles += cost.compute(1)
            elif kind in (op_ir.LOCK_ACQUIRE, op_ir.LOCK_RELEASE,
                          op_ir.ATOMIC_ADD, op_ir.ATOMIC_CAS):
                raise ExecutionError(
                    "device locks/atomics cannot appear in the serial "
                    "leader pass"
                )
            else:  # pragma: no cover - closed op table
                raise ExecutionError(f"unknown op kind {kind}")
