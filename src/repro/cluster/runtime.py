"""ClusterTx: the sharded multi-GPU bulk transaction runtime.

Scales the single-device :class:`~repro.core.engine.GPUTx` engine out
to N simulated GPUs, DiPETrans-style:

* the database is partitioned over the shards by a
  :class:`~repro.cluster.router.ShardRouter` (hash or range over each
  table's partition key);
* every shard owns a full ``GPUTx`` engine -- its own SIMT simulator,
  PCIe link and strategy chooser, so each shard profiles *its own*
  sub-bulk and applies Algorithm 1 independently;
* each bulk is segmented, in timestamp order, into **waves** of
  single-shard transactions (one parallel wave: the wave's simulated
  time is the *max* over the shards, not the sum) and of cross-shard
  transactions (one coordinator wave, driven by the leader --
  :mod:`repro.cluster.coordinator`).

Two cross-shard commit modes exist. ``cross_shard="serial"`` is the
original pass: waves are maximal same-kind runs and the leader
interprets each coordinator wave serially. ``cross_shard="parallel"``
(the default) is the DiPETrans leader/follower protocol: segmentation
packs transactions into the earliest wave that keeps every pair
touching a common shard in timestamp order (coalescing the many tiny
runs into a few large waves), and the leader conflict-partitions each
coordinator wave into independent groups that execute on their home
shards in parallel -- the wave costs the max over the shard lanes
plus the leader's dispatch serialisation, not the serial sum.

Correctness (Definition 1, timestamp-order equivalence): within a
parallel wave, transactions on different shards touch disjoint data by
construction, and each shard engine is Definition-1 equivalent on its
own sub-bulk; waves are barrier-separated, coordinator waves are
interpreted in timestamp order in both modes, and the parallel
segmentation orders any two transactions that share a shard (hence
any two that conflict) in timestamp order. The composition is
therefore equivalent to one serial run of the whole bulk -- and the
two modes produce byte-identical outcomes, per-shard physical state
and redo logs; only the simulated clock differs. The cluster
integration tests assert exactly this against the CPU oracle, a
single-device ``GPUTx``, and the serial-leader oracle.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import repro.telemetry as telemetry
from repro.cluster.coordinator import CrossShardCoordinator, FailoverController
from repro.cluster.durability.failover import (
    ClusterDurability,
    DurabilityConfig,
    RecoveryReport,
)
from repro.cluster.durability.replay import states_identical
from repro.cluster.durability.wal import (
    LEADER_STRATEGY,
    PARALLEL_STRATEGY,
    PHASE_CHECKPOINT,
    PHASE_MIGRATION,
    PHASE_RECOVERY,
    PHASE_WAL_SYNC,
)
from repro.cluster.elastic import (
    ElasticConfig,
    ElasticController,
    MigrationPlan,
    MigrationReport,
    ShardMigrator,
)
from repro.cluster.partition import key_space_of, partition_database
from repro.cluster.router import ShardRouter, make_router
from repro.core.backends import EngineOptions
from repro.core.chooser import ChooserThresholds
from repro.core.engine import GPUTx, validate_strategy_options
from repro.core.procedure import TransactionType
from repro.core.txn import ResultPool, Transaction, TransactionPool, TxnResult
from repro.errors import ClusterError, RecoveryError, ShardFailure
from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.spec import C1060, GPUSpec
from repro.storage.catalog import Database

#: Breakdown phases specific to the cluster runtime.
PHASE_COORDINATOR = "coordinator"
PHASE_SYNC = "sync"


class _DeadHandle:
    """Placeholder for a killed shard's engine/adapter.

    Any attribute access models touching a lost device and raises
    :class:`~repro.errors.ShardFailure`; the wave loop checks for dead
    shards before dispatching, so this only fires on misuse.
    """

    def __init__(self, shard: int, role: str) -> None:
        object.__setattr__(self, "_shard", shard)
        object.__setattr__(self, "_role", role)

    def __getattr__(self, name: str):
        raise ShardFailure(
            f"shard {self._shard} is down: its {self._role} is "
            "unreachable until a replica is promoted"
        )


@dataclass
class WaveReport:
    """One barrier-separated wave of a cluster bulk."""

    kind: str  # "parallel" | "coordinator"
    size: int
    seconds: float
    shards: Tuple[int, ...]
    #: Strategy each shard engine chose for its sub-bulk (parallel waves).
    strategies: Dict[int, str] = field(default_factory=dict)
    #: Sub-bulk size per shard (parallel waves); sums to ``size``.
    shard_sizes: Dict[int, int] = field(default_factory=dict)
    #: Independent conflict groups dispatched (parallel-mode
    #: coordinator waves; 0 for serial-leader and parallel waves).
    groups: int = 0
    #: Commit-path label of a coordinator wave ("leader" for the
    #: serial pass, "leader-parallel" for the grouped protocol).
    leader_strategy: str = LEADER_STRATEGY


@dataclass
class ClusterExecutionResult:
    """Outcome of executing one bulk across the cluster."""

    results: List[TxnResult]
    breakdown: TimeBreakdown
    waves: List[WaveReport] = field(default_factory=list)
    n_single_shard: int = 0
    n_cross_shard: int = 0
    #: Cumulative busy seconds per shard engine (for utilisation).
    shard_busy_s: List[float] = field(default_factory=list)
    #: Replica promotions performed during this bulk (auto failover).
    failovers: List[RecoveryReport] = field(default_factory=list)
    #: True when a shard failure halted the bulk's younger waves.
    halted: bool = False
    #: Transactions requeued (halted waves; they rejoin the pool in
    #: timestamp order -- ``Transaction.timestamp``, not arrival
    #: ``submit_time`` -- and execute in a later bulk).
    requeued: int = 0
    #: Conflict groups dispatched by parallel coordinator waves.
    n_groups: int = 0
    #: Live range migrations applied at this bulk's wave boundaries.
    migrations: List[MigrationReport] = field(default_factory=list)
    #: Transactions executed per shard in this bulk's parallel waves.
    shard_txns: Dict[int, int] = field(default_factory=dict)
    #: Aborts per shard in this bulk's parallel waves (conflict signal).
    shard_aborts: Dict[int, int] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.breakdown.total

    @property
    def committed(self) -> int:
        return sum(1 for r in self.results if r.committed)

    @property
    def aborted(self) -> int:
        return sum(1 for r in self.results if not r.committed)

    def throughput_tps(self, count_aborts: bool = True) -> float:
        n = len(self.results) if count_aborts else self.committed
        seconds = self.seconds
        return n / seconds if seconds > 0 else 0.0

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps() / 1e3

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan the shard GPUs were busy."""
        if not self.shard_busy_s or self.seconds <= 0:
            return 0.0
        return sum(self.shard_busy_s) / (len(self.shard_busy_s) * self.seconds)

    def strategies_used(self) -> Dict[str, int]:
        """Transactions executed per strategy across all waves.

        Parallel waves count each shard's actual sub-bulk size under
        the strategy that shard chose; coordinator waves count under
        their commit path ("leader" serial, "leader-parallel" grouped).
        """
        counts: Dict[str, int] = {}
        for wave in self.waves:
            if wave.kind == "coordinator":
                name = wave.leader_strategy
                counts[name] = counts.get(name, 0) + wave.size
            else:
                for shard, name in wave.strategies.items():
                    n = wave.shard_sizes.get(shard, 0)
                    counts[name] = counts.get(name, 0) + n
        return counts

    @property
    def strategy(self) -> str:
        """Dominant strategy of the bulk (most transactions executed).

        Gives cluster results the same feedback key single-engine
        :class:`~repro.core.executor.ExecutionResult` carries, so the
        online serve loop's per-strategy service model works unchanged
        over either backend.
        """
        counts = self.strategies_used()
        if not counts:
            return "none"
        return max(sorted(counts), key=lambda name: counts[name])


class ClusterTx:
    """Bulk transaction execution sharded over N simulated GPUs."""

    def __init__(
        self,
        db: Database,
        procedures: Optional[Sequence[TransactionType]] = None,
        n_shards: int = 2,
        *,
        router: Union[str, ShardRouter] = "hash",
        spec: GPUSpec = C1060,
        block_size: int = 256,
        use_undo_logging: bool = True,
        thresholds: Optional[ChooserThresholds] = None,
        sync_latency_s: Optional[float] = None,
        durability: Optional[DurabilityConfig] = None,
        options: Union[EngineOptions, ClusterOptions, None] = None,
        cross_shard: Optional[str] = None,
        elastic: Optional[ElasticConfig] = None,
    ) -> None:
        if cross_shard is not None and cross_shard not in (
            "parallel", "serial",
        ):
            raise ClusterError(
                f"unknown cross_shard mode {cross_shard!r}; expected "
                "'parallel' (grouped leader/follower) or 'serial' "
                "(the serial-leader oracle)"
            )
        # New-style configuration comes in one ClusterOptions value;
        # the legacy kwargs keep working (with a deprecation warning)
        # and override the corresponding field.
        from repro.config import ClusterOptions, resolve_cluster_options

        self.options: "ClusterOptions" = resolve_cluster_options(
            options,
            durability=durability,
            cross_shard=cross_shard,
            elastic=elastic,
        )
        durability = self.options.durability
        elastic = self.options.elastic
        self.cross_shard = self.options.cross_shard
        key_space = key_space_of(db) if router == "range" else None
        self.router = make_router(router, n_shards, key_space=key_space)
        self.n_shards = self.router.n_shards
        self.spec = spec
        # The source database is partitioned by copy and never mutated.
        shard_dbs = partition_database(db, self.router)
        self.shards: List[GPUTx] = [
            GPUTx(
                shard_db,
                procedures=procedures,
                spec=spec,
                block_size=block_size,
                use_undo_logging=use_undo_logging,
                thresholds=thresholds,
                options=self.options.engine,
            )
            for shard_db in shard_dbs
        ]
        self.registry = self.shards[0].registry
        self.pool = TransactionPool()
        self.results = ResultPool()
        if sync_latency_s is None:
            sync_latency_s = spec.pcie_latency_s
        self.coordinator = CrossShardCoordinator(
            self.registry,
            [engine.adapter for engine in self.shards],
            self.router,
            sync_latency_s=sync_latency_s,
            dispatch_bytes_per_s=spec.pcie_bandwidth_bytes_per_s,
        )
        # -- durability (WAL + checkpoints + replicas) -----------------
        self._bulk_seq = 0
        self._sim_clock = 0.0
        self._dead: "set[int]" = set()
        #: Dead shards' engine objects: the *device* is lost, but the
        #: host-side handle survives -- recovery rebuilds through
        #: GPUTx.rebuild_on so engine configuration cannot diverge,
        #: and verify_recovery diffs against its (last durable) store.
        self._dead_engines: Dict[int, GPUTx] = {}
        self.durability: Optional[ClusterDurability] = None
        self.failover: Optional[FailoverController] = None
        if durability is not None:
            self.durability = ClusterDurability(
                durability, self.shards, self.n_shards
            )
            self.failover = FailoverController(self)
        # -- elastic shards (hot-key detection + live migration) -------
        self.elastic: Optional[ElasticController] = None
        self._migrator: Optional[ShardMigrator] = None
        self._pending_migration: Optional[MigrationPlan] = None
        if elastic is not None:
            if self.router.kind != "range":
                raise ClusterError(
                    "elastic shards require router='range': live "
                    "migration splits a range table, and a "
                    f"{self.router.kind!r} router has none"
                )
            self.elastic = ElasticController(self, elastic)
            self._migrator = self.elastic.migrator

    # ------------------------------------------------------------------
    # Registration and submission (mirrors the GPUTx surface).
    # ------------------------------------------------------------------
    def register(self, txn_type: TransactionType) -> int:
        """Register a stored procedure on every shard's combined kernel."""
        type_ids = {engine.register(txn_type) for engine in self.shards}
        if len(type_ids) != 1:
            raise ClusterError(
                f"shards disagree on type id for {txn_type.name!r}"
            )
        return type_ids.pop()

    def submit(
        self, type_name: str, params: Iterable[Any], submit_time: float = 0.0
    ) -> Transaction:
        return self.pool.submit(type_name, params, submit_time)

    def submit_many(
        self,
        transactions: Iterable[
            Union[Transaction, Tuple[str, tuple], Tuple[str, tuple, float]]
        ],
    ) -> int:
        return self.pool.submit_specs(transactions)

    # ------------------------------------------------------------------
    # Device initialization.
    # ------------------------------------------------------------------
    def initialize_devices(self) -> float:
        """Load every shard's tables/indexes; shards load in parallel,
        so the simulated cost is the slowest shard's."""
        return max(engine.initialize_device() for engine in self.shards)

    # ------------------------------------------------------------------
    # Classification.
    # ------------------------------------------------------------------
    def shards_of(self, txn: Transaction) -> "frozenset[int]":
        return self.router.shards_of(
            self.registry.get(txn.type_name), txn.params
        )

    def home_shard(self, txn: Transaction) -> int:
        """Owning shard of a single-shard transaction.

        Transactions that touch no shard-resident state (empty access
        set and no partition) spread round-robin by timestamp.
        """
        return self._home_shard(txn, self.shards_of(txn))

    def _home_shard(
        self, txn: Transaction, shards: "frozenset[int]"
    ) -> int:
        if len(shards) > 1:
            raise ClusterError(
                f"transaction {txn.txn_id} is cross-shard: {sorted(shards)}"
            )
        if shards:
            return next(iter(shards))
        return txn.txn_id % self.n_shards

    # ------------------------------------------------------------------
    # Bulk execution.
    # ------------------------------------------------------------------
    def run_bulk(
        self,
        strategy: str = "auto",
        max_txns: Optional[int] = None,
        **options: Any,
    ) -> ClusterExecutionResult:
        """Generate one bulk from the pool and execute it cluster-wide."""
        # Reject typo'd options/strategies before the pool is drained.
        validate_strategy_options(strategy, options)
        return self.execute_bulk(
            self.pool.take(max_txns), strategy=strategy, **options
        )

    def execute_bulk(
        self,
        transactions: Sequence[Transaction],
        strategy: str = "auto",
        **options: Any,
    ) -> ClusterExecutionResult:
        """Segment a bulk into waves and execute them in order."""
        validate_strategy_options(strategy, options)
        out = ClusterExecutionResult(
            results=[],
            breakdown=TimeBreakdown(),
            shard_busy_s=[0.0] * self.n_shards,
        )
        if not transactions:
            return out
        self._bulk_seq += 1
        session = telemetry.current()
        bulk_span = None
        prev_defaults = None
        if session is not None:
            tracer = session.tracer
            prev_defaults = (tracer.track, tracer.layer, tracer.dma_track)
            bulk_span = tracer.begin(
                f"cluster_bulk-{self._bulk_seq}",
                cat=telemetry.CAT_BULK,
                track="cluster",
                layer="cluster",
                n_txns=len(transactions),
                n_shards=self.n_shards,
            )
            # Cluster-layer phases (the critical path) default onto
            # the cluster lane; shard sub-bulks repoint per shard.
            tracer.track = "cluster"
            tracer.layer = "cluster"
            tracer.dma_track = "dma"
        try:
            if strategy == "auto" and options:
                # Shard engines each filter the options for their own
                # chosen strategy; dedup their drop warnings to one per
                # bulk instead of one per shard sub-bulk.
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    self._run_waves(transactions, strategy, options, out)
                seen = set()
                for caught_warning in caught:
                    key = (caught_warning.category, str(caught_warning.message))
                    if key not in seen:
                        seen.add(key)
                        warnings.warn_explicit(
                            caught_warning.message,
                            caught_warning.category,
                            caught_warning.filename,
                            caught_warning.lineno,
                        )
            else:
                self._run_waves(transactions, strategy, options, out)
            if self.durability is not None:
                self._durability_epilogue(out)
        finally:
            if session is not None:
                tracer = session.tracer
                tracer.end(
                    bulk_span,
                    waves=len(out.waves),
                    n_single_shard=out.n_single_shard,
                    n_cross_shard=out.n_cross_shard,
                    halted=out.halted,
                    requeued=out.requeued,
                    committed=out.committed,
                    aborted=out.aborted,
                )
                tracer.track, tracer.layer, tracer.dma_track = prev_defaults
                self._record_bulk_metrics(session, out)
        out.results.sort(key=lambda r: r.txn_id)
        self.results.record_many(out.results)
        if not self._dead:
            self._check_replicated_tables()
        self._sim_clock += out.seconds
        return out

    def _record_bulk_metrics(
        self,
        session: "telemetry.TelemetrySession",
        out: ClusterExecutionResult,
    ) -> None:
        """Cluster-level counters and gauges for one executed bulk."""
        metrics = session.metrics
        metrics.counter(
            "cluster_bulks_executed", "bulks run through ClusterTx"
        ).inc()
        metrics.counter(
            "cluster_waves_executed", "barrier-separated cluster waves"
        ).inc(len(out.waves))
        metrics.counter(
            "cross_shard_txns", "transactions routed through the leader"
        ).inc(out.n_cross_shard)
        if out.n_groups:
            metrics.counter(
                "cross_shard_groups",
                "conflict groups dispatched by parallel coordinator waves",
            ).inc(out.n_groups)
        if out.requeued:
            metrics.counter(
                "cluster_requeued_txns",
                "transactions requeued by halted or deferred waves",
            ).inc(out.requeued)
        if out.failovers:
            metrics.counter(
                "shard_failovers", "replica promotions performed"
            ).inc(len(out.failovers))
        for shard, busy in enumerate(out.shard_busy_s):
            metrics.gauge(
                "shard_busy_seconds", "per-shard busy time of the last bulk"
            ).set(busy, shard=shard)
        for shard, executed in out.shard_txns.items():
            if executed:
                metrics.gauge(
                    "shard_conflict_rate",
                    "per-shard abort share of the last bulk's parallel "
                    "waves",
                ).set(out.shard_aborts.get(shard, 0) / executed, shard=shard)
        if out.migrations:
            metrics.counter(
                "cluster_migrations", "live range migrations in bulks"
            ).inc(len(out.migrations))

    def _durability_epilogue(self, out: ClusterExecutionResult) -> None:
        """Post-bulk durability work: auto failover, then checkpoints."""
        config = self.durability.config
        if self._dead and config.auto_failover:
            for shard in sorted(self._dead):
                report = self.recover_shard(shard)
                out.failovers.append(report)
                out.breakdown.add(PHASE_RECOVERY, report.seconds)
        if self._dead:
            return
        bulk_id = self._bulk_seq - 1
        now = self._sim_clock + out.breakdown.total
        # Shards checkpoint concurrently: charge the slowest ship.
        checkpoint_wait = max(
            unit.note_bulk(engine.db, bulk_id, now)
            for unit, engine in zip(self.durability.units, self.shards)
        )
        if checkpoint_wait > 0.0:
            out.breakdown.add(PHASE_CHECKPOINT, checkpoint_wait)
            session = telemetry.current()
            if session is not None:
                session.tracer.phase(
                    PHASE_CHECKPOINT, checkpoint_wait, track="dma"
                )

    def _run_waves(
        self,
        transactions: Sequence[Transaction],
        strategy: str,
        options: Dict[str, Any],
        out: ClusterExecutionResult,
    ) -> None:
        # Route every transaction once; classification and home-shard
        # grouping both read from this map.
        shard_map = {t.txn_id: self.shards_of(t) for t in transactions}
        waves = self._segment(transactions, shard_map)
        bulk_id = self._bulk_seq - 1
        for index, (kind, wave_txns) in enumerate(waves):
            if self.failover is not None:
                for shard in self.failover.due_kills(bulk_id, index):
                    self._kill_shard(shard)
            if self._dead:
                # A device is gone: halt this and every younger wave
                # (running any could commit work out of timestamp
                # order with respect to the dead shard's lost wave).
                # The halted transactions rejoin the pool in timestamp
                # order and execute after promotion.
                rest = [txn for _kind, txns in waves[index:] for txn in txns]
                self.pool.requeue(rest)
                out.requeued += len(rest)
                out.halted = True
                break
            if self._pending_migration is not None:
                # A live migration lands at this wave boundary: the
                # shards it touched are quiesced (nothing in flight
                # across a barrier), so swap now and requeue only the
                # transactions transitively ordered against them.
                self._apply_pending_migration(
                    waves, index, shard_map, out, bulk_id
                )
                kind, wave_txns = waves[index]
                if not wave_txns:
                    continue
            if kind == "parallel":
                deferred = self._run_parallel_wave(
                    wave_txns, shard_map, strategy, options, out,
                    bulk_id, index,
                )
                if deferred:
                    # A shard deferred older transactions (streaming
                    # K-SET): younger waves of this bulk may conflict
                    # with them, so running any would break timestamp
                    # order. Requeue the rest; they rejoin the pool in
                    # timestamp order and execute in a later bulk.
                    rest = [
                        txn
                        for _kind, txns in waves[index + 1:]
                        for txn in txns
                    ]
                    if rest:
                        self.pool.requeue(rest)
                    break
            else:
                self._run_coordinator_wave(
                    wave_txns, shard_map, out, bulk_id, index
                )

    # ------------------------------------------------------------------
    # Elastic shards: live range migration.
    # ------------------------------------------------------------------
    def _migrator_for(self) -> ShardMigrator:
        if self._migrator is None:
            if self.router.kind != "range":
                raise ClusterError(
                    "live migration requires router='range': a "
                    f"{self.router.kind!r} router has no range table "
                    "to split"
                )
            self._migrator = ShardMigrator(self)
        return self._migrator

    def request_migration(self, plan: MigrationPlan) -> None:
        """Queue a range move to land at the next wave boundary.

        The swap happens mid-bulk, between two waves: the affected
        shards are quiesced there by construction, and the wave loop
        requeues (in timestamp order, the halted-bulk path) exactly
        the transactions transitively ordered against them.
        """
        self._migrator_for()  # validates the router up front
        if self._pending_migration is not None:
            raise ClusterError(
                "a migration is already pending; one range move lands "
                "per wave boundary"
            )
        self._pending_migration = plan

    def migrate(self, plan: MigrationPlan) -> MigrationReport:
        """Execute a range move immediately (between bulks).

        Nothing is in flight between bulks, so no requeue is needed;
        the cost still rides the DMA timeline and the simulated clock.
        """
        report = self._migrator_for().migrate(
            plan, bulk_id=self._bulk_seq, wave=0, now=self._sim_clock
        )
        self._sim_clock += report.seconds
        if self.elastic is not None:
            self.elastic.reports.append(report)
        return report

    def maybe_rebalance(self) -> Optional[MigrationReport]:
        """Detect-and-split hook the serve loop calls between bulks.

        No-op unless the cluster was built with ``elastic=``; returns
        the :class:`MigrationReport` when a hot shard was split so the
        caller can charge the simulated cost to its own clock.
        """
        if self.elastic is None or self._dead:
            return None
        report = self.elastic.maybe_rebalance(self._sim_clock)
        if report is not None:
            self._sim_clock += report.seconds
        return report

    def _apply_pending_migration(
        self,
        waves: List[Tuple[str, List[Transaction]]],
        index: int,
        shard_map: Dict[int, "frozenset[int]"],
        out: ClusterExecutionResult,
        bulk_id: int,
    ) -> MigrationReport:
        """Swap the pending range at the wave boundary ``index``.

        Requeues the transactions transitively ordered against the
        swapped shards and filters them out of the remaining waves,
        in place. A single forward pass propagates the taint to a
        fixpoint: the packed segmentation keeps any two transactions
        sharing a shard in timestamp order across (wave index,
        within-wave position), so by the time a transaction is
        visited, every older transaction it is ordered against has
        already contributed its shards to the tainted set. Kept
        transactions therefore share no shard -- transitively -- with
        any requeued one, and every shard still observes its
        transactions in timestamp order (Definition 1).
        """
        plan, self._pending_migration = self._pending_migration, None
        now = self._sim_clock + out.breakdown.total
        report = self._migrator_for().migrate(
            plan, bulk_id=bulk_id, wave=index, now=now
        )
        tainted = {plan.src, plan.dst}
        requeued: List[Transaction] = []
        for k in range(index, len(waves)):
            kind_k, txns_k = waves[k]
            kept: List[Transaction] = []
            for txn in txns_k:
                shards = shard_map[txn.txn_id]
                homes = (
                    shards
                    if shards
                    else frozenset({txn.txn_id % self.n_shards})
                )
                if homes & tainted:
                    tainted |= homes
                    requeued.append(txn)
                else:
                    kept.append(txn)
            waves[k] = (kind_k, kept)
        if requeued:
            self.pool.requeue(requeued)
        report.requeued = len(requeued)
        out.requeued += len(requeued)
        out.migrations.append(report)
        out.breakdown.add(PHASE_MIGRATION, report.seconds)
        return report

    # ------------------------------------------------------------------
    def _segment(
        self,
        transactions: Sequence[Transaction],
        shard_map: Dict[int, "frozenset[int]"],
    ) -> List[Tuple[str, List[Transaction]]]:
        """Segment a timestamp-ordered bulk into waves (mode-specific)."""
        if self.cross_shard == "serial":
            return self._segment_runs(transactions, shard_map)
        return self._segment_packed(transactions, shard_map)

    @staticmethod
    def _segment_runs(
        transactions: Sequence[Transaction],
        shard_map: Dict[int, "frozenset[int]"],
    ) -> List[Tuple[str, List[Transaction]]]:
        """Split a timestamp-ordered bulk into maximal same-kind runs."""
        waves: List[Tuple[str, List[Transaction]]] = []
        for txn in transactions:
            kind = (
                "coordinator"
                if len(shard_map[txn.txn_id]) > 1
                else "parallel"
            )
            if waves and waves[-1][0] == kind:
                waves[-1][1].append(txn)
            else:
                waves.append((kind, [txn]))
        return waves

    def _segment_packed(
        self,
        transactions: Sequence[Transaction],
        shard_map: Dict[int, "frozenset[int]"],
    ) -> List[Tuple[str, List[Transaction]]]:
        """Conflict-aware wave packing for the parallel commit mode.

        Each transaction (visited in timestamp order) joins the
        earliest same-kind wave that keeps every pair of transactions
        touching a **common shard** in timestamp order: at or after
        the youngest same-kind wave sharing a shard (safe to share,
        because a shard engine executes its sub-bulk in timestamp
        order and a coordinator wave is interpreted in timestamp
        order), and strictly after any different-kind wave sharing a
        shard (those only order across the wave barrier).

        Conflicting transactions always share a shard, so this is a
        conservative coarsening of conflict tracking -- and a stronger
        invariant falls out: on every shard, transactions touch its
        state in timestamp order, whatever the wave structure. That
        keeps outcomes, per-shard physical state and halted-bulk
        requeues byte-identical to the serial-leader schedule while
        coalescing the run-segmented bulk's many tiny coordinator
        waves (whose per-wave sync dominates) into a few large ones.
        """
        waves: List[Tuple[str, List[Transaction]]] = []
        touched: List[set] = []
        for txn in transactions:
            shards = shard_map[txn.txn_id]
            kind = "coordinator" if len(shards) > 1 else "parallel"
            earliest = 0
            for index, (wave_kind, _wave_txns) in enumerate(waves):
                if touched[index] & shards:
                    earliest = max(
                        earliest,
                        index if wave_kind == kind else index + 1,
                    )
            for index in range(earliest, len(waves)):
                if waves[index][0] == kind:
                    waves[index][1].append(txn)
                    touched[index] |= shards
                    break
            else:
                waves.append((kind, [txn]))
                touched.append(set(shards))
        return waves

    def _run_parallel_wave(
        self,
        wave_txns: List[Transaction],
        shard_map: Dict[int, "frozenset[int]"],
        strategy: str,
        options: Dict[str, Any],
        out: ClusterExecutionResult,
        bulk_id: int,
        wave_index: int,
    ) -> bool:
        """Run one parallel wave; returns True if any shard deferred
        transactions (the caller must then stop the bulk)."""
        by_shard: Dict[int, List[Transaction]] = {}
        for txn in wave_txns:
            home = self._home_shard(txn, shard_map[txn.txn_id])
            by_shard.setdefault(home, []).append(txn)
        wave = WaveReport(
            kind="parallel",
            size=len(wave_txns),
            seconds=0.0,
            shards=tuple(sorted(by_shard)),
        )
        session = telemetry.current()
        wave_span = None
        if session is not None:
            wave_span = session.tracer.begin(
                f"wave-{wave_index}",
                cat=telemetry.CAT_WAVE,
                kind="parallel",
                size=len(wave_txns),
                shards=sorted(by_shard),
            )
        critical_breakdown: Optional[TimeBreakdown] = None
        any_deferred = False
        wal_wait = 0.0
        now = self._sim_clock + out.breakdown.total
        for shard, txns in sorted(by_shard.items()):
            engine = self.shards[shard]
            if session is not None:
                # Shard sub-bulks run in parallel: each one's engine
                # emission lands on its own lane (including its DMA
                # phases, which would interleave on a shared lane) and
                # at the "shard" layer, leaving the wave cursor alone
                # so every shard starts at the wave start.
                tracer = session.tracer
                tracer.track = tracer.dma_track = f"shard{shard}"
                tracer.layer = "shard"
            try:
                result = engine.execute_bulk(
                    txns, strategy=strategy, **dict(options)
                )
            finally:
                if session is not None:
                    tracer = session.tracer
                    tracer.track = "cluster"
                    tracer.layer = "cluster"
                    tracer.dma_track = "dma"
            # Streaming strategies may defer work into the *shard*
            # pool; pull it back so it rejoins the cluster-wide order.
            leftovers = engine.pool.take()
            if leftovers:
                any_deferred = True
                self.pool.requeue(leftovers)
            out.results.extend(result.results)
            out.shard_busy_s[shard] += result.seconds
            out.shard_txns[shard] = (
                out.shard_txns.get(shard, 0) + len(result.results)
            )
            out.shard_aborts[shard] = out.shard_aborts.get(shard, 0) + sum(
                1 for r in result.results if not r.committed
            )
            wave.strategies[shard] = result.strategy
            wave.shard_sizes[shard] = len(txns)
            if result.seconds > wave.seconds:
                wave.seconds = result.seconds
                critical_breakdown = result.breakdown
            if self.durability is not None:
                # The wave is not acknowledged until the shard's WAL
                # record reaches all its replicas; shards replicate in
                # parallel, so the wave pays the slowest sync.
                wal_wait = max(
                    wal_wait,
                    self.durability.unit(shard).commit_wave(
                        bulk_id=bulk_id,
                        wave=wave_index,
                        strategy=result.strategy,
                        results=result.results,
                        journal_epoch=engine.adapter.journal.epoch,
                        now=now,
                    ),
                )
        # The wave ends when its slowest shard does: charge the
        # critical shard's phase breakdown, not the sum over shards.
        if critical_breakdown is not None:
            for phase, seconds in critical_breakdown.phases.items():
                out.breakdown.add(phase, seconds)
                if session is not None:
                    session.tracer.phase(
                        phase,
                        seconds,
                        track=(
                            "dma" if phase in telemetry.DMA_PHASES else None
                        ),
                    )
        if wal_wait > 0.0:
            out.breakdown.add(PHASE_WAL_SYNC, wal_wait)
            if session is not None:
                session.tracer.phase(PHASE_WAL_SYNC, wal_wait, track="dma")
        if wave_span is not None:
            session.tracer.end(
                wave_span,
                advance_parent=True,
                strategies=wave.strategies,
                deferred=any_deferred,
            )
        out.n_single_shard += len(wave_txns)
        out.waves.append(wave)
        return any_deferred

    def _run_coordinator_wave(
        self,
        wave_txns: List[Transaction],
        shard_map: Dict[int, "frozenset[int]"],
        out: ClusterExecutionResult,
        bulk_id: int,
        wave_index: int,
    ) -> None:
        parallel = self.cross_shard == "parallel"
        leader_strategy = PARALLEL_STRATEGY if parallel else LEADER_STRATEGY
        session = telemetry.current()
        wave_span = None
        if session is not None:
            wave_span = session.tracer.begin(
                f"wave-{wave_index}",
                cat=telemetry.CAT_WAVE,
                kind="coordinator",
                size=len(wave_txns),
                mode=self.cross_shard,
            )
        if parallel:
            result = self.coordinator.execute_parallel(wave_txns)
        else:
            result = self.coordinator.execute(wave_txns)
        out.results.extend(result.results)
        out.breakdown.add(PHASE_COORDINATOR, result.exec_seconds)
        # Group dispatch is interconnect traffic: it rides the sync
        # phase (a DMA-lane phase), so the pipeline scheduler can
        # drain it under the next bulk's kernels.
        out.breakdown.add(
            PHASE_SYNC, result.sync_seconds + result.dispatch_seconds
        )
        for group in result.groups:
            out.shard_busy_s[group.home] += group.seconds
        out.n_groups += len(result.groups)
        if session is not None:
            tracer = session.tracer
            if result.groups:
                # Followers execute their groups in parallel: one span
                # per group on its home shard's lane (starting after
                # the leader serialised its dispatch batch) replaces
                # the single serial leader span on the cluster lane.
                wave_start = (
                    wave_span.sim_start_s
                    if wave_span is not None
                    else tracer.sim_now
                )
                for group in result.groups:
                    tracer.complete(
                        f"group-{group.index}",
                        wave_start + group.start_s,
                        wave_start + group.start_s + group.seconds,
                        parent=wave_span,
                        track=f"shard{group.home}",
                        layer="shard",
                        size=group.size,
                        shards=list(group.shards),
                        txn_lo=group.txn_lo,
                        txn_hi=group.txn_hi,
                    )
            # Cluster-lane phase spans keep the per-phase totals
            # reconcilable with the breakdown in either mode.
            tracer.phase(PHASE_COORDINATOR, result.exec_seconds)
            tracer.phase(
                PHASE_SYNC,
                result.sync_seconds + result.dispatch_seconds,
                track="dma",
            )
        if self.durability is not None:
            # The leader's writes landed on the touched shards' stores
            # (and in their recorders); every shard seals its share of
            # the wave -- the outcomes of the transactions that touch
            # it. Untouched shards append nothing.
            now = self._sim_clock + out.breakdown.total
            wal_wait = 0.0
            for shard in range(self.n_shards):
                wal_wait = max(
                    wal_wait,
                    self.durability.unit(shard).commit_wave(
                        bulk_id=bulk_id,
                        wave=wave_index,
                        strategy=leader_strategy,
                        results=[
                            r
                            for r in result.results
                            if shard in shard_map[r.txn_id]
                        ],
                        journal_epoch=(
                            self.shards[shard].adapter.journal.epoch
                        ),
                        now=now,
                    ),
                )
            if wal_wait > 0.0:
                out.breakdown.add(PHASE_WAL_SYNC, wal_wait)
                if session is not None:
                    session.tracer.phase(
                        PHASE_WAL_SYNC, wal_wait, track="dma"
                    )
        if wave_span is not None:
            session.tracer.end(
                wave_span,
                advance_parent=True,
                shards=sorted(result.shards_touched),
                groups=len(result.groups),
            )
        out.n_cross_shard += len(wave_txns)
        out.waves.append(
            WaveReport(
                kind="coordinator",
                size=len(wave_txns),
                seconds=result.seconds,
                shards=result.shards_touched,
                groups=len(result.groups),
                leader_strategy=leader_strategy,
            )
        )

    # ------------------------------------------------------------------
    # Failure injection and recovery (driven by FailoverController).
    # ------------------------------------------------------------------
    @property
    def bulk_seq(self) -> int:
        """Number of non-empty bulks executed so far."""
        return self._bulk_seq

    @property
    def dead_shards(self) -> "frozenset[int]":
        return frozenset(self._dead)

    def _kill_shard(self, shard: int) -> None:
        """Simulate losing ``shard``'s device: engine and partition
        become unreachable; only the durable state (host/replica-side
        WAL + checkpoints) survives."""
        if self.durability is None:
            raise ClusterError(
                "cannot kill a shard without durability enabled: its "
                "partition would be unrecoverable"
            )
        if not 0 <= shard < self.n_shards:
            raise ClusterError(
                f"no shard {shard} in a {self.n_shards}-shard cluster"
            )
        if shard in self._dead:
            return
        engine = self.shards[shard]
        unit = self.durability.unit(shard)
        # Anything captured since the last sealed wave never reached
        # the replicas; it dies with the device.
        unit.recorder.cut()
        engine.adapter.detach_recorder(unit.recorder)
        # The last durable state equals the volatile state here (waves
        # are sealed synchronously); the handle lets recovery rebuild
        # an identically-configured engine and verify byte-identity.
        self._dead_engines[shard] = engine
        self._dead.add(shard)
        self.shards[shard] = _DeadHandle(shard, "engine")  # type: ignore[assignment]
        self.coordinator.adapter.adapters[shard] = _DeadHandle(
            shard, "store adapter"
        )

    def recover_shard(self, shard: int) -> RecoveryReport:
        """Promote a replica of ``shard``: checkpoint restore + WAL
        suffix replay, then re-route the shard id to the new engine."""
        if self.durability is None:
            raise ClusterError("durability is not enabled on this cluster")
        if shard not in self._dead:
            raise ClusterError(f"shard {shard} is not down")
        unit = self.durability.unit(shard)
        db, _stats, report = unit.promote()
        # Peek (don't pop) so a failed verification leaves the shard
        # dead-but-recoverable instead of unrecoverable.
        lost = self._dead_engines[shard]
        if self.durability.config.verify_recovery:
            if not states_identical(db, lost.db):
                raise RecoveryError(
                    f"promoted replica of shard {shard} diverged from "
                    "the last durable state"
                )
            report.verified = True
        # One reconstruction path: the promoted engine inherits the
        # lost engine's exact configuration and type-id order.
        engine = lost.rebuild_on(db)
        engine.adapter.attach_recorder(unit.recorder)
        del self._dead_engines[shard]
        self.shards[shard] = engine
        self.coordinator.adapter.adapters[shard] = engine.adapter
        if shard == 0:
            # The cluster-level registry was shard 0's; rebind so
            # later register() calls stay visible to routing.
            self.registry = engine.registry
            self.coordinator.registry = engine.registry
        self._dead.discard(shard)
        if self.durability.config.restore_redundancy:
            report.seconds += unit.reseed(
                engine.db, self._bulk_seq - 1,
                self._sim_clock + report.seconds,
            )
        session = telemetry.current()
        if session is not None:
            # One "recovery" phase span (whose seconds reconcile with
            # the breakdown's recovery entry) wrapping the failover
            # decomposition: checkpoint restore, WAL-suffix replay,
            # and the redundancy-restoring reseed checkpoint.
            tracer = session.tracer
            rec = tracer.begin(
                PHASE_RECOVERY,
                cat=telemetry.CAT_PHASE,
                track="cluster",
                layer="cluster",
                shard=shard,
                replica_device=report.replica_device,
                replayed_records=report.replayed_records,
                verified=report.verified,
            )
            tracer.phase(
                "checkpoint_restore",
                report.restore_seconds,
                cat=telemetry.CAT_SPAN,
                track="dma",
            )
            tracer.phase(
                "wal_replay",
                report.replay_seconds,
                cat=telemetry.CAT_SPAN,
                track="dma",
            )
            reseed_seconds = report.seconds - (
                report.restore_seconds + report.replay_seconds
            )
            if reseed_seconds > 0.0:
                tracer.phase(
                    "reseed_checkpoint",
                    reseed_seconds,
                    cat=telemetry.CAT_SPAN,
                    track="dma",
                )
            tracer.end(
                rec,
                sim_end=rec.sim_start_s + report.seconds,
                advance_parent=True,
            )
        return report

    def _check_replicated_tables(self) -> None:
        """Fail loudly if a bulk mutated a replicated table.

        Tables without a partition key are replicated to every shard
        and must stay read-only under cluster execution: a shard-local
        write would touch only one replica and silently break
        Definition 1. Replicas are compared after every bulk; shipped
        workloads partition every table, so this is free in practice.
        """
        def live_rows(db: Database, name: str) -> List[Tuple[Any, ...]]:
            table = db.table(name)
            rows = [
                table.read_row(r)
                for r in range(table.n_rows)
                if not table.is_deleted(r)
            ]
            rows.sort(key=repr)
            return rows

        for name, table in self.shards[0].db.tables.items():
            if table.schema.partition_key is not None:
                continue
            reference = live_rows(self.shards[0].db, name)
            for engine in self.shards[1:]:
                if live_rows(engine.db, name) != reference:
                    raise ClusterError(
                        f"replicated table {name!r} diverged across "
                        "shards: replicated tables are read-only under "
                        "cluster execution"
                    )

    # ------------------------------------------------------------------
    # State inspection (Definition 1 checks).
    # ------------------------------------------------------------------
    def logical_state(self) -> Dict[str, List[Tuple[Any, ...]]]:
        """Canonical merged content per table across all shards.

        Partitioned tables union their shards' rows; replicated tables
        (no partition key) are read from shard 0. Row order follows
        the same canonicalisation as ``Database.logical_state``.
        """
        state: Dict[str, List[Tuple[Any, ...]]] = {}
        db0 = self.shards[0].db
        for name, table in db0.tables.items():
            if table.schema.partition_key is None:
                sources = [db0]
            else:
                sources = [engine.db for engine in self.shards]
            rows: List[Tuple[Any, ...]] = []
            for source in sources:
                src_table = source.table(name)
                rows.extend(
                    src_table.read_row(r)
                    for r in range(src_table.n_rows)
                    if not src_table.is_deleted(r)
                )
            rows.sort(key=repr)
            state[name] = rows
        return state
