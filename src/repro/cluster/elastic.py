"""Elastic shards: hot-shard detection and live range migration.

SMALLBANK-1 shows K-SET throughput degrading monotonically with
zipfian skew, and the bulk-execution model assumes balanced
partitions; a production deployment serving skewed traffic must split
and rebalance hot shards *online*. The primitives already exist in the
durability layer: a copy-on-write checkpoint fork plus a WAL-suffix
replay is exactly a migration mechanism. This module composes them:

* :class:`HotShardDetector` consumes the telemetry
  :class:`~repro.telemetry.metrics.MetricsRegistry` -- per-shard queue
  depth from the serve layer (``shard_queue_depth``), per-shard wave
  time (``shard_busy_seconds``) and conflict rate
  (``shard_conflict_rate``) from the cluster runtime -- and flags the
  shard whose queue has run away from the rest of the fleet;
* :class:`ShardMigrator` moves a key range between shards with zero
  ordering violations: it materialises the source shard's durable
  state off to the side (checkpoint fork + WAL tail,
  :meth:`~repro.cluster.durability.failover.ShardDurability.durable_snapshot`),
  extracts the migrating rows, applies them to the destination and
  deletes them from the source through the ordinary store adapters (so
  redo recorders and indexes stay correct and both shards seal a
  ``migration`` WAL record), then atomically swaps the
  :class:`~repro.cluster.router.RangeShardRouter` table in place.

Migration traffic rides the DMA timeline the way replication does --
the row copy queues on the source's copy engine -- so its cost shows
up honestly in the simulated clock, and in telemetry as a
``migration`` span with ``checkpoint_fork``/``wal_replay``/
``range_copy``/``router_swap`` children.

Orderings: between bulks (the serve loop's ``maybe_rebalance`` hook)
no transaction is in flight, so the swap is trivially safe. At a wave
boundary inside a bulk, :class:`~repro.cluster.runtime.ClusterTx`
requeues -- in timestamp order, the same path halted bulks use -- only
the transactions transitively affected by the swapped shards, so every
shard still observes its transactions in timestamp order
(Definition 1); unaffected shards' waves keep running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

import repro.telemetry as telemetry
from repro.cluster.durability.wal import MIGRATION_STRATEGY, PHASE_MIGRATION
from repro.errors import ClusterError, ConfigError
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "ElasticConfig",
    "HotShardReport",
    "HotShardDetector",
    "MigrationPlan",
    "MigrationReport",
    "ShardMigrator",
    "ElasticController",
    "PHASE_MIGRATION",
]


@dataclass(frozen=True)
class ElasticConfig:
    """Tuning knobs for online hot-shard detection and migration."""

    #: A shard is hot when its admission queue is this many times the
    #: mean depth of the other live shards...
    queue_ratio: float = 2.0
    #: ...and at least this deep in absolute terms (small fleets idle
    #: at tiny depths where ratios are noise).
    min_queue_depth: int = 16
    #: Fraction of the hot shard's widest owned range that stays; the
    #: upper remainder migrates to the least-loaded shard.
    split_fraction: float = 0.5
    #: Bulks that must pass between two migrations (the queue-depth
    #: signal refreshes once per served bulk).
    cooldown_bulks: int = 2
    #: Hard cap on migrations per cluster lifetime (safety valve).
    max_migrations: int = 8

    def __post_init__(self) -> None:
        if self.queue_ratio <= 1.0:
            raise ConfigError("queue_ratio must be > 1.0")
        if self.min_queue_depth < 1:
            raise ConfigError("min_queue_depth must be >= 1")
        if not 0.0 < self.split_fraction < 1.0:
            raise ConfigError("split_fraction must be in (0, 1)")
        if self.cooldown_bulks < 1:
            raise ConfigError("cooldown_bulks must be >= 1")
        if self.max_migrations < 0:
            raise ConfigError("max_migrations must be >= 0")


@dataclass(frozen=True)
class HotShardReport:
    """Why one shard was flagged hot, with the evidence."""

    shard: int
    queue_depth: float
    mean_other_depth: float
    busy_s: float
    mean_other_busy_s: float
    conflict_rate: float
    reason: str


@dataclass(frozen=True)
class MigrationPlan:
    """One range move: ``[key_lo, key_hi)`` from ``src`` to ``dst``."""

    src: int
    dst: int
    key_lo: int
    key_hi: int


@dataclass
class MigrationReport:
    """What one live migration moved, and what it cost."""

    bulk_id: int
    src: int
    dst: int
    key_lo: int
    key_hi: int
    moved_rows: int
    moved_bytes: int
    #: WAL tail records replayed to materialise the durable snapshot.
    tail_records: int
    #: Cost decomposition (simulated seconds).
    fork_seconds: float
    replay_seconds: float
    transfer_seconds: float
    wal_sync_seconds: float
    swap_seconds: float
    seconds: float
    #: Transactions requeued when the swap landed mid-bulk (0 between
    #: bulks).
    requeued: int = 0


class HotShardDetector:
    """Flags hot shards from the telemetry metrics registry.

    The primary signal is per-shard admission queue depth (the serve
    layer refreshes ``shard_queue_depth`` after every dispatched bulk):
    a queue that has run away from the fleet mean is load the shard is
    failing to drain. Wave time (``shard_busy_seconds``) and conflict
    rate (``shard_conflict_rate``) are reported as corroborating
    evidence -- a hot shard with low conflict rate splits well, one
    whose heat is a single contended key does not split below one key.
    """

    def __init__(self, config: Optional[ElasticConfig] = None) -> None:
        self.config = config or ElasticConfig()

    def scan(
        self,
        registry: MetricsRegistry,
        n_shards: int,
        dead: "frozenset[int]" = frozenset(),
    ) -> Optional[HotShardReport]:
        """The hottest flagged shard, or None when the fleet is level."""
        depth_gauge = registry.get("shard_queue_depth")
        if depth_gauge is None:
            return None
        busy_gauge = registry.get("shard_busy_seconds")
        conflict_gauge = registry.get("shard_conflict_rate")
        live = [k for k in range(n_shards) if k not in dead]
        if len(live) < 2:
            return None
        depths = {k: depth_gauge.value(shard=k) for k in live}
        busys = {
            k: busy_gauge.value(shard=k) if busy_gauge is not None else 0.0
            for k in live
        }
        best: Optional[HotShardReport] = None
        for shard in live:
            others = [depths[k] for k in live if k != shard]
            mean_other = sum(others) / len(others)
            depth = depths[shard]
            if depth < self.config.min_queue_depth:
                continue
            if depth <= self.config.queue_ratio * max(mean_other, 1.0):
                continue
            other_busy = [busys[k] for k in live if k != shard]
            report = HotShardReport(
                shard=shard,
                queue_depth=depth,
                mean_other_depth=mean_other,
                busy_s=busys[shard],
                mean_other_busy_s=sum(other_busy) / len(other_busy),
                conflict_rate=(
                    conflict_gauge.value(shard=shard)
                    if conflict_gauge is not None
                    else 0.0
                ),
                reason=(
                    f"queue depth {depth:.0f} vs fleet mean "
                    f"{mean_other:.1f} (ratio "
                    f"{depth / max(mean_other, 1.0):.1f}x > "
                    f"{self.config.queue_ratio}x)"
                ),
            )
            if best is None or report.queue_depth > best.queue_depth:
                best = report
        return best


class ShardMigrator:
    """Performs live range splits on a running :class:`ClusterTx`.

    The migrator reads the source shard through its *durable* state
    (checkpoint fork + WAL tail) -- byte-identical to the volatile
    partition at a wave boundary -- and writes both shards through
    their store adapters, so the move itself is WAL-logged on both
    sides: a shard killed at the next wave boundary replays its half of
    the migration from its own log and recovers byte-identically.
    """

    def __init__(
        self, cluster: Any, config: Optional[ElasticConfig] = None
    ) -> None:
        self.cluster = cluster
        self.config = config or ElasticConfig()

    # ------------------------------------------------------------------
    def plan(
        self,
        hot: HotShardReport,
        registry: Optional[MetricsRegistry] = None,
    ) -> Optional[MigrationPlan]:
        """Split the hot shard's widest range toward the coolest peer."""
        cluster = self.cluster
        ranges = cluster.router.ranges_of(hot.shard)
        if not ranges:
            return None
        lo, hi = max(ranges, key=lambda r: r[1] - r[0])
        if hi - lo < 2:
            return None  # a single key cannot be split
        point = lo + max(1, int((hi - lo) * self.config.split_fraction))
        point = min(point, hi - 1)
        dst = self._coolest_peer(hot.shard, registry)
        if dst is None:
            return None
        return MigrationPlan(
            src=hot.shard, dst=dst, key_lo=point, key_hi=hi
        )

    def _coolest_peer(
        self, src: int, registry: Optional[MetricsRegistry]
    ) -> Optional[int]:
        cluster = self.cluster
        live = [
            k
            for k in range(cluster.n_shards)
            if k != src and k not in cluster.dead_shards
        ]
        if not live:
            return None
        depth_gauge = registry.get("shard_queue_depth") if registry else None
        if depth_gauge is not None:
            return min(live, key=lambda k: (depth_gauge.value(shard=k), k))
        return min(live)

    # ------------------------------------------------------------------
    def migrate(
        self,
        plan: MigrationPlan,
        *,
        bulk_id: int,
        wave: int = 0,
        now: float = 0.0,
    ) -> MigrationReport:
        """Execute ``plan`` at a quiesced boundary; returns the report.

        The caller (ClusterTx) guarantees no transaction is in flight:
        either between bulks or at a wave boundary with the affected
        shards' younger waves about to be requeued.
        """
        cluster = self.cluster
        self._validate(plan)
        src_engine = cluster.shards[plan.src]
        dst_engine = cluster.shards[plan.dst]
        durability = cluster.durability

        # 1. Materialise the source's durable state off to the side:
        #    COW checkpoint fork + WAL tail replay.
        if durability is not None:
            snapshot, tail_records, fork_s, replay_s = (
                durability.unit(plan.src).durable_snapshot()
            )
        else:
            # No durability layer: the live partition *is* the only
            # state; fork it directly (still COW, still metadata-only).
            snapshot = src_engine.db.fork()
            tail_records = 0
            fork_bytes = sum(
                24 * len(t.schema.columns)
                for t in snapshot.tables.values()
            )
            fork_s = src_engine.pcie.transfer_seconds(fork_bytes)
            replay_s = 0.0

        # 2. Extract the migrating rows from the snapshot and move
        #    them through the store adapters (index + WAL capture).
        moved_rows = 0
        moved_bytes = 0
        for name, table in snapshot.tables.items():
            pk_col = table.schema.partition_key
            if pk_col is None:
                continue  # replicated tables live everywhere already
            keys = np.asarray(table.column_array(pk_col), dtype=np.int64)
            mask = (
                ~table.deleted_mask()
                & (keys >= plan.key_lo)
                & (keys < plan.key_hi)
            )
            snap_rows = np.flatnonzero(mask)
            if not len(snap_rows):
                continue
            values = [table.read_row(int(r)) for r in snap_rows]
            src_table = src_engine.db.table(name)
            src_keys = np.asarray(
                src_table.column_array(pk_col), dtype=np.int64
            )
            src_mask = (
                ~src_table.deleted_mask()
                & (src_keys >= plan.key_lo)
                & (src_keys < plan.key_hi)
            )
            live_rows = np.flatnonzero(src_mask)
            if len(live_rows) != len(snap_rows):
                raise ClusterError(
                    f"durable snapshot of shard {plan.src} diverged "
                    f"from its live partition on table {name!r} "
                    f"({len(snap_rows)} vs {len(live_rows)} rows in "
                    f"[{plan.key_lo}, {plan.key_hi})): migration must "
                    "run at a sealed wave boundary"
                )
            dst_engine.adapter.insert_bulk(name, values)
            for row in live_rows:
                src_engine.adapter.delete(name, int(row))
            moved_rows += len(values)
            moved_bytes += len(values) * table.schema.row_width
        dst_engine.adapter.apply_batch()
        src_engine.adapter.apply_batch()

        # 3. The row copy rides the DMA timeline like replication: it
        #    queues on the source's copy engine behind any in-flight
        #    replica feeds.
        transfer_s = 0.0
        if moved_bytes:
            copy_s = src_engine.pcie.to_peer(
                moved_bytes, component="migration"
            )
            if durability is not None:
                sender = durability.unit(plan.src).replicas.sender
                _start, end = sender.schedule(copy_s, ready_at=now)
                transfer_s = end - now
            else:
                transfer_s = copy_s

        # 4. Both shards seal their half of the move. The entries are
        #    ordinary redo images, so a WAL suffix spanning the
        #    migration replays byte-identically.
        wal_wait = 0.0
        if durability is not None:
            for shard in (plan.dst, plan.src):
                wal_wait = max(
                    wal_wait,
                    durability.unit(shard).commit_wave(
                        bulk_id=bulk_id,
                        wave=wave,
                        strategy=MIGRATION_STRATEGY,
                        results=[],
                        journal_epoch=(
                            cluster.shards[shard].adapter.journal.epoch
                        ),
                        now=now,
                    ),
                )

        # 5. Atomic router-table swap: one quiesce/release barrier and
        #    every router holder (admission, coordinator, cluster
        #    adapter) routes by the new ranges.
        moved_segments = cluster.router.split(
            plan.key_lo, plan.key_hi, plan.dst
        )
        if any(owner != plan.src for _lo, _hi, owner in moved_segments):
            raise ClusterError(
                f"migration plan [{plan.key_lo}, {plan.key_hi}) crossed "
                "ranges not owned by the source shard"
            )
        swap_s = cluster.coordinator.barrier_seconds()

        seconds = fork_s + replay_s + transfer_s + wal_wait + swap_s
        report = MigrationReport(
            bulk_id=bulk_id,
            src=plan.src,
            dst=plan.dst,
            key_lo=plan.key_lo,
            key_hi=plan.key_hi,
            moved_rows=moved_rows,
            moved_bytes=moved_bytes,
            tail_records=tail_records,
            fork_seconds=fork_s,
            replay_seconds=replay_s,
            transfer_seconds=transfer_s,
            wal_sync_seconds=wal_wait,
            swap_seconds=swap_s,
            seconds=seconds,
        )
        self._emit_telemetry(report)
        return report

    # ------------------------------------------------------------------
    def _validate(self, plan: MigrationPlan) -> None:
        cluster = self.cluster
        if plan.src == plan.dst:
            raise ConfigError("migration source and destination coincide")
        for shard, role in ((plan.src, "source"), (plan.dst, "destination")):
            if not 0 <= shard < cluster.n_shards:
                raise ConfigError(
                    f"migration {role} shard {shard} out of range"
                )
            if shard in cluster.dead_shards:
                raise ClusterError(
                    f"migration {role} shard {shard} is down"
                )
        # The moving range must be owned by the source, end to end --
        # splitting someone else's keys would move rows the source
        # doesn't have.
        covered = sorted(
            (max(lo, plan.key_lo), min(hi, plan.key_hi))
            for lo, hi in cluster.router.ranges_of(plan.src)
            if lo < plan.key_hi and hi > plan.key_lo
        )
        cursor = plan.key_lo
        for lo, hi in covered:
            if lo > cursor:
                break
            cursor = max(cursor, hi)
        if cursor < plan.key_hi:
            raise ConfigError(
                f"migration range [{plan.key_lo}, {plan.key_hi}) is not "
                f"fully owned by shard {plan.src}"
            )

    def _emit_telemetry(self, report: MigrationReport) -> None:
        session = telemetry.current()
        if session is None:
            return
        tracer = session.tracer
        span = tracer.begin(
            PHASE_MIGRATION,
            cat=telemetry.CAT_PHASE,
            track="cluster",
            layer="cluster",
            src=report.src,
            dst=report.dst,
            key_lo=report.key_lo,
            key_hi=report.key_hi,
            moved_rows=report.moved_rows,
            moved_bytes=report.moved_bytes,
            requeued=report.requeued,
        )
        tracer.phase(
            "checkpoint_fork",
            report.fork_seconds,
            cat=telemetry.CAT_SPAN,
            track="dma",
        )
        tracer.phase(
            "wal_replay",
            report.replay_seconds,
            cat=telemetry.CAT_SPAN,
            track="dma",
        )
        copy_seconds = report.transfer_seconds + report.wal_sync_seconds
        if copy_seconds > 0.0:
            tracer.phase(
                "range_copy",
                copy_seconds,
                cat=telemetry.CAT_SPAN,
                track="dma",
            )
        tracer.phase(
            "router_swap",
            report.swap_seconds,
            cat=telemetry.CAT_SPAN,
            track="dma",
        )
        tracer.end(
            span,
            sim_end=span.sim_start_s + report.seconds,
            advance_parent=True,
        )
        metrics = session.metrics
        metrics.counter(
            "shard_migrations", "live range migrations performed"
        ).inc()
        metrics.counter(
            "migration_rows", "rows moved by live migrations"
        ).inc(report.moved_rows)
        metrics.counter(
            "migration_bytes", "bytes moved by live migrations"
        ).inc(report.moved_bytes)


class ElasticController:
    """Detector + migrator + pacing, bound to one cluster.

    :meth:`ClusterTx.maybe_rebalance` delegates here between bulks:
    scan the metrics registry, plan a split of the hottest shard, and
    execute it immediately (nothing is in flight between bulks).
    """

    def __init__(self, cluster: Any, config: ElasticConfig) -> None:
        self.cluster = cluster
        self.config = config
        self.detector = HotShardDetector(config)
        self.migrator = ShardMigrator(cluster, config)
        self.reports: List[MigrationReport] = []
        self._last_migration_bulk: Optional[int] = None

    def maybe_rebalance(self, now: float) -> Optional[MigrationReport]:
        session = telemetry.current()
        if session is None:
            return None  # no metrics to detect from
        cluster = self.cluster
        if cluster.dead_shards:
            return None  # recovery first, rebalancing second
        if len(self.reports) >= self.config.max_migrations:
            return None
        if (
            self._last_migration_bulk is not None
            and cluster.bulk_seq - self._last_migration_bulk
            < self.config.cooldown_bulks
        ):
            return None
        hot = self.detector.scan(
            session.metrics, cluster.n_shards, dead=cluster.dead_shards
        )
        if hot is None:
            return None
        plan = self.migrator.plan(hot, session.metrics)
        if plan is None:
            return None
        report = self.migrator.migrate(
            plan, bulk_id=cluster.bulk_seq, wave=0, now=now
        )
        self._last_migration_bulk = cluster.bulk_seq
        self.reports.append(report)
        return report
