"""Double-buffered bulk pipelining: overlap PCIe transfer with kernels.

The paper's per-bulk accounting (Figure 16) runs the three components
back to back: signatures in, kernel, results out. With two signature
buffers on the device, the input transfer of bulk *k+1* can ride the
interconnect while the kernel of bulk *k* executes -- the classic CUDA
stream double-buffering pattern. :class:`PipelineScheduler` computes the
resulting makespan from per-bulk phase timings:

* one *compute engine* runs kernels in order (bulk generation +
  execution are device work and stay on this engine);
* one *DMA engine* (the C1060 has a single copy engine) carries both
  directions; inputs are prefetched with priority, result copies drain
  behind the next prefetch;
* ``depth`` signature buffers bound the prefetch distance: input *k*
  cannot start before kernel *k - depth* has consumed its buffer.

The scheduler is pure timing math over the phase breakdowns the
executors already produce, so it composes with any engine that returns
results carrying a :class:`~repro.gpu.costmodel.TimeBreakdown` --
:class:`~repro.core.engine.GPUTx` and
:class:`~repro.cluster.runtime.ClusterTx` alike, which is what
:func:`run_pipelined` exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Sequence

from repro.cluster.durability.wal import PHASE_CHECKPOINT, PHASE_WAL_SYNC
from repro.core.executor import (
    PHASE_EXECUTION,
    PHASE_TRANSFER_IN,
    PHASE_TRANSFER_OUT,
)
from repro.errors import ConfigError
from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.transfer import PCIeModel, TransferTimeline

#: Phases that occupy the DMA engine on the way out of a bulk: result
#: copies, WAL replication, checkpoint ships, and the cross-shard
#: coordinator's sync hops + group-dispatch batches all ride the
#: interconnect, so the pipeline can slide them under the next bulk's
#: kernels just like ordinary output transfers. ("sync" matches
#: :data:`repro.cluster.runtime.PHASE_SYNC`; a literal avoids the
#: import cycle with the cluster runtime.)
_DMA_OUT_PHASES = (PHASE_TRANSFER_OUT, PHASE_WAL_SYNC, PHASE_CHECKPOINT,
                   "sync")


@dataclass(frozen=True)
class BulkTiming:
    """One bulk's pipeline-stage durations (seconds)."""

    transfer_in_s: float
    compute_s: float
    transfer_out_s: float

    @property
    def total_s(self) -> float:
        return self.transfer_in_s + self.compute_s + self.transfer_out_s

    @classmethod
    def from_result(cls, result: Any) -> "BulkTiming":
        """Extract stage timings from an execution result's breakdown.

        Everything that is not interconnect work (generation,
        execution, profiling, coordination) occupies the compute
        engine and cannot overlap with this bulk's own transfers.
        Durability traffic -- WAL replication and checkpoint ships --
        is DMA work and drains with the output copies.
        """
        phases = result.breakdown.phases
        t_in = phases.get(PHASE_TRANSFER_IN, 0.0)
        t_out = sum(phases.get(p, 0.0) for p in _DMA_OUT_PHASES)
        return cls(
            transfer_in_s=t_in,
            compute_s=max(0.0, result.seconds - t_in - t_out),
            transfer_out_s=t_out,
        )

    @classmethod
    def from_bytes(
        cls,
        pcie: PCIeModel,
        input_bytes: int,
        compute_s: float,
        output_bytes: int,
    ) -> "BulkTiming":
        """Build timings from payload sizes via a PCIe model."""
        return cls(
            transfer_in_s=pcie.transfer_seconds(input_bytes),
            compute_s=compute_s,
            transfer_out_s=pcie.transfer_seconds(output_bytes),
        )


@dataclass
class PipelineReport:
    """Serial vs. pipelined makespan of a bulk sequence."""

    timings: List[BulkTiming]
    serial_seconds: float
    pipelined_seconds: float
    depth: int
    #: Transfer seconds the DMA engine was busy (both directions).
    dma_busy_seconds: float = 0.0

    @property
    def saved_seconds(self) -> float:
        return self.serial_seconds - self.pipelined_seconds

    @property
    def speedup(self) -> float:
        if self.pipelined_seconds <= 0.0:
            return 1.0
        return self.serial_seconds / self.pipelined_seconds

    @property
    def compute_seconds(self) -> float:
        return sum(t.compute_s for t in self.timings)

    @property
    def exposed_transfer_seconds(self) -> float:
        """Transfer time the pipeline failed to hide behind kernels."""
        return max(0.0, self.pipelined_seconds - self.compute_seconds)

    def as_breakdown(self) -> TimeBreakdown:
        """The pipelined run as a two-phase breakdown.

        ``execution`` is the device-busy time; ``transfer_exposed`` is
        the copy time left on the critical path, so the breakdown's
        total equals the pipelined makespan.
        """
        out = TimeBreakdown()
        out.add(PHASE_EXECUTION, self.compute_seconds)
        out.add("transfer_exposed", self.exposed_transfer_seconds)
        return out


class PipelineScheduler:
    """Static double-buffer schedule over one DMA + one compute engine."""

    def __init__(self, depth: int = 2) -> None:
        if depth < 1:
            raise ConfigError("pipeline depth must be >= 1")
        self.depth = depth

    def overlap(self, timings: Sequence[BulkTiming]) -> PipelineReport:
        """Compute the pipelined makespan of ``timings`` in order."""
        timings = list(timings)
        dma = TransferTimeline()
        compute_free = 0.0
        kernel_end: List[float] = []
        makespan = 0.0
        for k, timing in enumerate(timings):
            # Input k waits for its buffer slot (freed when the kernel
            # `depth` bulks back consumed it) and the DMA engine.
            slot_free = kernel_end[k - self.depth] if k >= self.depth else 0.0
            _, in_end = dma.schedule(timing.transfer_in_s, ready_at=slot_free)
            k_end = max(compute_free, in_end) + timing.compute_s
            compute_free = k_end
            kernel_end.append(k_end)
            # The previous bulk's results became ready at its kernel's
            # end; they drain behind this prefetch (input priority).
            if k >= 1:
                _, out_end = dma.schedule(
                    timings[k - 1].transfer_out_s, ready_at=kernel_end[k - 1]
                )
                makespan = max(makespan, out_end)
        if timings:
            _, out_end = dma.schedule(
                timings[-1].transfer_out_s, ready_at=kernel_end[-1]
            )
            makespan = max(makespan, out_end, kernel_end[-1])
        return PipelineReport(
            timings=timings,
            serial_seconds=sum(t.total_s for t in timings),
            pipelined_seconds=makespan,
            depth=self.depth,
            dma_busy_seconds=dma.busy_seconds,
        )


@dataclass
class PipelinedRunReport:
    """Results of executing a bulk sequence through a pipeline."""

    results: List[Any] = field(default_factory=list)
    pipeline: PipelineReport = None  # type: ignore[assignment]

    @property
    def executed(self) -> int:
        return sum(len(r.results) for r in self.results)

    @property
    def committed(self) -> int:
        return sum(r.committed for r in self.results)

    @property
    def seconds(self) -> float:
        return self.pipeline.pipelined_seconds

    def throughput_tps(self) -> float:
        seconds = self.seconds
        return self.executed / seconds if seconds > 0 else 0.0

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps() / 1e3


def run_pipelined(
    engine: Any,
    bulks: Iterable[Sequence[Any]],
    *,
    strategy: str = "auto",
    depth: int = 2,
    **options: Any,
) -> PipelinedRunReport:
    """Execute ``bulks`` back to back with transfer/kernel overlap.

    ``engine`` is any bulk engine exposing ``submit_many`` and
    ``run_bulk`` whose results carry a phase breakdown -- a
    :class:`~repro.core.engine.GPUTx` or a
    :class:`~repro.cluster.runtime.ClusterTx`. Each bulk is a sequence
    of ``(type, params)`` specs (or pre-built transactions). State
    effects are identical to running the bulks serially; only the
    clock differs, because the schedule slides bulk *k+1*'s input
    transfer underneath bulk *k*'s kernels.
    """
    report = PipelinedRunReport(pipeline=None)
    for bulk in bulks:
        engine.submit_many(bulk)
        report.results.append(engine.run_bulk(strategy=strategy, **options))
    timings = [BulkTiming.from_result(r) for r in report.results]
    report.pipeline = PipelineScheduler(depth).overlap(timings)
    return report
