"""Database partitioning for the sharded cluster runtime.

``partition_database`` splits one :class:`~repro.storage.catalog.Database`
into N per-shard databases by routing each row's ``partition_key`` value
through a :class:`~repro.cluster.router.ShardRouter`:

* tables *with* a partition key are split row-wise; every shard rebuilds
  the table's indexes over its own rows, so index probes keep working
  unchanged inside a shard;
* tables *without* a partition key are replicated to every shard
  (read-mostly dimension data -- the cluster analogue of the paper's
  host-resident read-only columns);
* static key maps are replicated everywhere: they are read-only by
  construction (Appendix E's "static mapping").

The source database is copied, never mutated, so a caller can partition
the same database at several shard counts and compare final states --
which is exactly what the Definition 1 cluster tests do.

Stored procedures must address rows through index probes (or values
returned by them), not through raw global row positions: after
partitioning, a table's physical row ids are shard-local. All shipped
workloads satisfy this; direct-row micro-style procedures need the
``with_index`` database variant.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.cluster.router import ShardRouter
from repro.storage.catalog import Database

#: Capacity floor per shard table (matches Database.clone's behaviour).
_MIN_CAPACITY = 64


def partition_database(db: Database, router: ShardRouter) -> List[Database]:
    """Split ``db`` into ``router.n_shards`` independent databases.

    Row routing is vectorized: the partition-key column is routed as
    one array and each shard's rows are copied column-wise, so the
    Python-level cost is per table, not per row (paper-scale tables
    are millions of tuples).
    """
    shards = [Database(db.layout) for _ in range(router.n_shards)]
    for name, table in db.tables.items():
        schema = table.schema
        pk_col = schema.partition_key
        live = ~table.deleted_mask()
        columns = {c.name: table.column_array(c.name) for c in schema.columns}
        if pk_col is None:
            masks = [live] * router.n_shards
        else:
            keys = np.asarray(columns[pk_col], dtype=np.int64)
            owners = router.shard_of_keys(keys)
            masks = [
                live & (owners == shard) for shard in range(router.n_shards)
            ]
        for shard_db, mask in zip(shards, masks):
            count = int(mask.sum())
            shard_table = shard_db.create_table(
                schema, capacity=max(_MIN_CAPACITY, count)
            )
            if count:
                shard_table.append_columns(
                    {cname: arr[mask] for cname, arr in columns.items()}
                )
    for ix in db.indexes.values():
        for shard_db in shards:
            shard_db.create_index(ix.name, ix.table, ix.columns,
                                  unique=ix.unique)
    for name, mapping in db.static_maps.items():
        for shard_db in shards:
            shard_db.create_static_map(name, mapping)
    return shards


def key_space_of(db: Database) -> int:
    """Upper bound (exclusive) of the partition-key domain of ``db``.

    Used to size a :class:`~repro.cluster.router.RangeShardRouter` when
    the caller asks for range routing without giving the domain.
    """
    top = 0
    for table in db.tables.values():
        pk_col = table.schema.partition_key
        if pk_col is None:
            continue
        live = ~table.deleted_mask()
        if not live.any():
            continue
        keys = np.asarray(table.column_array(pk_col), dtype=np.int64)
        top = max(top, int(keys[live].max()) + 1)
    return max(top, 1)
