"""Shared infrastructure for the benchmark workloads.

Every workload module (micro, TM1, TPC-B, TPC-C) follows one contract:

* ``build_database(scale_factor, layout="column", ...) -> Database``
* ``build_procedures(...) -> list[TransactionType]`` (or a module-level
  ``PROCEDURES`` for fixed sets)
* ``generate_transactions(db_or_params, n, seed, ...) -> list[(name, params)]``

so benches and examples can swap workloads freely. This module holds
the common random generators (the skewed "first lock with probability
alpha" distribution of Section 6.1, NURand for TPC-C, deterministic
string pools).
"""

from __future__ import annotations

import string
from typing import Callable, List, Sequence, Tuple

import numpy as np

#: A submission-ready transaction: (type name, parameter tuple).
TxnSpec = Tuple[str, tuple]

#: A timed transaction: (type name, parameter tuple, submit time).
TimedTxnSpec = Tuple[str, tuple, float]


def make_rng(seed: int) -> np.random.Generator:
    """The single RNG entry point -- keeps workloads reproducible."""
    return np.random.default_rng(seed)


def skewed_first_item(
    rng: np.random.Generator, n_items: int, alpha: float, size: int
) -> np.ndarray:
    """The paper's skew model (Section 6.1).

    Each transaction targets item 0 with probability ``alpha``;
    otherwise one of the remaining items uniformly. ``alpha = 1/n``
    reproduces a uniform workload; larger alpha deepens the
    T-dependency graph.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be within [0, 1]")
    if n_items < 1:
        raise ValueError("need at least one item")
    hot = rng.random(size) < alpha
    others = rng.integers(1, max(2, n_items), size=size)
    out = np.where(hot, 0, others % n_items)
    if n_items == 1:
        out[:] = 0
    return out.astype(np.int64)


def zipfian_items(
    rng: np.random.Generator, n_items: int, theta: float, size: int
) -> np.ndarray:
    """Zipfian-skewed item choice (the SmallBank/YCSB hot-set model).

    Item ``i`` is drawn with probability proportional to
    ``1 / (i + 1) ** theta``: item 0 is the hottest, popularity falls
    off by rank. ``theta = 0`` is exactly uniform; the YCSB default is
    ``theta ~= 0.99``; larger values concentrate the mass further and
    deepen the T-dependency graph, like the paper's ``alpha`` model
    (:func:`skewed_first_item`) but with a full popularity tail
    instead of one hot item.
    """
    if theta < 0.0:
        raise ValueError("theta must be >= 0")
    if n_items < 1:
        raise ValueError("need at least one item")
    if theta == 0.0:
        return rng.integers(0, n_items, size=size).astype(np.int64)
    weights = 1.0 / np.power(
        np.arange(1, n_items + 1, dtype=np.float64), theta
    )
    return rng.choice(
        n_items, size=size, p=weights / weights.sum()
    ).astype(np.int64)


#: Rejection-sampling budget per pair before falling back to whatever
#: was drawn last. With any balanced router the per-draw success
#: probability is at least 1/n_shards, so 64 tries essentially never
#: fall through; the cap only matters for degenerate shard maps.
_PAIR_MAX_TRIES = 64


def paired_items(
    rng: np.random.Generator,
    n_items: int,
    shard_of: Callable[[int], int],
    cross_fraction: float,
    size: int,
) -> np.ndarray:
    """Item pairs with a tunable cross-shard fraction (cluster workloads).

    Each pair's first item is uniform over ``[0, n_items)``. With
    probability ``cross_fraction`` the partner is drawn from a
    *different* shard (per ``shard_of``); otherwise from the same shard
    (itself, if no distinct same-shard partner turns up). Partners are
    found by rejection sampling, so cost scales with ``size``, not with
    ``n_items`` -- the paper-scale tables (millions of tuples) are
    never enumerated. When every item lives on one shard, no
    cross-shard pair can exist and partners stay local.

    Returns an ``(size, 2)`` int64 array.
    """
    if not 0.0 <= cross_fraction <= 1.0:
        raise ValueError("cross_fraction must be within [0, 1]")
    if n_items < 1:
        raise ValueError("need at least one item")
    firsts = rng.integers(0, n_items, size=size)
    pairs = np.empty((size, 2), dtype=np.int64)
    # Once one cross search exhausts its budget, the shard map is
    # (effectively) single-shard: stop asking for cross partners.
    cross_feasible = True
    for i in range(size):
        a = int(firsts[i])
        home = shard_of(a)
        want_cross = (
            cross_feasible and rng.random() < cross_fraction
        )
        b = a
        found = False
        for _ in range(_PAIR_MAX_TRIES):
            candidate = int(rng.integers(0, n_items))
            is_cross = shard_of(candidate) != home
            if want_cross and is_cross:
                b = candidate
                found = True
                break
            if not want_cross and not is_cross and candidate != a:
                b = candidate
                found = True
                break
        if want_cross and not found:
            cross_feasible = False
        pairs[i, 0] = a
        pairs[i, 1] = b
    return pairs


# ---------------------------------------------------------------------------
# Arrival-time generators (online serving workloads).
# ---------------------------------------------------------------------------
def _require_arrivals(n: int) -> None:
    """Every generator promises at least one arrival.

    ``n < 1`` used to return a silently empty stream, which a serve
    loop treats as "the stream ended before it began" -- a confusing
    no-op far from the misconfiguration that caused it.
    """
    if n < 1:
        raise ValueError("need at least one arrival (n >= 1)")


def uniform_arrival_times(
    n: int, rate_tps: float, start: float = 0.0
) -> np.ndarray:
    """Deterministic arrivals: transaction ``i`` at ``start + i/rate``.

    The arrival model of the paper's response-time experiments
    (Figures 9, 15), exposed for the online ingest runtime.
    """
    _require_arrivals(n)
    if rate_tps <= 0:
        raise ValueError("rate_tps must be positive")
    return start + np.arange(n, dtype=np.float64) / rate_tps


def poisson_arrival_times(
    rng: np.random.Generator, n: int, rate_tps: float, start: float = 0.0
) -> np.ndarray:
    """Poisson process: exponential inter-arrival gaps at ``rate_tps``."""
    _require_arrivals(n)
    if rate_tps <= 0:
        raise ValueError("rate_tps must be positive")
    gaps = rng.exponential(1.0 / rate_tps, size=n)
    return start + np.cumsum(gaps)


def bursty_arrival_times(
    rng: np.random.Generator,
    n: int,
    rate_tps: float,
    period_s: float,
    duty: float = 0.25,
    start: float = 0.0,
) -> np.ndarray:
    """On/off bursts: each period's arrivals land in its first
    ``duty`` fraction, so the instantaneous rate is ``rate/duty``
    during a burst and zero between bursts while the mean rate stays
    ``rate_tps``. The stress case for a fixed bulk former: no single
    size suits both the burst and the lull.
    """
    _require_arrivals(n)
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    if not 0.0 < duty <= 1.0:
        raise ValueError("duty must be within (0, 1]")
    base = poisson_arrival_times(rng, n, rate_tps, start=0.0)
    periods = np.floor(base / period_s)
    phase = base - periods * period_s
    return start + periods * period_s + phase * duty


def diurnal_arrival_times(
    rng: np.random.Generator,
    n: int,
    base_rate_tps: float,
    peak_rate_tps: float,
    period_s: float,
    start: float = 0.0,
) -> np.ndarray:
    """Sinusoidal day/night load: a nonhomogeneous Poisson process
    whose instantaneous rate swings between ``base_rate_tps`` (the
    trough, at t=0) and ``peak_rate_tps`` (half a period later),
    sampled by thinning against the peak rate. ``peak == base``
    degenerates to a plain Poisson process.
    """
    _require_arrivals(n)
    if base_rate_tps <= 0:
        raise ValueError(
            "base_rate_tps must be positive: a rate-0 trough would "
            "stall the stream for half of every period"
        )
    if peak_rate_tps < base_rate_tps:
        raise ValueError("peak_rate_tps must be >= base_rate_tps")
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    times = np.empty(n, dtype=np.float64)
    filled = 0
    t = 0.0
    while filled < n:
        chunk = 2 * max(64, n - filled)
        gaps = rng.exponential(1.0 / peak_rate_tps, size=chunk)
        candidates = t + np.cumsum(gaps)
        t = float(candidates[-1])
        swing = 0.5 * (1.0 - np.cos(2.0 * np.pi * candidates / period_s))
        rate = base_rate_tps + (peak_rate_tps - base_rate_tps) * swing
        kept = candidates[rng.random(chunk) < rate / peak_rate_tps]
        take = min(len(kept), n - filled)
        times[filled:filled + take] = kept[:take]
        filled += take
    return start + times


def flash_crowd_arrival_times(
    rng: np.random.Generator,
    n: int,
    base_rate_tps: float,
    flash_at_s: float,
    flash_rate_tps: float,
    flash_duration_s: float,
    start: float = 0.0,
) -> np.ndarray:
    """A steady Poisson baseline with a flash crowd riding on top: an
    extra burst of arrivals at ``flash_rate_tps`` lands inside the
    window ``[flash_at_s, flash_at_s + flash_duration_s)``. The burst
    takes as many of the ``n`` arrivals as its rate x duration demands
    (capped at ``n - 1`` so the baseline always exists); the rest form
    the baseline.
    """
    _require_arrivals(n)
    if base_rate_tps <= 0:
        raise ValueError("base_rate_tps must be positive")
    if flash_at_s < 0:
        raise ValueError("flash_at_s must be >= 0")
    if flash_rate_tps <= base_rate_tps:
        raise ValueError(
            "flash_rate_tps must exceed base_rate_tps: the flash crowd "
            "is defined as load *above* the baseline"
        )
    if flash_duration_s <= 0:
        raise ValueError(
            "flash_duration_s must be positive: a zero-duration burst "
            "is an empty stream segment, not a flash crowd"
        )
    n_flash = int(round(flash_rate_tps * flash_duration_s))
    if n_flash < 1:
        raise ValueError(
            "flash window too short to hold one arrival at "
            f"flash_rate_tps={flash_rate_tps}"
        )
    n_flash = min(n_flash, n - 1)
    if n_flash < 1:
        raise ValueError("need n >= 2: one baseline plus one flash arrival")
    n_base = n - n_flash
    base = poisson_arrival_times(rng, n_base, base_rate_tps, start=0.0)
    flash = flash_at_s + np.sort(rng.random(n_flash)) * flash_duration_s
    return start + np.sort(np.concatenate([base, flash]))


def timed_specs(
    specs: Sequence[TxnSpec], times: np.ndarray
) -> List[TimedTxnSpec]:
    """Zip specs with nondecreasing arrival times into submit triples."""
    if len(specs) != len(times):
        raise ValueError(
            f"{len(specs)} specs but {len(times)} arrival times"
        )
    return [
        (name, params, float(t)) for (name, params), t in zip(specs, times)
    ]


def nurand(rng: np.random.Generator, a: int, x: int, y: int, c: int = 123) -> int:
    """TPC-C's non-uniform random NURand(A, x, y)."""
    return (
        ((int(rng.integers(0, a + 1)) | int(rng.integers(x, y + 1))) + c)
        % (y - x + 1)
    ) + x


_LAST_NAME_SYLLABLES = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
]


def tpcc_last_name(num: int) -> str:
    """TPC-C customer last name from a three-digit number."""
    return (
        _LAST_NAME_SYLLABLES[(num // 100) % 10]
        + _LAST_NAME_SYLLABLES[(num // 10) % 10]
        + _LAST_NAME_SYLLABLES[num % 10]
    )


def padded_number_string(value: int, width: int) -> str:
    """Fixed-width numeric string (TM1's sub_nbr representation)."""
    return str(value).zfill(width)


def random_string(rng: np.random.Generator, length: int) -> str:
    """Uppercase filler string of exactly ``length`` characters."""
    letters = np.array(list(string.ascii_uppercase))
    return "".join(letters[rng.integers(0, 26, size=length)])


def choose_mix(
    rng: np.random.Generator, mix: Sequence[Tuple[str, float]], size: int
) -> List[str]:
    """Draw ``size`` type names from a (name, weight) mix."""
    names = [name for name, _w in mix]
    weights = np.asarray([w for _n, w in mix], dtype=float)
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=size, p=weights)
    return [names[i] for i in picks]
