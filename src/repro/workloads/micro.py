"""The micro benchmark of Section 6.1.

"Each transaction reads a tuple, performs computation, and then writes
the result back to the tuple. The amount of computation is simulated
with calling the sinf function (100 * x) times." There are ``T``
transaction types -- ``T`` branches of the combined kernel's switch
clause with identical structure (the paper verified the compiler kept
the branches) -- so warp-mates of different types diverge even though
the code paths look alike. Defaults ``T = 8`` and ``x = 16`` follow the
paper; the low/high computation variants of Figure 3 are ``x = 1`` and
``x = 16``.

The lock-acquisition skew (Figure 6) is the ``alpha`` model: a
transaction targets tuple 0 with probability alpha, otherwise a uniform
tuple; larger alpha deepens the T-dependency graph.
"""

from __future__ import annotations

from typing import List

from repro.core.procedure import Access, TransactionType
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database
from repro.storage.schema import ColumnDef, DataType, TableSchema
from repro.workloads.base import TxnSpec, make_rng, skewed_first_item

#: Paper defaults (Section 6.1).
DEFAULT_BRANCHES = 8
DEFAULT_COMPUTE_X = 16
DEFAULT_TUPLES = 8_000_000  # the paper's table size; benches scale down

TABLE = "tuples"


def build_database(n_tuples: int, layout: str = "column") -> Database:
    """One relation of ``n_tuples`` rows: (id, value, payload)."""
    db = Database(layout)
    schema = TableSchema(
        TABLE,
        [
            ColumnDef("id", DataType.INT64),
            ColumnDef("value", DataType.FLOAT64),
            ColumnDef("payload", DataType.INT64),
        ],
        primary_key=("id",),
        partition_key="id",
    )
    table = db.create_table(schema, capacity=n_tuples)
    import numpy as np

    ids = np.arange(n_tuples, dtype=np.int64)
    table.append_columns(
        {
            "id": ids,
            "value": np.zeros(n_tuples, dtype=np.float64),
            "payload": ids * 17 % 1009,
        }
    )
    return db


def build_procedures(
    n_branches: int = DEFAULT_BRANCHES, x: int = DEFAULT_COMPUTE_X
) -> List[TransactionType]:
    """``n_branches`` identically-shaped types: read, sinf(100x), write.

    Rows double as data items and partition ids (the table *is* the
    root relation), so conflicts are per-tuple and PART's partitions
    coarsen tuples via the executor's ``partition_size``.
    """
    if n_branches < 1:
        raise ValueError("need at least one branch")

    def make_type(branch: int) -> TransactionType:
        sinf_calls = 100 * x

        def body(row: int) -> op_ir.OpStream:
            value = yield op_ir.Read(TABLE, "value", row)
            yield op_ir.SfuCompute(sinf_calls)
            yield op_ir.Write(TABLE, "value", row, value + 1.0)
            return value + 1.0

        def access_fn(params) -> List[Access]:
            return [Access(item=int(params[0]), write=True)]

        def partition_fn(params):
            return int(params[0])

        return TransactionType(
            name=f"micro_{branch}",
            body=body,
            access_fn=access_fn,
            partition_fn=partition_fn,
            two_phase=True,
            conflict_classes=frozenset({TABLE}),
        )

    return [make_type(b) for b in range(n_branches)]


def generate_transactions(
    n: int,
    *,
    n_tuples: int,
    n_branches: int = DEFAULT_BRANCHES,
    alpha: float | None = None,
    seed: int = 1,
) -> List[TxnSpec]:
    """Uniform type assignment; tuple choice uniform or alpha-skewed.

    ``alpha=None`` means fully uniform tuples (no hot item). Types are
    assigned round-robin ("transactions are evenly assigned with a
    transaction type").
    """
    rng = make_rng(seed)
    if alpha is None:
        rows = rng.integers(0, n_tuples, size=n)
    else:
        rows = skewed_first_item(rng, n_tuples, alpha, n)
    return [
        (f"micro_{i % n_branches}", (int(rows[i]),))
        for i in range(n)
    ]
