"""The micro benchmark of Section 6.1.

"Each transaction reads a tuple, performs computation, and then writes
the result back to the tuple. The amount of computation is simulated
with calling the sinf function (100 * x) times." There are ``T``
transaction types -- ``T`` branches of the combined kernel's switch
clause with identical structure (the paper verified the compiler kept
the branches) -- so warp-mates of different types diverge even though
the code paths look alike. Defaults ``T = 8`` and ``x = 16`` follow the
paper; the low/high computation variants of Figure 3 are ``x = 1`` and
``x = 16``.

The lock-acquisition skew (Figure 6) is the ``alpha`` model: a
transaction targets tuple 0 with probability alpha, otherwise a uniform
tuple; larger alpha deepens the T-dependency graph.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.procedure import Access, TransactionType
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database
from repro.storage.schema import ColumnDef, DataType, TableSchema
from repro.workloads.base import (
    TxnSpec,
    make_rng,
    paired_items,
    skewed_first_item,
)

#: Paper defaults (Section 6.1).
DEFAULT_BRANCHES = 8
DEFAULT_COMPUTE_X = 16
DEFAULT_TUPLES = 8_000_000  # the paper's table size; benches scale down

TABLE = "tuples"


def build_database(
    n_tuples: int, layout: str = "column", with_index: bool = False
) -> Database:
    """One relation of ``n_tuples`` rows: (id, value, payload).

    ``with_index`` adds the primary-key hash index. The paper's micro
    benchmark addresses tuples by position, so the default stays
    index-free; the *cluster* variants need the index because shard
    partitioning makes physical row positions shard-local (procedures
    must address rows logically, via probes).
    """
    db = Database(layout)
    schema = TableSchema(
        TABLE,
        [
            ColumnDef("id", DataType.INT64),
            ColumnDef("value", DataType.FLOAT64),
            ColumnDef("payload", DataType.INT64),
        ],
        primary_key=("id",),
        partition_key="id",
    )
    table = db.create_table(schema, capacity=n_tuples)
    import numpy as np

    ids = np.arange(n_tuples, dtype=np.int64)
    table.append_columns(
        {
            "id": ids,
            "value": np.zeros(n_tuples, dtype=np.float64),
            "payload": ids * 17 % 1009,
        }
    )
    if with_index:
        db.create_index("tuples_pk", TABLE, ["id"])
    return db


def build_procedures(
    n_branches: int = DEFAULT_BRANCHES, x: int = DEFAULT_COMPUTE_X
) -> List[TransactionType]:
    """``n_branches`` identically-shaped types: read, sinf(100x), write.

    Rows double as data items and partition ids (the table *is* the
    root relation), so conflicts are per-tuple and PART's partitions
    coarsen tuples via the executor's ``partition_size``.
    """
    if n_branches < 1:
        raise ValueError("need at least one branch")

    def make_type(branch: int) -> TransactionType:
        sinf_calls = 100 * x

        def body(row: int) -> op_ir.OpStream:
            value = yield op_ir.Read(TABLE, "value", row)
            yield op_ir.SfuCompute(sinf_calls)
            yield op_ir.Write(TABLE, "value", row, value + 1.0)
            return value + 1.0

        def vector_body(ctx) -> None:
            # The batched form of ``body`` (same per-lane op trace).
            import numpy as np

            rows = ctx.param_i64(0)
            value = ctx.read(TABLE, "value", rows)
            ctx.sfu(sinf_calls)
            ctx.write(TABLE, "value", rows, value + 1.0)
            out = [None] * ctx.n
            for i in np.flatnonzero(ctx.active):
                out[i] = float(value[i]) + 1.0
            ctx.finish(out)

        def access_fn(params) -> List[Access]:
            return [Access(item=int(params[0]), write=True)]

        def partition_fn(params):
            return int(params[0])

        return TransactionType(
            name=f"micro_{branch}",
            body=body,
            access_fn=access_fn,
            partition_fn=partition_fn,
            two_phase=True,
            conflict_classes=frozenset({TABLE}),
            vector_body=vector_body,
        )

    return [make_type(b) for b in range(n_branches)]


def build_pair_procedures(
    n_branches: int = DEFAULT_BRANCHES, x: int = DEFAULT_COMPUTE_X
) -> List[TransactionType]:
    """``n_branches`` two-tuple types for the cluster workloads.

    Each transaction probes the primary-key index for both tuples
    (requires ``build_database(..., with_index=True)``), reads both,
    computes, and writes both back -- the minimal transaction whose
    access set can span two shards. A pair over one tuple (``a == b``)
    degenerates to the single-tuple micro transaction.
    """
    if n_branches < 1:
        raise ValueError("need at least one branch")

    def make_type(branch: int) -> TransactionType:
        sinf_calls = 100 * x

        def body(a: int, b: int) -> op_ir.OpStream:
            row_a = yield op_ir.IndexProbe("tuples_pk", a)
            if row_a < 0:
                yield op_ir.Abort("tuple a not found")
            row_b = yield op_ir.IndexProbe("tuples_pk", b)
            if row_b < 0:
                yield op_ir.Abort("tuple b not found")
            value_a = yield op_ir.Read(TABLE, "value", row_a)
            yield op_ir.SfuCompute(sinf_calls)
            yield op_ir.Write(TABLE, "value", row_a, value_a + 1.0)
            if row_b != row_a:
                value_b = yield op_ir.Read(TABLE, "value", row_b)
                yield op_ir.Write(TABLE, "value", row_b, value_b + 1.0)
            return value_a + 1.0

        def vector_body(ctx) -> None:
            # The batched form of ``body`` (same per-lane op trace).
            import numpy as np

            a = ctx.param_i64(0)
            b = ctx.param_i64(1)
            row_a = ctx.index_probe("tuples_pk", a)
            ctx.abort_where(row_a < 0, "tuple a not found")
            row_b = ctx.index_probe("tuples_pk", b)
            ctx.abort_where(row_b < 0, "tuple b not found")
            value_a = ctx.read(TABLE, "value", row_a)
            ctx.sfu(sinf_calls)
            ctx.write(TABLE, "value", row_a, value_a + 1.0)
            pair = row_b != row_a
            value_b = ctx.read(TABLE, "value", row_b, mask=pair)
            ctx.write(TABLE, "value", row_b, value_b + 1.0, mask=pair)
            out = [None] * ctx.n
            for i in np.flatnonzero(ctx.active):
                out[i] = float(value_a[i]) + 1.0
            ctx.finish(out)

        def access_fn(params) -> List[Access]:
            a, b = int(params[0]), int(params[1])
            if a == b:
                return [Access(item=a, write=True)]
            return [Access(item=a, write=True), Access(item=b, write=True)]

        def partition_fn(params):
            a, b = int(params[0]), int(params[1])
            return a if a == b else None

        return TransactionType(
            name=f"micro_pair_{branch}",
            body=body,
            access_fn=access_fn,
            partition_fn=partition_fn,
            two_phase=True,
            conflict_classes=frozenset({TABLE}),
            vector_body=vector_body,
        )

    return [make_type(b) for b in range(n_branches)]


def generate_pair_transactions(
    n: int,
    *,
    n_tuples: int,
    shard_of: Callable[[int], int],
    cross_shard_fraction: float = 0.0,
    n_branches: int = DEFAULT_BRANCHES,
    seed: int = 1,
) -> List[TxnSpec]:
    """Shard-aware pair workload with a tunable cross-shard fraction.

    ``shard_of`` maps a tuple id to its shard (pass the cluster
    router's ``shard_of_key``); a ``cross_shard_fraction`` of the pairs
    straddle two shards, the rest stay within one.
    """
    rng = make_rng(seed)
    pairs = paired_items(rng, n_tuples, shard_of, cross_shard_fraction, n)
    return [
        (f"micro_pair_{i % n_branches}",
         (int(pairs[i, 0]), int(pairs[i, 1])))
        for i in range(n)
    ]


def generate_transactions(
    n: int,
    *,
    n_tuples: int,
    n_branches: int = DEFAULT_BRANCHES,
    alpha: float | None = None,
    seed: int = 1,
) -> List[TxnSpec]:
    """Uniform type assignment; tuple choice uniform or alpha-skewed.

    ``alpha=None`` means fully uniform tuples (no hot item). Types are
    assigned round-robin ("transactions are evenly assigned with a
    transaction type").
    """
    rng = make_rng(seed)
    if alpha is None:
        rows = rng.integers(0, n_tuples, size=n)
    else:
        rows = skewed_first_item(rng, n_tuples, alpha, n)
    return [
        (f"micro_{i % n_branches}", (int(rows[i]),))
        for i in range(n)
    ]
