"""TM1 (Nokia Network Database Benchmark), Appendix E.

"A telecom workload benchmark originally developed by Nokia. It
consists of seven pre-defined transactions that insert, update, delete
and query tuples from four large tables." The subscriber id is the
partitioning key and -- the schema being a tree rooted at SUBSCRIBER --
also the conflict/lock item (Section 5.1).

Transaction splits (Appendix E): UPDATE_LOCATION,
INSERT_CALL_FORWARDING and DELETE_CALL_FORWARDING address the
subscriber by the *string* representation of the id; since "the mapping
from the string representation and the subscriber ID is static", the
paper splits each into a lookup transaction (string -> s_id via the
static map; conflict-free) and the remainder logic keyed by s_id. The
generator emits both halves back to back.

TM1's characteristically high abort ratio (Appendix E) emerges
naturally: GET_NEW_DESTINATION fails when no active special facility /
matching call-forwarding row exists, GET_ACCESS_DATA when the access
record is absent, INSERT_CALL_FORWARDING on duplicates, and
DELETE_CALL_FORWARDING on missing rows. All types are two-phase (abort
strictly before any write), so TM1 needs no undo logging.

Scaling: the paper's scale factor counts subscribers in the millions;
``subscribers_per_sf`` (default 2 000) scales that down for simulation
speed while keeping every ratio intact. The standard transaction mix is
GET_SUBSCRIBER_DATA 35 %, GET_NEW_DESTINATION 10 %, GET_ACCESS_DATA
35 %, UPDATE_SUBSCRIBER_DATA 2 %, UPDATE_LOCATION 14 %,
INSERT_CALL_FORWARDING 2 %, DELETE_CALL_FORWARDING 2 %.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.procedure import Access, TransactionType
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database
from repro.storage.schema import ColumnDef, DataType, TableSchema
from repro.workloads.base import (
    TimedTxnSpec,
    TxnSpec,
    bursty_arrival_times,
    choose_mix,
    make_rng,
    padded_number_string,
    paired_items,
    poisson_arrival_times,
    timed_specs,
    uniform_arrival_times,
)

SUBSCRIBERS_PER_SF = 2_000
SUB_NBR_WIDTH = 15

SUBSCRIBER = "subscriber"
ACCESS_INFO = "access_info"
SPECIAL_FACILITY = "special_facility"
CALL_FORWARDING = "call_forwarding"

#: Standard TM1 transaction mix (weights in percent).
DEFAULT_MIX = [
    ("tm1_get_subscriber_data", 35.0),
    ("tm1_get_new_destination", 10.0),
    ("tm1_get_access_data", 35.0),
    ("tm1_update_subscriber_data", 2.0),
    ("tm1_update_location", 14.0),
    ("tm1_insert_call_forwarding", 2.0),
    ("tm1_delete_call_forwarding", 2.0),
]

_START_TIMES = (0, 8, 16)


def build_database(
    scale_factor: int,
    subscribers_per_sf: int = SUBSCRIBERS_PER_SF,
    layout: str = "column",
    seed: int = 42,
) -> Database:
    """Populate the four TM1 tables for ``scale_factor``."""
    if scale_factor < 1:
        raise ValueError("scale_factor must be >= 1")
    rng = make_rng(seed)
    n_subs = scale_factor * subscribers_per_sf
    db = Database(layout)

    # -- SUBSCRIBER: full NDBB column set -------------------------------
    # Only the columns the registered transactions touch live on the
    # device; the rest stay host-side for result construction
    # (Appendix E: "read-only columns are stored in the main memory",
    # and only necessary columns are copied -- the source of the
    # column store's device-memory saving in Appendix F.2).
    device_cols = {"s_id", "bit_1", "hex_5", "byte2_9",
                   "msc_location", "vlr_location"}

    def sub_col(name: str, dtype: DataType) -> ColumnDef:
        return ColumnDef(name, dtype, device_resident=name in device_cols)

    sub_cols: List[ColumnDef] = [
        ColumnDef("s_id", DataType.INT64),
        ColumnDef("sub_nbr", DataType.CHAR, length=SUB_NBR_WIDTH,
                  device_resident=False),
    ]
    sub_cols += [sub_col(f"bit_{i}", DataType.BOOL) for i in range(1, 11)]
    sub_cols += [sub_col(f"hex_{i}", DataType.INT32) for i in range(1, 11)]
    sub_cols += [sub_col(f"byte2_{i}", DataType.INT32) for i in range(1, 11)]
    sub_cols += [
        ColumnDef("msc_location", DataType.INT64),
        ColumnDef("vlr_location", DataType.INT64),
    ]
    subscriber = db.create_table(
        TableSchema(
            SUBSCRIBER, sub_cols, primary_key=("s_id",), partition_key="s_id"
        ),
        capacity=n_subs,
    )
    s_ids = np.arange(n_subs, dtype=np.int64)
    columns = {
        "s_id": s_ids,
        "sub_nbr": np.array(
            [padded_number_string(int(s), SUB_NBR_WIDTH) for s in s_ids],
            dtype=object,
        ),
        "msc_location": rng.integers(1, 2**31, size=n_subs),
        "vlr_location": rng.integers(1, 2**31, size=n_subs),
    }
    for i in range(1, 11):
        columns[f"bit_{i}"] = rng.integers(0, 2, size=n_subs).astype(bool)
        columns[f"hex_{i}"] = rng.integers(0, 16, size=n_subs).astype(np.int32)
        columns[f"byte2_{i}"] = rng.integers(0, 256, size=n_subs).astype(np.int32)
    subscriber.append_columns(columns)

    # -- ACCESS_INFO: 1..4 types per subscriber, each present ~62.5 % ---
    ai_rows = {"s_id": [], "ai_type": [], "data1": [], "data2": [],
               "data3": [], "data4": []}
    present_ai = rng.random((n_subs, 4)) < 0.625
    for s in range(n_subs):
        for ai_type in range(1, 5):
            if present_ai[s, ai_type - 1]:
                ai_rows["s_id"].append(s)
                ai_rows["ai_type"].append(ai_type)
                ai_rows["data1"].append(int(rng.integers(0, 256)))
                ai_rows["data2"].append(int(rng.integers(0, 256)))
                ai_rows["data3"].append(int(rng.integers(0, 4096)))
                ai_rows["data4"].append(int(rng.integers(0, 2**20)))
    access_info = db.create_table(
        TableSchema(
            ACCESS_INFO,
            [
                ColumnDef("s_id", DataType.INT64),
                ColumnDef("ai_type", DataType.INT32),
                ColumnDef("data1", DataType.INT32),
                ColumnDef("data2", DataType.INT32),
                ColumnDef("data3", DataType.INT32),
                ColumnDef("data4", DataType.INT32),
            ],
            primary_key=("s_id", "ai_type"),
            partition_key="s_id",
        ),
        capacity=max(64, len(ai_rows["s_id"])),
    )
    access_info.append_columns({k: np.asarray(v) for k, v in ai_rows.items()})

    # -- SPECIAL_FACILITY + CALL_FORWARDING ------------------------------
    sf_rows = {"s_id": [], "sf_type": [], "is_active": [], "error_cntrl": [],
               "data_a": [], "data_b": []}
    cf_rows = {"s_id": [], "sf_type": [], "start_time": [], "end_time": [],
               "numberx": []}
    present_sf = rng.random((n_subs, 4)) < 0.625
    active_sf = rng.random((n_subs, 4)) < 0.85
    for s in range(n_subs):
        for sf_type in range(1, 5):
            if not present_sf[s, sf_type - 1]:
                continue
            sf_rows["s_id"].append(s)
            sf_rows["sf_type"].append(sf_type)
            sf_rows["is_active"].append(bool(active_sf[s, sf_type - 1]))
            sf_rows["error_cntrl"].append(int(rng.integers(0, 256)))
            sf_rows["data_a"].append(int(rng.integers(0, 256)))
            sf_rows["data_b"].append(int(rng.integers(0, 256)))
            for start in _START_TIMES:
                if rng.random() < 0.5:
                    cf_rows["s_id"].append(s)
                    cf_rows["sf_type"].append(sf_type)
                    cf_rows["start_time"].append(start)
                    cf_rows["end_time"].append(start + int(rng.integers(1, 9)))
                    cf_rows["numberx"].append(
                        padded_number_string(int(rng.integers(0, 10**9)),
                                             SUB_NBR_WIDTH)
                    )
    special_facility = db.create_table(
        TableSchema(
            SPECIAL_FACILITY,
            [
                ColumnDef("s_id", DataType.INT64),
                ColumnDef("sf_type", DataType.INT32),
                ColumnDef("is_active", DataType.BOOL),
                ColumnDef("error_cntrl", DataType.INT32),
                ColumnDef("data_a", DataType.INT32),
                ColumnDef("data_b", DataType.INT32),
            ],
            primary_key=("s_id", "sf_type"),
            partition_key="s_id",
        ),
        capacity=max(64, len(sf_rows["s_id"])),
    )
    special_facility.append_columns({k: np.asarray(v) for k, v in sf_rows.items()})

    call_forwarding = db.create_table(
        TableSchema(
            CALL_FORWARDING,
            [
                ColumnDef("s_id", DataType.INT64),
                ColumnDef("sf_type", DataType.INT32),
                ColumnDef("start_time", DataType.INT32),
                ColumnDef("end_time", DataType.INT32),
                ColumnDef("numberx", DataType.CHAR, length=SUB_NBR_WIDTH),
            ],
            primary_key=("s_id", "sf_type", "start_time"),
            partition_key="s_id",
        ),
        capacity=max(64, len(cf_rows["s_id"])),
    )
    call_forwarding.append_columns(
        {k: np.asarray(v, dtype=object if k == "numberx" else None)
         for k, v in cf_rows.items()}
    )

    # -- indexes + the static sub_nbr -> s_id map ------------------------
    db.create_index("subscriber_pk", SUBSCRIBER, ["s_id"])
    db.create_index("access_info_pk", ACCESS_INFO, ["s_id", "ai_type"])
    db.create_index("special_facility_pk", SPECIAL_FACILITY,
                    ["s_id", "sf_type"])
    db.create_index("call_forwarding_pk", CALL_FORWARDING,
                    ["s_id", "sf_type", "start_time"])
    db.create_index("call_forwarding_by_sf", CALL_FORWARDING,
                    ["s_id", "sf_type"], unique=False)
    db.create_static_map(
        "sub_nbr_map",
        {padded_number_string(int(s), SUB_NBR_WIDTH): int(s) for s in s_ids},
    )
    return db


# ---------------------------------------------------------------------------
# Stored procedures.
# ---------------------------------------------------------------------------
def _get_subscriber_data(s_id: int) -> op_ir.OpStream:
    row = yield op_ir.IndexProbe("subscriber_pk", s_id)
    if row < 0:
        yield op_ir.Abort("subscriber not found")
    bit_1 = yield op_ir.Read(SUBSCRIBER, "bit_1", row)
    hex_5 = yield op_ir.Read(SUBSCRIBER, "hex_5", row)
    byte2_9 = yield op_ir.Read(SUBSCRIBER, "byte2_9", row)
    msc = yield op_ir.Read(SUBSCRIBER, "msc_location", row)
    vlr = yield op_ir.Read(SUBSCRIBER, "vlr_location", row)
    return (bool(bit_1), int(hex_5), int(byte2_9), int(msc), int(vlr))


def _get_new_destination(
    s_id: int, sf_type: int, start_time: int, end_time: int
) -> op_ir.OpStream:
    sf_row = yield op_ir.IndexProbe("special_facility_pk", (s_id, sf_type))
    if sf_row < 0:
        yield op_ir.Abort("no special facility")
    active = yield op_ir.Read(SPECIAL_FACILITY, "is_active", sf_row)
    if not active:
        yield op_ir.Abort("special facility inactive")
    cf_candidates = yield op_ir.IndexProbe(
        "call_forwarding_by_sf", (s_id, sf_type)
    )
    for cf_row in cf_candidates:
        cf_start = yield op_ir.Read(CALL_FORWARDING, "start_time", cf_row)
        cf_end = yield op_ir.Read(CALL_FORWARDING, "end_time", cf_row)
        if cf_start <= start_time and end_time < cf_end:
            numberx = yield op_ir.Read(CALL_FORWARDING, "numberx", cf_row)
            return numberx
    yield op_ir.Abort("no matching call forwarding")


def _get_access_data(s_id: int, ai_type: int) -> op_ir.OpStream:
    row = yield op_ir.IndexProbe("access_info_pk", (s_id, ai_type))
    if row < 0:
        yield op_ir.Abort("no access info")
    data1 = yield op_ir.Read(ACCESS_INFO, "data1", row)
    data2 = yield op_ir.Read(ACCESS_INFO, "data2", row)
    data3 = yield op_ir.Read(ACCESS_INFO, "data3", row)
    data4 = yield op_ir.Read(ACCESS_INFO, "data4", row)
    return (int(data1), int(data2), int(data3), int(data4))


def _update_subscriber_data(
    s_id: int, bit_1: bool, sf_type: int, data_a: int
) -> op_ir.OpStream:
    # Phase 1 (reads + abort checks), then phase 2 (writes): two-phase.
    sub_row = yield op_ir.IndexProbe("subscriber_pk", s_id)
    if sub_row < 0:
        yield op_ir.Abort("subscriber not found")
    sf_row = yield op_ir.IndexProbe("special_facility_pk", (s_id, sf_type))
    if sf_row < 0:
        yield op_ir.Abort("no special facility")
    yield op_ir.Write(SUBSCRIBER, "bit_1", sub_row, bool(bit_1))
    yield op_ir.Write(SPECIAL_FACILITY, "data_a", sf_row, int(data_a))
    return None


def _lookup_sub_nbr(sub_nbr: str) -> op_ir.OpStream:
    s_id = yield op_ir.IndexProbe("sub_nbr_map", sub_nbr)
    return int(s_id)


def _update_location(s_id: int, vlr_location: int) -> op_ir.OpStream:
    row = yield op_ir.IndexProbe("subscriber_pk", s_id)
    if row < 0:
        yield op_ir.Abort("subscriber not found")
    yield op_ir.Write(SUBSCRIBER, "vlr_location", row, int(vlr_location))
    return None


def _insert_call_forwarding(
    s_id: int, sf_type: int, start_time: int, end_time: int, numberx: str
) -> op_ir.OpStream:
    sf_row = yield op_ir.IndexProbe("special_facility_pk", (s_id, sf_type))
    if sf_row < 0:
        yield op_ir.Abort("no special facility")
    existing = yield op_ir.IndexProbe(
        "call_forwarding_pk", (s_id, sf_type, start_time)
    )
    if existing >= 0:
        yield op_ir.Abort("call forwarding exists")
    yield op_ir.InsertRow(
        CALL_FORWARDING, (s_id, sf_type, start_time, end_time, numberx)
    )
    return None


def _delete_call_forwarding(
    s_id: int, sf_type: int, start_time: int
) -> op_ir.OpStream:
    row = yield op_ir.IndexProbe(
        "call_forwarding_pk", (s_id, sf_type, start_time)
    )
    if row < 0:
        yield op_ir.Abort("no call forwarding")
    yield op_ir.DeleteRow(CALL_FORWARDING, row)
    return None


def _sync_location(src_s_id: int, dst_s_id: int) -> op_ir.OpStream:
    """Cross-subscriber roaming sync (cluster workloads only).

    Copies the source subscriber's VLR location onto the destination
    subscriber -- the minimal TM1-style transaction whose access set
    spans two subscribers and therefore, under sharding, two shards.
    Two-phase: both existence checks precede the single write.
    """
    src_row = yield op_ir.IndexProbe("subscriber_pk", src_s_id)
    if src_row < 0:
        yield op_ir.Abort("source subscriber not found")
    dst_row = yield op_ir.IndexProbe("subscriber_pk", dst_s_id)
    if dst_row < 0:
        yield op_ir.Abort("destination subscriber not found")
    vlr = yield op_ir.Read(SUBSCRIBER, "vlr_location", src_row)
    yield op_ir.Write(SUBSCRIBER, "vlr_location", dst_row, int(vlr))
    return int(vlr)


# ---------------------------------------------------------------------------
# Vectorized forms of the stored procedures (repro.core.backends).
#
# Each kernel executes a whole same-type wave as batched NumPy column
# operations -- gather, compute, conflict-masked scatter -- while
# recording, per lane, exactly the op sequence the generator body
# above yields. That one-to-one correspondence is what makes the
# vectorized backend's simulated clock identical to the interpreter's,
# so keep the two forms in lockstep when editing either.
# ---------------------------------------------------------------------------
def _key2(a: np.ndarray, b: np.ndarray) -> List[tuple]:
    return list(zip(a.tolist(), b.tolist()))


def _key3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> List[tuple]:
    return list(zip(a.tolist(), b.tolist(), c.tolist()))


def _v_get_subscriber_data(ctx) -> None:
    s_id = ctx.param_i64(0)
    row = ctx.index_probe("subscriber_pk", s_id)
    ctx.abort_where(row < 0, "subscriber not found")
    bit_1 = ctx.read(SUBSCRIBER, "bit_1", row)
    hex_5 = ctx.read(SUBSCRIBER, "hex_5", row)
    byte2_9 = ctx.read(SUBSCRIBER, "byte2_9", row)
    msc = ctx.read(SUBSCRIBER, "msc_location", row)
    vlr = ctx.read(SUBSCRIBER, "vlr_location", row)
    out: List[tuple] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = (
            bool(bit_1[i]), int(hex_5[i]), int(byte2_9[i]),
            int(msc[i]), int(vlr[i]),
        )
    ctx.finish(out)


def _v_get_new_destination(ctx) -> None:
    s_id = ctx.param_i64(0)
    sf_type = ctx.param_i64(1)
    start_time = ctx.param_i64(2)
    end_time = ctx.param_i64(3)
    sf_row = ctx.index_probe("special_facility_pk", _key2(s_id, sf_type))
    ctx.abort_where(sf_row < 0, "no special facility")
    active_flag = ctx.read(SPECIAL_FACILITY, "is_active", sf_row)
    ctx.abort_where(~active_flag.astype(bool), "special facility inactive")
    cand = ctx.index_probe_multi(
        "call_forwarding_by_sf", _key2(s_id, sf_type)
    )
    n_cand = np.fromiter((len(c) for c in cand), np.int64, ctx.n)
    searching = ctx.active.copy()
    slot = 0
    while True:
        has = searching & ctx.active & (n_cand > slot)
        if not has.any():
            break
        rows = np.fromiter(
            (c[slot] if len(c) > slot else 0 for c in cand), np.int64, ctx.n
        )
        cf_start = ctx.read(CALL_FORWARDING, "start_time", rows, mask=has)
        cf_end = ctx.read(CALL_FORWARDING, "end_time", rows, mask=has)
        match = has & (cf_start <= start_time) & (end_time < cf_end)
        if match.any():
            numberx = ctx.read(CALL_FORWARDING, "numberx", rows, mask=match)
            out: List[str] = [None] * ctx.n  # type: ignore[list-item]
            for i in np.flatnonzero(match):
                out[i] = numberx[i]
            ctx.finish_where(match, out)
            searching &= ~match
        slot += 1
    ctx.abort_where(searching, "no matching call forwarding")


def _v_get_access_data(ctx) -> None:
    s_id = ctx.param_i64(0)
    ai_type = ctx.param_i64(1)
    row = ctx.index_probe("access_info_pk", _key2(s_id, ai_type))
    ctx.abort_where(row < 0, "no access info")
    data = [
        ctx.read(ACCESS_INFO, f"data{i}", row) for i in range(1, 5)
    ]
    out: List[tuple] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = tuple(int(d[i]) for d in data)
    ctx.finish(out)


def _v_update_subscriber_data(ctx) -> None:
    s_id = ctx.param_i64(0)
    bit_1 = ctx.param_bool(1)
    sf_type = ctx.param_i64(2)
    data_a = ctx.param_i64(3)
    sub_row = ctx.index_probe("subscriber_pk", s_id)
    ctx.abort_where(sub_row < 0, "subscriber not found")
    sf_row = ctx.index_probe("special_facility_pk", _key2(s_id, sf_type))
    ctx.abort_where(sf_row < 0, "no special facility")
    ctx.write(SUBSCRIBER, "bit_1", sub_row, bit_1)
    ctx.write(SPECIAL_FACILITY, "data_a", sf_row, data_a)
    ctx.finish(None)


def _v_lookup_sub_nbr(ctx) -> None:
    sub_nbr = ctx.param_obj(0)
    s_id = ctx.index_probe("sub_nbr_map", sub_nbr)
    out: List[int] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = int(s_id[i])
    ctx.finish(out)


def _v_update_location(ctx) -> None:
    s_id = ctx.param_i64(0)
    vlr_location = ctx.param_i64(1)
    row = ctx.index_probe("subscriber_pk", s_id)
    ctx.abort_where(row < 0, "subscriber not found")
    ctx.write(SUBSCRIBER, "vlr_location", row, vlr_location)
    ctx.finish(None)


def _v_insert_call_forwarding(ctx) -> None:
    s_id = ctx.param_i64(0)
    sf_type = ctx.param_i64(1)
    start_time = ctx.param_i64(2)
    sf_row = ctx.index_probe("special_facility_pk", _key2(s_id, sf_type))
    ctx.abort_where(sf_row < 0, "no special facility")
    existing = ctx.index_probe(
        "call_forwarding_pk", _key3(s_id, sf_type, start_time)
    )
    ctx.abort_where(existing >= 0, "call forwarding exists")
    # The row tuple IS the signature's parameter tuple, as in the
    # generator form's InsertRow(...params...).
    ctx.insert(CALL_FORWARDING, ctx.params)
    ctx.finish(None)


def _v_delete_call_forwarding(ctx) -> None:
    s_id = ctx.param_i64(0)
    sf_type = ctx.param_i64(1)
    start_time = ctx.param_i64(2)
    row = ctx.index_probe(
        "call_forwarding_pk", _key3(s_id, sf_type, start_time)
    )
    ctx.abort_where(row < 0, "no call forwarding")
    ctx.delete(CALL_FORWARDING, row)
    ctx.finish(None)


def _v_sync_location(ctx) -> None:
    src = ctx.param_i64(0)
    dst = ctx.param_i64(1)
    src_row = ctx.index_probe("subscriber_pk", src)
    ctx.abort_where(src_row < 0, "source subscriber not found")
    dst_row = ctx.index_probe("subscriber_pk", dst)
    ctx.abort_where(dst_row < 0, "destination subscriber not found")
    vlr = ctx.read(SUBSCRIBER, "vlr_location", src_row)
    ctx.write(SUBSCRIBER, "vlr_location", dst_row, vlr)
    out: List[int] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = int(vlr[i])
    ctx.finish(out)


def _sub_access(write: bool):
    def access_fn(params) -> List[Access]:
        return [Access(item=int(params[0]), write=write)]

    return access_fn


def _sub_partition(params):
    return int(params[0])


def _no_access(_params) -> List[Access]:
    return []


def _lookup_partition(params):
    # sub_nbr is the zero-padded decimal s_id: statically derivable.
    return int(params[0])


_ALL_TABLES = frozenset(
    {SUBSCRIBER, ACCESS_INFO, SPECIAL_FACILITY, CALL_FORWARDING}
)

PROCEDURES = [
    TransactionType(
        name="tm1_get_subscriber_data",
        body=_get_subscriber_data,
        access_fn=_sub_access(write=False),
        partition_fn=_sub_partition,
        two_phase=True,
        conflict_classes=frozenset({SUBSCRIBER}),
        vector_body=_v_get_subscriber_data,
    ),
    TransactionType(
        name="tm1_get_new_destination",
        body=_get_new_destination,
        access_fn=_sub_access(write=False),
        partition_fn=_sub_partition,
        two_phase=True,
        conflict_classes=frozenset({SPECIAL_FACILITY, CALL_FORWARDING}),
        vector_body=_v_get_new_destination,
    ),
    TransactionType(
        name="tm1_get_access_data",
        body=_get_access_data,
        access_fn=_sub_access(write=False),
        partition_fn=_sub_partition,
        two_phase=True,
        conflict_classes=frozenset({ACCESS_INFO}),
        vector_body=_v_get_access_data,
    ),
    TransactionType(
        name="tm1_update_subscriber_data",
        body=_update_subscriber_data,
        access_fn=_sub_access(write=True),
        partition_fn=_sub_partition,
        two_phase=True,
        conflict_classes=frozenset({SUBSCRIBER, SPECIAL_FACILITY}),
        vector_body=_v_update_subscriber_data,
    ),
    TransactionType(
        name="tm1_lookup_sub_nbr",
        body=_lookup_sub_nbr,
        access_fn=_no_access,
        partition_fn=_lookup_partition,
        two_phase=True,
        conflict_classes=frozenset(),
        vector_body=_v_lookup_sub_nbr,
    ),
    TransactionType(
        name="tm1_update_location",
        body=_update_location,
        access_fn=_sub_access(write=True),
        partition_fn=_sub_partition,
        two_phase=True,
        conflict_classes=frozenset({SUBSCRIBER}),
        vector_body=_v_update_location,
    ),
    TransactionType(
        name="tm1_insert_call_forwarding",
        body=_insert_call_forwarding,
        access_fn=_sub_access(write=True),
        partition_fn=_sub_partition,
        two_phase=True,
        conflict_classes=frozenset({SPECIAL_FACILITY, CALL_FORWARDING}),
        vector_body=_v_insert_call_forwarding,
        vector_inserts=frozenset({CALL_FORWARDING}),
    ),
    TransactionType(
        name="tm1_delete_call_forwarding",
        body=_delete_call_forwarding,
        access_fn=_sub_access(write=True),
        partition_fn=_sub_partition,
        two_phase=True,
        conflict_classes=frozenset({CALL_FORWARDING}),
        vector_body=_v_delete_call_forwarding,
    ),
]


#: The cross-subscriber sync transaction (not part of the standard TM1
#: set; registered only by cluster workloads).
SYNC_LOCATION = TransactionType(
    name="tm1_sync_location",
    body=_sync_location,
    access_fn=lambda p: [
        Access(item=int(p[0]), write=False),
        Access(item=int(p[1]), write=True),
    ],
    partition_fn=lambda p: int(p[0]) if int(p[0]) == int(p[1]) else None,
    two_phase=True,
    conflict_classes=frozenset({SUBSCRIBER}),
    vector_body=_v_sync_location,
)

#: TM1 plus the cross-subscriber sync type, for ClusterTx workloads.
CLUSTER_PROCEDURES = PROCEDURES + [SYNC_LOCATION]


# ---------------------------------------------------------------------------
# Transaction generation.
# ---------------------------------------------------------------------------
def generate_transactions(
    db: Database,
    n: int,
    *,
    seed: int = 1,
    mix: List[Tuple[str, float]] | None = None,
) -> List[TxnSpec]:
    """Draw ``n`` logical TM1 transactions from the standard mix.

    The three string-addressed types are emitted as their two split
    halves (lookup + logic), matching Appendix E, so the returned list
    may be longer than ``n``.
    """
    rng = make_rng(seed)
    n_subs = db.table(SUBSCRIBER).n_rows
    picks = choose_mix(rng, mix or DEFAULT_MIX, n)
    out: List[TxnSpec] = []
    for name in picks:
        s_id = int(rng.integers(0, n_subs))
        sf_type = int(rng.integers(1, 5))
        ai_type = int(rng.integers(1, 5))
        start = int(_START_TIMES[rng.integers(0, 3)])
        if name == "tm1_get_subscriber_data":
            out.append((name, (s_id,)))
        elif name == "tm1_get_new_destination":
            out.append((name, (s_id, sf_type, start, start + 1)))
        elif name == "tm1_get_access_data":
            out.append((name, (s_id, ai_type)))
        elif name == "tm1_update_subscriber_data":
            out.append(
                (name, (s_id, bool(rng.integers(0, 2)), sf_type,
                        int(rng.integers(0, 256))))
            )
        elif name == "tm1_update_location":
            sub_nbr = padded_number_string(s_id, SUB_NBR_WIDTH)
            out.append(("tm1_lookup_sub_nbr", (sub_nbr,)))
            out.append((name, (s_id, int(rng.integers(1, 2**31)))))
        elif name == "tm1_insert_call_forwarding":
            sub_nbr = padded_number_string(s_id, SUB_NBR_WIDTH)
            out.append(("tm1_lookup_sub_nbr", (sub_nbr,)))
            numberx = padded_number_string(
                int(rng.integers(0, 10**9)), SUB_NBR_WIDTH
            )
            out.append(
                (name, (s_id, sf_type, start, start + int(rng.integers(1, 9)),
                        numberx))
            )
        elif name == "tm1_delete_call_forwarding":
            sub_nbr = padded_number_string(s_id, SUB_NBR_WIDTH)
            out.append(("tm1_lookup_sub_nbr", (sub_nbr,)))
            out.append((name, (s_id, sf_type, start)))
        else:  # pragma: no cover - mix is validated by choose_mix
            raise ValueError(f"unknown TM1 type {name!r}")
    return out


def generate_timed_transactions(
    db: Database,
    n: int,
    *,
    rate_tps: float,
    pattern: str = "poisson",
    period_s: float = 0.05,
    duty: float = 0.25,
    seed: int = 1,
    mix: List[Tuple[str, float]] | None = None,
) -> List[TimedTxnSpec]:
    """A timed TM1 arrival stream for the online ingest runtime.

    Draws the standard mix via :func:`generate_transactions`, then
    stamps each transaction (including the split lookup halves) with
    an arrival time: ``pattern`` is ``"uniform"`` (the paper's
    response-time model), ``"poisson"`` (open-system arrivals), or
    ``"bursty"`` (on/off periods of ``period_s`` at ``duty`` duty
    cycle). Times are nondecreasing, as the serve runtime requires.
    """
    specs = generate_transactions(db, n, seed=seed, mix=mix)
    rng = make_rng(seed + 7)
    if pattern == "uniform":
        times = uniform_arrival_times(len(specs), rate_tps)
    elif pattern == "poisson":
        times = poisson_arrival_times(rng, len(specs), rate_tps)
    elif pattern == "bursty":
        times = bursty_arrival_times(
            rng, len(specs), rate_tps, period_s=period_s, duty=duty
        )
    else:
        raise ValueError(
            f"unknown arrival pattern {pattern!r}; "
            "use 'uniform', 'poisson', or 'bursty'"
        )
    return timed_specs(specs, times)


def generate_cluster_transactions(
    db: Database,
    n: int,
    *,
    shard_of,
    cross_shard_fraction: float = 0.0,
    seed: int = 1,
    mix: List[Tuple[str, float]] | None = None,
) -> List[TxnSpec]:
    """Shard-aware TM1 workload with a tunable cross-shard fraction.

    A ``cross_shard_fraction`` share of the ``n`` logical transactions
    are ``tm1_sync_location`` pairs spanning two shards (per
    ``shard_of``, typically the cluster router's ``shard_of_key``);
    the rest follow the standard TM1 mix -- every standard type is
    keyed by one subscriber and thus single-shard. Requires the engine
    to register :data:`CLUSTER_PROCEDURES`. With fraction 0 the result
    is an ordinary TM1 stream. The split name-lookup halves make the
    returned list slightly longer than ``n``, as with
    :func:`generate_transactions`, so the realised fraction is
    approximate.
    """
    if not 0.0 <= cross_shard_fraction <= 1.0:
        raise ValueError("cross_shard_fraction must be within [0, 1]")
    n_sync = round(n * cross_shard_fraction)
    base = generate_transactions(db, n - n_sync, seed=seed, mix=mix)
    if n_sync == 0:
        return base
    rng = make_rng(seed + 1)
    n_subs = db.table(SUBSCRIBER).n_rows
    pairs = paired_items(rng, n_subs, shard_of, 1.0, n_sync)
    syncs: List[TxnSpec] = [
        ("tm1_sync_location", (int(pairs[i, 0]), int(pairs[i, 1])))
        for i in range(n_sync)
    ]
    # Interleave the sync transactions uniformly into the stream.
    out = list(base)
    positions = sorted(
        (int(rng.integers(0, len(out) + 1)) for _ in syncs), reverse=True
    )
    for pos, spec in zip(positions, syncs):
        out.insert(pos, spec)
    return out
