"""Benchmark workloads: micro (Section 6.1), TM1, TPC-B, TPC-C (App. E)."""

from repro.workloads import base, micro, tm1, tpcb, tpcc

__all__ = ["base", "micro", "tm1", "tpcb", "tpcc"]
