"""Benchmark workloads: micro (Section 6.1), TM1, TPC-B, TPC-C
(App. E), and SmallBank (the contention-heavy YCSB-T-style addition).
docs/WORKLOADS.md is the doctested catalog of all of them."""

from repro.workloads import base, micro, smallbank, tm1, tpcb, tpcc

__all__ = ["base", "micro", "smallbank", "tm1", "tpcb", "tpcc"]
