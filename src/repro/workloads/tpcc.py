"""TPC-C (Appendix E): order-entry OLTP with five transaction types.

"TPC-C approximates the workloads in an online transaction processing
database for a retailer ... the process of customer orders from the
initial creation to the final delivery and payment."

Following the paper: transactions access rows by primary key; PAYMENT
and ORDER_STATUS "may search the customer using the last name", so each
is split into a lookup transaction (last name -> customer id through
the customer-name index) plus the remainder logic (Appendix E). All
five types are written two-phase (abort checks complete before the
first write -- NEW_ORDER validates every item id up front, the
well-known H-Store rewrite), so no undo logging is required.

**Documented deviation** (also in DESIGN.md): the paper partitions
TPC-C by the combined (warehouse, district) key. District-level
partitioning is unsound for STOCK, which is shared by all ten districts
of a warehouse (two districts' NEW_ORDERs write the same stock rows);
H-Store itself partitions TPC-C by warehouse for exactly this reason.
We therefore partition by warehouse and scope conflict items as:

* ``w*32 + d`` (d = 1..10) -- the district subtree (district row,
  customers, orders, order lines, new-orders);
* ``w*32 + 0``  -- the warehouse row itself (w_ytd);
* stock conflicts at row granularity ((supply_w, i_id)), per Fekete et
  al.'s analysis -- two NEW_ORDERs conflict on stock only when they
  share an item.

DELIVERY is rewritten into ten per-district transactions (the spec
allows deferred delivery; H-Store does the same), and STOCK_LEVEL's
data-dependent stock reads are recorded at a coarse marker granularity
per Appendix B's worst-case rule.

A transaction whose items span several warehouses (remote stock or
remote payment customer) is cross-partition: PART falls back to TPL for
the bulk, exactly the "severe degradation" of Section 5.2.

Scaling: ``scale_factor`` = warehouses; districts fixed at 10;
customers/items scaled down by default (pass the spec values --
3000 customers per district, 100 000 items -- for full size).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.procedure import Access, TransactionType
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database
from repro.storage.schema import ColumnDef, DataType, TableSchema
from repro.workloads.base import (
    TxnSpec,
    choose_mix,
    make_rng,
    nurand,
    tpcc_last_name,
)

DISTRICTS = 10
DEFAULT_CUSTOMERS_PER_DISTRICT = 120   # spec: 3000
DEFAULT_ITEMS = 1_000                  # spec: 100 000
DEFAULT_INIT_ORDERS_PER_DISTRICT = 30  # spec: 3000

WAREHOUSE = "warehouse"
DISTRICT = "district"
CUSTOMER = "customer"
HISTORY = "history"
NEW_ORDER = "new_order"
ORDERS = "orders"
ORDER_LINE = "order_line"
ITEM = "item"
STOCK = "stock"

#: Standard mix (weights in percent).
DEFAULT_MIX = [
    ("tpcc_new_order", 45.0),
    ("tpcc_payment", 43.0),
    ("tpcc_order_status", 4.0),
    ("tpcc_delivery", 4.0),
    ("tpcc_stock_level", 4.0),
]

# -- conflict item encoding (see module docstring) ---------------------------
# District subtrees and the warehouse row get slots under w*32+slot;
# stock conflicts are detected at the *row* level ((supply_w, i_id)),
# which is what Fekete et al.'s analysis licenses: two NEW_ORDERs
# conflict on stock only when they actually share an item. Data
# accesses in GPUTx are at data-field granularity (Section 3.2).
_W_SLOT = 0
_ITEMS_PER_W = 32
_STOCK_BASE = 1 << 40
_STOCK_W_SHIFT = 20  # up to 2^20 items per warehouse
#: The per-warehouse stock *marker* slot (top of the i_id space, above
#: any real item): STOCK_LEVEL's data-dependent stock reads cannot be
#: enumerated from its parameters, so per Appendix B's worst-case rule
#: it takes the marker as a WRITE while NEW_ORDER reads the marker of
#: each supply warehouse. Every stock-level scan therefore orders
#: against every new-order touching that warehouse's stock (and
#: against other scans), while new-orders keep their row-granularity
#: independence from each other.
_STOCK_MARKER = (1 << _STOCK_W_SHIFT) - 1


def _wd_item(w: int, d: int) -> int:
    return w * _ITEMS_PER_W + d


def _w_item(w: int) -> int:
    return w * _ITEMS_PER_W + _W_SLOT


def _stock_item(w: int, i_id: int = 0) -> int:
    return _STOCK_BASE + (w << _STOCK_W_SHIFT) + i_id


def _warehouse_of_item(item: int) -> int:
    if item >= _STOCK_BASE:
        return (item - _STOCK_BASE) >> _STOCK_W_SHIFT
    return item // _ITEMS_PER_W


def _single_warehouse_or_none(items: Sequence[Access]):
    warehouses = {_warehouse_of_item(a.item) for a in items}
    if len(warehouses) == 1:
        return warehouses.pop()
    return None


# ---------------------------------------------------------------------------
# Database population.
# ---------------------------------------------------------------------------
def build_database(
    scale_factor: int,
    customers_per_district: int = DEFAULT_CUSTOMERS_PER_DISTRICT,
    n_items: int = DEFAULT_ITEMS,
    init_orders_per_district: int = DEFAULT_INIT_ORDERS_PER_DISTRICT,
    layout: str = "column",
    seed: int = 42,
) -> Database:
    """Populate the nine TPC-C tables for ``scale_factor`` warehouses."""
    if scale_factor < 1:
        raise ValueError("scale_factor must be >= 1")
    rng = make_rng(seed)
    n_w = scale_factor
    db = Database(layout)

    warehouse = db.create_table(
        TableSchema(
            WAREHOUSE,
            [
                ColumnDef("w_id", DataType.INT64),
                ColumnDef("w_name", DataType.CHAR, length=10,
                          device_resident=False),
                ColumnDef("w_tax", DataType.FLOAT64),
                ColumnDef("w_ytd", DataType.FLOAT64),
            ],
            primary_key=("w_id",),
            partition_key="w_id",
        ),
        capacity=n_w,
    )
    warehouse.append_columns(
        {
            "w_id": np.arange(n_w, dtype=np.int64),
            "w_name": np.array([f"WH{w:06d}" for w in range(n_w)], dtype=object),
            "w_tax": rng.uniform(0.0, 0.2, size=n_w),
            "w_ytd": np.full(n_w, 300_000.0),
        }
    )

    n_d = n_w * DISTRICTS
    district = db.create_table(
        TableSchema(
            DISTRICT,
            [
                ColumnDef("d_w_id", DataType.INT64),
                ColumnDef("d_id", DataType.INT64),
                ColumnDef("d_tax", DataType.FLOAT64),
                ColumnDef("d_ytd", DataType.FLOAT64),
                ColumnDef("d_next_o_id", DataType.INT64),
            ],
            primary_key=("d_w_id", "d_id"),
            partition_key="d_w_id",
        ),
        capacity=n_d,
    )
    d_idx = np.arange(n_d, dtype=np.int64)
    district.append_columns(
        {
            "d_w_id": d_idx // DISTRICTS,
            "d_id": d_idx % DISTRICTS + 1,
            "d_tax": rng.uniform(0.0, 0.2, size=n_d),
            "d_ytd": np.full(n_d, 30_000.0),
            "d_next_o_id": np.full(n_d, init_orders_per_district,
                                   dtype=np.int64),
        }
    )

    n_c = n_d * customers_per_district
    customer = db.create_table(
        TableSchema(
            CUSTOMER,
            [
                ColumnDef("c_w_id", DataType.INT64),
                ColumnDef("c_d_id", DataType.INT64),
                ColumnDef("c_id", DataType.INT64),
                ColumnDef("c_last", DataType.CHAR, length=16,
                          device_resident=False),
                ColumnDef("c_credit", DataType.CHAR, length=2,
                          device_resident=False),
                ColumnDef("c_discount", DataType.FLOAT64),
                ColumnDef("c_balance", DataType.FLOAT64),
                ColumnDef("c_ytd_payment", DataType.FLOAT64),
                ColumnDef("c_payment_cnt", DataType.INT64),
                ColumnDef("c_delivery_cnt", DataType.INT64),
            ],
            primary_key=("c_w_id", "c_d_id", "c_id"),
            partition_key="c_w_id",
        ),
        capacity=n_c,
    )
    c_idx = np.arange(n_c, dtype=np.int64)
    c_wd = c_idx // customers_per_district
    c_local = c_idx % customers_per_district
    customer.append_columns(
        {
            "c_w_id": c_wd // DISTRICTS,
            "c_d_id": c_wd % DISTRICTS + 1,
            "c_id": c_local,
            "c_last": np.array(
                [tpcc_last_name(int(c) % 1000) for c in c_local], dtype=object
            ),
            "c_credit": np.array(
                ["GC" if v < 0.9 else "BC" for v in rng.random(n_c)],
                dtype=object,
            ),
            "c_discount": rng.uniform(0.0, 0.5, size=n_c),
            "c_balance": np.full(n_c, -10.0),
            "c_ytd_payment": np.full(n_c, 10.0),
            "c_payment_cnt": np.ones(n_c, dtype=np.int64),
            "c_delivery_cnt": np.zeros(n_c, dtype=np.int64),
        }
    )

    db.create_table(
        TableSchema(
            HISTORY,
            [
                ColumnDef("h_c_w_id", DataType.INT64),
                ColumnDef("h_c_d_id", DataType.INT64),
                ColumnDef("h_c_id", DataType.INT64),
                ColumnDef("h_w_id", DataType.INT64),
                ColumnDef("h_d_id", DataType.INT64),
                ColumnDef("h_amount", DataType.FLOAT64),
            ],
        ),
        capacity=max(64, n_c // 2),
    )

    item = db.create_table(
        TableSchema(
            ITEM,
            [
                ColumnDef("i_id", DataType.INT64),
                ColumnDef("i_name", DataType.CHAR, length=24,
                          device_resident=False),
                ColumnDef("i_price", DataType.FLOAT64),
            ],
            primary_key=("i_id",),
        ),
        capacity=n_items,
    )
    item.append_columns(
        {
            "i_id": np.arange(n_items, dtype=np.int64),
            "i_name": np.array(
                [f"ITEM{i:08d}" for i in range(n_items)], dtype=object
            ),
            "i_price": rng.uniform(1.0, 100.0, size=n_items),
        }
    )

    n_s = n_w * n_items
    stock = db.create_table(
        TableSchema(
            STOCK,
            [
                ColumnDef("s_w_id", DataType.INT64),
                ColumnDef("s_i_id", DataType.INT64),
                ColumnDef("s_quantity", DataType.INT64),
                ColumnDef("s_ytd", DataType.INT64),
                ColumnDef("s_order_cnt", DataType.INT64),
                ColumnDef("s_remote_cnt", DataType.INT64),
            ],
            primary_key=("s_w_id", "s_i_id"),
            partition_key="s_w_id",
        ),
        capacity=n_s,
    )
    s_idx = np.arange(n_s, dtype=np.int64)
    stock.append_columns(
        {
            "s_w_id": s_idx // n_items,
            "s_i_id": s_idx % n_items,
            "s_quantity": rng.integers(10, 101, size=n_s),
            "s_ytd": np.zeros(n_s, dtype=np.int64),
            "s_order_cnt": np.zeros(n_s, dtype=np.int64),
            "s_remote_cnt": np.zeros(n_s, dtype=np.int64),
        }
    )

    # Initial orders: all delivered except the newest third.
    orders_cols = {
        "o_w_id": [], "o_d_id": [], "o_id": [], "o_c_id": [],
        "o_carrier_id": [], "o_ol_cnt": [],
    }
    no_cols = {"no_w_id": [], "no_d_id": [], "no_o_id": []}
    ol_cols = {
        "ol_w_id": [], "ol_d_id": [], "ol_o_id": [], "ol_number": [],
        "ol_i_id": [], "ol_supply_w_id": [], "ol_quantity": [],
        "ol_amount": [], "ol_delivery_d": [],
    }
    undelivered_from = init_orders_per_district * 2 // 3
    for w in range(n_w):
        for d in range(1, DISTRICTS + 1):
            customer_perm = rng.permutation(customers_per_district)
            for o_id in range(init_orders_per_district):
                ol_cnt = int(rng.integers(5, 16))
                delivered = o_id < undelivered_from
                orders_cols["o_w_id"].append(w)
                orders_cols["o_d_id"].append(d)
                orders_cols["o_id"].append(o_id)
                orders_cols["o_c_id"].append(
                    int(customer_perm[o_id % customers_per_district])
                )
                orders_cols["o_carrier_id"].append(
                    int(rng.integers(1, 11)) if delivered else 0
                )
                orders_cols["o_ol_cnt"].append(ol_cnt)
                if not delivered:
                    no_cols["no_w_id"].append(w)
                    no_cols["no_d_id"].append(d)
                    no_cols["no_o_id"].append(o_id)
                for line in range(1, ol_cnt + 1):
                    ol_cols["ol_w_id"].append(w)
                    ol_cols["ol_d_id"].append(d)
                    ol_cols["ol_o_id"].append(o_id)
                    ol_cols["ol_number"].append(line)
                    ol_cols["ol_i_id"].append(int(rng.integers(0, n_items)))
                    ol_cols["ol_supply_w_id"].append(w)
                    ol_cols["ol_quantity"].append(5)
                    ol_cols["ol_amount"].append(
                        0.0 if delivered else float(rng.uniform(0.01, 9_999.99))
                    )
                    ol_cols["ol_delivery_d"].append(1 if delivered else 0)

    orders = db.create_table(
        TableSchema(
            ORDERS,
            [
                ColumnDef("o_w_id", DataType.INT64),
                ColumnDef("o_d_id", DataType.INT64),
                ColumnDef("o_id", DataType.INT64),
                ColumnDef("o_c_id", DataType.INT64),
                ColumnDef("o_carrier_id", DataType.INT64),
                ColumnDef("o_ol_cnt", DataType.INT64),
            ],
            primary_key=("o_w_id", "o_d_id", "o_id"),
            partition_key="o_w_id",
        ),
        capacity=max(64, len(orders_cols["o_id"])),
    )
    orders.append_columns({k: np.asarray(v) for k, v in orders_cols.items()})

    new_order = db.create_table(
        TableSchema(
            NEW_ORDER,
            [
                ColumnDef("no_w_id", DataType.INT64),
                ColumnDef("no_d_id", DataType.INT64),
                ColumnDef("no_o_id", DataType.INT64),
            ],
            primary_key=("no_w_id", "no_d_id", "no_o_id"),
            partition_key="no_w_id",
        ),
        capacity=max(64, len(no_cols["no_o_id"])),
    )
    new_order.append_columns({k: np.asarray(v) for k, v in no_cols.items()})

    order_line = db.create_table(
        TableSchema(
            ORDER_LINE,
            [
                ColumnDef("ol_w_id", DataType.INT64),
                ColumnDef("ol_d_id", DataType.INT64),
                ColumnDef("ol_o_id", DataType.INT64),
                ColumnDef("ol_number", DataType.INT64),
                ColumnDef("ol_i_id", DataType.INT64),
                ColumnDef("ol_supply_w_id", DataType.INT64),
                ColumnDef("ol_quantity", DataType.INT64),
                ColumnDef("ol_amount", DataType.FLOAT64),
                ColumnDef("ol_delivery_d", DataType.INT64),
            ],
            primary_key=("ol_w_id", "ol_d_id", "ol_o_id", "ol_number"),
            partition_key="ol_w_id",
        ),
        capacity=max(64, len(ol_cols["ol_o_id"])),
    )
    order_line.append_columns({k: np.asarray(v) for k, v in ol_cols.items()})

    db.create_index("warehouse_pk", WAREHOUSE, ["w_id"])
    db.create_index("district_pk", DISTRICT, ["d_w_id", "d_id"])
    db.create_index("customer_pk", CUSTOMER, ["c_w_id", "c_d_id", "c_id"])
    db.create_index(
        "customer_name", CUSTOMER, ["c_w_id", "c_d_id", "c_last"], unique=False
    )
    db.create_index("item_pk", ITEM, ["i_id"])
    db.create_index("stock_pk", STOCK, ["s_w_id", "s_i_id"])
    db.create_index("orders_pk", ORDERS, ["o_w_id", "o_d_id", "o_id"])
    db.create_index(
        "orders_by_customer", ORDERS, ["o_w_id", "o_d_id", "o_c_id"],
        unique=False,
    )
    db.create_index(
        "new_order_by_district", NEW_ORDER, ["no_w_id", "no_d_id"],
        unique=False,
    )
    db.create_index(
        "order_line_by_order", ORDER_LINE, ["ol_w_id", "ol_d_id", "ol_o_id"],
        unique=False,
    )
    return db


# ---------------------------------------------------------------------------
# Stored procedures.
# ---------------------------------------------------------------------------
def _new_order(
    w_id: int, d_id: int, c_id: int,
    item_ids: Tuple[int, ...], supply_ws: Tuple[int, ...],
    quantities: Tuple[int, ...],
) -> op_ir.OpStream:
    # Phase 1: validate every item id (H-Store two-phase rewrite), read
    # the pricing inputs.
    item_rows = []
    for i_id in item_ids:
        item_row = yield op_ir.IndexProbe("item_pk", i_id)
        if item_row < 0:
            yield op_ir.Abort("invalid item id")
        item_rows.append(item_row)
    w_row = yield op_ir.IndexProbe("warehouse_pk", w_id)
    w_tax = yield op_ir.Read(WAREHOUSE, "w_tax", w_row)
    d_row = yield op_ir.IndexProbe("district_pk", (w_id, d_id))
    d_tax = yield op_ir.Read(DISTRICT, "d_tax", d_row)
    c_row = yield op_ir.IndexProbe("customer_pk", (w_id, d_id, c_id))
    if c_row < 0:
        yield op_ir.Abort("no such customer")
    discount = yield op_ir.Read(CUSTOMER, "c_discount", c_row)

    # Phase 2: allocate the order id and write everything.
    o_id = yield op_ir.Read(DISTRICT, "d_next_o_id", d_row)
    yield op_ir.Write(DISTRICT, "d_next_o_id", d_row, o_id + 1)
    yield op_ir.InsertRow(
        ORDERS, (w_id, d_id, o_id, c_id, 0, len(item_ids))
    )
    yield op_ir.InsertRow(NEW_ORDER, (w_id, d_id, o_id))
    total = 0.0
    for line, (i_id, supply_w, qty, item_row) in enumerate(
        zip(item_ids, supply_ws, quantities, item_rows), start=1
    ):
        price = yield op_ir.Read(ITEM, "i_price", item_row)
        s_row = yield op_ir.IndexProbe("stock_pk", (supply_w, i_id))
        s_qty = yield op_ir.Read(STOCK, "s_quantity", s_row)
        if s_qty - qty >= 10:
            new_qty = s_qty - qty
        else:
            new_qty = s_qty - qty + 91
        yield op_ir.Write(STOCK, "s_quantity", s_row, new_qty)
        s_ytd = yield op_ir.Read(STOCK, "s_ytd", s_row)
        yield op_ir.Write(STOCK, "s_ytd", s_row, s_ytd + qty)
        s_cnt = yield op_ir.Read(STOCK, "s_order_cnt", s_row)
        yield op_ir.Write(STOCK, "s_order_cnt", s_row, s_cnt + 1)
        if supply_w != w_id:
            s_rem = yield op_ir.Read(STOCK, "s_remote_cnt", s_row)
            yield op_ir.Write(STOCK, "s_remote_cnt", s_row, s_rem + 1)
        amount = float(qty) * price
        total += amount
        yield op_ir.InsertRow(
            ORDER_LINE,
            (w_id, d_id, o_id, line, i_id, supply_w, qty, amount, 0),
        )
    yield op_ir.Compute(8)  # tax arithmetic
    return total * (1.0 + w_tax + d_tax) * (1.0 - discount)


def _payment(
    w_id: int, d_id: int, c_w_id: int, c_d_id: int, c_id: int, amount: float
) -> op_ir.OpStream:
    c_row = yield op_ir.IndexProbe("customer_pk", (c_w_id, c_d_id, c_id))
    if c_row < 0:
        yield op_ir.Abort("no such customer")
    w_row = yield op_ir.IndexProbe("warehouse_pk", w_id)
    d_row = yield op_ir.IndexProbe("district_pk", (w_id, d_id))
    w_ytd = yield op_ir.Read(WAREHOUSE, "w_ytd", w_row)
    yield op_ir.Write(WAREHOUSE, "w_ytd", w_row, w_ytd + amount)
    d_ytd = yield op_ir.Read(DISTRICT, "d_ytd", d_row)
    yield op_ir.Write(DISTRICT, "d_ytd", d_row, d_ytd + amount)
    balance = yield op_ir.Read(CUSTOMER, "c_balance", c_row)
    yield op_ir.Write(CUSTOMER, "c_balance", c_row, balance - amount)
    ytd_payment = yield op_ir.Read(CUSTOMER, "c_ytd_payment", c_row)
    yield op_ir.Write(CUSTOMER, "c_ytd_payment", c_row, ytd_payment + amount)
    pay_cnt = yield op_ir.Read(CUSTOMER, "c_payment_cnt", c_row)
    yield op_ir.Write(CUSTOMER, "c_payment_cnt", c_row, pay_cnt + 1)
    yield op_ir.InsertRow(
        HISTORY, (c_w_id, c_d_id, c_id, w_id, d_id, amount)
    )
    return balance - amount


def _customer_by_name(w_id: int, d_id: int, c_last: str) -> op_ir.OpStream:
    """The split lookup half: last name -> customer id (read-only)."""
    rows = yield op_ir.IndexProbe("customer_name", (w_id, d_id, c_last))
    if not rows:
        yield op_ir.Abort("no customer with that name")
    # The spec picks the row at position ceil(n/2) of the name-ordered
    # set; row ids are load-ordered by c_id here, which matches.
    chosen = rows[(len(rows)) // 2]
    c_id = yield op_ir.Read(CUSTOMER, "c_id", chosen)
    return int(c_id)


def _order_status(w_id: int, d_id: int, c_id: int) -> op_ir.OpStream:
    c_row = yield op_ir.IndexProbe("customer_pk", (w_id, d_id, c_id))
    if c_row < 0:
        yield op_ir.Abort("no such customer")
    balance = yield op_ir.Read(CUSTOMER, "c_balance", c_row)
    order_rows = yield op_ir.IndexProbe(
        "orders_by_customer", (w_id, d_id, c_id)
    )
    if not order_rows:
        yield op_ir.Abort("customer has no orders")
    last = order_rows[-1]
    o_id = yield op_ir.Read(ORDERS, "o_id", last)
    carrier = yield op_ir.Read(ORDERS, "o_carrier_id", last)
    line_rows = yield op_ir.IndexProbe(
        "order_line_by_order", (w_id, d_id, int(o_id))
    )
    total = 0.0
    for ol_row in line_rows:
        amount = yield op_ir.Read(ORDER_LINE, "ol_amount", ol_row)
        total += amount
    return (float(balance), int(o_id), int(carrier), total)


def _delivery(w_id: int, d_id: int, carrier_id: int) -> op_ir.OpStream:
    """Deliver the oldest undelivered order of one district.

    The spec's DELIVERY is a deferred batch covering all ten districts
    of a warehouse; like H-Store, it is rewritten as ten independent
    per-district transactions (the spec explicitly allows deferred
    execution). A monolithic version would write every district subtree
    at once and pinch the T-dependency graph to one transaction per
    warehouse.
    """
    no_rows = yield op_ir.IndexProbe("new_order_by_district", (w_id, d_id))
    if not no_rows:
        yield op_ir.Abort("no undelivered order")
    oldest = no_rows[0]
    o_id = yield op_ir.Read(NEW_ORDER, "no_o_id", oldest)
    o_row = yield op_ir.IndexProbe("orders_pk", (w_id, d_id, int(o_id)))
    c_id = yield op_ir.Read(ORDERS, "o_c_id", o_row)
    line_rows = yield op_ir.IndexProbe(
        "order_line_by_order", (w_id, d_id, int(o_id))
    )
    # Phase 2: writes only (two-phase rewrite).
    yield op_ir.DeleteRow(NEW_ORDER, oldest)
    yield op_ir.Write(ORDERS, "o_carrier_id", o_row, carrier_id)
    total = 0.0
    for ol_row in line_rows:
        amount = yield op_ir.Read(ORDER_LINE, "ol_amount", ol_row)
        total += amount
        yield op_ir.Write(ORDER_LINE, "ol_delivery_d", ol_row, 1)
    c_row = yield op_ir.IndexProbe(
        "customer_pk", (w_id, d_id, int(c_id))
    )
    balance = yield op_ir.Read(CUSTOMER, "c_balance", c_row)
    yield op_ir.Write(CUSTOMER, "c_balance", c_row, balance + total)
    del_cnt = yield op_ir.Read(CUSTOMER, "c_delivery_cnt", c_row)
    yield op_ir.Write(CUSTOMER, "c_delivery_cnt", c_row, del_cnt + 1)
    return total


def _stock_level(w_id: int, d_id: int, threshold: int) -> op_ir.OpStream:
    d_row = yield op_ir.IndexProbe("district_pk", (w_id, d_id))
    next_o_id = yield op_ir.Read(DISTRICT, "d_next_o_id", d_row)
    low = 0
    seen = set()
    for o_id in range(max(0, int(next_o_id) - 20), int(next_o_id)):
        line_rows = yield op_ir.IndexProbe(
            "order_line_by_order", (w_id, d_id, o_id)
        )
        for ol_row in line_rows:
            i_id = yield op_ir.Read(ORDER_LINE, "ol_i_id", ol_row)
            if i_id in seen:
                continue
            seen.add(i_id)
            s_row = yield op_ir.IndexProbe("stock_pk", (w_id, int(i_id)))
            qty = yield op_ir.Read(STOCK, "s_quantity", s_row)
            if qty < threshold:
                low += 1
    return low


# ---------------------------------------------------------------------------
# Vectorized forms of the stored procedures (repro.core.backends).
#
# Each kernel executes a whole same-type wave as batched NumPy column
# operations while recording, per lane, exactly the op sequence the
# generator body above yields -- including the data-dependent parts
# (per-order line counts, remote-stock branches, the stock-level
# item-dedup set). Variable-length loops run as slot sweeps under
# masks: every lane records its ops at its own per-lane op position,
# so lanes at different loop depths stay in lockstep with the
# interpreter's trace. Keep both forms in sync when editing either --
# the backend-equivalence property suite diffs them.
# ---------------------------------------------------------------------------
def _key2(a: np.ndarray, b: np.ndarray) -> List[tuple]:
    return list(zip(a.tolist(), b.tolist()))


def _key3(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> List[tuple]:
    return list(zip(a.tolist(), b.tolist(), c.tolist()))


def _tuple_param_matrix(params_col, n: int):
    """(lengths, padded int64 matrix) of a tuple-valued parameter."""
    lens = np.fromiter((len(t) for t in params_col), np.int64, n)
    width = int(lens.max()) if n else 0
    mat = np.zeros((n, max(width, 1)), dtype=np.int64)
    for i, values in enumerate(params_col):
        mat[i, : len(values)] = values
    return lens, mat


def _ragged_rows(row_lists: List[List[int]], n: int):
    """(lengths, padded matrix) of per-lane row-id lists (multi probes)."""
    lens = np.fromiter((len(r) for r in row_lists), np.int64, n)
    width = int(lens.max()) if n else 0
    mat = np.zeros((n, max(width, 1)), dtype=np.int64)
    for i, rows in enumerate(row_lists):
        mat[i, : len(rows)] = rows
    return lens, mat


def _v_new_order(ctx) -> None:
    w_id = ctx.param_i64(0)
    d_id = ctx.param_i64(1)
    c_id = ctx.param_i64(2)
    ol_cnt, item_mat = _tuple_param_matrix(ctx.param_obj(3), ctx.n)
    _, supply_mat = _tuple_param_matrix(ctx.param_obj(4), ctx.n)
    _, qty_mat = _tuple_param_matrix(ctx.param_obj(5), ctx.n)
    max_cnt = int(ol_cnt.max()) if ctx.n else 0

    # Phase 1: validate every item id up front (H-Store rewrite); a
    # lane aborts at its first invalid item, probing no further.
    item_rows = np.zeros((ctx.n, max(max_cnt, 1)), dtype=np.int64)
    for line in range(max_cnt):
        m = ol_cnt > line
        rows = ctx.index_probe("item_pk", item_mat[:, line], mask=m)
        ctx.abort_where(m & (rows < 0), "invalid item id")
        item_rows[:, line] = rows
    w_row = ctx.index_probe("warehouse_pk", w_id)
    w_tax = ctx.read(WAREHOUSE, "w_tax", w_row)
    d_row = ctx.index_probe("district_pk", _key2(w_id, d_id))
    d_tax = ctx.read(DISTRICT, "d_tax", d_row)
    c_row = ctx.index_probe("customer_pk", _key3(w_id, d_id, c_id))
    ctx.abort_where(c_row < 0, "no such customer")
    discount = ctx.read(CUSTOMER, "c_discount", c_row)

    # Phase 2: allocate the order id and write everything. Row tuples
    # are built full-length with zip (C speed); ctx.insert only reads
    # the masked lanes' entries.
    o_id = ctx.read(DISTRICT, "d_next_o_id", d_row)
    ctx.write(DISTRICT, "d_next_o_id", d_row, o_id + 1)
    w_l, d_l, o_l = w_id.tolist(), d_id.tolist(), o_id.tolist()
    zeros_l = [0] * ctx.n
    ctx.insert(
        ORDERS,
        list(zip(w_l, d_l, o_l, c_id.tolist(), zeros_l, ol_cnt.tolist())),
    )
    ctx.insert(NEW_ORDER, list(zip(w_l, d_l, o_l)))
    total = np.zeros(ctx.n)
    for line in range(max_cnt):
        m = ol_cnt > line
        price = ctx.read(ITEM, "i_price", item_rows[:, line], mask=m)
        s_row = ctx.index_probe(
            "stock_pk", _key2(supply_mat[:, line], item_mat[:, line]), mask=m
        )
        qty = qty_mat[:, line]
        s_qty = ctx.read(STOCK, "s_quantity", s_row, mask=m)
        new_qty = np.where(s_qty - qty >= 10, s_qty - qty, s_qty - qty + 91)
        ctx.write(STOCK, "s_quantity", s_row, new_qty, mask=m)
        s_ytd = ctx.read(STOCK, "s_ytd", s_row, mask=m)
        ctx.write(STOCK, "s_ytd", s_row, s_ytd + qty, mask=m)
        s_cnt = ctx.read(STOCK, "s_order_cnt", s_row, mask=m)
        ctx.write(STOCK, "s_order_cnt", s_row, s_cnt + 1, mask=m)
        remote = m & (supply_mat[:, line] != w_id)
        s_rem = ctx.read(STOCK, "s_remote_cnt", s_row, mask=remote)
        ctx.write(STOCK, "s_remote_cnt", s_row, s_rem + 1, mask=remote)
        amount = qty.astype(np.float64) * price
        live = m & ctx.active
        total = total + np.where(live, amount, 0.0)
        ctx.insert(
            ORDER_LINE,
            list(zip(
                w_l, d_l, o_l, [line + 1] * ctx.n,
                item_mat[:, line].tolist(), supply_mat[:, line].tolist(),
                qty_mat[:, line].tolist(), amount.tolist(), zeros_l,
            )),
            mask=m,
        )
    ctx.compute(8)  # tax arithmetic
    result = total * (1.0 + w_tax + d_tax) * (1.0 - discount)
    out: List[float] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = float(result[i])
    ctx.finish(out)


def _v_payment(ctx) -> None:
    w_id = ctx.param_i64(0)
    d_id = ctx.param_i64(1)
    c_w_id = ctx.param_i64(2)
    c_d_id = ctx.param_i64(3)
    c_id = ctx.param_i64(4)
    amount = np.fromiter((float(p[5]) for p in ctx.params), np.float64, ctx.n)
    c_row = ctx.index_probe("customer_pk", _key3(c_w_id, c_d_id, c_id))
    ctx.abort_where(c_row < 0, "no such customer")
    w_row = ctx.index_probe("warehouse_pk", w_id)
    d_row = ctx.index_probe("district_pk", _key2(w_id, d_id))
    w_ytd = ctx.read(WAREHOUSE, "w_ytd", w_row)
    ctx.write(WAREHOUSE, "w_ytd", w_row, w_ytd + amount)
    d_ytd = ctx.read(DISTRICT, "d_ytd", d_row)
    ctx.write(DISTRICT, "d_ytd", d_row, d_ytd + amount)
    balance = ctx.read(CUSTOMER, "c_balance", c_row)
    ctx.write(CUSTOMER, "c_balance", c_row, balance - amount)
    ytd_payment = ctx.read(CUSTOMER, "c_ytd_payment", c_row)
    ctx.write(CUSTOMER, "c_ytd_payment", c_row, ytd_payment + amount)
    pay_cnt = ctx.read(CUSTOMER, "c_payment_cnt", c_row)
    ctx.write(CUSTOMER, "c_payment_cnt", c_row, pay_cnt + 1)
    ctx.insert(
        HISTORY,
        list(zip(
            c_w_id.tolist(), c_d_id.tolist(), c_id.tolist(),
            w_id.tolist(), d_id.tolist(), amount.tolist(),
        )),
    )
    out: List[float] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = float(balance[i] - amount[i])
    ctx.finish(out)


def _v_customer_by_name(ctx) -> None:
    w_id = ctx.param_i64(0)
    d_id = ctx.param_i64(1)
    c_last = ctx.param_obj(2)
    keys = [
        (int(w_id[i]), int(d_id[i]), c_last[i]) for i in range(ctx.n)
    ]
    rows = ctx.index_probe_multi("customer_name", keys)
    empty = np.fromiter((len(r) == 0 for r in rows), bool, ctx.n)
    ctx.abort_where(empty, "no customer with that name")
    chosen = np.fromiter(
        (r[len(r) // 2] if r else 0 for r in rows), np.int64, ctx.n
    )
    c_id = ctx.read(CUSTOMER, "c_id", chosen)
    out: List[int] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = int(c_id[i])
    ctx.finish(out)


def _v_order_status(ctx) -> None:
    w_id = ctx.param_i64(0)
    d_id = ctx.param_i64(1)
    c_id = ctx.param_i64(2)
    c_row = ctx.index_probe("customer_pk", _key3(w_id, d_id, c_id))
    ctx.abort_where(c_row < 0, "no such customer")
    balance = ctx.read(CUSTOMER, "c_balance", c_row)
    order_rows = ctx.index_probe_multi(
        "orders_by_customer", _key3(w_id, d_id, c_id)
    )
    empty = np.fromiter((len(r) == 0 for r in order_rows), bool, ctx.n)
    ctx.abort_where(empty, "customer has no orders")
    last = np.fromiter(
        (r[-1] if r else 0 for r in order_rows), np.int64, ctx.n
    )
    o_id = ctx.read(ORDERS, "o_id", last)
    carrier = ctx.read(ORDERS, "o_carrier_id", last)
    line_lists = ctx.index_probe_multi(
        "order_line_by_order", _key3(w_id, d_id, o_id)
    )
    n_lines, line_mat = _ragged_rows(line_lists, ctx.n)
    total = np.zeros(ctx.n)
    for slot in range(int(n_lines.max()) if ctx.n else 0):
        m = n_lines > slot
        amount = ctx.read(ORDER_LINE, "ol_amount", line_mat[:, slot], mask=m)
        total = total + np.where(m & ctx.active, amount, 0.0)
    out: List[tuple] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = (
            float(balance[i]), int(o_id[i]), int(carrier[i]),
            float(total[i]),
        )
    ctx.finish(out)


def _v_delivery(ctx) -> None:
    w_id = ctx.param_i64(0)
    d_id = ctx.param_i64(1)
    carrier_id = ctx.param_i64(2)
    no_lists = ctx.index_probe_multi(
        "new_order_by_district", _key2(w_id, d_id)
    )
    empty = np.fromiter((len(r) == 0 for r in no_lists), bool, ctx.n)
    ctx.abort_where(empty, "no undelivered order")
    oldest = np.fromiter(
        (r[0] if r else 0 for r in no_lists), np.int64, ctx.n
    )
    o_id = ctx.read(NEW_ORDER, "no_o_id", oldest)
    o_row = ctx.index_probe("orders_pk", _key3(w_id, d_id, o_id))
    c_id = ctx.read(ORDERS, "o_c_id", o_row)
    line_lists = ctx.index_probe_multi(
        "order_line_by_order", _key3(w_id, d_id, o_id)
    )
    n_lines, line_mat = _ragged_rows(line_lists, ctx.n)
    # Phase 2: writes only. The delivered order may itself be a
    # same-bulk NEW_ORDER insert (PART schedules), so the writes below
    # may target staged rows -- the wave store's handle-write staging
    # covers them.
    ctx.delete(NEW_ORDER, oldest)
    ctx.write(ORDERS, "o_carrier_id", o_row, carrier_id)
    total = np.zeros(ctx.n)
    for slot in range(int(n_lines.max()) if ctx.n else 0):
        m = n_lines > slot
        amount = ctx.read(ORDER_LINE, "ol_amount", line_mat[:, slot], mask=m)
        total = total + np.where(m & ctx.active, amount, 0.0)
        ctx.write(
            ORDER_LINE, "ol_delivery_d", line_mat[:, slot],
            np.ones(ctx.n, dtype=np.int64), mask=m,
        )
    c_row = ctx.index_probe("customer_pk", _key3(w_id, d_id, c_id))
    c_balance = ctx.read(CUSTOMER, "c_balance", c_row)
    ctx.write(CUSTOMER, "c_balance", c_row, c_balance + total)
    del_cnt = ctx.read(CUSTOMER, "c_delivery_cnt", c_row)
    ctx.write(CUSTOMER, "c_delivery_cnt", c_row, del_cnt + 1)
    out: List[float] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = float(total[i])
    ctx.finish(out)


def _v_stock_level(ctx) -> None:
    w_id = ctx.param_i64(0)
    d_id = ctx.param_i64(1)
    threshold = ctx.param_i64(2)
    d_row = ctx.index_probe("district_pk", _key2(w_id, d_id))
    next_o_id = ctx.read(DISTRICT, "d_next_o_id", d_row)
    lo = np.maximum(0, next_o_id - 20)
    n_orders = next_o_id - lo
    low = np.zeros(ctx.n, dtype=np.int64)
    seen: List[set] = [set() for _ in range(ctx.n)]
    max_orders = int(n_orders[ctx.active].max()) if ctx.active.any() else 0
    for k in range(max_orders):
        m = n_orders > k
        o_k = lo + k
        line_lists = ctx.index_probe_multi(
            "order_line_by_order", _key3(w_id, d_id, o_k), mask=m
        )
        n_lines, line_mat = _ragged_rows(line_lists, ctx.n)
        for slot in range(int(n_lines.max()) if ctx.n else 0):
            mm = m & (n_lines > slot)
            i_id = ctx.read(
                ORDER_LINE, "ol_i_id", line_mat[:, slot], mask=mm
            )
            # The per-lane dedup set: repeated items skip the stock
            # probe, exactly like the generator's `seen` check.
            fresh = np.zeros(ctx.n, dtype=bool)
            for i in np.flatnonzero(mm & ctx.active):
                item = int(i_id[i])
                if item not in seen[i]:
                    seen[i].add(item)
                    fresh[i] = True
            s_row = ctx.index_probe(
                "stock_pk", _key2(w_id, i_id), mask=fresh
            )
            qty = ctx.read(STOCK, "s_quantity", s_row, mask=fresh)
            low = low + np.where(
                fresh & ctx.active & (qty < threshold), 1, 0
            )
    out: List[int] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = int(low[i])
    ctx.finish(out)


# ---------------------------------------------------------------------------
# Access sets / partitions.
# ---------------------------------------------------------------------------
def _new_order_access(params) -> List[Access]:
    w_id, d_id = params[0], params[1]
    item_ids, supply_ws = params[3], params[4]
    accesses = [Access(_wd_item(w_id, d_id), write=True)]
    for i_id, supply_w in sorted(set(zip(item_ids, supply_ws))):
        accesses.append(Access(_stock_item(supply_w, i_id), write=True))
    # Read the stock marker of every supply warehouse: orders this
    # transaction against STOCK_LEVEL's coarse-granularity scan (which
    # write-locks the marker) without coupling new-orders to each other.
    for supply_w in sorted({int(w) for w in supply_ws}):
        accesses.append(
            Access(_stock_item(supply_w, _STOCK_MARKER), write=False)
        )
    return accesses


def _payment_access(params) -> List[Access]:
    w_id, d_id, c_w_id, c_d_id = params[0], params[1], params[2], params[3]
    return [
        Access(_w_item(w_id), write=True),
        Access(_wd_item(w_id, d_id), write=True),
        Access(_wd_item(c_w_id, c_d_id), write=True),
    ]


def _order_status_access(params) -> List[Access]:
    return [Access(_wd_item(params[0], params[1]), write=False)]


def _delivery_access(params) -> List[Access]:
    w_id, d_id = params[0], params[1]
    return [Access(_wd_item(w_id, d_id), write=True)]


def _stock_level_access(params) -> List[Access]:
    # The stock rows STOCK_LEVEL reads are derived from the district's
    # recent order lines, which cannot be enumerated from the
    # parameters alone. Per Appendix B's worst-case rule ("if the
    # transaction conflicting relationship cannot be determined on the
    # data item level, we determine the conflict at a coarser
    # granularity"), the scan takes the warehouse's stock *marker* as
    # a write so it orders against every NEW_ORDER (which reads the
    # marker of each supply warehouse) instead of racing their
    # per-item stock writes inside one conflict-"free" wave.
    w_id, d_id = params[0], params[1]
    return [
        Access(_wd_item(w_id, d_id), write=False),
        Access(_stock_item(w_id, _STOCK_MARKER), write=True),
    ]


def _lookup_access(params) -> List[Access]:
    return [Access(_wd_item(params[0], params[1]), write=False)]


def _make_partition_fn(access_fn):
    def partition_fn(params):
        return _single_warehouse_or_none(access_fn(params))

    return partition_fn


_ORDER_TABLES = frozenset({DISTRICT, ORDERS, NEW_ORDER, ORDER_LINE, STOCK})

PROCEDURES = [
    TransactionType(
        name="tpcc_new_order",
        body=_new_order,
        access_fn=_new_order_access,
        partition_fn=_make_partition_fn(_new_order_access),
        two_phase=True,
        conflict_classes=frozenset({WAREHOUSE, DISTRICT, CUSTOMER}) | _ORDER_TABLES,
        vector_body=_v_new_order,
        vector_inserts=frozenset({ORDERS, NEW_ORDER, ORDER_LINE}),
    ),
    TransactionType(
        name="tpcc_payment",
        body=_payment,
        access_fn=_payment_access,
        partition_fn=_make_partition_fn(_payment_access),
        two_phase=True,
        conflict_classes=frozenset({WAREHOUSE, DISTRICT, CUSTOMER, HISTORY}),
        vector_body=_v_payment,
        vector_inserts=frozenset({HISTORY}),
    ),
    TransactionType(
        name="tpcc_customer_by_name",
        body=_customer_by_name,
        access_fn=_lookup_access,
        partition_fn=_make_partition_fn(_lookup_access),
        two_phase=True,
        conflict_classes=frozenset({CUSTOMER}),
        vector_body=_v_customer_by_name,
    ),
    TransactionType(
        name="tpcc_order_status",
        body=_order_status,
        access_fn=_order_status_access,
        partition_fn=_make_partition_fn(_order_status_access),
        two_phase=True,
        conflict_classes=frozenset({CUSTOMER, ORDERS, ORDER_LINE}),
        vector_body=_v_order_status,
    ),
    TransactionType(
        name="tpcc_delivery",
        body=_delivery,
        access_fn=_delivery_access,
        partition_fn=_make_partition_fn(_delivery_access),
        two_phase=True,
        conflict_classes=frozenset({CUSTOMER}) | _ORDER_TABLES,
        vector_body=_v_delivery,
    ),
    TransactionType(
        name="tpcc_stock_level",
        body=_stock_level,
        access_fn=_stock_level_access,
        partition_fn=_make_partition_fn(_stock_level_access),
        two_phase=True,
        conflict_classes=frozenset({DISTRICT, ORDER_LINE, STOCK}),
        vector_body=_v_stock_level,
    ),
]


# ---------------------------------------------------------------------------
# Transaction generation.
# ---------------------------------------------------------------------------
def generate_transactions(
    db: Database,
    n: int,
    *,
    seed: int = 1,
    mix: List[Tuple[str, float]] | None = None,
    remote_item_prob: float = 0.0,
    remote_payment_prob: float = 0.0,
    by_name_prob: float = 0.6,
    invalid_item_prob: float = 0.01,
) -> List[TxnSpec]:
    """Draw ``n`` logical transactions from the TPC-C mix.

    ``remote_*`` default to 0 (single-partition, the configuration the
    public-benchmark comparison assumes); pass the spec values (0.01
    remote items, 0.15 remote payments) to exercise PART's TPL
    fallback. By-name PAYMENT/ORDER_STATUS emit their lookup halves
    first (Appendix E splits).
    """
    rng = make_rng(seed)
    n_w = db.table(WAREHOUSE).n_rows
    n_items = db.table(ITEM).n_rows
    customers = db.table(CUSTOMER).n_rows // (n_w * DISTRICTS)
    # The spec's NURand A constants (8191 items / 1023 customers)
    # assume 100k items / 3000 customers; scale A with the actual
    # ranges so the hot-set *fraction* matches the spec instead of
    # collapsing onto a handful of rows.
    a_item = min(8191, max(15, (1 << max(1, (n_items // 12)).bit_length()) - 1))
    a_cust = min(1023, max(15, (1 << max(1, (customers // 3)).bit_length()) - 1))
    picks = choose_mix(rng, mix or DEFAULT_MIX, n)
    out: List[TxnSpec] = []
    for name in picks:
        w_id = int(rng.integers(0, n_w))
        d_id = int(rng.integers(1, DISTRICTS + 1))
        if name == "tpcc_new_order":
            ol_cnt = int(rng.integers(5, 16))
            item_ids, supply_ws, qtys = [], [], []
            for line in range(ol_cnt):
                i_id = nurand(rng, a_item, 0, n_items - 1)
                if rng.random() < invalid_item_prob and line == ol_cnt - 1:
                    i_id = n_items + 10_000  # unused item: aborts in phase 1
                supply = w_id
                if n_w > 1 and rng.random() < remote_item_prob:
                    supply = int(rng.integers(0, n_w))
                item_ids.append(int(i_id))
                supply_ws.append(supply)
                qtys.append(int(rng.integers(1, 11)))
            c_id = nurand(rng, a_cust, 0, customers - 1)
            out.append(
                (name, (w_id, d_id, c_id, tuple(item_ids), tuple(supply_ws),
                        tuple(qtys)))
            )
        elif name == "tpcc_payment":
            c_w_id, c_d_id = w_id, d_id
            if n_w > 1 and rng.random() < remote_payment_prob:
                c_w_id = int(rng.integers(0, n_w))
                c_d_id = int(rng.integers(1, DISTRICTS + 1))
            amount = float(rng.uniform(1.0, 5_000.0))
            c_id = nurand(rng, a_cust, 0, customers - 1)
            if rng.random() < by_name_prob:
                c_last = tpcc_last_name(nurand(rng, 255, 0, 999))
                out.append(
                    ("tpcc_customer_by_name", (c_w_id, c_d_id, c_last))
                )
            out.append((name, (w_id, d_id, c_w_id, c_d_id, c_id, amount)))
        elif name == "tpcc_order_status":
            c_id = nurand(rng, a_cust, 0, customers - 1)
            if rng.random() < by_name_prob:
                c_last = tpcc_last_name(nurand(rng, 255, 0, 999))
                out.append(("tpcc_customer_by_name", (w_id, d_id, c_last)))
            out.append((name, (w_id, d_id, c_id)))
        elif name == "tpcc_delivery":
            carrier = int(rng.integers(1, 11))
            for d in range(1, DISTRICTS + 1):
                out.append((name, (w_id, d, carrier)))
        elif name == "tpcc_stock_level":
            out.append((name, (w_id, d_id, int(rng.integers(10, 21)))))
        else:  # pragma: no cover - mix validated upstream
            raise ValueError(f"unknown TPC-C type {name!r}")
    return out
