"""SmallBank: the contention-heavy banking benchmark (YCSB-T family).

SmallBank (Alomari et al., "The Cost of Serializability on Platforms
That Use Snapshot Isolation") models a checking/savings bank with six
short transaction types -- the classic stress test for optimistic and
partitioned executors because every transaction touches one or two hot
customer rows. It is not in the paper's evaluation, but it extends the
multi-workload discipline of Sections 6-7 with the missing regime: a
*skew-tunable* two-table update mix where the T-dependency graph depth
is controlled by a zipfian popularity tail
(:func:`repro.workloads.base.zipfian_items`), not by a single hot item.

Six transaction types, all written two-phase (every abort check
precedes the first write, so no undo logging is required):

* ``smallbank_balance`` -- read both balances, return the total;
* ``smallbank_deposit_checking`` -- add to a checking balance;
* ``smallbank_transact_savings`` -- add/subtract savings, aborting on
  overdraft;
* ``smallbank_amalgamate`` -- move both balances of one customer onto
  another's checking account;
* ``smallbank_write_check`` -- cash a check, charging a 1.0 overdraft
  penalty when it exceeds the combined balance (a data-dependent
  *value*, not a divergent branch);
* ``smallbank_send_payment`` -- checking-to-checking transfer,
  aborting on insufficient funds (the YCSB-T addition).

The customer id is the conflict/lock item and the partition key; the
two-customer types (amalgamate, send_payment) are cross-partition
unless both ids land on the same customer, exactly like the micro
pair procedures. Every type carries a vector kernel
(``TransactionType.vector_body``) from day one, so the whole workload
runs on the vectorized backend with zero fallback.

Scaling: ``scale_factor * accounts_per_sf`` customers (default 1 000
per scale factor; the original benchmark's hot set is 100 customers
out of 1M -- the zipfian ``theta`` knob replaces that fixed split).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.procedure import Access, TransactionType
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database
from repro.storage.schema import ColumnDef, DataType, TableSchema
from repro.workloads.base import (
    TxnSpec,
    choose_mix,
    make_rng,
    random_string,
    zipfian_items,
)

ACCOUNT = "sb_account"
SAVINGS = "sb_savings"
CHECKING = "sb_checking"

ACCOUNTS_PER_SF = 1_000
INITIAL_SAVINGS = 1_000.0
INITIAL_CHECKING = 100.0

#: The H-Store SmallBank mix (weights in percent), with SEND_PAYMENT
#: taking the spec's 25% slot.
DEFAULT_MIX = [
    ("smallbank_amalgamate", 15.0),
    ("smallbank_balance", 15.0),
    ("smallbank_deposit_checking", 15.0),
    ("smallbank_send_payment", 25.0),
    ("smallbank_transact_savings", 15.0),
    ("smallbank_write_check", 15.0),
]


def build_database(
    scale_factor: int,
    accounts_per_sf: int = ACCOUNTS_PER_SF,
    layout: str = "column",
    seed: int = 42,
) -> Database:
    """Populate the three SmallBank tables for ``scale_factor``."""
    if scale_factor < 1:
        raise ValueError("scale_factor must be >= 1")
    rng = make_rng(seed)
    n = scale_factor * accounts_per_sf
    db = Database(layout)
    custids = np.arange(n, dtype=np.int64)

    account = db.create_table(
        TableSchema(
            ACCOUNT,
            [
                ColumnDef("custid", DataType.INT64),
                ColumnDef("name", DataType.CHAR, length=24,
                          device_resident=False),
            ],
            primary_key=("custid",),
            partition_key="custid",
        ),
        capacity=n,
    )
    account.append_columns(
        {
            "custid": custids,
            "name": np.array(
                [random_string(rng, 12) for _ in range(n)], dtype=object
            ),
        }
    )

    savings = db.create_table(
        TableSchema(
            SAVINGS,
            [
                ColumnDef("custid", DataType.INT64),
                ColumnDef("bal", DataType.FLOAT64),
            ],
            primary_key=("custid",),
            partition_key="custid",
        ),
        capacity=n,
    )
    savings.append_columns(
        {"custid": custids, "bal": np.full(n, INITIAL_SAVINGS)}
    )

    checking = db.create_table(
        TableSchema(
            CHECKING,
            [
                ColumnDef("custid", DataType.INT64),
                ColumnDef("bal", DataType.FLOAT64),
            ],
            primary_key=("custid",),
            partition_key="custid",
        ),
        capacity=n,
    )
    checking.append_columns(
        {"custid": custids, "bal": np.full(n, INITIAL_CHECKING)}
    )

    db.create_index("sb_savings_pk", SAVINGS, ["custid"])
    db.create_index("sb_checking_pk", CHECKING, ["custid"])
    return db


# ---------------------------------------------------------------------------
# Stored procedures.
# ---------------------------------------------------------------------------
def _balance(custid: int) -> op_ir.OpStream:
    s_row = yield op_ir.IndexProbe("sb_savings_pk", custid)
    if s_row < 0:
        yield op_ir.Abort("no savings account")
    c_row = yield op_ir.IndexProbe("sb_checking_pk", custid)
    if c_row < 0:
        yield op_ir.Abort("no checking account")
    savings = yield op_ir.Read(SAVINGS, "bal", s_row)
    checking = yield op_ir.Read(CHECKING, "bal", c_row)
    return savings + checking


def _deposit_checking(custid: int, amount: float) -> op_ir.OpStream:
    if amount < 0:
        yield op_ir.Abort("negative deposit")
    c_row = yield op_ir.IndexProbe("sb_checking_pk", custid)
    if c_row < 0:
        yield op_ir.Abort("no checking account")
    checking = yield op_ir.Read(CHECKING, "bal", c_row)
    yield op_ir.Write(CHECKING, "bal", c_row, checking + amount)
    return checking + amount


def _transact_savings(custid: int, amount: float) -> op_ir.OpStream:
    s_row = yield op_ir.IndexProbe("sb_savings_pk", custid)
    if s_row < 0:
        yield op_ir.Abort("no savings account")
    savings = yield op_ir.Read(SAVINGS, "bal", s_row)
    if savings + amount < 0:
        yield op_ir.Abort("insufficient savings")
    yield op_ir.Write(SAVINGS, "bal", s_row, savings + amount)
    return savings + amount


def _amalgamate(custid0: int, custid1: int) -> op_ir.OpStream:
    s_row = yield op_ir.IndexProbe("sb_savings_pk", custid0)
    if s_row < 0:
        yield op_ir.Abort("no savings account")
    c_row0 = yield op_ir.IndexProbe("sb_checking_pk", custid0)
    if c_row0 < 0:
        yield op_ir.Abort("no checking account")
    c_row1 = yield op_ir.IndexProbe("sb_checking_pk", custid1)
    if c_row1 < 0:
        yield op_ir.Abort("no destination account")
    savings = yield op_ir.Read(SAVINGS, "bal", s_row)
    checking0 = yield op_ir.Read(CHECKING, "bal", c_row0)
    checking1 = yield op_ir.Read(CHECKING, "bal", c_row1)
    yield op_ir.Compute(2)
    yield op_ir.Write(SAVINGS, "bal", s_row, 0.0)
    yield op_ir.Write(CHECKING, "bal", c_row0, 0.0)
    yield op_ir.Write(CHECKING, "bal", c_row1, checking1 + savings + checking0)
    return savings + checking0


def _write_check(custid: int, amount: float) -> op_ir.OpStream:
    s_row = yield op_ir.IndexProbe("sb_savings_pk", custid)
    if s_row < 0:
        yield op_ir.Abort("no savings account")
    c_row = yield op_ir.IndexProbe("sb_checking_pk", custid)
    if c_row < 0:
        yield op_ir.Abort("no checking account")
    savings = yield op_ir.Read(SAVINGS, "bal", s_row)
    checking = yield op_ir.Read(CHECKING, "bal", c_row)
    # Overdraft charges a 1.0 penalty: a data-dependent value, not a
    # divergent branch -- both arms emit the same single write op.
    if savings + checking < amount:
        yield op_ir.Write(CHECKING, "bal", c_row, checking - (amount + 1.0))
        return checking - (amount + 1.0)
    yield op_ir.Write(CHECKING, "bal", c_row, checking - amount)
    return checking - amount


def _send_payment(custid0: int, custid1: int, amount: float) -> op_ir.OpStream:
    c_row0 = yield op_ir.IndexProbe("sb_checking_pk", custid0)
    if c_row0 < 0:
        yield op_ir.Abort("no source account")
    c_row1 = yield op_ir.IndexProbe("sb_checking_pk", custid1)
    if c_row1 < 0:
        yield op_ir.Abort("no destination account")
    checking0 = yield op_ir.Read(CHECKING, "bal", c_row0)
    if checking0 < amount:
        yield op_ir.Abort("insufficient funds")
    checking1 = yield op_ir.Read(CHECKING, "bal", c_row1)
    yield op_ir.Write(CHECKING, "bal", c_row0, checking0 - amount)
    yield op_ir.Write(CHECKING, "bal", c_row1, checking1 + amount)
    return checking0 - amount


# ---------------------------------------------------------------------------
# Vectorized forms (repro.core.backends): the batched kernels, kept in
# per-lane op lockstep with the generator bodies above -- the
# backend-equivalence property suite diffs the two.
# ---------------------------------------------------------------------------
def _amount_arr(ctx, i: int) -> np.ndarray:
    return np.fromiter((float(p[i]) for p in ctx.params), np.float64, ctx.n)


def _finish_float(ctx, values: np.ndarray) -> None:
    out: List[float] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = float(values[i])
    ctx.finish(out)


def _v_balance(ctx) -> None:
    custid = ctx.param_i64(0)
    s_row = ctx.index_probe("sb_savings_pk", custid)
    ctx.abort_where(s_row < 0, "no savings account")
    c_row = ctx.index_probe("sb_checking_pk", custid)
    ctx.abort_where(c_row < 0, "no checking account")
    savings = ctx.read(SAVINGS, "bal", s_row)
    checking = ctx.read(CHECKING, "bal", c_row)
    _finish_float(ctx, savings + checking)


def _v_deposit_checking(ctx) -> None:
    amount = _amount_arr(ctx, 1)
    ctx.abort_where(amount < 0, "negative deposit")
    c_row = ctx.index_probe("sb_checking_pk", ctx.param_i64(0))
    ctx.abort_where(c_row < 0, "no checking account")
    checking = ctx.read(CHECKING, "bal", c_row)
    ctx.write(CHECKING, "bal", c_row, checking + amount)
    _finish_float(ctx, checking + amount)


def _v_transact_savings(ctx) -> None:
    amount = _amount_arr(ctx, 1)
    s_row = ctx.index_probe("sb_savings_pk", ctx.param_i64(0))
    ctx.abort_where(s_row < 0, "no savings account")
    savings = ctx.read(SAVINGS, "bal", s_row)
    ctx.abort_where(savings + amount < 0, "insufficient savings")
    ctx.write(SAVINGS, "bal", s_row, savings + amount)
    _finish_float(ctx, savings + amount)


def _v_amalgamate(ctx) -> None:
    custid0 = ctx.param_i64(0)
    custid1 = ctx.param_i64(1)
    s_row = ctx.index_probe("sb_savings_pk", custid0)
    ctx.abort_where(s_row < 0, "no savings account")
    c_row0 = ctx.index_probe("sb_checking_pk", custid0)
    ctx.abort_where(c_row0 < 0, "no checking account")
    c_row1 = ctx.index_probe("sb_checking_pk", custid1)
    ctx.abort_where(c_row1 < 0, "no destination account")
    savings = ctx.read(SAVINGS, "bal", s_row)
    checking0 = ctx.read(CHECKING, "bal", c_row0)
    checking1 = ctx.read(CHECKING, "bal", c_row1)
    ctx.compute(2)
    ctx.write(SAVINGS, "bal", s_row, np.zeros(ctx.n))
    ctx.write(CHECKING, "bal", c_row0, np.zeros(ctx.n))
    ctx.write(CHECKING, "bal", c_row1, checking1 + savings + checking0)
    _finish_float(ctx, savings + checking0)


def _v_write_check(ctx) -> None:
    amount = _amount_arr(ctx, 1)
    s_row = ctx.index_probe("sb_savings_pk", ctx.param_i64(0))
    ctx.abort_where(s_row < 0, "no savings account")
    c_row = ctx.index_probe("sb_checking_pk", ctx.param_i64(0))
    ctx.abort_where(c_row < 0, "no checking account")
    savings = ctx.read(SAVINGS, "bal", s_row)
    checking = ctx.read(CHECKING, "bal", c_row)
    overdraft = savings + checking < amount
    new_bal = np.where(
        overdraft, checking - (amount + 1.0), checking - amount
    )
    ctx.write(CHECKING, "bal", c_row, new_bal)
    _finish_float(ctx, new_bal)


def _v_send_payment(ctx) -> None:
    amount = _amount_arr(ctx, 2)
    c_row0 = ctx.index_probe("sb_checking_pk", ctx.param_i64(0))
    ctx.abort_where(c_row0 < 0, "no source account")
    c_row1 = ctx.index_probe("sb_checking_pk", ctx.param_i64(1))
    ctx.abort_where(c_row1 < 0, "no destination account")
    checking0 = ctx.read(CHECKING, "bal", c_row0)
    ctx.abort_where(checking0 < amount, "insufficient funds")
    checking1 = ctx.read(CHECKING, "bal", c_row1)
    ctx.write(CHECKING, "bal", c_row0, checking0 - amount)
    ctx.write(CHECKING, "bal", c_row1, checking1 + amount)
    _finish_float(ctx, checking0 - amount)


# ---------------------------------------------------------------------------
# Access sets / partitions: the customer id is the lock item.
# ---------------------------------------------------------------------------
def _one_customer(params) -> List[Access]:
    return [Access(item=int(params[0]), write=True)]


def _one_customer_read(params) -> List[Access]:
    return [Access(item=int(params[0]), write=False)]


def _two_customers(params) -> List[Access]:
    a, b = int(params[0]), int(params[1])
    if a == b:
        return [Access(item=a, write=True)]
    return [Access(item=a, write=True), Access(item=b, write=True)]


def _single_partition(params):
    return int(params[0])


def _pair_partition(params):
    a, b = int(params[0]), int(params[1])
    return a if a == b else None


_TABLES = frozenset({SAVINGS, CHECKING})

PROCEDURES = [
    TransactionType(
        name="smallbank_amalgamate",
        body=_amalgamate,
        access_fn=_two_customers,
        partition_fn=_pair_partition,
        two_phase=True,
        conflict_classes=_TABLES,
        vector_body=_v_amalgamate,
    ),
    TransactionType(
        name="smallbank_balance",
        body=_balance,
        access_fn=_one_customer_read,
        partition_fn=_single_partition,
        two_phase=True,
        conflict_classes=_TABLES,
        vector_body=_v_balance,
    ),
    TransactionType(
        name="smallbank_deposit_checking",
        body=_deposit_checking,
        access_fn=_one_customer,
        partition_fn=_single_partition,
        two_phase=True,
        conflict_classes=frozenset({CHECKING}),
        vector_body=_v_deposit_checking,
    ),
    TransactionType(
        name="smallbank_send_payment",
        body=_send_payment,
        access_fn=_two_customers,
        partition_fn=_pair_partition,
        two_phase=True,
        conflict_classes=frozenset({CHECKING}),
        vector_body=_v_send_payment,
    ),
    TransactionType(
        name="smallbank_transact_savings",
        body=_transact_savings,
        access_fn=_one_customer,
        partition_fn=_single_partition,
        two_phase=True,
        conflict_classes=frozenset({SAVINGS}),
        vector_body=_v_transact_savings,
    ),
    TransactionType(
        name="smallbank_write_check",
        body=_write_check,
        access_fn=_one_customer,
        partition_fn=_single_partition,
        two_phase=True,
        conflict_classes=_TABLES,
        vector_body=_v_write_check,
    ),
]


# ---------------------------------------------------------------------------
# Transaction generation.
# ---------------------------------------------------------------------------
def generate_transactions(
    db: Database,
    n: int,
    *,
    seed: int = 1,
    theta: float = 0.0,
    mix: List[Tuple[str, float]] | None = None,
) -> List[TxnSpec]:
    """Draw ``n`` SmallBank transactions with zipfian customer skew.

    Customers are chosen by :func:`~repro.workloads.base.zipfian_items`
    at skew ``theta`` (0 = uniform; ~1 = YCSB-like; higher = hotter).
    The two-customer types always get a *distinct* partner (re-drawn
    on collision), as the original benchmark requires -- a self-pair
    SEND_PAYMENT would mint money through its last-write-wins double
    write. Generated two-customer transactions are therefore always
    cross-partition under PART; the same-partition path of those
    types (``custid0 == custid1``) exists for hand-built workloads
    and is covered by the property suite.
    """
    rng = make_rng(seed)
    n_accounts = db.table(ACCOUNT).n_rows
    picks = choose_mix(rng, mix or DEFAULT_MIX, n)
    customers = zipfian_items(rng, n_accounts, theta, 2 * n)
    out: List[TxnSpec] = []
    for k, name in enumerate(picks):
        a = int(customers[2 * k])
        b = int(customers[2 * k + 1])
        if b == a and n_accounts > 1:
            b = (a + 1 + int(rng.integers(0, n_accounts - 1))) % n_accounts
        if name == "smallbank_balance":
            out.append((name, (a,)))
        elif name == "smallbank_deposit_checking":
            out.append((name, (a, float(rng.integers(1, 100)))))
        elif name == "smallbank_transact_savings":
            out.append((name, (a, float(rng.integers(-200, 200)))))
        elif name == "smallbank_amalgamate":
            out.append((name, (a, b)))
        elif name == "smallbank_write_check":
            out.append((name, (a, float(rng.integers(1, 150)))))
        elif name == "smallbank_send_payment":
            out.append((name, (a, b, float(rng.integers(1, 60)))))
        else:  # pragma: no cover - mix is validated by choose_mix
            raise ValueError(f"unknown SmallBank type {name!r}")
    return out
