"""TPC-B: the single-transaction bank stress test (Appendix E).

Four tables -- branch, teller, account, history -- and one transaction
type: update an account's balance by a delta, record it in history, and
propagate the delta to the teller and the branch. "The branch ID is
used as the partitioning key", and since every transaction writes its
branch's balance, any two transactions on the same branch conflict: the
T-dependency graph degenerates into one path per branch (Figure 2(a)),
which is why the paper uses TPC-B as the running example for all three
execution strategies.

Scaling: ``scale_factor`` branches, ``TELLERS_PER_BRANCH`` tellers and
``accounts_per_branch`` accounts each (the TPC-B ratios are 10 and
100 000; the default here scales accounts down for simulation speed --
pass the full value if you have the hours).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.procedure import Access, TransactionType
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database
from repro.storage.schema import ColumnDef, DataType, TableSchema
from repro.workloads.base import TxnSpec, make_rng

TELLERS_PER_BRANCH = 10
DEFAULT_ACCOUNTS_PER_BRANCH = 1_000  # TPC-B says 100 000; scaled down

BRANCH = "branch"
TELLER = "teller"
ACCOUNT = "account"
HISTORY = "history"


def build_database(
    scale_factor: int,
    accounts_per_branch: int = DEFAULT_ACCOUNTS_PER_BRANCH,
    layout: str = "column",
) -> Database:
    """Load the four TPC-B tables at ``scale_factor`` branches."""
    if scale_factor < 1:
        raise ValueError("scale_factor must be >= 1")
    db = Database(layout)
    n_branches = scale_factor
    n_tellers = n_branches * TELLERS_PER_BRANCH
    n_accounts = n_branches * accounts_per_branch

    branch = db.create_table(
        TableSchema(
            BRANCH,
            [
                ColumnDef("b_id", DataType.INT64),
                ColumnDef("b_balance", DataType.FLOAT64),
                ColumnDef("b_filler", DataType.CHAR, length=88,
                          device_resident=False),
            ],
            primary_key=("b_id",),
            partition_key="b_id",
        ),
        capacity=n_branches,
    )
    branch.append_columns(
        {
            "b_id": np.arange(n_branches, dtype=np.int64),
            "b_balance": np.zeros(n_branches),
            "b_filler": np.array(["x" * 88] * n_branches, dtype=object),
        }
    )

    teller = db.create_table(
        TableSchema(
            TELLER,
            [
                ColumnDef("t_id", DataType.INT64),
                ColumnDef("b_id", DataType.INT64),
                ColumnDef("t_balance", DataType.FLOAT64),
                ColumnDef("t_filler", DataType.CHAR, length=84,
                          device_resident=False),
            ],
            primary_key=("t_id",),
            partition_key="b_id",
        ),
        capacity=n_tellers,
    )
    t_ids = np.arange(n_tellers, dtype=np.int64)
    teller.append_columns(
        {
            "t_id": t_ids,
            "b_id": t_ids // TELLERS_PER_BRANCH,
            "t_balance": np.zeros(n_tellers),
            "t_filler": np.array(["x" * 84] * n_tellers, dtype=object),
        }
    )

    account = db.create_table(
        TableSchema(
            ACCOUNT,
            [
                ColumnDef("a_id", DataType.INT64),
                ColumnDef("b_id", DataType.INT64),
                ColumnDef("a_balance", DataType.FLOAT64),
                ColumnDef("a_filler", DataType.CHAR, length=84,
                          device_resident=False),
            ],
            primary_key=("a_id",),
            partition_key="b_id",
        ),
        capacity=n_accounts,
    )
    a_ids = np.arange(n_accounts, dtype=np.int64)
    account.append_columns(
        {
            "a_id": a_ids,
            "b_id": a_ids // accounts_per_branch,
            "a_balance": np.zeros(n_accounts),
            "a_filler": np.array(["x" * 84] * n_accounts, dtype=object),
        }
    )

    db.create_table(
        TableSchema(
            HISTORY,
            [
                ColumnDef("a_id", DataType.INT64),
                ColumnDef("t_id", DataType.INT64),
                ColumnDef("b_id", DataType.INT64),
                ColumnDef("delta", DataType.FLOAT64),
                ColumnDef("h_time", DataType.INT64),
            ],
        ),
        capacity=max(64, n_accounts // 4),
    )

    db.create_index("account_pk", ACCOUNT, ["a_id"])
    db.create_index("teller_pk", TELLER, ["t_id"])
    db.create_index("branch_pk", BRANCH, ["b_id"])
    return db


def _profile_body(a_id: int, t_id: int, b_id: int, delta: float) -> op_ir.OpStream:
    """The TPC-B profile transaction as an op stream."""
    a_row = yield op_ir.IndexProbe("account_pk", a_id)
    if a_row < 0:
        yield op_ir.Abort("account not found")
    a_balance = yield op_ir.Read(ACCOUNT, "a_balance", a_row)
    yield op_ir.Write(ACCOUNT, "a_balance", a_row, a_balance + delta)
    yield op_ir.InsertRow(HISTORY, (a_id, t_id, b_id, delta, 0))
    t_row = yield op_ir.IndexProbe("teller_pk", t_id)
    t_balance = yield op_ir.Read(TELLER, "t_balance", t_row)
    yield op_ir.Write(TELLER, "t_balance", t_row, t_balance + delta)
    b_row = yield op_ir.IndexProbe("branch_pk", b_id)
    b_balance = yield op_ir.Read(BRANCH, "b_balance", b_row)
    yield op_ir.Write(BRANCH, "b_balance", b_row, b_balance + delta)
    return a_balance + delta


# ---------------------------------------------------------------------------
# Vectorized form (repro.core.backends): the batched profile
# transaction. Keep the per-lane op trace in lockstep with
# _profile_body when editing either -- the backend-equivalence
# property suite diffs the two.
# ---------------------------------------------------------------------------
def _v_profile(ctx) -> None:
    a_id = ctx.param_i64(0)
    t_id = ctx.param_i64(1)
    b_id = ctx.param_i64(2)
    delta = np.fromiter((float(p[3]) for p in ctx.params), np.float64, ctx.n)
    a_row = ctx.index_probe("account_pk", a_id)
    ctx.abort_where(a_row < 0, "account not found")
    a_balance = ctx.read(ACCOUNT, "a_balance", a_row)
    ctx.write(ACCOUNT, "a_balance", a_row, a_balance + delta)
    ctx.insert(
        HISTORY,
        list(zip(
            a_id.tolist(), t_id.tolist(), b_id.tolist(), delta.tolist(),
            [0] * ctx.n,
        )),
    )
    t_row = ctx.index_probe("teller_pk", t_id)
    t_balance = ctx.read(TELLER, "t_balance", t_row)
    ctx.write(TELLER, "t_balance", t_row, t_balance + delta)
    b_row = ctx.index_probe("branch_pk", b_id)
    b_balance = ctx.read(BRANCH, "b_balance", b_row)
    ctx.write(BRANCH, "b_balance", b_row, b_balance + delta)
    out: List[float] = [None] * ctx.n  # type: ignore[list-item]
    for i in np.flatnonzero(ctx.active):
        out[i] = float(a_balance[i] + delta[i])
    ctx.finish(out)


def _access_fn(params) -> List[Access]:
    # Root-relation locking (Section 5.1): the branch id covers the
    # teller/account/history accesses of the tree-shaped schema.
    _a_id, _t_id, b_id, _delta = params
    return [Access(item=int(b_id), write=True)]


def _partition_fn(params):
    return int(params[2])


PROFILE = TransactionType(
    name="tpcb_profile",
    body=_profile_body,
    access_fn=_access_fn,
    partition_fn=_partition_fn,
    two_phase=True,
    conflict_classes=frozenset({BRANCH, TELLER, ACCOUNT, HISTORY}),
    vector_body=_v_profile,
    vector_inserts=frozenset({HISTORY}),
)

#: The complete TPC-B procedure set (a single type).
PROCEDURES = [PROFILE]


def generate_transactions(
    db: Database,
    n: int,
    *,
    seed: int = 1,
    hot_branch_alpha: float | None = None,
) -> List[TxnSpec]:
    """Uniform branch choice (or alpha-skewed to branch 0), local teller
    and account within the branch, random delta."""
    rng = make_rng(seed)
    n_branches = db.table(BRANCH).n_rows
    accounts_per_branch = db.table(ACCOUNT).n_rows // n_branches
    if hot_branch_alpha is None:
        branches = rng.integers(0, n_branches, size=n)
    else:
        from repro.workloads.base import skewed_first_item

        branches = skewed_first_item(rng, n_branches, hot_branch_alpha, n)
    tellers = branches * TELLERS_PER_BRANCH + rng.integers(
        0, TELLERS_PER_BRANCH, size=n
    )
    accounts = branches * accounts_per_branch + rng.integers(
        0, accounts_per_branch, size=n
    )
    deltas = rng.integers(-99_999, 100_000, size=n).astype(float)
    return [
        (
            "tpcb_profile",
            (int(accounts[i]), int(tellers[i]), int(branches[i]), float(deltas[i])),
        )
        for i in range(n)
    ]
