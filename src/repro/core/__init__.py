"""GPUTx core: bulk execution model, T-dependency graph, strategies."""

from repro.core.chooser import (
    STRATEGY_KSET,
    STRATEGY_PART,
    STRATEGY_TPL,
    ChooserThresholds,
    choose_strategy,
)
from repro.core.engine import ArrivalReport, GPUTx
from repro.core.executor import ExecutionResult, StrategyExecutor
from repro.core.kset import (
    IncrementalKSetExtractor,
    RankResult,
    compute_ranks,
    merge_accesses,
)
from repro.core.procedure import (
    Access,
    ProcedureRegistry,
    TransactionType,
)
from repro.core.profiler import BulkProfile, BulkProfiler
from repro.core.tdg import TDependencyGraph
from repro.core.txn import ResultPool, Transaction, TransactionPool, TxnResult

__all__ = [
    "STRATEGY_KSET",
    "STRATEGY_PART",
    "STRATEGY_TPL",
    "ChooserThresholds",
    "choose_strategy",
    "ArrivalReport",
    "GPUTx",
    "ExecutionResult",
    "StrategyExecutor",
    "IncrementalKSetExtractor",
    "RankResult",
    "compute_ranks",
    "merge_accesses",
    "Access",
    "ProcedureRegistry",
    "TransactionType",
    "BulkProfile",
    "BulkProfiler",
    "TDependencyGraph",
    "ResultPool",
    "Transaction",
    "TransactionPool",
    "TxnResult",
]
