"""The T-dependency graph (Section 4, Appendix B).

A DAG over the transactions of a pool: vertices are transactions, and
an edge ``t1 -> t2`` exists iff (a) ``t1`` and ``t2`` conflict, (b)
``t1``'s timestamp is smaller, and (c) no transaction with an
intermediate timestamp conflicts with both. Because timestamps strictly
order the edges, the graph is acyclic -- which is what makes the
counter-lock TPL of Section 5.1 deadlock-free.

Construction follows the data-oriented algorithm of Appendix B: per
data item we keep the timestamp-ordered list of transactions touching
it; adding a transaction only examines the tails of the lists of the
items it touches:

* adding a **write**: scan back from the tail until the latest writer
  ``tw``; if ``tw`` is the tail, add ``tw -> t``; otherwise add an edge
  from every *reader* after ``tw`` (they all must finish first, and
  none of them conflicts with another reader, satisfying (c));
* adding a **read**: add one edge from the latest writer, wherever it
  sits in the list.

``depths()`` computes each vertex's depth (longest path from a source)
by topological order; ``k_sets()`` buckets vertices by depth -- the
k-sets of Section 4.1 with their two properties (members of one k-set
are pairwise conflict-free; every depth-k vertex has a conflicting
depth-(k-1) predecessor), both asserted by the property-based tests.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.procedure import Access
from repro.errors import ExecutionError


class TDependencyGraph:
    """Explicit T-dependency graph over (txn_id, access set) pairs."""

    def __init__(self) -> None:
        self.succ: Dict[int, Set[int]] = {}
        self.pred: Dict[int, Set[int]] = {}
        #: item -> list of (txn_id, wrote) in increasing timestamp order.
        self._item_lists: Dict[int, List[Tuple[int, bool]]] = {}
        self._last_ts: Optional[int] = None
        #: txn -> {item: wrote} merged access map (write dominates).
        self._access: Dict[int, Dict[int, bool]] = {}

    # ------------------------------------------------------------------
    # Construction (Appendix B).
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, transactions: Iterable[Tuple[int, Sequence[Access]]]
    ) -> "TDependencyGraph":
        """Build from (txn_id, accesses) in increasing timestamp order."""
        graph = cls()
        for txn_id, accesses in transactions:
            graph.add_transaction(txn_id, accesses)
        return graph

    def add_transaction(self, txn_id: int, accesses: Sequence[Access]) -> None:
        """Insert one transaction; must arrive in timestamp order."""
        if self._last_ts is not None and txn_id <= self._last_ts:
            raise ExecutionError(
                f"transactions must be added in timestamp order "
                f"({txn_id} after {self._last_ts})"
            )
        self._last_ts = txn_id
        self.succ.setdefault(txn_id, set())
        self.pred.setdefault(txn_id, set())

        merged: Dict[int, bool] = {}
        for acc in accesses:
            merged[acc.item] = merged.get(acc.item, False) or acc.write
        self._access[txn_id] = merged

        for item, wrote in merged.items():
            entries = self._item_lists.setdefault(item, [])
            if entries:
                if wrote:
                    # Edges from the trailing readers (or the tail writer).
                    added_any = False
                    for prev_id, prev_wrote in reversed(entries):
                        if prev_wrote:
                            if not added_any:
                                self._add_edge(prev_id, txn_id)
                            break
                        self._add_edge(prev_id, txn_id)
                        added_any = True
                else:
                    # One edge from the latest writer, if any.
                    for prev_id, prev_wrote in reversed(entries):
                        if prev_wrote:
                            self._add_edge(prev_id, txn_id)
                            break
            entries.append((txn_id, wrote))

    def _add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.succ.setdefault(src, set()).add(dst)
        self.pred.setdefault(dst, set()).add(src)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> List[int]:
        return sorted(self.succ)

    def conflicting(self, t1: int, t2: int) -> bool:
        """True iff the two transactions have conflicting accesses."""
        a1 = self._access.get(t1, {})
        a2 = self._access.get(t2, {})
        if len(a2) < len(a1):
            a1, a2 = a2, a1
        for item, wrote in a1.items():
            other = a2.get(item)
            if other is not None and (wrote or other):
                return True
        return False

    def sources(self) -> List[int]:
        """Vertices with no predecessors -- the 0-set (Section 4.1)."""
        return sorted(v for v in self.succ if not self.pred.get(v))

    def depths(self) -> Dict[int, int]:
        """Longest-path depth of every vertex (sources have depth 0)."""
        indeg = {v: len(self.pred.get(v, ())) for v in self.succ}
        depth = {v: 0 for v in self.succ}
        queue = deque(v for v, d in indeg.items() if d == 0)
        visited = 0
        while queue:
            v = queue.popleft()
            visited += 1
            dv = depth[v]
            for w in self.succ.get(v, ()):
                if depth[w] < dv + 1:
                    depth[w] = dv + 1
                indeg[w] -= 1
                if indeg[w] == 0:
                    queue.append(w)
        if visited != len(self.succ):  # pragma: no cover - acyclic by design
            raise ExecutionError("T-dependency graph contains a cycle")
        return depth

    def depth(self) -> int:
        """The depth of the graph: maximum vertex depth (Section 4.1)."""
        depths = self.depths()
        return max(depths.values(), default=0)

    def k_sets(self) -> Dict[int, List[int]]:
        """Bucket vertices by depth: k -> sorted transaction ids."""
        out: Dict[int, List[int]] = {}
        for v, d in self.depths().items():
            out.setdefault(d, []).append(v)
        for bucket in out.values():
            bucket.sort()
        return out

    def sub_dag_from(self, root: int) -> Set[int]:
        """All vertices reachable from ``root`` (root included).

        Used by TPL recovery: rolling back an aborted transaction also
        rolls back "the transactions in the sub-DAG of the T-dependency
        graph rooted at the transaction" (Appendix D).
        """
        seen = {root}
        stack = [root]
        while stack:
            v = stack.pop()
            for w in self.succ.get(v, ()):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return seen

    def cross_partition_count(self) -> int:
        """Vertices with more than one predecessor.

        Appendix D uses this as the structural indicator ``c`` (e.g.
        cross-partition transactions) for the strategy chooser.
        """
        return sum(1 for v in self.succ if len(self.pred.get(v, ())) > 1)
