"""Shared machinery for the bulk execution strategies.

Every strategy (TPL, PART, K-SET, ad-hoc, and the relaxed variants of
Appendix G) produces an :class:`ExecutionResult`: per-transaction
outcomes plus a phase-labelled time breakdown, with the host<->device
transfer of signatures and results included (Section 6.1: "the
throughput measurement includes the data transfer ... for the input
transaction signatures and result output").

The base class also centralises what happens *after* a kernel:

* the batched apply of buffered inserts/deletes (Section 3.2);
* rollback of aborted transactions through their undo logs, and
  cancellation of their buffered inserts/deletes (Appendix D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.core.procedure import ProcedureRegistry
from repro.core.txn import Transaction, TxnResult
from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.primitives import PrimitiveLibrary
from repro.gpu.simt import KernelReport, SIMTEngine, ThreadOutcome, ThreadTask
from repro.gpu.spec import GPUSpec
from repro.gpu.transfer import PCIeModel
from repro.storage.catalog import StoreAdapter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backends import ExecutionBackend

#: Phase names used in breakdowns (Figures 5, 12, 17).
PHASE_GENERATION = "generation"
PHASE_EXECUTION = "execution"
PHASE_TRANSFER_IN = "transfer_in"
PHASE_TRANSFER_OUT = "transfer_out"


@dataclass
class ExecutionResult:
    """Outcome of executing one bulk with some strategy."""

    strategy: str
    results: List[TxnResult]
    breakdown: TimeBreakdown
    kernel_reports: List[KernelReport] = field(default_factory=list)
    #: Transactions rolled back because a conflicting predecessor
    #: aborted after writing (TPL cascade, Appendix D).
    cascaded_aborts: List[int] = field(default_factory=list)
    #: Transactions not executed this bulk (streaming K-SET leaves
    #: blocked work in the pool for later bulks, Section 5.3).
    deferred: List["Transaction"] = field(default_factory=list)
    #: Execution backend that actually ran this bulk's kernel waves:
    #: "interpreted", "vectorized", or "mixed" when the vectorized
    #: backend fell back for some waves. The simulated figures are
    #: backend-independent by construction, only wall-clock differs.
    backend: str = "interpreted"
    #: Host wall-clock seconds spent executing the bulk (set by the
    #: engine facade; 0.0 when the executor was driven directly).
    wall_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        return self.breakdown.total

    @property
    def committed(self) -> int:
        return sum(1 for r in self.results if r.committed)

    @property
    def aborted(self) -> int:
        return sum(1 for r in self.results if not r.committed)

    def throughput_tps(self, count_aborts: bool = True) -> float:
        """Transactions per second of this bulk execution."""
        n = len(self.results) if count_aborts else self.committed
        seconds = self.seconds
        return n / seconds if seconds > 0 else 0.0

    @property
    def throughput_ktps(self) -> float:
        """The paper's unit: thousands of transactions per second."""
        return self.throughput_tps() / 1e3


class StrategyExecutor:
    """Base class: strategy-independent plumbing."""

    name = "base"
    #: Whether this strategy routes kernel launches through the
    #: configured execution backend. Lock-based and serial strategies
    #: (TPL, ad-hoc) keep this False: only the interpreter models spin
    #: locks and single-core execution.
    uses_backend = False

    def __init__(
        self,
        registry: ProcedureRegistry,
        adapter: StoreAdapter,
        engine: SIMTEngine,
        *,
        primitives: Optional[PrimitiveLibrary] = None,
        pcie: Optional[PCIeModel] = None,
        use_undo_logging: bool = True,
        backend: Optional["ExecutionBackend"] = None,
    ) -> None:
        from repro.core.backends import InterpretedBackend

        self.registry = registry
        self.adapter = adapter
        self.engine = engine
        self.primitives = primitives or PrimitiveLibrary(engine.spec)
        self.pcie = pcie or PCIeModel(engine.spec)
        self.use_undo_logging = use_undo_logging
        #: How waves execute on the host (see repro.core.backends).
        #: K-SET and PART route their kernel launches through it; the
        #: lock-based and serial strategies (TPL, ad-hoc) always use
        #: the interpreter, which is the only path that models spin
        #: locks and serial-core semantics.
        self.backend = backend or InterpretedBackend()

    # ------------------------------------------------------------------
    # To be provided by strategies.
    # ------------------------------------------------------------------
    def execute(self, transactions: Sequence[Transaction]) -> ExecutionResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------
    def _needs_undo(self, txn: Transaction) -> bool:
        return self.use_undo_logging and self.registry.needs_undo(txn.type_name)

    def build_task(self, txn: Transaction) -> ThreadTask:
        """One transaction -> one GPU thread."""
        return ThreadTask(
            txn_id=txn.txn_id,
            type_id=self.registry.type_id(txn.type_name),
            body=self.registry.build_stream(txn.type_name, txn.params),
            capture_undo=self._needs_undo(txn),
        )

    def input_transfer_seconds(self, transactions: Sequence[Transaction]) -> float:
        """Copy the bulk's signatures host -> device."""
        nbytes = sum(map(Transaction.signature_bytes, transactions))
        return self.pcie.to_device(nbytes, component="input")

    def output_transfer_seconds(self, results: Sequence[TxnResult]) -> float:
        """Copy the bulk's results device -> host."""
        nbytes = sum(map(TxnResult.result_bytes, results))
        return self.pcie.to_host(nbytes, component="output")

    def rollback_outcome(self, outcome: ThreadOutcome) -> None:
        """Undo one aborted transaction's effects (reverse log order)."""
        for entry in reversed(outcome.undo):
            table, column, row, old = entry
            if table == "__insert__":
                self.adapter.cancel_insert(column, row)
            elif table == "__delete__":
                self.adapter.cancel_delete(column, row)
            else:
                self.adapter.write(table, column, row, old)

    def finalize_kernel(
        self,
        transactions: Sequence[Transaction],
        report: KernelReport,
        *,
        rollback_aborted: bool = True,
    ) -> List[TxnResult]:
        """Roll back aborts, apply the insert/delete batch, build results."""
        by_id: Dict[int, Transaction] = {t.txn_id: t for t in transactions}
        results: List[TxnResult] = []
        append = results.append
        for outcome in report.outcomes:
            txn = by_id[outcome.txn_id]
            if not outcome.committed and rollback_aborted and outcome.undo:
                self.rollback_outcome(outcome)
            append(
                TxnResult(
                    outcome.txn_id,
                    txn.type_name,
                    outcome.committed,
                    outcome.abort_reason,
                    outcome.result,
                )
            )
        self.adapter.apply_batch()
        return results
