"""Micro-op IR -- re-exported from :mod:`repro.gpu.ops`.

The op vocabulary is canonically defined in the GPU package (it is the
instruction set of the simulated device and the GPU package must not
depend on the rest of the library); this module re-exports it under the
``repro.core`` namespace for the layout documented in DESIGN.md.
"""

from repro.gpu.ops import (  # noqa: F401
    ABORT,
    ATOMIC_ADD,
    ATOMIC_CAS,
    COMPUTE,
    DELETE_ROW,
    INDEX_PROBE,
    INSERT_ROW,
    KIND_NAMES,
    VECTORIZABLE_KINDS,
    LOCK_ACQUIRE,
    LOCK_RELEASE,
    READ,
    SET_BRANCH,
    SFU_COMPUTE,
    THREAD_FENCE,
    WRITE,
    Abort,
    AtomicAdd,
    AtomicCAS,
    Compute,
    DeleteRow,
    IndexProbe,
    InsertRow,
    LockAcquire,
    LockRelease,
    Op,
    OpStream,
    Read,
    SetBranch,
    SfuCompute,
    ThreadFence,
    Write,
)

__all__ = [
    "ABORT", "ATOMIC_ADD", "ATOMIC_CAS", "COMPUTE", "DELETE_ROW",
    "INDEX_PROBE", "INSERT_ROW", "KIND_NAMES", "VECTORIZABLE_KINDS",
    "LOCK_ACQUIRE",
    "LOCK_RELEASE", "READ", "SET_BRANCH", "SFU_COMPUTE", "THREAD_FENCE",
    "WRITE", "Abort", "AtomicAdd", "AtomicCAS", "Compute", "DeleteRow",
    "IndexProbe", "InsertRow", "LockAcquire", "LockRelease", "Op",
    "OpStream", "Read", "SetBranch", "SfuCompute", "ThreadFence", "Write",
]
