"""Transaction types (stored procedures) and the combined kernel.

Each transaction type is "registered as a stored procedure without user
interaction", and "the codes of registered transaction types are
combined into a single kernel ... with a switch clause" (Sections 3.1,
3.2). Here:

* the *stored procedure* is a generator function emitting micro-ops
  (:mod:`repro.gpu.ops`);
* the *access function* derives the affected data items from the
  parameters before execution -- the paper's requirement that conflicts
  be derivable "on the affected data items" (Appendix B), which is why
  the benchmarks' name-lookup transactions are split in two;
* the *partition function* maps parameters to PART's partition id
  (Section 5.2), or ``None`` for a cross-partition transaction;
* the :class:`ProcedureRegistry` is the combined kernel: it assigns the
  switch-case ids and builds per-transaction generators whose first op
  is ``SetBranch(type_id)`` so the SIMT engine sees the switch's
  divergence.

Undo-log classification (Appendix D): a *two-phase* transaction reads
and may abort first, then writes without aborting -- it needs no undo
log. For each non-two-phase type, the registry marks every type it may
conflict with (sharing a conflict class) as requiring undo logging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import RegistrationError
from repro.gpu import ops as op_ir


@dataclass(frozen=True)
class Access:
    """One basic operation's target: data item + read/write mode.

    ``item`` is a workload-chosen integer id at the conflict/lock
    granularity -- typically the primary key of the *root relation* of
    the tree-shaped schema (Section 5.1: "the primary key of the root
    relation in the tree is used as the object for locking").
    """

    item: int
    write: bool


#: Builds the op stream of one transaction from its parameters.
ProcedureBody = Callable[..., op_ir.OpStream]
#: Derives the merged access set from the parameters.
AccessFn = Callable[[Tuple[Any, ...]], List[Access]]
#: Derives PART's partition id from the parameters (None = cross-part.).
PartitionFn = Callable[[Tuple[Any, ...]], Optional[int]]


@dataclass(frozen=True)
class TransactionType:
    """A registered stored procedure and its static metadata."""

    name: str
    body: ProcedureBody
    access_fn: AccessFn
    partition_fn: Optional[PartitionFn] = None
    #: Two-phase transactions never abort after their first write, so
    #: they need no undo log (Appendix D).
    two_phase: bool = True
    #: Coarse conflict classes (e.g. table names) used to decide which
    #: types may conflict -- the "domain-specific rules on detecting
    #: whether two transactions are conflicting" a DBA supplies (App. E).
    conflict_classes: FrozenSet[str] = frozenset()
    #: Optional batched form of ``body`` for the vectorized execution
    #: backend: a callable taking a
    #: :class:`~repro.core.backends.wave.WaveContext` that executes a
    #: whole same-type wave as NumPy column kernels while recording
    #: the interpreter-equivalent op trace. ``None`` means waves
    #: containing this type fall back to the interpreter. See
    #: docs/ARCHITECTURE.md ("Execution backends") for the authoring
    #: contract.
    vector_body: Optional[Callable[..., None]] = None
    #: Tables ``vector_body`` may insert rows into -- the vectorized
    #: backend resolves device addresses on these tables lazily, since
    #: their row count (and hence column offsets) moves mid-kernel.
    vector_inserts: FrozenSet[str] = frozenset()

    def accesses(self, params: Tuple[Any, ...]) -> List[Access]:
        return self.access_fn(params)

    def partition_of(self, params: Tuple[Any, ...]) -> Optional[int]:
        if self.partition_fn is None:
            return None
        return self.partition_fn(params)


class ProcedureRegistry:
    """The combined kernel: all registered types plus dispatch.

    Registering a new type appends a case to the switch clause and
    "recompiles the kernel" -- here, that is just assigning the next
    type id.
    """

    def __init__(self) -> None:
        self._types: Dict[str, TransactionType] = {}
        self._type_ids: Dict[str, int] = {}
        self._order: List[str] = []
        self._undo_required: Optional[FrozenSet[str]] = None

    def __len__(self) -> int:
        return len(self._types)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    @property
    def type_names(self) -> List[str]:
        return list(self._order)

    def register(self, txn_type: TransactionType) -> int:
        """Add a case to the switch; returns the assigned type id."""
        if txn_type.name in self._types:
            raise RegistrationError(
                f"transaction type {txn_type.name!r} already registered"
            )
        type_id = len(self._order)
        self._types[txn_type.name] = txn_type
        self._type_ids[txn_type.name] = type_id
        self._order.append(txn_type.name)
        self._undo_required = None  # recompile
        return type_id

    def register_many(self, txn_types: Sequence[TransactionType]) -> None:
        for txn_type in txn_types:
            self.register(txn_type)

    def get(self, name: str) -> TransactionType:
        try:
            return self._types[name]
        except KeyError:
            raise RegistrationError(
                f"unknown transaction type {name!r}"
            ) from None

    def type_id(self, name: str) -> int:
        try:
            return self._type_ids[name]
        except KeyError:
            raise RegistrationError(
                f"unknown transaction type {name!r}"
            ) from None

    # ------------------------------------------------------------------
    # Kernel-side dispatch.
    # ------------------------------------------------------------------
    def build_stream(
        self, type_name: str, params: Tuple[Any, ...]
    ) -> op_ir.OpStream:
        """Instantiate the op stream for one transaction.

        The stream enters the type's switch case first (``SetBranch``),
        then runs the stored procedure body; the body's return value is
        the transaction's result.
        """
        txn_type = self.get(type_name)
        type_id = self._type_ids[type_name]

        def stream() -> op_ir.OpStream:
            yield op_ir.SetBranch(type_id)
            result = yield from txn_type.body(*params)
            return result

        return stream()

    # ------------------------------------------------------------------
    # Undo-log classification (Appendix D).
    # ------------------------------------------------------------------
    def undo_required_types(self) -> FrozenSet[str]:
        """Types whose transactions must write undo logs.

        A type needs undo logging iff some *non-two-phase* type shares
        a conflict class with it (including itself).
        """
        if self._undo_required is None:
            risky_classes: set = set()
            for t in self._types.values():
                if not t.two_phase:
                    risky_classes |= set(t.conflict_classes)
                    if not t.conflict_classes:
                        # No class info: conservatively everything.
                        risky_classes.add("*")
            required = set()
            for t in self._types.values():
                if "*" in risky_classes or (
                    risky_classes & set(t.conflict_classes)
                ):
                    required.add(t.name)
            self._undo_required = frozenset(required)
        return self._undo_required

    def needs_undo(self, type_name: str) -> bool:
        return type_name in self.undo_required_types()
