"""Vectorized replay of the SIMT interpreter's cost accounting.

Without lock ops, every live thread of a kernel advances exactly one
micro-op per round in :class:`~repro.gpu.simt.SIMTEngine`. The
kernel's simulated cost is therefore a pure function of the per-thread
op traces: round ``r`` executes each thread's ``r``-th op, a warp's
live threads group by ``(branch, kind)``, and each group's charges
depend only on its kind, addresses, and sizes. This module evaluates
that function over whole trace arrays at once and produces a
:class:`~repro.gpu.costmodel.KernelStats` *identical* to stepping the
interpreter -- the contract the vectorized backend's simulated-clock
equivalence rests on (asserted field-by-field in the backend tests).

It also computes the interpreter's *event order* -- rounds ascending,
SMs in index order, warps in the scheduler's visit order (with its
swap-removal of finished warps), divergent groups in first-occurrence
order, lanes in warp order -- which fixes two things the trace alone
does not: the physical order in which staged inserts append rows
(physical state must be byte-identical across backends) and the
device addresses of cells in tables whose row count moves mid-kernel
(column offsets scale with ``n_rows``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.gpu import ops as op_ir
from repro.gpu.costmodel import KernelStats, with_perf_handicap
from repro.gpu.simt import KernelReport, ThreadOutcome, warp_layout

from repro.core.backends.wave import HANDLE_BASE, TraceRecorder, WaveStore

#: Op kinds whose single-group issue charge is one plain instruction.
_PLAIN_ISSUE_KINDS = (
    op_ir.SET_BRANCH,
    op_ir.ABORT,
    op_ir.THREAD_FENCE,
)


@dataclass
class ScheduleOverrides:
    """Lock-schedule context a TPL launch feeds into the replay.

    Without locks, a thread's round is ``opidx + 1`` and a warp stays
    schedulable until its op count runs out -- both derivable from the
    trace. With counter locks, rounds have spin gaps and the spin
    charges happen on rounds with no recorded event at all, so the
    lockstep scheduler (:mod:`repro.core.backends.lockstep`) hands the
    replay what it already computed: the true round horizon, each
    warp's last live round, and the spin-phase charge totals to merge
    into the stats (all exact integer-valued sums, so the merged
    totals are bit-identical to the interpreter's accumulation order).
    """

    #: Total rounds (= the interpreter's round counter at finish).
    rounds: int = 0
    #: Per-warp last round with a live thread (visit simulation).
    warp_last_round: Optional[np.ndarray] = None
    #: Per-SM spin/acquire charges accumulated by the scheduler.
    issue_cycles: Optional[np.ndarray] = None
    atomic_cycles: Optional[np.ndarray] = None
    mem_transactions: Optional[np.ndarray] = None
    mem_bytes: Optional[np.ndarray] = None
    #: Aggregate counters from the acquire phase.
    spin_iterations: int = 0
    atomic_conflicts: int = 0
    #: Divergence groups that left no trace event (all-spinning
    #: acquire groups), already netted against rounds where they were
    #: the only group (see lockstep._divergence_extra).
    divergent_serializations: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)


def _pack_sort(*keys: np.ndarray) -> np.ndarray:
    """``np.lexsort`` with the keys packed into one int64 argsort.

    ``keys`` are given most-significant first (the reverse of
    lexsort's convention). All keys must be non-negative except the
    last-resort fallback handles anything. A single argsort over the
    packed key is several times faster than lexsort's one argsort per
    key, which matters in the replay hot path.
    """
    bits = []
    for k in keys:
        hi = int(k.max()) if len(k) else 0
        lo = int(k.min()) if len(k) else 0
        if lo < 0:
            return np.lexsort(tuple(reversed(keys)))
        bits.append(max(1, hi.bit_length()))
    if sum(bits) > 62:
        return np.lexsort(tuple(reversed(keys)))
    packed = np.zeros(len(keys[0]), dtype=np.int64)
    for k, b in zip(keys, bits):
        packed = (packed << b) | k.astype(np.int64)
    return np.argsort(packed, kind="stable")


def replay_kernel(
    recorder: TraceRecorder,
    store: WaveStore,
    engine: Any,
    outcomes: List[ThreadOutcome],
    schedule: Optional[ScheduleOverrides] = None,
) -> KernelReport:
    """Resolve a recorded wave into a KernelReport and apply the staged
    mutations in interpreter event order."""
    recorder.flush_scalar()
    spec = engine.spec
    cost = engine.cost
    n_threads = recorder.n_threads
    stats = KernelStats(num_sms=spec.num_sms)
    stats.threads_launched = n_threads
    stats.threads_aborted = sum(1 for o in outcomes if not o.committed)
    if schedule is not None:
        stats.rounds = schedule.rounds
    else:
        stats.rounds = int(recorder.op_count.max()) if n_threads else 0

    bounds, sm_warp_ids, resident = warp_layout(
        n_threads, engine.block_size, spec
    )
    for sm in range(spec.num_sms):
        stats.resident_warps[sm] = resident[sm]
    warp_of = np.empty(n_threads, dtype=np.int64)
    sm_of_warp = np.empty(len(bounds), dtype=np.int64)
    for sm, ids in enumerate(sm_warp_ids):
        for w in ids:
            sm_of_warp[w] = sm
    for w, (lo, hi) in enumerate(bounds):
        warp_of[lo:hi] = w

    # ---- flatten steps into event arrays ------------------------------
    steps = recorder.steps
    sizes = [len(s.lanes) for s in steps]
    E = int(sum(sizes))
    stats.ops_executed = E
    offsets = np.zeros(len(steps) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    # Per-step-constant fields flatten with one repeat each; per-lane
    # fields with one concatenate each -- no per-step python slicing.
    ev_thread = (
        np.concatenate([s.lanes for s in steps])
        if steps else np.zeros(0, dtype=np.int64)
    )
    ev_round = (
        np.concatenate(
            [
                s.rounds if s.rounds is not None else s.opidx + 1
                for s in steps
            ]
        )
        if steps else np.zeros(0, dtype=np.int64)
    )
    ev_kind = np.repeat(
        np.fromiter((s.kind for s in steps), np.int64, len(steps)), sizes_arr
    )
    ev_branch = np.concatenate(
        [
            s.branch
            if isinstance(s.branch, np.ndarray)
            else np.full(len(s.lanes), s.branch, dtype=np.int64)
            for s in steps
        ]
    ) if steps else np.zeros(0, dtype=np.int64)
    ev_amount = np.repeat(
        np.fromiter((s.amount for s in steps), np.int64, len(steps)),
        sizes_arr,
    )
    ev_width = np.repeat(
        np.fromiter((s.width for s in steps), np.int64, len(steps)), sizes_arr
    )
    ev_step = np.repeat(np.arange(len(steps), dtype=np.int64), sizes_arr)
    ev_addr = np.full(E, -1, dtype=np.int64)
    ev_addr2 = np.full(E, -1, dtype=np.int64)
    ev_payload = np.full(E, -1, dtype=np.int64)
    deferred_steps: List[int] = []
    for i, step in enumerate(steps):
        if step.addr is not None:
            lo, hi = offsets[i], offsets[i + 1]
            if step.addr.ndim == 2:
                ev_addr[lo:hi] = step.addr[:, 0]
                ev_addr2[lo:hi] = step.addr[:, 1]
            else:
                ev_addr[lo:hi] = step.addr
        elif step.deferred is not None:
            deferred_steps.append(i)
        if step.payload is not None:
            lo, hi = offsets[i], offsets[i + 1]
            ev_payload[lo:hi] = step.payload
    ev_warp = warp_of[ev_thread]
    ev_sm = sm_of_warp[ev_warp]

    # ---- interpreter event order (mutations, moving addresses) --------
    need_order = bool(
        deferred_steps or store.pending_inserts or store.pending_deletes
    )
    if need_order:
        _resolve_order_and_addresses(
            recorder, store, bounds, sm_warp_ids, sm_of_warp,
            ev_thread, ev_round, ev_kind, ev_branch, ev_warp,
            ev_addr, ev_width, ev_payload, ev_step, offsets, deferred_steps,
            schedule=schedule,
        )

    # ---- group events exactly like _step_warp -------------------------
    order = _pack_sort(ev_round, ev_warp, ev_branch + 1, ev_kind, ev_thread)
    s_round = ev_round[order]
    s_warp = ev_warp[order]
    s_branch = ev_branch[order]
    s_kind = ev_kind[order]
    s_sm = ev_sm[order]
    s_amount = ev_amount[order]
    s_width = ev_width[order]
    s_addr = ev_addr[order]
    s_addr2 = ev_addr2[order]
    s_step = ev_step[order]
    fresh = np.ones(E, dtype=bool)
    if E > 1:
        fresh[1:] = (
            (s_round[1:] != s_round[:-1])
            | (s_warp[1:] != s_warp[:-1])
            | (s_branch[1:] != s_branch[:-1])
            | (s_kind[1:] != s_kind[:-1])
        )
    g_start = np.flatnonzero(fresh)
    n_groups = len(g_start)
    g_end = np.append(g_start[1:], E)
    g_kind = s_kind[g_start]
    g_sm = s_sm[g_start]
    g_last = g_end - 1
    group_of_event = np.cumsum(fresh) - 1

    # Divergence: groups per (round, warp) beyond the first serialise.
    wr_fresh = np.ones(n_groups, dtype=bool)
    if n_groups > 1:
        wr_fresh[1:] = (
            (s_round[g_start][1:] != s_round[g_start][:-1])
            | (s_warp[g_start][1:] != s_warp[g_start][:-1])
        )
    wr_sizes = np.diff(np.append(np.flatnonzero(wr_fresh), n_groups))
    stats.divergent_serializations = int(np.sum(wr_sizes - 1))
    if schedule is not None:
        stats.divergent_serializations += schedule.divergent_serializations
        stats.spin_iterations += schedule.spin_iterations
        stats.atomic_conflicts += schedule.atomic_conflicts

    issue = np.zeros(spec.num_sms, dtype=np.float64)
    mem_tx = np.zeros(spec.num_sms, dtype=np.int64)
    mem_instr = np.zeros(spec.num_sms, dtype=np.int64)
    mem_bytes = np.zeros(spec.num_sms, dtype=np.int64)
    atomic_cycles = np.zeros(spec.num_sms, dtype=np.float64)
    seg = spec.memory_transaction_bytes
    plain = cost.issue_plain()

    def charge_coalesced(kinds: Tuple[int, ...], probe: bool) -> None:
        g_mask = np.isin(g_kind, kinds)
        gs = np.flatnonzero(g_mask)
        if len(gs) == 0:
            return
        e_mask = np.isin(s_kind, kinds)
        es = np.flatnonzero(e_mask)
        # Dense sub-group ids for the selected events.
        sub_of = np.full(n_groups, -1, dtype=np.int64)
        sub_of[gs] = np.arange(len(gs))
        sub_idx = sub_of[group_of_event[es]]
        widths = s_width[g_last][gs][sub_idx]  # the group's *last* width
        addrs = s_addr[es]
        if probe:
            addrs = np.concatenate([addrs, s_addr2[es]])
            sub_idx = np.concatenate([sub_idx, sub_idx])
            widths = np.concatenate([widths, widths])
        ntx = cost.coalesce_groups(sub_idx, addrs, widths, len(gs))
        sms = g_sm[gs]
        np.add.at(mem_tx, sms, ntx)
        np.add.at(mem_bytes, sms, ntx * seg)
        np.add.at(mem_instr, sms, 1)
        np.add.at(issue, sms, (2 * plain) if probe else plain)

    # LOCK_RELEASE groups charge exactly like a READ/WRITE group: the
    # interpreter coalesces the released lock words and issues one
    # plain instruction per group (LOCK_ACQUIRE pass events carry no
    # charge here -- the acquire-round charges, which depend on
    # blocked spinners absent from the trace, arrive via ``schedule``).
    charge_coalesced(
        (op_ir.READ, op_ir.WRITE, op_ir.LOCK_RELEASE), probe=False
    )
    charge_coalesced((op_ir.INDEX_PROBE,), probe=True)

    # Undo-log flush: a WRITE group whose members journalled
    # before-images appends them consecutively in device memory --
    # one extra memory instruction per group, sized by the member
    # count (16 B per record, Appendix D).
    undo_flags = [s.undo is not None and s.undo.any() for s in steps]
    if any(undo_flags):
        ev_undo = np.concatenate(
            [
                s.undo
                if s.undo is not None
                else np.zeros(len(s.lanes), dtype=bool)
                for s in steps
            ]
        )[order]
        write_gs = np.flatnonzero(g_kind == op_ir.WRITE)
        counts = np.add.reduceat(
            ev_undo.astype(np.int64), g_start
        )[write_gs]
        hot = counts > 0
        if hot.any():
            gs_hot = write_gs[hot]
            ntx = (counts[hot] * 16 + seg - 1) // seg
            sms = g_sm[gs_hot]
            np.add.at(mem_tx, sms, ntx)
            np.add.at(mem_bytes, sms, ntx * seg)
            np.add.at(mem_instr, sms, 1)
            np.add.at(issue, sms, plain)

    # Compute / SFU: one issue charge per group, max amount of members.
    for kind, fn in (
        (op_ir.COMPUTE, cost.issue_compute),
        (op_ir.SFU_COMPUTE, cost.issue_sfu),
    ):
        gs = np.flatnonzero(g_kind == kind)
        if len(gs) == 0:
            continue
        amax = np.maximum.reduceat(s_amount, g_start)[gs]
        for g, amount in zip(gs, amax):
            issue[g_sm[g]] += fn(int(amount))

    # Plain-issue-only kinds.
    gs = np.flatnonzero(np.isin(g_kind, _PLAIN_ISSUE_KINDS))
    np.add.at(issue, g_sm[gs], plain)

    # Inserts: per-event transaction charges from the row width of
    # each event's step table (widths cached per table), per-group
    # instruction charges, and the buffer-tail atomicAdd serialization
    # per (group, table).
    insert_gs = np.flatnonzero(g_kind == op_ir.INSERT_ROW)
    if len(insert_gs):
        width_cache: Dict[str, int] = {}
        step_tids = np.full(len(steps), -1, dtype=np.int64)
        tid_of: Dict[str, int] = {}
        step_ntx = np.zeros(len(steps), dtype=np.int64)
        for i, step in enumerate(steps):
            if step.kind != op_ir.INSERT_ROW:
                continue
            width = width_cache.get(step.table)
            if width is None:
                width = width_cache[step.table] = store.adapter.row_width(
                    step.table
                )
            step_ntx[i] = (width + seg - 1) // seg
            step_tids[i] = tid_of.setdefault(step.table, len(tid_of))
        es = np.flatnonzero(s_kind == op_ir.INSERT_ROW)
        ntx_e = step_ntx[s_step[es]]
        np.add.at(mem_tx, s_sm[es], ntx_e)
        np.add.at(mem_bytes, s_sm[es], ntx_e * seg)
        np.add.at(mem_instr, g_sm[insert_gs], 1)
        np.add.at(issue, g_sm[insert_gs], plain)
        # (group, table) -> member count; >1 serialises the atomicAdd.
        pair = group_of_event[es] * len(tid_of) + step_tids[s_step[es]]
        pairs, counts = np.unique(pair, return_counts=True)
        for p, count in zip(pairs[counts > 1], counts[counts > 1]):
            sm = int(g_sm[int(p) // len(tid_of)])
            atomic_cycles[sm] += cost.atomic_serialization(int(count))
            stats.atomic_conflicts += int(count) - 1
    delete_gs = np.flatnonzero(g_kind == op_ir.DELETE_ROW)
    if len(delete_gs):
        sizes_g = g_end[delete_gs] - g_start[delete_gs]
        np.add.at(mem_tx, g_sm[delete_gs], sizes_g)
        np.add.at(mem_bytes, g_sm[delete_gs], sizes_g * seg)
        np.add.at(mem_instr, g_sm[delete_gs], 1)
        np.add.at(issue, g_sm[delete_gs], plain)

    if schedule is not None:
        # Acquire/spin-phase charges the scheduler accumulated. Every
        # quantum is an integer-valued float (< 2**53), so adding the
        # per-SM totals is exact regardless of accumulation order.
        if schedule.issue_cycles is not None:
            issue += schedule.issue_cycles
        if schedule.atomic_cycles is not None:
            atomic_cycles += schedule.atomic_cycles
        if schedule.mem_transactions is not None:
            mem_tx += schedule.mem_transactions
        if schedule.mem_bytes is not None:
            mem_bytes += schedule.mem_bytes

    # tolist() yields Python scalars, so downstream arithmetic (and
    # report equality checks) see the same types as the interpreter.
    stats.issue_cycles = issue.tolist()
    stats.mem_transactions = mem_tx.tolist()
    stats.mem_instructions = mem_instr.tolist()
    stats.mem_bytes = mem_bytes.tolist()
    stats.atomic_cycles = atomic_cycles.tolist()

    timing = with_perf_handicap(cost.resolve(stats))
    return KernelReport(stats=stats, timing=timing, outcomes=outcomes)


def _warp_visit_ranks(
    op_count: np.ndarray,
    bounds: List[Tuple[int, int]],
    sm_warp_ids: List[List[int]],
    needed_rounds: np.ndarray,
    warp_last: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Warp visit ranks within each SM, for ``needed_rounds`` only.

    Reproduces the scheduler's swap-removal of finished warps: a warp
    encountered with no live thread is replaced by the list's last
    warp, permuting subsequent visit order. The list only changes on
    rounds where at least one warp dies, so replaying each death
    round's sweep -- a position-order scan that swap-removes dead
    warps and re-examines the swapped-in warp, exactly like the
    interpreter's mid-sweep removal -- leaves the list byte-identical
    to the interpreter's at every subsequent round. (Removal order
    matters: two warps dying in the same round are removed in *scan
    position* order, which is not warp-id order once earlier deaths
    have permuted the list.)

    Returns ``V[i, warp]`` for ``needed_rounds[i]`` (ascending,
    1-based rounds; -1 = not visited). Sparse on purpose: a TPL kernel
    can span millions of spin rounds, but only rounds carrying an
    order-sensitive event need ranks -- a dense ``(rounds, warps)``
    matrix would dominate memory at benchmark scale.

    ``warp_last`` overrides the per-warp last live round; without it
    (the conflict-free case) a warp's life equals its member op count.
    """
    n_warps = len(bounds)
    if warp_last is not None:
        warp_len = warp_last
    else:
        warp_len = np.array(
            [op_count[lo:hi].max() if hi > lo else 0 for lo, hi in bounds],
            dtype=np.int64,
        )
    visits = np.full((len(needed_rounds), n_warps), -1, dtype=np.int64)
    rounds_list = [int(r) for r in needed_rounds]
    for ids in sm_warp_ids:
        # Death rounds, ascending; ties resolved by the sweep below.
        death_rounds = sorted({int(warp_len[w]) + 1 for w in ids})
        live = list(ids)
        di = 0
        for i, r in enumerate(rounds_list):
            while di < len(death_rounds) and death_rounds[di] <= r:
                dr = death_rounds[di]
                di += 1
                w = 0
                while w < len(live):
                    if warp_len[live[w]] + 1 <= dr:
                        live[w] = live[-1]
                        live.pop()
                    else:
                        w += 1
            for rank, warp in enumerate(live):
                visits[i, warp] = rank
    return visits


def _resolve_order_and_addresses(
    recorder: TraceRecorder,
    store: WaveStore,
    bounds: List[Tuple[int, int]],
    sm_warp_ids: List[List[int]],
    sm_of_warp: np.ndarray,
    ev_thread: np.ndarray,
    ev_round: np.ndarray,
    ev_kind: np.ndarray,
    ev_branch: np.ndarray,
    ev_warp: np.ndarray,
    ev_addr: np.ndarray,
    ev_width: np.ndarray,
    ev_payload: np.ndarray,
    ev_step: np.ndarray,
    offsets: np.ndarray,
    deferred_steps: List[int],
    schedule: Optional[ScheduleOverrides] = None,
) -> None:
    """Compute the interpreter event order over the *order-sensitive
    subset* of events -- staged inserts/deletes plus deferred-address
    reads/writes -- then (a) apply the mutations in it and (b) resolve
    the deferred device addresses against the row counts in effect at
    each event.

    Restricting the ordering to the subset is sound because every
    divergence group that contains a subset event consists entirely of
    subset events (insert/delete groups are homogeneous in kind; a
    deferred step's whole lane set is deferred), so relative order
    within the subset never depends on excluded events.
    """
    E = len(ev_thread)
    sub_mask = (ev_kind == op_ir.INSERT_ROW) | (ev_kind == op_ir.DELETE_ROW)
    if deferred_steps:
        sub_mask |= np.isin(
            ev_step, np.asarray(deferred_steps, dtype=np.int64)
        )
    sub = np.flatnonzero(sub_mask)
    s_thread = ev_thread[sub]
    s_round = ev_round[sub]
    s_warp = ev_warp[sub]
    s_kind = ev_kind[sub]
    s_branch = ev_branch[sub]
    S = len(sub)

    warp_last = schedule.warp_last_round if schedule is not None else None
    needed = np.unique(s_round)
    visits = _warp_visit_ranks(
        recorder.op_count, bounds, sm_warp_ids, needed, warp_last=warp_last
    )
    s_visit = visits[np.searchsorted(needed, s_round), s_warp]
    s_sm = sm_of_warp[s_warp]
    # First-occurrence order of each (round, warp, branch, kind) group
    # = the minimum member thread id (members iterate in warp order).
    order_g = _pack_sort(s_round, s_warp, s_branch + 1, s_kind, s_thread)
    fresh = np.ones(S, dtype=bool)
    if S > 1:
        fresh[1:] = (
            (s_round[order_g][1:] != s_round[order_g][:-1])
            | (s_warp[order_g][1:] != s_warp[order_g][:-1])
            | (s_branch[order_g][1:] != s_branch[order_g][:-1])
            | (s_kind[order_g][1:] != s_kind[order_g][:-1])
        )
    group_of_sorted = np.cumsum(fresh) - 1
    g_min_thread = np.minimum.reduceat(
        s_thread[order_g], np.flatnonzero(fresh)
    ) if S else np.zeros(0, dtype=np.int64)
    s_gfirst = np.empty(S, dtype=np.int64)
    s_gfirst[order_g] = g_min_thread[group_of_sorted]
    sub_order = _pack_sort(s_round, s_sm, s_visit, s_gfirst, s_thread)
    #: Event index -> rank within the ordered subset (-1 elsewhere).
    pos = np.full(E, -1, dtype=np.int64)
    pos[sub[sub_order]] = np.arange(S)

    # Apply staged mutations in event order; record handle -> row id.
    # The mapping is published on the store: undo logs captured during
    # the kernel name staged rows by handle and are remapped to these
    # physical ids afterwards (tx_logging.remap_handle_rows).
    handle_row: Dict[int, int] = {}
    store.handle_row = handle_row
    mut_events = np.flatnonzero(
        (ev_kind == op_ir.INSERT_ROW) | (ev_kind == op_ir.DELETE_ROW)
    )
    mut_events = mut_events[np.argsort(pos[mut_events])]
    # Inserts-before prefix per mutating table (by subset rank), for
    # address resolution on tables whose row count moves mid-kernel.
    inserts_before: Dict[str, np.ndarray] = {}
    if deferred_steps:
        is_insert = (ev_kind[sub] == op_ir.INSERT_ROW).astype(np.int64)
        for table in store.mutating_tables:
            table_mask = np.zeros(E, dtype=bool)
            for i, step in enumerate(recorder.steps):
                if step.kind == op_ir.INSERT_ROW and step.table == table:
                    table_mask[offsets[i] : offsets[i + 1]] = True
            ordered = (is_insert * table_mask[sub])[sub_order]
            before = np.zeros(S, dtype=np.int64)
            if S > 1:
                np.cumsum(ordered[:-1], out=before[1:])
            inserts_before[table] = before  # indexed by subset rank

    adapter = store.adapter
    base_rows = {
        t: store.addressing(t).n_rows for t in store.mutating_tables
    }
    predicted: Dict[str, int] = dict(base_rows)
    for e in mut_events:
        if ev_kind[e] == op_ir.INSERT_ROW:
            handle = int(ev_payload[e]) - HANDLE_BASE
            table, _values = store.pending_inserts[handle]
            handle_row[handle] = predicted[table]
            predicted[table] += 1
        # Deletes resolve their target after every handle is known.

    # Apply the mutations: consecutive inserts between deletes batch
    # into one insert_bulk per table (the paper's post-kernel batched
    # update). Per-table insert order -- the only order physical row
    # ids and the redo stream depend on -- is the event order, and the
    # flush before each delete keeps insert-before-delete ordering for
    # rows staged and deleted in the same launch.
    run_tables: List[str] = []
    run_values: Dict[str, List[Tuple[Any, ...]]] = {}
    run_rows: Dict[str, List[int]] = {}

    def flush_inserts() -> None:
        for table in run_tables:
            rows = adapter.insert_bulk(table, run_values[table])
            if rows != run_rows[table]:  # pragma: no cover - invariant
                raise RuntimeError(
                    "vectorized insert order diverged from prediction"
                )
        run_tables.clear()
        run_values.clear()
        run_rows.clear()

    for e in mut_events:
        if ev_kind[e] == op_ir.INSERT_ROW:
            handle = int(ev_payload[e]) - HANDLE_BASE
            table, values = store.pending_inserts[handle]
            if table not in run_values:
                run_tables.append(table)
                run_values[table] = []
                run_rows[table] = []
            run_values[table].append(values)
            run_rows[table].append(handle_row[handle])
        else:
            flush_inserts()
            row_enc = int(ev_payload[e])
            if row_enc >= HANDLE_BASE:
                row_enc = handle_row[row_enc - HANDLE_BASE]
            adapter.delete(recorder.steps[ev_step[e]].table, row_enc)
    flush_inserts()

    # Writes to rows staged by a same-launch insert, now that the
    # rows exist. Staging order is per-cell program order (a staged
    # row is only ever written by the lane whose partition owns it),
    # and the adapter call keeps the redo stream's per-cell order:
    # insert with original values first, then the write.
    for table, column, handle, value in store.pending_handle_writes:
        adapter.write(table, column, handle_row[handle], value)

    # Resolve deferred addresses with the per-event row counts.
    for i in deferred_steps:
        step = recorder.steps[i]
        table, column, rows_enc = step.deferred
        lo, hi = offsets[i], offsets[i + 1]
        rows = rows_enc.astype(np.int64).copy()
        handles = rows >= HANDLE_BASE
        for j in np.flatnonzero(handles):
            rows[j] = handle_row[int(rows_enc[j]) - HANDLE_BASE]
        info = store.addressing(table)
        n_at = base_rows[table] + inserts_before[table][pos[lo:hi]]
        addr, _width = info.addresses(column, rows, n_rows=n_at)
        ev_addr[lo:hi] = addr
