"""Batched wave execution: NumPy column kernels + exact op traces.

A *vector kernel* (``TransactionType.vector_body``) executes every
transaction of one type in a wave at once: gather the touched column
values with fancy indexing, compute whole-array, and scatter the
surviving lanes' writes back (aborted lanes are masked out -- the
conflict-masked scatter). While doing so it records, through
:class:`WaveContext`, the exact per-thread micro-op trace the
interpreter would have produced: op kind, divergence branch, and
memory addresses per lane per op. The cost replay
(:mod:`repro.core.backends.replay`) turns that trace into a
:class:`~repro.gpu.costmodel.KernelStats` identical to the SIMT
interpreter's, which is what makes the two backends agree on the
simulated clock to the last cycle.

Kernel-authoring contract (checked where cheap, documented here):

* the per-lane op sequence must match the stored procedure's generator
  exactly -- same ops, same order, same data-dependent control flow;
* only two-phase types (no abort after the first write) may be
  vectorized -- the scatter mask equals the commit mask, so no undo
  logging is needed;
* a lane must not read a cell it wrote earlier in the same wave
  (conflict-free waves make cross-lane reads of written cells
  impossible; same-lane re-reads are a kernel-authoring error);
* a lane may read, write, and delete rows staged by a same-wave insert
  (the overlay resolves reads; writes stage as *handle writes* applied
  by the replay after the insert materialises -- TPC-C's DELIVERY
  writing an order a same-bulk NEW_ORDER created is the canonical
  case). Handle writes must not target indexed columns: the
  interpreter never re-indexes on write, and neither does the overlay;
* inserts/deletes are staged in a :class:`WaveStore` overlay and
  applied to the real store in interpreter event order by the replay,
  so physical row ids are byte-identical to the interpreted backend.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import tx_logging
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database, StoreAdapter, static_map_cost_base

#: Encoded row ids at or above this value reference a pending insert
#: (handle = encoded - HANDLE_BASE); real row ids stay below it.
HANDLE_BASE = 1 << 44


class _TableAddressing:
    """Precomputed device-address arithmetic for one table."""

    __slots__ = ("base", "n_rows", "columns")

    def __init__(self, db: Database, table: str) -> None:
        tbl = db.table(table)
        self.base = db.table_base_address(table)
        self.n_rows = tbl.n_rows
        #: column -> (resident prefix weight, width). The column's
        #: device offset is ``pre_w * max(n_rows, 1)`` -- the layout
        #: contract of ColumnTable.column_device_offset.
        self.columns: Dict[str, Tuple[int, int]] = {}
        pre_w = 0
        for col in tbl.schema.columns:
            self.columns[col.name] = (pre_w, col.width)
            if col.device_resident:
                pre_w += col.width

    def addresses(self, column: str, rows: np.ndarray, n_rows: Any = None):
        """Vectorized ColumnTable.cell_address + table base."""
        pre_w, width = self.columns[column]
        n = self.n_rows if n_rows is None else n_rows
        offset = pre_w * np.maximum(n, 1)
        return self.base + offset + rows * width, width


class WaveStore:
    """Adapter view for vector kernels: bulk probes/gathers plus a
    staging overlay for inserts and deletes.

    Mutation staging exists for PART, where one kernel runs a whole
    bulk and a partition's later transactions must observe its earlier
    ones' inserts/deletes (K-SET waves are conflict-free, so the
    overlay stays empty during probes there). The replay applies the
    staged mutations to the real store in interpreter event order.
    """

    def __init__(
        self, adapter: StoreAdapter, mutating_tables: FrozenSet[str]
    ) -> None:
        self.adapter = adapter
        self.db = adapter.db
        #: Tables that may gain rows this launch: reads of them resolve
        #: device addresses late (n_rows moves mid-kernel).
        self.mutating_tables = mutating_tables
        self._addr: Dict[str, _TableAddressing] = {}
        #: Staged inserts in staging order; handle = list index.
        self.pending_inserts: List[Tuple[str, Tuple[Any, ...]]] = []
        #: (table, row-or-handle-encoded) staged deletes.
        self.pending_deletes: List[Tuple[str, int]] = []
        #: Writes to rows staged by a same-launch insert, in staging
        #: order: (table, column, handle, value). Applied by the replay
        #: through the adapter after the insert materialises, so the
        #: redo stream keeps the interpreter's per-cell order (insert
        #: original values, then write).
        self.pending_handle_writes: List[Tuple[str, str, int, Any]] = []
        #: (handle, column index) -> latest staged value, for gathers.
        self._handle_overrides: Dict[Tuple[int, int], Any] = {}
        #: handle -> physical row id, published by the replay once the
        #: staged inserts have materialised (undo-log fixups read it).
        self.handle_row: Dict[int, int] = {}
        #: table -> [(index, column positions)] -- the per-row key
        #: construction is the mutation-staging hot path.
        self._index_info: Dict[str, List[Tuple[Any, Tuple[int, ...]]]] = {}
        #: table -> staged handles whose index-overlay entries have not
        #: been built yet. Folding is lazy: insert-only waves (the
        #: common case) never pay for overlay keys nobody probes.
        self._unfolded: Dict[str, List[int]] = {}
        # Probe overlays, populated lazily once a mutation is staged.
        self._unique_add: Dict[str, Dict[Any, int]] = {}
        self._unique_del: Dict[str, set] = {}
        self._multi_add: Dict[str, Dict[Any, List[int]]] = {}
        self._multi_del: Dict[str, Dict[Any, set]] = {}
        self._dirty = False

    # -- addressing ------------------------------------------------------
    def addressing(self, table: str) -> _TableAddressing:
        info = self._addr.get(table)
        if info is None:
            info = self._addr[table] = _TableAddressing(self.db, table)
        return info

    # -- probes ----------------------------------------------------------
    def probe_unique(self, index: str, keys: Sequence[Any]) -> np.ndarray:
        """Adapter.probe for a static map or unique index, batched.

        Returns encoded rows: ``-1`` miss, real row id, or
        ``HANDLE_BASE + handle`` for a staged insert's row.
        """
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        static = self.db.static_maps.get(index)
        if static is not None:
            return np.fromiter(
                (static.get(k, -1) for k in keys), np.int64, len(keys)
            )
        ix = self.db.index(index)
        mapping = ix.mapping
        if not self._dirty:
            return np.fromiter(
                (mapping.get(k, -1) for k in keys), np.int64, len(keys)
            )
        self._fold(ix.table)
        added = self._unique_add.get(index, {})
        removed = self._unique_del.get(index, set())
        out = np.empty(len(keys), np.int64)
        for i, k in enumerate(keys):
            if k in added:
                out[i] = added[k]
            elif k in removed:
                out[i] = -1
            else:
                out[i] = mapping.get(k, -1)
        return out

    def probe_unique1(self, index: str, key: Any) -> int:
        """Single-key :meth:`probe_unique` (the one-lane fast path)."""
        static = self.db.static_maps.get(index)
        if static is not None:
            return static.get(key, -1)
        ix = self.db.index(index)
        if not self._dirty:
            return ix.mapping.get(key, -1)
        self._fold(ix.table)
        added = self._unique_add.get(index)
        if added is not None and key in added:
            return added[key]
        removed = self._unique_del.get(index)
        if removed is not None and key in removed:
            return -1
        return ix.mapping.get(key, -1)

    def probe_multi1(self, index: str, key: Any) -> List[int]:
        """Single-key :meth:`probe_multi` (the one-lane fast path)."""
        ix = self.db.index(index)
        rows = list(ix.mapping.get(key, ()))
        if not self._dirty:
            return rows
        self._fold(ix.table)
        removed = self._multi_del.get(index)
        gone = removed.get(key) if removed is not None else None
        if gone:
            rows = [r for r in rows if r not in gone]
        added = self._multi_add.get(index)
        extra = added.get(key) if added is not None else None
        if extra:
            rows = rows + extra
        return rows

    def probe_cost_base1(self, index: str, key: Any) -> int:
        """Single-key cost-address base (see probe_cost_addresses)."""
        if index in self.db.static_maps:
            return static_map_cost_base(index, key)
        return self.db.index(index).cost_address_base(key)

    def probe_multi(self, index: str, keys: Sequence[Any]) -> List[List[int]]:
        """MultiHashIndex.probe_all, batched, overlay-aware."""
        ix = self.db.index(index)
        mapping = ix.mapping
        if not self._dirty:
            return [list(mapping.get(k, ())) for k in keys]
        self._fold(ix.table)
        added = self._multi_add.get(index, {})
        removed = self._multi_del.get(index, {})
        out = []
        for k in keys:
            rows = list(mapping.get(k, ()))
            gone = removed.get(k)
            if gone:
                rows = [r for r in rows if r not in gone]
            extra = added.get(k)
            if extra:
                # Staged rows materialise at the table tail, above every
                # existing id, and in staging order -- exactly where the
                # sorted multi-index would put them.
                rows = rows + extra
            out.append(rows)
        return out

    def probe_cost_addresses(self, index: str, keys: Sequence[Any]) -> np.ndarray:
        """The two per-probe cost addresses, shape ``(len(keys), 2)``.

        Batched form of the interpreter's per-probe
        ``probe_cost_addresses``, built on the same formula owners
        (:func:`repro.storage.catalog.static_map_cost_base`,
        :meth:`~repro.storage.index.HashIndex.cost_address_base`).
        """
        if isinstance(keys, np.ndarray):
            keys = keys.tolist()
        if index in self.db.static_maps:
            base = np.fromiter(
                (static_map_cost_base(index, k) for k in keys),
                np.int64,
                len(keys),
            )
        else:
            cost_base = self.db.index(index).cost_address_base
            base = np.fromiter(
                (cost_base(k) for k in keys), np.int64, len(keys)
            )
        return np.stack([base, base + 8], axis=1)

    # -- gathers ---------------------------------------------------------
    def gather(self, table: str, column: str, rows_enc: np.ndarray) -> np.ndarray:
        """Bulk read, resolving staged-insert handles from the overlay."""
        tbl = self.db.table(table)
        handles = rows_enc >= HANDLE_BASE
        if not handles.any():
            return tbl.gather(column, rows_enc)
        col_idx = tbl.schema.column_index(column)
        safe = np.where(handles, 0, rows_enc)
        out = tbl.gather(column, safe)
        if out.dtype != object:
            out = out.copy()
        for i in np.flatnonzero(handles):
            handle = int(rows_enc[i]) - HANDLE_BASE
            if (handle, col_idx) in self._handle_overrides:
                out[i] = self._handle_overrides[(handle, col_idx)]
            else:
                _, values = self.pending_inserts[handle]
                out[i] = values[col_idx]
        return out

    def gather1(self, table: str, column: str, row_enc: int) -> np.ndarray:
        """Single-row :meth:`gather` (the one-lane fast path)."""
        if row_enc >= HANDLE_BASE:
            return self.gather(
                table, column, np.asarray([row_enc], dtype=np.int64)
            )
        return self.db.table(table).gather1(column, row_enc)

    # -- mutation staging ------------------------------------------------
    def _indexes_of(self, table: str) -> List[Tuple[Any, Tuple[int, ...]]]:
        info = self._index_info.get(table)
        if info is None:
            schema = self.db.table(table).schema
            info = self._index_info[table] = [
                (ix, tuple(schema.column_index(c) for c in ix.columns))
                for ix in self.db.indexes_on(table)
            ]
        return info

    def stage_insert(self, table: str, values: Tuple[Any, ...]) -> int:
        """Stage one insert; returns the encoded handle row."""
        handle = len(self.pending_inserts)
        self.pending_inserts.append((table, values))
        self._dirty = True
        self._unfolded.setdefault(table, []).append(handle)
        return HANDLE_BASE + handle

    def _fold(self, table: str) -> None:
        """Build the overlay index entries of ``table``'s staged
        inserts, in staging order (called before any probe or staged
        delete that could observe them)."""
        pending = self._unfolded.get(table)
        if not pending:
            return
        for handle in pending:
            _, values = self.pending_inserts[handle]
            enc = HANDLE_BASE + handle
            for ix, cols in self._indexes_of(table):
                key = (
                    values[cols[0]]
                    if len(cols) == 1
                    else tuple(values[i] for i in cols)
                )
                if ix.unique:
                    self._unique_add.setdefault(ix.name, {})[key] = enc
                    self._unique_del.get(ix.name, set()).discard(key)
                else:
                    self._multi_add.setdefault(ix.name, {}).setdefault(
                        key, []
                    ).append(enc)
        pending.clear()

    def stage_handle_write(
        self, table: str, column: str, handle: int, value: Any
    ) -> None:
        """Stage one write to a row a same-launch insert created.

        The value becomes visible to later gathers of the handle row
        immediately; the physical write is applied by the replay after
        the insert materialises (per-cell order matches the
        interpreter: insert first, then the write). Indexed columns
        are rejected -- the interpreter never re-indexes on write, so
        an indexed-column write would silently desynchronise probes.
        """
        for ix, _cols in self._indexes_of(table):
            if column in ix.columns:
                raise ValueError(
                    f"vector kernels cannot write indexed column "
                    f"{table}.{column} of a row inserted in the same "
                    "wave"
                )
        col_idx = self.db.table(table).schema.column_index(column)
        py = value.item() if isinstance(value, np.generic) else value
        self.pending_handle_writes.append((table, column, handle, py))
        self._handle_overrides[(handle, col_idx)] = py

    def stage_delete(self, table: str, row_enc: int) -> None:
        """Stage one delete of a real row or a staged insert's row."""
        self.pending_deletes.append((table, row_enc))
        self._dirty = True
        self._fold(table)
        tbl = self.db.table(table)
        staged_values = (
            self.pending_inserts[row_enc - HANDLE_BASE][1]
            if row_enc >= HANDLE_BASE
            else None
        )
        for ix, cols in self._indexes_of(table):
            if staged_values is not None:
                key = (
                    staged_values[cols[0]]
                    if len(cols) == 1
                    else tuple(staged_values[i] for i in cols)
                )
            else:
                key = Database._key_of(tbl, ix.columns, row_enc)
            if ix.unique:
                added = self._unique_add.get(ix.name, {})
                if added.get(key) == row_enc:
                    del added[key]
                # Whether the deleted row was staged or real, the key
                # must read as absent afterwards. The del marker is
                # needed even for a staged row: folding its insert
                # discarded any marker left by an earlier real-row
                # delete under the same key, and without restoring it
                # the probe would fall through to the (stale) real
                # mapping. Probes check added before removed, so the
                # marker is always safe.
                self._unique_del.setdefault(ix.name, set()).add(key)
            else:
                extra = self._multi_add.get(ix.name, {}).get(key)
                if extra and row_enc in extra:
                    extra.remove(row_enc)
                else:
                    self._multi_del.setdefault(ix.name, {}).setdefault(
                        key, set()
                    ).add(row_enc)


class Step:
    """One recorded wave step: the same micro-op at one per-lane op
    position, over a set of lanes (threads)."""

    __slots__ = (
        "kind",
        "lanes",
        "opidx",
        "branch",
        "amount",
        "addr",
        "width",
        "deferred",
        "table",
        "payload",
        "rounds",
        "undo",
    )

    def __init__(
        self,
        kind: int,
        lanes: np.ndarray,
        opidx: np.ndarray,
        branch: Any,
        *,
        amount: int = 0,
        addr: Optional[np.ndarray] = None,
        width: int = 8,
        deferred: Optional[Tuple[str, str, np.ndarray]] = None,
        table: Optional[str] = None,
        payload: Optional[np.ndarray] = None,
        rounds: Optional[np.ndarray] = None,
        undo: Optional[np.ndarray] = None,
    ) -> None:
        self.kind = kind
        self.lanes = lanes
        self.opidx = opidx
        #: Divergence branch per lane: scalar or per-lane array.
        self.branch = branch
        self.amount = amount
        #: Resolved device addresses -- (L,) or (L, 2) for probes.
        self.addr = addr
        self.width = width
        #: (table, column, encoded rows) for late address resolution on
        #: tables whose row count moves mid-kernel.
        self.deferred = deferred
        self.table = table
        #: Insert handles / delete encoded rows.
        self.payload = payload
        #: Explicit per-lane execution round. ``None`` means the
        #: conflict-free convention ``round = opidx + 1`` (every thread
        #: starts at round 1 and issues one op per round); the TPL
        #: lockstep scheduler records real rounds, with gaps where
        #: lanes spun on a lock gate.
        self.rounds = rounds
        #: Per-lane bool: this WRITE journalled a before-image (the
        #: interpreter's per-group undo-log flush charge keys on the
        #: number of such lanes per divergence group).
        self.undo = undo


class TraceRecorder:
    """Accumulates the wave's steps and per-thread op counters."""

    def __init__(self, n_threads: int) -> None:
        self.n_threads = n_threads
        self.op_count = np.zeros(n_threads, np.int64)
        self.steps: List[Step] = []
        #: Columnar buffers for single-lane records, keyed by the op
        #: shape (the merge_steps key): each value is the field lists
        #: (lanes, opidx, rounds, addr, payload, undo, deferred rows)
        #: flushed into one Step per key by :meth:`flush_scalar`.
        self._acc: Dict[Any, Tuple[list, ...]] = {}
        #: When set (TPL lockstep scheduling), a recorded op's round is
        #: ``round_base[thread] + op_count[thread]``: the base absorbs
        #: the thread's lock-acquire phase so body ops land on real
        #: rounds instead of ``opidx + 1``.
        self.round_base: Optional[np.ndarray] = None
        #: Per-thread "journals before-images" flags; stamped onto
        #: WRITE steps so the replay can charge the undo-log flush.
        self.undo_capture: Optional[np.ndarray] = None

    def record_scalar(
        self,
        kind: int,
        lane: int,
        branch: int,
        *,
        amount: int = 0,
        addr: Any = None,
        width: int = 8,
        deferred: Optional[Tuple[str, str, int]] = None,
        table: Optional[str] = None,
        payload: Optional[int] = None,
    ) -> None:
        """Single-lane :meth:`record` that buffers into the columnar
        accumulator instead of building a one-lane Step per op.

        A TPL lock schedule grants mostly one thread at a time under
        contention, so its body batches record through this path;
        ``addr`` is a plain int (1-d address) or an ``(lo, hi)`` pair
        (probe addresses). :meth:`flush_scalar` materialises one Step
        per distinct op shape -- the exact arrays :meth:`record` would
        have produced, concatenated.
        """
        if kind not in op_ir.VECTORIZABLE_KINDS:
            raise ValueError(
                f"op kind {op_ir.KIND_NAMES.get(kind, kind)} has no "
                "vectorized replay; the wave must fall back to the "
                "interpreter"
            )
        opidx = int(self.op_count[lane])
        self.op_count[lane] = opidx + 1
        rb = self.round_base
        no_rounds = rb is None
        undo = None
        if kind == op_ir.WRITE and self.undo_capture is not None:
            undo = bool(self.undo_capture[lane])
        addr_ndim = None if addr is None else (2 if type(addr) is tuple else 1)
        deferred_tc = None if deferred is None else deferred[:2]
        key = (
            kind, branch, amount, width, table, deferred_tc,
            addr_ndim, payload is None, no_rounds, undo is None,
        )
        acc = self._acc.get(key)
        if acc is None:
            acc = self._acc[key] = ([], [], [], [], [], [], [])
        acc[0].append(lane)
        acc[1].append(opidx)
        if not no_rounds:
            acc[2].append(int(rb[lane]) + opidx)
        if addr is not None:
            acc[3].append(addr)
        if payload is not None:
            acc[4].append(payload)
        if undo is not None:
            acc[5].append(undo)
        if deferred is not None:
            acc[6].append(deferred[2])

    def flush_scalar(self) -> None:
        """Materialise the scalar accumulator into whole Steps."""
        if not self._acc:
            return
        for key, acc in self._acc.items():
            (
                kind, branch, amount, width, table, deferred_tc,
                addr_ndim, no_payload, no_rounds, no_undo,
            ) = key
            lanes, opidx, rounds, addr, payload, undo, drows = acc
            kw: Dict[str, Any] = {}
            if not no_rounds:
                kw["rounds"] = np.asarray(rounds, dtype=np.int64)
            if addr_ndim is not None:
                kw["addr"] = np.asarray(addr, dtype=np.int64)
            if not no_payload:
                kw["payload"] = np.asarray(payload, dtype=np.int64)
            if not no_undo:
                kw["undo"] = np.asarray(undo, dtype=bool)
            if deferred_tc is not None:
                kw["deferred"] = (
                    deferred_tc[0],
                    deferred_tc[1],
                    np.asarray(drows, dtype=np.int64),
                )
            self.steps.append(
                Step(
                    kind,
                    np.asarray(lanes, dtype=np.int64),
                    np.asarray(opidx, dtype=np.int64),
                    branch,
                    amount=amount,
                    width=width,
                    table=table,
                    **kw,
                )
            )
        self._acc.clear()

    def merge_steps(self) -> None:
        """Coalesce steps whose per-step-constant fields all match.

        The replay groups events by a pure sort on ``(round, warp,
        branch, kind, thread)`` -- the recorded step partition is
        invisible to it -- so two steps may merge whenever every
        per-step-constant field (kind, scalar branch, amount, width,
        table, deferred target) is equal: the merged step flattens to
        the identical event arrays. A TPL lock schedule records one
        tiny step per granted batch per body op; merging collapses
        those to one step per distinct op shape, keeping the replay's
        flatten and per-step python loops off the hot path.
        """
        self.flush_scalar()
        buckets: Dict[Any, List[Step]] = {}
        for i, s in enumerate(self.steps):
            if isinstance(s.branch, np.ndarray):
                key: Any = ("solo", i)
            else:
                key = (
                    s.kind, s.branch, s.amount, s.width, s.table,
                    None if s.deferred is None else s.deferred[:2],
                    None if s.addr is None else s.addr.ndim,
                    s.payload is None, s.rounds is None, s.undo is None,
                )
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [s]
            else:
                bucket.append(s)
        out: List[Step] = []
        cat = np.concatenate
        for bucket in buckets.values():
            if len(bucket) == 1:
                out.append(bucket[0])
                continue
            first = bucket[0]
            out.append(
                Step(
                    first.kind,
                    lanes=cat([s.lanes for s in bucket]),
                    opidx=cat([s.opidx for s in bucket]),
                    branch=first.branch,
                    amount=first.amount,
                    addr=(
                        None
                        if first.addr is None
                        else cat([s.addr for s in bucket])
                    ),
                    width=first.width,
                    deferred=(
                        None
                        if first.deferred is None
                        else (
                            first.deferred[0],
                            first.deferred[1],
                            cat(
                                [
                                    np.asarray(s.deferred[2])
                                    for s in bucket
                                ]
                            ),
                        )
                    ),
                    table=first.table,
                    payload=(
                        None
                        if first.payload is None
                        else cat([s.payload for s in bucket])
                    ),
                    rounds=(
                        None
                        if first.rounds is None
                        else cat([s.rounds for s in bucket])
                    ),
                    undo=(
                        None
                        if first.undo is None
                        else cat([s.undo for s in bucket])
                    ),
                )
            )
        self.steps = out

    def record(self, kind: int, lanes: np.ndarray, branch: Any, **kw: Any) -> None:
        if kind not in op_ir.VECTORIZABLE_KINDS:
            raise ValueError(
                f"op kind {op_ir.KIND_NAMES.get(kind, kind)} has no "
                "vectorized replay; the wave must fall back to the "
                "interpreter"
            )
        if len(lanes) == 0:
            return
        opidx = self.op_count[lanes].copy()
        self.op_count[lanes] += 1
        if self.round_base is not None and "rounds" not in kw:
            kw["rounds"] = self.round_base[lanes] + opidx
        if (
            kind == op_ir.WRITE
            and self.undo_capture is not None
            and "undo" not in kw
        ):
            kw["undo"] = self.undo_capture[lanes]
        self.steps.append(Step(kind, lanes, opidx, branch, **kw))


class WaveContext:
    """The vector kernel's view of one type's sub-wave.

    ``lanes`` maps the kernel's local lane index to the launch-global
    thread index. All ops apply to the currently *active* local lanes,
    optionally narrowed by a ``mask``; returned arrays are full local
    length with unspecified values at inactive lanes.
    """

    def __init__(
        self,
        recorder: TraceRecorder,
        store: WaveStore,
        lanes: np.ndarray,
        type_id: int,
        transactions: Sequence[Any],
        *,
        record_abort_ops: bool = True,
        capture_undo: Optional[np.ndarray] = None,
    ) -> None:
        self.recorder = recorder
        self.store = store
        self.lanes = lanes
        self.type_id = type_id
        self.txns = transactions
        #: Parameter tuples, extracted once (param_* index into these).
        self.params = [t.params for t in transactions]
        self.n = len(transactions)
        self.active = np.ones(self.n, dtype=bool)
        self.committed = np.ones(self.n, dtype=bool)
        self.abort_reason: List[str] = [""] * self.n
        self.results: List[Any] = [None] * self.n
        self.record_abort_ops = record_abort_ops
        #: Per-local-lane bool: journal before-images, exactly as the
        #: interpreter does for threads whose task sets capture_undo.
        #: The vectorized capture is one bulk gather per write step
        #: instead of a per-row append.
        self.capture = capture_undo
        #: Per-local-lane undo logs, interpreter entry format
        #: (rows staged by a same-launch insert are recorded under
        #: their encoded handle and remapped after the replay
        #: materialises them).
        self.undo: List[List[Tuple[Any, ...]]] = [[] for _ in range(self.n)]
        #: Single-lane fast path: a TPL lock schedule grants mostly one
        #: thread at a time under contention, so one-lane batches take
        #: scalar code paths (plain python ints, columnar op recording)
        #: that produce byte-identical traces, store effects, and
        #: return arrays without the small-array numpy overhead.
        self._one = self.n == 1
        self._lane0 = int(lanes[0]) if self._one else -1

    # -- parameters ------------------------------------------------------
    def param_i64(self, i: int) -> np.ndarray:
        if self._one:
            return np.array((self.params[0][i],), dtype=np.int64)
        return np.fromiter((p[i] for p in self.params), np.int64, self.n)

    def param_obj(self, i: int) -> np.ndarray:
        out = np.empty(self.n, dtype=object)
        for j, p in enumerate(self.params):
            out[j] = p[i]
        return out

    def param_bool(self, i: int) -> np.ndarray:
        if self._one:
            return np.array((bool(self.params[0][i]),), dtype=bool)
        return np.fromiter((bool(p[i]) for p in self.params), bool, self.n)

    # -- mask plumbing ---------------------------------------------------
    def _mask(self, mask: Optional[np.ndarray]) -> np.ndarray:
        return self.active if mask is None else (self.active & mask)

    def _record(self, kind: int, m: np.ndarray, **kw: Any) -> None:
        self.recorder.record(kind, self.lanes[m], self.type_id, **kw)

    def _on1(self, mask: Optional[np.ndarray]) -> bool:
        """Single-lane ``_mask(mask).all()`` without the array ops."""
        if not self.active[0]:
            return False
        return mask is None or bool(mask[0])

    # -- ops -------------------------------------------------------------
    def set_branch(self) -> None:
        """The registry wrapper's leading ``SetBranch(type_id)`` op."""
        if self._one:
            if self.active[0]:
                self.recorder.record_scalar(
                    op_ir.SET_BRANCH, self._lane0, self.type_id
                )
            return
        self._record(op_ir.SET_BRANCH, self._mask(None))

    def index_probe(
        self, index: str, keys: Sequence[Any], mask: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Probe a unique index or static map; -1 encodes a miss."""
        if self._one:
            if not self._on1(mask):
                return np.full(1, -1, dtype=np.int64)
            k = keys[0]
            if isinstance(k, np.generic):
                k = k.item()
            row = self.store.probe_unique1(index, k)
            base = int(self.store.probe_cost_base1(index, k))
            self.recorder.record_scalar(
                op_ir.INDEX_PROBE, self._lane0, self.type_id,
                addr=(base, base + 8),
            )
            return np.array((row,), dtype=np.int64)
        m = self._mask(mask)
        if m.all():
            keys_m: Sequence[Any] = keys
            out = self.store.probe_unique(index, keys_m)
        else:
            idx = np.flatnonzero(m)
            out = np.full(self.n, -1, dtype=np.int64)
            if len(idx) == 0:
                return out
            keys_m = [keys[i] for i in idx]
            out[m] = self.store.probe_unique(index, keys_m)
        self._record(
            op_ir.INDEX_PROBE,
            m,
            addr=self.store.probe_cost_addresses(index, keys_m),
        )
        return out

    def index_probe_multi(
        self, index: str, keys: Sequence[Any], mask: Optional[np.ndarray] = None
    ) -> List[List[int]]:
        """Probe a multi index; returns per-lane row lists."""
        if self._one:
            if not self._on1(mask):
                return [[]]
            k = keys[0]
            if isinstance(k, np.generic):
                k = k.item()
            rows = self.store.probe_multi1(index, k)
            base = int(self.store.probe_cost_base1(index, k))
            self.recorder.record_scalar(
                op_ir.INDEX_PROBE, self._lane0, self.type_id,
                addr=(base, base + 8),
            )
            return [rows]
        m = self._mask(mask)
        idx = np.flatnonzero(m)
        out: List[List[int]] = [[] for _ in range(self.n)]
        if len(idx) == 0:
            return out
        keys_m = [keys[i] for i in idx]
        for i, rows in zip(idx, self.store.probe_multi(index, keys_m)):
            out[i] = rows
        self._record(
            op_ir.INDEX_PROBE,
            m,
            addr=self.store.probe_cost_addresses(index, keys_m),
        )
        return out

    def read(
        self,
        table: str,
        column: str,
        rows: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        if self._one:
            if not self._on1(mask):
                return np.zeros(1)
            row_enc = int(rows[0])
            out = self.store.gather1(table, column, row_enc)
            self._record_mem1(op_ir.READ, table, column, row_enc)
            return out
        m = self._mask(mask)
        if m.all():
            out = self.store.gather(table, column, rows)
            self._record_mem(op_ir.READ, m, table, column, rows)
            return out
        idx = np.flatnonzero(m)
        if len(idx) == 0:
            return np.zeros(self.n)
        rows_m = rows[idx]
        values = self.store.gather(table, column, rows_m)
        if values.dtype == object:
            out = np.empty(self.n, dtype=object)
        else:
            out = np.zeros(self.n, dtype=values.dtype)
        out[m] = values
        self._record_mem(op_ir.READ, m, table, column, rows_m)
        return out

    def write(
        self,
        table: str,
        column: str,
        rows: np.ndarray,
        values: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """The conflict-masked scatter: only surviving lanes write.

        Rows staged by a same-launch insert (encoded handles) are
        staged as handle writes instead of scattered -- the replay
        applies them once the insert materialises.
        """
        if self._one:
            if not self._on1(mask):
                return
            rows_arr = np.asarray(rows)
            values_arr = np.asarray(values)
            row_enc = int(rows_arr[0])
            if self.capture is not None and self.capture[0]:
                old = self.store.gather1(table, column, row_enc).tolist()[0]
                self.undo[0].append((table, column, row_enc, old))
            if row_enc >= HANDLE_BASE:
                if table not in self.store.mutating_tables:
                    raise ValueError(
                        f"write of staged rows into non-mutating table "
                        f"{table!r}"
                    )
                self.store.stage_handle_write(
                    table, column, row_enc - HANDLE_BASE, values_arr[0]
                )
            else:
                self.store.adapter.scatter_bulk(
                    table, column, rows_arr[0:1], values_arr[0:1]
                )
            self._record_mem1(op_ir.WRITE, table, column, row_enc)
            return
        m = self._mask(mask)
        idx = np.flatnonzero(m)
        if len(idx) == 0:
            return
        rows_m = np.asarray(rows)[idx]
        values_m = np.asarray(values)[idx]
        if self.capture is not None and self.capture[idx].any():
            # Bulk before-image capture: one overlay-aware gather for
            # the whole step, then per-lane appends in lane order --
            # the entries (and their order) match the interpreter's
            # per-row ``t.undo.append`` exactly. ``.tolist()`` converts
            # numpy scalars at the edge, as ColumnTable.write does.
            olds = self.store.gather(table, column, rows_m).tolist()
            for j, i in enumerate(idx):
                if self.capture[i]:
                    self.undo[i].append(
                        (table, column, int(rows_m[j]), olds[j])
                    )
        handles = rows_m >= HANDLE_BASE
        if handles.any():
            if table not in self.store.mutating_tables:
                # A handle can only come from this launch's inserts,
                # which all live in mutating tables -- anything else is
                # a kernel-authoring bug.
                raise ValueError(
                    f"write of staged rows into non-mutating table "
                    f"{table!r}"
                )
            for j in np.flatnonzero(handles):
                self.store.stage_handle_write(
                    table, column,
                    int(rows_m[j]) - HANDLE_BASE, values_m[j],
                )
            real = ~handles
            if real.any():
                self.store.adapter.scatter_bulk(
                    table, column, rows_m[real], values_m[real]
                )
        else:
            self.store.adapter.scatter_bulk(table, column, rows_m, values_m)
        self._record_mem(op_ir.WRITE, m, table, column, rows_m)

    def _record_mem(
        self, kind: int, m: np.ndarray, table: str, column: str,
        rows_m: np.ndarray,
    ) -> None:
        info = self.store.addressing(table)
        if table in self.store.mutating_tables:
            _, width = info.columns[column]
            self._record(
                kind, m, width=width, deferred=(table, column, rows_m)
            )
        else:
            addr, width = info.addresses(column, rows_m)
            self._record(kind, m, addr=addr, width=width)

    def _record_mem1(
        self, kind: int, table: str, column: str, row_enc: int
    ) -> None:
        """Single-lane :meth:`_record_mem` on plain ints."""
        info = self.store.addressing(table)
        if table in self.store.mutating_tables:
            width = info.columns[column][1]
            self.recorder.record_scalar(
                kind, self._lane0, self.type_id, width=width,
                deferred=(table, column, row_enc),
            )
        else:
            pre_w, width = info.columns[column]
            addr = info.base + pre_w * (info.n_rows or 1) + row_enc * width
            self.recorder.record_scalar(
                kind, self._lane0, self.type_id, addr=addr, width=width
            )

    def compute(self, amount: int, mask: Optional[np.ndarray] = None) -> None:
        if self._one:
            if self._on1(mask):
                self.recorder.record_scalar(
                    op_ir.COMPUTE, self._lane0, self.type_id, amount=amount
                )
            return
        self._record(op_ir.COMPUTE, self._mask(mask), amount=amount)

    def sfu(self, amount: int, mask: Optional[np.ndarray] = None) -> None:
        if self._one:
            if self._on1(mask):
                self.recorder.record_scalar(
                    op_ir.SFU_COMPUTE, self._lane0, self.type_id,
                    amount=amount,
                )
            return
        self._record(op_ir.SFU_COMPUTE, self._mask(mask), amount=amount)

    def insert(
        self,
        table: str,
        values_rows: Sequence[Optional[Tuple[Any, ...]]],
        mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Stage one insert per masked lane; returns encoded handles."""
        if self._one:
            out = np.full(1, -1, dtype=np.int64)
            if not self._on1(mask):
                return out
            handle = self.store.stage_insert(table, values_rows[0])
            if self.capture is not None and self.capture[0]:
                self.undo[0].append(
                    (tx_logging.INSERT_SENTINEL, table, int(handle), None)
                )
            out[0] = handle
            self.recorder.record_scalar(
                op_ir.INSERT_ROW, self._lane0, self.type_id,
                table=table, payload=int(handle),
            )
            return out
        m = self._mask(mask)
        idx = np.flatnonzero(m)
        out = np.full(self.n, -1, dtype=np.int64)
        if len(idx) == 0:
            return out
        handles = np.empty(len(idx), dtype=np.int64)
        for j, i in enumerate(idx):
            handles[j] = self.store.stage_insert(table, values_rows[i])
            if self.capture is not None and self.capture[i]:
                # Interpreter entry: (INSERT_SENTINEL, table, row, None)
                # with the provisional row id; recorded here under the
                # encoded handle and remapped once the replay
                # materialises the insert.
                self.undo[i].append(
                    (tx_logging.INSERT_SENTINEL, table, int(handles[j]), None)
                )
        out[m] = handles
        self._record(op_ir.INSERT_ROW, m, table=table, payload=handles)
        return out

    def delete(
        self,
        table: str,
        rows: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        if self._one:
            if not self._on1(mask):
                return
            row_enc = int(rows[0])
            self.store.stage_delete(table, row_enc)
            if self.capture is not None and self.capture[0]:
                self.undo[0].append(
                    (tx_logging.DELETE_SENTINEL, table, row_enc, None)
                )
            self.recorder.record_scalar(
                op_ir.DELETE_ROW, self._lane0, self.type_id,
                table=table, payload=row_enc,
            )
            return
        m = self._mask(mask)
        idx = np.flatnonzero(m)
        if len(idx) == 0:
            return
        rows_m = np.asarray(rows)[idx].astype(np.int64)
        for j, i in enumerate(idx):
            self.store.stage_delete(table, int(rows_m[j]))
            if self.capture is not None and self.capture[i]:
                self.undo[i].append(
                    (tx_logging.DELETE_SENTINEL, table, int(rows_m[j]), None)
                )
        self._record(op_ir.DELETE_ROW, m, table=table, payload=rows_m)

    # -- control flow ----------------------------------------------------
    def abort_where(self, cond: np.ndarray, reason: str) -> None:
        """Abort the active lanes where ``cond`` holds."""
        if self._one:
            if not (self.active[0] and cond[0]):
                return
            if self.record_abort_ops:
                self.recorder.record_scalar(
                    op_ir.ABORT, self._lane0, self.type_id
                )
            self.committed[0] = False
            self.abort_reason[0] = reason
            self.active[0] = False
            return
        m = self.active & cond
        if not m.any():
            return
        if self.record_abort_ops:
            self._record(op_ir.ABORT, m)
        self.committed &= ~m
        for i in np.flatnonzero(m):
            self.abort_reason[i] = reason
        self.active &= ~m

    def finish_where(self, mask: np.ndarray, values: Any) -> None:
        """Lanes in ``mask`` return ``values`` (per-lane sequence or a
        shared scalar) and leave the kernel."""
        if self._one:
            if not (self.active[0] and mask[0]):
                return
            if np.isscalar(values) or values is None:
                self.results[0] = values
            else:
                self.results[0] = values[0]
            self.active[0] = False
            return
        m = self.active & mask
        if not m.any():
            return
        if np.isscalar(values) or values is None:
            for i in np.flatnonzero(m):
                self.results[i] = values
        else:
            for i in np.flatnonzero(m):
                self.results[i] = values[i]
        self.active &= ~m

    def finish(self, values: Any = None) -> None:
        """All still-active lanes return."""
        self.finish_where(self.active.copy(), values)

    def close(self) -> None:
        """Kernel epilogue sanity check: every lane ended or aborted."""
        if self.active.any():  # pragma: no cover - kernel-author error
            raise RuntimeError(
                "vector kernel left lanes neither finished nor aborted"
            )
