"""Execution backends: interpreted vs. vectorized wave execution.

See :mod:`repro.core.backends.base` for the registry and
:class:`EngineOptions`, and ``docs/ARCHITECTURE.md`` for where
backends sit in the layer map. Importing this package registers both
built-in backends.
"""

from repro.core.backends.base import (  # noqa: F401
    EngineOptions,
    ExecutionBackend,
    InterpretedBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.core.backends.vectorized import VectorizedBackend  # noqa: F401

__all__ = [
    "EngineOptions",
    "ExecutionBackend",
    "InterpretedBackend",
    "VectorizedBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]
