"""Closed-form TPL lock scheduling for the vectorized backend.

The SIMT interpreter resolves a TPL kernel by spinning every blocked
thread one round at a time: each round, every thread at a counter-lock
gate re-checks ``counter == key`` and either passes or spins again
(Appendix C, Figure 11). That loop is exact but serial in rounds --
the hot path this module replaces.

The replacement rests on one observation: with counter locks, the
round at which anything *changes* is a deterministic function of the
release schedule. A thread's pass round is decided by when the
previous rank's holders release (advance the counter); its body op
rounds follow one per round; its release rounds follow its body. So
instead of simulating every round, the scheduler walks an event queue
of just the rounds where a counter can move or a thread first arrives
at a gate, and *integrates* the spin charges of every skipped round in
closed form over the constant-state intervals between events.

Equivalence argument (the invariants the property suite pins down):

* **One advance per (lock, round).** A newly-enabled holder cannot
  release in its pass round -- its body is at least one op long (the
  registry wrapper's ``SetBranch``), so its first release comes at
  least two rounds after it passes. A shared run's countdown cannot
  complete before every run member has passed and released. Hence a
  lock's counter advances at most once per round, and a woken waiter's
  gate value is still current at its next check.
* **Position order.** Within one round the interpreter visits SMs in
  index order, warps in scheduler visit order (with the swap-removal
  of finished warps), and divergence groups in first-member-lane
  order. A waiter whose group sits *after* the releasing group in that
  order sees the advanced counter the same round and passes; one
  sitting before it passes next round. The sweep below replays exactly
  that comparison, using the real :class:`~repro.gpu.atomics.LockTable`
  for every counter mutation so reader-run countdowns behave
  identically.
* **Interval compression is exact.** An acquire group's per-round
  charges (one spin issue, the lock-word coalesce, the per-lock atomic
  serialization) depend only on its member set and their current
  gates, which change only when a member passes. Every charge quantum
  is an integer-valued float, so multiplying by the interval length
  equals the interpreter's repeated addition bit for bit.

Bodies run as batched column kernels (:class:`WaveContext`) the moment
their locks are granted -- safe under two-phase locking because any
conflicting transaction's lock window is serialized after the
holder's, so processing rounds in ascending order always presents the
store state the interpreter would have. Abort-capable transactions
journal before-images as bulk gathers (``capture_undo``), and aborted
lanes' dirty writes stay visible to rank-successors exactly as the
interpreter leaves them (recovery rolls both back after the kernel).

The recorded trace (body steps plus synthetic LOCK_ACQUIRE pass and
LOCK_RELEASE events at their true rounds) replays through
:func:`~repro.core.backends.replay.replay_kernel` with a
:class:`~repro.core.backends.replay.ScheduleOverrides` carrying the
spin-phase charges and the true round horizon; the result is a
:class:`~repro.gpu.simt.KernelReport` byte-identical to the
interpreter's -- outcomes, physical state, and simulated clock.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.core import tx_logging
from repro.core.backends.replay import ScheduleOverrides, replay_kernel
from repro.core.backends.wave import (
    HANDLE_BASE,
    Step,
    TraceRecorder,
    WaveContext,
    WaveStore,
)
from repro.errors import DeadlockError, KernelTimeoutError
from repro.gpu import ops as op_ir
from repro.gpu.simt import KernelReport, ThreadOutcome, warp_layout
from repro.gpu.simt import _LOCK_SPACE_BASE as LOCK_BASE

#: Sentinel "still alive" value for warps whose last round is unknown.
_ALIVE = np.iinfo(np.int64).max


class _Charges:
    """Per-SM charge accumulators for the acquire/spin phase."""

    def __init__(self, num_sms: int, cost: Any, seg: int) -> None:
        self.cost = cost
        self.seg = seg
        self.issue = np.zeros(num_sms, dtype=np.float64)
        self.atomic = np.zeros(num_sms, dtype=np.float64)
        self.mem_tx = np.zeros(num_sms, dtype=np.int64)
        self.mem_bytes = np.zeros(num_sms, dtype=np.int64)
        self.spin_iterations = 0
        self.atomic_conflicts = 0


class _AcqGroup:
    """One divergence group of spinning/acquiring threads.

    All live threads of one (warp, type) that are still in their
    growing phase sit in this group: same branch tag, same op kind
    (LOCK_ACQUIRE), hence one interpreter group per round. Its state
    -- the member set and each member's current gate lock -- changes
    only when members pass, so charges accrue in closed form over the
    interval since the last change (``t0``).
    """

    __slots__ = ("sm", "warp", "type_id", "members", "t0")

    def __init__(self, sm: int, warp: int, type_id: int) -> None:
        self.sm = sm
        self.warp = warp
        self.type_id = type_id
        #: thread -> lock id of its current gate.
        self.members: Dict[int, int] = {}
        #: First round of the current constant-state interval.
        self.t0 = 1

    def settle(
        self,
        r: int,
        passers: int,
        charges: _Charges,
        spin_out: List[Tuple[int, int]],
    ) -> None:
        """Charge rounds ``t0 .. r`` with the current member state.

        Mirrors the interpreter's per-round LOCK_ACQUIRE group charges:
        one spin-issue per round, the lock-word coalesce over all
        members' gate addresses, per-lock atomic serialization where
        members contend, and one spin iteration per non-passing member
        per round. Exact because every quantum is an integer-valued
        float (multiplication == repeated addition). Rounds with no
        passes (``t0 .. r-1``) left no trace events; they go to
        ``spin_out`` for the divergence correction.
        """
        length = r - self.t0 + 1
        if length <= 0:  # pragma: no cover - scheduler invariant
            raise AssertionError("settle before interval start")
        cost = charges.cost
        locks_now = list(self.members.values())
        charges.issue[self.sm] += cost.issue_spin() * length
        for lock, count in Counter(locks_now).items():
            if count > 1:
                charges.atomic[self.sm] += (
                    cost.atomic_serialization(count) * length
                )
                charges.atomic_conflicts += (count - 1) * length
        ntx = cost.coalesce([LOCK_BASE + lock * 8 for lock in locks_now], 8)
        charges.mem_tx[self.sm] += ntx * length
        charges.mem_bytes[self.sm] += ntx * charges.seg * length
        charges.spin_iterations += len(self.members) * length - passers
        if r - 1 >= self.t0:
            spin_out.append((self.t0, r - 1))
        self.t0 = r + 1


class _VisitTracker:
    """Per-SM warp visit ranks under the scheduler's swap-removal.

    The interpreter sweeps each SM's live-warp list every round,
    replacing a warp first encountered with no live thread by the
    list's last warp (without advancing the index). Replaying only the
    *death rounds* in ascending order -- each one its own left-to-right
    sweep -- leaves the list in the identical state, because sweeps of
    rounds with no newly-dead warps remove nothing; and enumerating the
    post-sweep list assigns every surviving warp the same visit rank
    the interpreter hands out mid-sweep.
    """

    def __init__(
        self, sm_warp_ids: Sequence[Sequence[int]], warp_last: np.ndarray
    ) -> None:
        self._live = [list(ids) for ids in sm_warp_ids]
        self._deaths: List[List[int]] = [[] for _ in sm_warp_ids]
        self._warp_last = warp_last

    def add_death(self, sm: int, round_: int, warp: int) -> None:
        heapq.heappush(self._deaths[sm], round_)

    def ranks_at(self, sm: int, r: int) -> Dict[int, int]:
        deaths = self._deaths[sm]
        live = self._live[sm]
        warp_last = self._warp_last
        while deaths and deaths[0] <= r:
            d = heapq.heappop(deaths)
            i = 0
            while i < len(live):
                if warp_last[live[i]] < d:
                    live[i] = live[-1]
                    live.pop()
                else:
                    i += 1
        return {w: i for i, w in enumerate(live)}


def _merge_intervals(ivs: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    if not ivs:
        return []
    ivs = sorted(ivs)
    out = [ivs[0]]
    for a, b in ivs[1:]:
        la, lb = out[-1]
        if a <= lb:
            if b > lb:
                out[-1] = (la, b)
        else:
            out.append((a, b))
    return out


def _uncovered_count(
    spin: List[Tuple[int, int]], occ: List[Tuple[int, int]]
) -> int:
    """``|union(spin) \\ union(occ)|`` over integer rounds."""
    spin_m = _merge_intervals(spin)
    occ_m = _merge_intervals(occ)
    total = sum(b - a + 1 for a, b in spin_m)
    overlap = 0
    j = 0
    for a, b in spin_m:
        while j < len(occ_m) and occ_m[j][1] < a:
            j += 1
        k = j
        while k < len(occ_m) and occ_m[k][0] <= b:
            overlap += min(b, occ_m[k][1]) - max(a, occ_m[k][0]) + 1
            if occ_m[k][1] > b:
                break
            k += 1
    return total - overlap


def run_locked_schedule(
    executor: Any,
    transactions: Sequence[Any],
    plans: Sequence[List[Tuple[int, int, bool]]],
    locks: Any,
    store: WaveStore,
) -> KernelReport:
    """Execute a TPL bulk as a closed-form lock schedule.

    ``plans`` aligns with ``transactions``: each entry is the thread's
    merged-item lock plan ``[(lock_id, key, shared), ...]`` in item
    order (the order the growing and shrinking phases walk). ``locks``
    is the pre-seeded :class:`~repro.gpu.atomics.LockTable` -- mutated
    here exactly as the interpreter would, one release at a time in
    interpreter position order.
    """
    engine = executor.engine
    spec = engine.spec
    cost = engine.cost
    registry = executor.registry
    n = len(transactions)

    type_ids = np.fromiter(
        (registry.type_id(t.type_name) for t in transactions), np.int64, n
    )
    capture = np.array(
        [executor._needs_undo(t) for t in transactions], dtype=bool
    )
    type_of: Dict[int, Any] = {}
    for t in transactions:
        tid = int(registry.type_id(t.type_name))
        if tid not in type_of:
            type_of[tid] = registry.get(t.type_name)

    bounds, sm_warp_ids, _resident = warp_layout(n, engine.block_size, spec)
    warp_of = np.empty(n, dtype=np.int64)
    for w, (lo, hi) in enumerate(bounds):
        warp_of[lo:hi] = w
    sm_of_warp = np.empty(len(bounds), dtype=np.int64)
    for sm, ids in enumerate(sm_warp_ids):
        for w in ids:
            sm_of_warp[w] = sm

    recorder = TraceRecorder(n)
    recorder.round_base = np.zeros(n, dtype=np.int64)
    recorder.undo_capture = capture

    charges = _Charges(spec.num_sms, cost, spec.memory_transaction_bytes)

    warp_last = np.full(len(bounds), _ALIVE, dtype=np.int64)
    warp_remaining = np.array([hi - lo for lo, hi in bounds], dtype=np.int64)
    warp_max_done = np.zeros(len(bounds), dtype=np.int64)
    tracker = _VisitTracker(sm_warp_ids, warp_last)

    # Per-thread progress and results.
    gate = np.zeros(n, dtype=np.int64)
    done_round = np.full(n, -1, dtype=np.int64)
    committed = np.ones(n, dtype=bool)
    abort_reason = [""] * n
    results: List[Any] = [None] * n
    undo_logs: List[List[Tuple[Any, ...]]] = [[] for _ in range(n)]

    #: (warp, type_id) -> acquire group.
    groups: Dict[Tuple[int, int], _AcqGroup] = {}
    #: (lock, key) -> parked [(thread, group)] waiting for that value.
    waiters: Dict[Tuple[int, int], List[Tuple[int, _AcqGroup]]] = {}
    #: round -> (first-attempt arrivals, counter mutations).
    pending: Dict[int, Tuple[List[int], List[Tuple]]] = {}
    heap: List[int] = []

    # Lock-op trace events, materialised as two synthetic Steps.
    pass_threads: List[int] = []
    pass_rounds: List[int] = []
    pass_locks: List[int] = []
    rel_threads: List[int] = []
    rel_rounds: List[int] = []
    rel_locks: List[int] = []
    #: warp -> rounds carrying trace events (body spans, pass points),
    #: and warp -> spin-only group intervals; both feed the divergence
    #: correction.
    occupied: Dict[int, List[Tuple[int, int]]] = {}
    spin_ivs: Dict[int, List[Tuple[int, int]]] = {}

    def schedule(round_: int, kind: str, item: Any) -> None:
        entry = pending.get(round_)
        if entry is None:
            entry = pending[round_] = ([], [])
            heapq.heappush(heap, round_)
        entry[0 if kind == "arr" else 1].append(item)

    n_done = 0

    def finish_thread(t: int, done: int) -> None:
        nonlocal n_done
        done_round[t] = done
        n_done += 1
        w = int(warp_of[t])
        if done > warp_max_done[w]:
            warp_max_done[w] = done
        warp_remaining[w] -= 1
        if warp_remaining[w] == 0:
            warp_last[w] = warp_max_done[w]
            tracker.add_death(int(sm_of_warp[w]), int(warp_max_done[w]) + 1, w)

    def run_body_batch(tid: int, threads: List[int], r: int) -> None:
        """Run the granted threads' bodies as one column kernel.

        Bodies start at round ``r + 1`` (the round after the final
        gate pass); release and abort counter effects are scheduled at
        the rounds the interpreter would execute them. Eager execution
        is safe under 2PL: every conflicting transaction's window is
        serialized after this one's, and rounds process in ascending
        order.
        """
        lanes = np.asarray(sorted(threads), dtype=np.int64)
        recorder.round_base[lanes] = (r + 1) - recorder.op_count[lanes]
        txns = [transactions[i] for i in lanes.tolist()]
        cap = capture[lanes]
        ctx = WaveContext(
            recorder, store, lanes, tid, txns,
            capture_undo=cap if cap.any() else None,
        )
        ctx.set_branch()
        type_of[tid].vector_body(ctx)
        ctx.close()
        end = recorder.round_base[lanes] + recorder.op_count[lanes] - 1
        for j, t in enumerate(lanes.tolist()):
            end_j = int(end[j])
            committed[t] = bool(ctx.committed[j])
            abort_reason[t] = ctx.abort_reason[j]
            results[t] = ctx.results[j]
            if ctx.undo[j]:
                undo_logs[t] = ctx.undo[j]
            plan = plans[t]
            if ctx.committed[j]:
                # Shrinking phase: one release per round, plan order.
                for k in range(len(plan)):
                    rel_threads.append(t)
                    rel_rounds.append(end_j + 1 + k)
                    rel_locks.append(plan[k][0])
                    schedule(end_j + 1 + k, "mut", ("rel", t, k))
                finish_thread(t, end_j + len(plan))
                occupied.setdefault(int(warp_of[t]), []).append(
                    (r + 1, end_j + len(plan))
                )
            else:
                # The ABORT op auto-releases every held lock that
                # round (no trace events, no charges -- counter
                # effects only).
                if plan:
                    schedule(end_j, "mut", ("abort", t))
                finish_thread(t, end_j)
                occupied.setdefault(int(warp_of[t]), []).append((r + 1, end_j))

    # ---- seed: zero-lock threads run at once; the rest join their
    # acquire groups and first-attempt their gates at round 1.
    free_by_type: Dict[int, List[int]] = {}
    for t in range(n):
        if plans[t]:
            key = (int(warp_of[t]), int(type_ids[t]))
            g = groups.get(key)
            if g is None:
                g = groups[key] = _AcqGroup(
                    int(sm_of_warp[warp_of[t]]), key[0], key[1]
                )
            g.members[t] = plans[t][0][0]
            schedule(1, "arr", t)
        else:
            free_by_type.setdefault(int(type_ids[t]), []).append(t)
    for tid in sorted(free_by_type):
        run_body_batch(tid, free_by_type[tid], 0)

    # ---- event loop ----------------------------------------------------
    while heap:
        r = heapq.heappop(heap)
        arrivals, mutations = pending.pop(r)
        if r > engine.max_rounds:
            raise KernelTimeoutError(
                f"kernel exceeded {engine.max_rounds} rounds"
            )

        rank_cache: Dict[int, Dict[int, int]] = {}

        def rank_of(sm: int, w: int) -> int:
            ranks = rank_cache.get(sm)
            if ranks is None:
                ranks = rank_cache[sm] = tracker.ranks_at(sm, r)
            return ranks[w]

        def group_pos(g: _AcqGroup) -> Tuple[int, int, int]:
            return (g.sm, rank_of(g.sm, g.warp), min(g.members))

        # This round's position-ordered events: acquire groups with
        # first-attempt arrivals, release groups, abort groups -- each
        # at (sm, warp visit rank, first member lane).
        events: List[Tuple[Tuple[int, int, int, int], str, Any]] = []
        arr_by_group: Dict[Tuple[int, int], List[int]] = {}
        for t in arrivals:
            arr_by_group.setdefault(
                (int(warp_of[t]), int(type_ids[t])), []
            ).append(t)
        for key, ts in arr_by_group.items():
            g = groups[key]
            events.append((group_pos(g) + (0,), "arr", (g, ts)))
        rel_by_group: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        abort_by_group: Dict[Tuple[int, int], List[int]] = {}
        for mut in mutations:
            if mut[0] == "rel":
                _tag, t, k = mut
                rel_by_group.setdefault(
                    (int(warp_of[t]), int(type_ids[t])), []
                ).append((t, k))
            else:
                _tag, t = mut
                abort_by_group.setdefault(
                    (int(warp_of[t]), int(type_ids[t])), []
                ).append(t)
        for (w, _tid), items in rel_by_group.items():
            items.sort()
            sm = int(sm_of_warp[w])
            events.append(
                ((sm, rank_of(sm, w), items[0][0], 1), "rel", items)
            )
        for (w, _tid), ts in abort_by_group.items():
            ts.sort()
            sm = int(sm_of_warp[w])
            events.append(((sm, rank_of(sm, w), ts[0], 2), "abort", ts))
        events.sort(key=lambda e: e[0])

        passes: Dict[Tuple[int, int], List[int]] = {}

        def pass_now(g: _AcqGroup, t: int) -> None:
            passes.setdefault((g.warp, g.type_id), []).append(t)

        def wake(lock: int, value: int, pos: Tuple[int, ...]) -> None:
            # A parked waiter's key is now current. If its group is
            # visited after the releasing group this round, it passes
            # now; otherwise it already failed this round's check and
            # passes at its next attempt (the counter cannot move past
            # its key before it releases, so the re-check succeeds).
            for t, g in waiters.pop((lock, value), ()):
                if group_pos(g) > pos[:3]:
                    pass_now(g, t)
                else:
                    schedule(r + 1, "arr", t)

        values = locks.values
        for pos, kind, payload in events:
            if kind == "arr":
                g, ts = payload
                for t in sorted(ts):
                    lock = g.members[t]
                    _l, key, _shared = plans[t][gate[t]]
                    if locks.try_pass_counter(lock, key):
                        pass_now(g, t)
                    else:
                        waiters.setdefault((lock, key), []).append((t, g))
            elif kind == "rel":
                for t, k in payload:
                    lock, key, shared = plans[t][k]
                    old = int(values[lock])
                    locks.release_counter(lock, key, shared, True)
                    new = int(values[lock])
                    if new != old:
                        wake(lock, new, pos)
            else:  # abort: release every held lock, plan order
                for t in payload:
                    for lock, key, shared in plans[t]:
                        old = int(values[lock])
                        locks.release_counter(lock, key, shared, True)
                        new = int(values[lock])
                        if new != old:
                            wake(lock, new, pos)

        # Settle groups with passes (charges use pre-pass state), then
        # advance the passers and collect granted threads per type.
        body_ready: Dict[int, List[int]] = {}
        for key in sorted(passes):
            g = groups[key]
            ts = passes[key]
            g.settle(r, len(ts), charges, spin_ivs.setdefault(g.warp, []))
            w_occ = occupied.setdefault(g.warp, [])
            for t in sorted(ts):
                pass_threads.append(t)
                pass_rounds.append(r)
                pass_locks.append(g.members[t])
                w_occ.append((r, r))
                gate[t] += 1
                if gate[t] < len(plans[t]):
                    g.members[t] = plans[t][gate[t]][0]
                    schedule(r + 1, "arr", t)
                else:
                    del g.members[t]
                    body_ready.setdefault(g.type_id, []).append(t)
            if not g.members:
                del groups[key]
        for tid in sorted(body_ready):
            run_body_batch(tid, body_ready[tid], r)

    if n_done != n:
        raise DeadlockError(
            f"lock schedule stalled with {n - n_done} thread(s) parked "
            "on counter gates that can never advance (invalid rank keys)"
        )

    rounds_total = int(done_round.max()) if n else 0
    if rounds_total > engine.max_rounds:  # pragma: no cover - loop raises
        raise KernelTimeoutError(
            f"kernel exceeded {engine.max_rounds} rounds"
        )

    # Collapse the per-batch step fragments into one step per distinct
    # op shape before the replay flattens them (the synthetic lock
    # steps below are appended whole and need no merging).
    recorder.merge_steps()

    # ---- synthetic lock-op trace events --------------------------------
    # Appended directly (record() would double-bump op_count on
    # repeated lanes): pass events replay as uncharged LOCK_ACQUIRE
    # groups (their charges came via settle), release events charge
    # exactly like the interpreter's release groups.
    if pass_threads:
        lanes_arr = np.asarray(pass_threads, dtype=np.int64)
        recorder.steps.append(
            Step(
                op_ir.LOCK_ACQUIRE,
                lanes=lanes_arr,
                opidx=np.zeros(len(lanes_arr), dtype=np.int64),
                branch=type_ids[lanes_arr],
                addr=LOCK_BASE + np.asarray(pass_locks, dtype=np.int64) * 8,
                rounds=np.asarray(pass_rounds, dtype=np.int64),
            )
        )
    if rel_threads:
        lanes_arr = np.asarray(rel_threads, dtype=np.int64)
        recorder.steps.append(
            Step(
                op_ir.LOCK_RELEASE,
                lanes=lanes_arr,
                opidx=np.zeros(len(lanes_arr), dtype=np.int64),
                branch=type_ids[lanes_arr],
                addr=LOCK_BASE + np.asarray(rel_locks, dtype=np.int64) * 8,
                rounds=np.asarray(rel_rounds, dtype=np.int64),
            )
        )

    # ---- divergence correction -----------------------------------------
    # The interpreter counts (groups - 1) per (round, warp); the replay
    # only sees groups with trace events. Spin-only acquire groups add
    # one each per spun round, minus one for every (round, warp) where
    # spin-only groups were the *only* groups (no trace events at all:
    # rounds inside a spin interval and outside every occupied span).
    extra = sum(
        b - a + 1 for ivs in spin_ivs.values() for a, b in ivs
    )
    for w, ivs in spin_ivs.items():
        extra -= _uncovered_count(ivs, occupied.get(w, []))

    schedule_ov = ScheduleOverrides(
        rounds=rounds_total,
        warp_last_round=warp_last,
        issue_cycles=charges.issue,
        atomic_cycles=charges.atomic,
        mem_transactions=charges.mem_tx,
        mem_bytes=charges.mem_bytes,
        spin_iterations=charges.spin_iterations,
        atomic_conflicts=charges.atomic_conflicts,
        divergent_serializations=extra,
    )

    type_ids_l = type_ids.tolist()
    outcomes = [
        ThreadOutcome(
            txn.txn_id,
            type_ids_l[i],
            bool(committed[i]),
            abort_reason[i],
            results[i],
        )
        for i, txn in enumerate(transactions)
    ]
    report = replay_kernel(
        recorder, store, engine, outcomes, schedule=schedule_ov
    )
    # Undo logs were journalled during the kernel, before staged
    # inserts materialised; rewrite handle-encoded rows to the
    # physical ids the replay assigned (no-op without staged inserts).
    for i, entries in enumerate(undo_logs):
        if entries:
            outcomes[i].undo = tx_logging.remap_handle_rows(
                entries, store.handle_row, HANDLE_BASE
            )
    return report
