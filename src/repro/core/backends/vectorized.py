"""The vectorized NumPy execution backend.

Executes K-SET waves and PART partition schedules as batched column
kernels (:mod:`repro.core.backends.wave`) and reproduces the SIMT
interpreter's cost accounting exactly
(:mod:`repro.core.backends.replay`). The result is byte-identical to
the interpreted backend -- same outcomes, same final physical state,
same simulated-clock figures -- at a fraction of the host wall-clock
cost, which is what lets the serving and cluster layers push real
traffic through the simulator ("as fast as the hardware allows").

TPL bulks route through :func:`~repro.core.backends.lockstep.
run_locked_schedule`: counter-lock spin rounds are derived in closed
form from the release schedule, bodies run as column kernels the
moment their locks are granted, and abort-capable waves journal
before-images as bulk gathers (vectorized undo capture).

Per-wave fallback: a wave is vectorized only when every participating
transaction type has a vector form (``TransactionType.vector_body``)
and the store is column-layout; the partition path additionally
requires two-phase types that need no undo logging (the PART wrapper's
inline compensating rollback is interpreter-shaped). Anything else --
e.g. the ad-hoc strategy's serial semantics -- runs through
:class:`~repro.core.backends.base.InterpretedBackend` unchanged. The
``strict_vector`` engine option turns that fallback into an error for
tests and benches that must know vectorization happened; the
``vector_min_wave`` option keeps tiny waves on the interpreter, where
the NumPy setup overhead is not worth paying.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import tx_logging
from repro.core.backends.base import (
    EngineOptions,
    ExecutionBackend,
    InterpretedBackend,
    register_backend,
)
from repro.core.backends.lockstep import run_locked_schedule
from repro.core.backends.replay import replay_kernel
from repro.core.backends.wave import (
    HANDLE_BASE,
    TraceRecorder,
    WaveContext,
    WaveStore,
)
from repro.errors import ExecutionError
from repro.gpu import ops as op_ir
from repro.gpu.simt import KernelReport, ThreadOutcome


class VectorizedBackend(ExecutionBackend):
    """Batched NumPy wave execution with exact cost replay."""

    name = "vectorized"

    def __init__(self, options: Optional[EngineOptions] = None) -> None:
        super().__init__()
        self.options = options or EngineOptions(backend="vectorized")
        self._interpreted = InterpretedBackend()
        #: Per-backend cost feedback for the engine's profiler: how
        #: many waves each path actually ran (the chooser's wall-clock
        #: model keys on these outcomes).
        self.waves_vectorized = 0
        self.waves_interpreted = 0
        self.last_fallback_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Support checks.
    # ------------------------------------------------------------------
    def _unsupported_reason(
        self, executor, type_names: Sequence[str], *, allow_undo: bool = True
    ) -> Optional[str]:
        """Why this wave cannot vectorize, or None when it can.

        Wave and locked launches capture before-images in bulk, so
        abort-after-write types and undo logging are fine there
        (``allow_undo``). The partition path keeps the strict checks:
        the PART wrapper rolls back aborts inline with compensating
        Read/Write ops, a trace shape only the interpreter produces.
        """
        if executor.adapter.db.layout != "column":
            return "vectorized backend requires a column-layout store"
        registry = executor.registry
        for name in type_names:
            txn_type = registry.get(name)
            if txn_type.vector_body is None:
                return f"transaction type {name!r} has no vector form"
            if not allow_undo:
                if not txn_type.two_phase:
                    return f"transaction type {name!r} is not two-phase"
                if executor.use_undo_logging and registry.needs_undo(name):
                    return f"transaction type {name!r} requires undo logging"
        return None

    def _fall_back(self, reason: str) -> None:
        self.last_fallback_reason = reason
        if self.options.strict_vector:
            raise ExecutionError(
                f"strict_vector: wave cannot be vectorized ({reason})"
            )
        self.waves_interpreted += 1

    # ------------------------------------------------------------------
    # K-SET waves: one thread per transaction, conflict-free.
    # ------------------------------------------------------------------
    def launch_wave(self, executor, transactions) -> KernelReport:
        n = len(transactions)
        by_type: Dict[str, List[int]] = {}
        for i, txn in enumerate(transactions):
            by_type.setdefault(txn.type_name, []).append(i)
        reason = self._unsupported_reason(executor, list(by_type))
        if reason is not None:
            self._fall_back(reason)
            report = self._interpreted.launch_wave(executor, transactions)
            self.wall_launch_seconds += self._interpreted.wall_launch_seconds
            self._interpreted.wall_launch_seconds = 0.0
            return report
        if n < self.options.vector_min_wave:
            self.waves_interpreted += 1
            report = self._interpreted.launch_wave(executor, transactions)
            self.wall_launch_seconds += self._interpreted.wall_launch_seconds
            self._interpreted.wall_launch_seconds = 0.0
            return report

        start = _time.perf_counter()
        registry = executor.registry
        store = self._wave_store(executor, by_type)
        recorder = TraceRecorder(n)
        # Bulk undo capture: threads whose task would set capture_undo
        # journal before-images during the kernel (one gather per
        # write step), exactly like the interpreter's per-row appends.
        capture = np.array(
            [executor._needs_undo(t) for t in transactions], dtype=bool
        )
        recorder.undo_capture = capture
        committed = np.ones(n, dtype=bool)
        reasons = [""] * n
        results: List[object] = [None] * n
        undo_logs: List[List[Tuple]] = [[] for _ in range(n)]
        type_ids = np.empty(n, dtype=np.int64)
        for type_name, idxs in by_type.items():
            txn_type = registry.get(type_name)
            type_id = registry.type_id(type_name)
            lanes = np.asarray(idxs, dtype=np.int64)
            type_ids[lanes] = type_id
            cap = capture[lanes]
            ctx = WaveContext(
                recorder,
                store,
                lanes,
                type_id,
                [transactions[i] for i in idxs],
                capture_undo=cap if cap.any() else None,
            )
            ctx.set_branch()
            txn_type.vector_body(ctx)
            ctx.close()
            committed[lanes] = ctx.committed
            for j, i in enumerate(idxs):
                reasons[i] = ctx.abort_reason[j]
                results[i] = ctx.results[j]
                if ctx.undo[j]:
                    undo_logs[i] = ctx.undo[j]
        committed_l = committed.tolist()
        type_ids_l = type_ids.tolist()
        outcomes = [
            ThreadOutcome(
                txn.txn_id,
                type_ids_l[i],
                committed_l[i],
                reasons[i],
                results[i],
            )
            for i, txn in enumerate(transactions)
        ]
        report = replay_kernel(recorder, store, executor.engine, outcomes)
        for i, entries in enumerate(undo_logs):
            if entries:
                outcomes[i].undo = tx_logging.remap_handle_rows(
                    entries, store.handle_row, HANDLE_BASE
                )
        self.waves_vectorized += 1
        self.wall_launch_seconds += _time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    # TPL: one thread per transaction behind counter-lock gates.
    # ------------------------------------------------------------------
    def launch_locked(self, executor, transactions, plans, locks):
        by_type: Dict[str, List[int]] = {}
        for i, txn in enumerate(transactions):
            by_type.setdefault(txn.type_name, []).append(i)
        reason = self._unsupported_reason(executor, list(by_type))
        if reason is not None:
            self._fall_back(reason)
            report = self._interpreted.launch_locked(
                executor, transactions, plans, locks
            )
            self.wall_launch_seconds += self._interpreted.wall_launch_seconds
            self._interpreted.wall_launch_seconds = 0.0
            return report
        if len(transactions) < self.options.vector_min_wave:
            self.waves_interpreted += 1
            report = self._interpreted.launch_locked(
                executor, transactions, plans, locks
            )
            self.wall_launch_seconds += self._interpreted.wall_launch_seconds
            self._interpreted.wall_launch_seconds = 0.0
            return report
        start = _time.perf_counter()
        store = self._wave_store(executor, by_type)
        report = run_locked_schedule(
            executor, transactions, plans, locks, store
        )
        self.waves_vectorized += 1
        self.wall_launch_seconds += _time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    # PART: one thread per partition, transactions back to back.
    # ------------------------------------------------------------------
    def launch_partitions(
        self, executor, parts, boundary_cycles: int
    ) -> KernelReport:
        type_names = {
            txn.type_name for _pid, txns in parts for txn in txns
        }
        reason = self._unsupported_reason(
            executor, sorted(type_names), allow_undo=False
        )
        if reason is not None:
            self._fall_back(reason)
            report = self._interpreted.launch_partitions(
                executor, parts, boundary_cycles
            )
            self.wall_launch_seconds += self._interpreted.wall_launch_seconds
            self._interpreted.wall_launch_seconds = 0.0
            return report
        total = sum(len(txns) for _pid, txns in parts)
        if total < self.options.vector_min_wave:
            self.waves_interpreted += 1
            report = self._interpreted.launch_partitions(
                executor, parts, boundary_cycles
            )
            self.wall_launch_seconds += self._interpreted.wall_launch_seconds
            self._interpreted.wall_launch_seconds = 0.0
            return report

        start = _time.perf_counter()
        registry = executor.registry
        n = len(parts)
        by_type = {name: [0] for name in type_names}  # tables only
        store = self._wave_store(executor, by_type)
        recorder = TraceRecorder(n)
        cur_branch = np.full(n, -1, dtype=np.int64)
        per_part: List[List[Tuple]] = [[] for _ in range(n)]
        all_lanes = np.arange(n, dtype=np.int64)
        # The partition-boundary binary searches (one Compute op).
        recorder.record(
            op_ir.COMPUTE, all_lanes, cur_branch.copy(),
            amount=boundary_cycles,
        )
        part_txns = [txns for _pid, txns in parts]
        lens = np.fromiter((len(t) for t in part_txns), np.int64, n)
        max_slots = int(lens.max())
        for slot in range(max_slots):
            lanes_slot = np.flatnonzero(lens > slot)
            slot_types: Dict[str, List[int]] = {}
            for i in lanes_slot.tolist():
                slot_types.setdefault(
                    part_txns[i][slot].type_name, []
                ).append(i)
            for type_name, lane_list in slot_types.items():
                txn_type = registry.get(type_name)
                type_id = registry.type_id(type_name)
                lanes = np.asarray(lane_list, dtype=np.int64)
                txns_slot = [part_txns[i][slot] for i in lane_list]
                # Each transaction re-enters its switch case: the
                # partition wrapper's SetBranch executes under the
                # *previous* branch tag, then the stored procedure's
                # own wrapper issues a second (now same-tag) SetBranch.
                recorder.record(
                    op_ir.SET_BRANCH, lanes, cur_branch[lanes].copy()
                )
                cur_branch[lanes] = type_id
                ctx = WaveContext(
                    recorder, store, lanes, type_id, txns_slot,
                    record_abort_ops=False,
                )
                ctx.set_branch()
                txn_type.vector_body(ctx)
                ctx.close()
                for j, i in enumerate(lane_list):
                    per_part[i].append(
                        (
                            txns_slot[j].txn_id,
                            bool(ctx.committed[j]),
                            ctx.abort_reason[j],
                            ctx.results[j],
                            [],
                            [],
                        )
                    )
            # Loop bookkeeping between transactions (one Compute op).
            recorder.record(
                op_ir.COMPUTE, lanes_slot, cur_branch[lanes_slot].copy(),
                amount=2,
            )
        outcomes = [
            ThreadOutcome(
                txn_id=parts[i][0],
                type_id=-1,
                committed=True,
                result=per_part[i],
            )
            for i in range(n)
        ]
        report = replay_kernel(recorder, store, executor.engine, outcomes)
        self.waves_vectorized += 1
        self.wall_launch_seconds += _time.perf_counter() - start
        return report

    # ------------------------------------------------------------------
    def _wave_store(self, executor, by_type: Dict[str, List[int]]) -> WaveStore:
        mutating = frozenset().union(
            *(
                executor.registry.get(name).vector_inserts
                for name in by_type
            )
        )
        return WaveStore(executor.adapter, mutating)


register_backend("vectorized", lambda options: VectorizedBackend(options))
