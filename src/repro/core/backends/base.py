"""Execution-backend registry and engine-level options.

The strategies of :mod:`repro.core.strategies` decide *what* runs in
each kernel launch (which transactions form a wave, in which order);
an :class:`ExecutionBackend` decides *how* the wave's kernel actually
executes on the host:

* ``interpreted`` -- the original path: one Python generator per GPU
  thread, stepped op-by-op in warp lockstep by
  :class:`~repro.gpu.simt.SIMTEngine`. Fully general (locks, atomics,
  undo logging) but pays Python interpreter cost per op per thread.
* ``vectorized`` -- the whole wave's same-procedure transactions
  execute as batched NumPy column kernels (gather -> compute ->
  conflict-masked scatter) against the column store, and the kernel's
  simulated cost is reproduced *exactly* by a vectorized replay of the
  SIMT cost accounting (:mod:`repro.core.backends.replay`). Falls back
  to the interpreter per wave when a transaction type has no vector
  form or the wave needs features only the interpreter models.

Both backends produce byte-identical outcomes, final states, and
simulated-clock figures; only wall-clock time differs. Backends are
selected via :class:`EngineOptions` (``GPUTx(..., options=...)``).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.executor import StrategyExecutor
    from repro.core.txn import Transaction
    from repro.gpu.simt import KernelReport


class ExecutionBackend:
    """How a strategy's kernel launches execute on the host."""

    name = "base"

    def __init__(self) -> None:
        #: Host wall-clock seconds spent inside kernel launches (the
        #: phase a backend owns; bulk generation and transfer
        #: accounting are shared code outside it). Benchmarks read
        #: this to compare backends on exactly the replaced path.
        self.wall_launch_seconds = 0.0

    def launch_wave(
        self,
        executor: "StrategyExecutor",
        transactions: Sequence["Transaction"],
    ) -> "KernelReport":
        """Execute one conflict-free wave (one thread per transaction).

        Used by K-SET (each 0-set round is one wave). Must return a
        report identical to what :meth:`SIMTEngine.launch` would have
        produced for ``executor.build_task``-built tasks in order.
        """
        raise NotImplementedError

    def launch_partitions(
        self,
        executor,
        parts: Sequence[Tuple[int, List["Transaction"]]],
        boundary_cycles: int,
    ) -> "KernelReport":
        """Execute PART's per-partition serial threads as one kernel.

        ``parts`` is the sorted ``(partition id, transactions)`` list;
        each partition is one GPU thread running its transactions back
        to back (the pull model of Section 5.2).
        """
        raise NotImplementedError

    def launch_locked(
        self,
        executor,
        transactions: Sequence["Transaction"],
        plans: Sequence[List[Tuple[int, int, bool]]],
        locks,
    ) -> "KernelReport":
        """Execute one TPL bulk (one thread per transaction, counter
        locks).

        ``plans`` aligns with ``transactions``: each entry is the
        thread's lock plan ``[(lock_id, key, shared), ...]`` in merged
        item order (both locking phases walk it). ``locks`` is the
        pre-seeded :class:`~repro.gpu.atomics.LockTable`. Must return
        a report identical to launching
        ``executor.locked_task``-built tasks on the interpreter.
        """
        raise NotImplementedError


class InterpretedBackend(ExecutionBackend):
    """The original generator-per-thread SIMT interpreter path."""

    name = "interpreted"

    def launch_wave(self, executor, transactions):
        start = time.perf_counter()
        tasks = [executor.build_task(t) for t in transactions]
        report = executor.engine.launch(tasks, executor.adapter)
        self.wall_launch_seconds += time.perf_counter() - start
        return report

    def launch_partitions(self, executor, parts, boundary_cycles):
        start = time.perf_counter()
        tasks = [
            executor.partition_task(pid, txns, boundary_cycles)
            for pid, txns in parts
        ]
        report = executor.engine.launch(tasks, executor.adapter)
        self.wall_launch_seconds += time.perf_counter() - start
        return report

    def launch_locked(self, executor, transactions, plans, locks):
        start = time.perf_counter()
        tasks = [
            executor.locked_task(txn, plan)
            for txn, plan in zip(transactions, plans)
        ]
        report = executor.engine.launch(tasks, executor.adapter, locks=locks)
        self.wall_launch_seconds += time.perf_counter() - start
        return report


#: Backend name -> zero-config factory.
_BACKENDS: Dict[str, Callable[["EngineOptions"], ExecutionBackend]] = {}


def register_backend(
    name: str, factory: Callable[["EngineOptions"], ExecutionBackend]
) -> None:
    """Add a backend to the registry (idempotent re-registration is an
    error: backend names are part of the engine's public contract)."""
    if name in _BACKENDS:
        raise ConfigError(f"backend {name!r} already registered")
    _BACKENDS[name] = factory


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_BACKENDS)


def create_backend(options: "EngineOptions") -> ExecutionBackend:
    """Instantiate the backend ``options`` selects."""
    try:
        factory = _BACKENDS[options.backend]
    except KeyError:
        raise ConfigError(
            f"unknown execution backend {options.backend!r}; "
            f"choose from {available_backends()}"
        ) from None
    return factory(options)


def _env_strict_vector() -> bool:
    """The ``REPRO_STRICT_VECTOR`` environment default.

    CI's strict lane exports ``REPRO_STRICT_VECTOR=1`` to turn every
    silent interpreter fallback in the vectorized backend into an
    error; empty, ``0``, and ``false`` (any case) leave it off.
    """
    raw = os.environ.get("REPRO_STRICT_VECTOR", "")
    return raw.strip().lower() not in ("", "0", "false")


@dataclass(frozen=True)
class EngineOptions:
    """Engine-level execution options (strategy-independent).

    ``backend`` selects the execution backend by registry name.
    ``vector_min_wave`` is the smallest wave the vectorized backend
    bothers to vectorize -- below it the per-wave NumPy setup costs
    more wall-clock than interpreting (the simulated clock is
    identical either way). ``strict_vector`` turns the vectorized
    backend's silent per-wave fallback into an error -- for tests and
    benchmarks that must know vectorization actually happened. Its
    default (``None``) resolves from the ``REPRO_STRICT_VECTOR``
    environment variable, so a CI lane can arm strictness repo-wide;
    an explicit ``False`` stays off regardless of the environment.
    """

    backend: str = "interpreted"
    vector_min_wave: int = 1
    strict_vector: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ConfigError(
                f"unknown execution backend {self.backend!r}; "
                f"choose from {available_backends()}"
            )
        if self.vector_min_wave < 1:
            raise ConfigError("vector_min_wave must be >= 1")
        if self.strict_vector is None:
            object.__setattr__(self, "strict_vector", _env_strict_vector())


register_backend("interpreted", lambda options: InterpretedBackend())
