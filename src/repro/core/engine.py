"""GPUTx: the end-to-end transaction execution engine (Section 3.2).

Ties everything together: transactions are submitted into the pool;
``run_bulk`` takes a set of them, profiles it, picks (or is told) an
execution strategy, executes on the simulated GPU, and records results.
``simulate_arrivals`` reproduces the response-time experiments
(Figures 9 and 15): transactions arrive uniformly in time, a bulk is
generated every ``interval`` seconds, and both average response time
and sustained throughput are reported.

Typical use::

    engine = GPUTx(db, procedures=tm1.PROCEDURES)
    engine.initialize_device()           # tables+indexes over PCIe
    engine.submit_many(txns)
    report = engine.run_bulk(strategy="auto")
    print(report.throughput_ktps)
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import repro.telemetry as telemetry
from repro.core.backends import EngineOptions, create_backend
from repro.core.chooser import ChooserThresholds, StrategyFeedback, choose_strategy
from repro.core.executor import ExecutionResult, StrategyExecutor
from repro.core.profiler import BulkProfile, BulkProfiler
from repro.core.procedure import ProcedureRegistry, TransactionType
from repro.core.strategies.adhoc import AdhocExecutor
from repro.core.strategies.kset_exec import KsetExecutor
from repro.core.strategies.part import PartExecutor
from repro.core.strategies.relaxed import (
    RelaxedKsetExecutor,
    RelaxedPartExecutor,
    RelaxedTplExecutor,
)
from repro.core.strategies.tpl import TplExecutor
from repro.core.txn import ResultPool, Transaction, TransactionPool
from repro.errors import ConfigError
from repro.gpu.costmodel import PERF_HANDICAP_ENV  # noqa: F401  (re-export:
# the perf-canary env knob historically lived here; the scaling now
# happens at the kernel-timing source in repro.gpu.costmodel.)
from repro.gpu.primitives import PrimitiveLibrary
from repro.gpu.simt import SIMTEngine
from repro.gpu.spec import C1060, GPUSpec
from repro.gpu.transfer import PCIeModel
from repro.storage.catalog import Database, StoreAdapter

_STRATEGIES = {
    "tpl": TplExecutor,
    "part": PartExecutor,
    "kset": KsetExecutor,
    "adhoc": AdhocExecutor,
    "tpl-relaxed": RelaxedTplExecutor,
    "part-relaxed": RelaxedPartExecutor,
    "kset-relaxed": RelaxedKsetExecutor,
}


@dataclass
class ArrivalReport:
    """Outcome of a response-time simulation (Figures 9, 15)."""

    interval_s: float
    arrival_rate_tps: float
    executed: int
    elapsed_s: float
    avg_response_s: float
    max_response_s: float
    bulk_sizes: List[int] = field(default_factory=list)

    @property
    def throughput_tps(self) -> float:
        return self.executed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps / 1e3


class GPUTx:
    """High-throughput bulk transaction execution engine on the GPU."""

    def __init__(
        self,
        db: Database,
        procedures: Optional[Sequence[TransactionType]] = None,
        *,
        spec: GPUSpec = C1060,
        block_size: int = 256,
        use_undo_logging: bool = True,
        thresholds: Optional[ChooserThresholds] = None,
        options: "Union[EngineOptions, ClusterOptions, None]" = None,
    ) -> None:
        self.db = db
        self.spec = spec
        self.registry = ProcedureRegistry()
        if procedures:
            self.registry.register_many(procedures)
        self.adapter = StoreAdapter(db)
        self.engine = SIMTEngine(spec, block_size=block_size)
        self.primitives = PrimitiveLibrary(spec)
        self.pcie = PCIeModel(spec)
        self.pool = TransactionPool()
        self.results = ResultPool()
        self.profiler = BulkProfiler(self.registry, self.primitives)
        self.thresholds = thresholds or ChooserThresholds.for_spec(spec)
        self.use_undo_logging = use_undo_logging
        if options is None or isinstance(options, EngineOptions):
            self.options = options or EngineOptions()
        else:
            # A full ClusterOptions is accepted wherever EngineOptions
            # used to go; repro.config extracts the engine slice (and
            # warns about ignored cluster-only fields). Imported
            # lazily: repro.config composes cluster-layer types, and
            # this module is at the bottom of that import graph.
            from repro.config import coerce_engine_options

            self.options = coerce_engine_options(options)
        #: The execution backend every K-SET/PART kernel launch of this
        #: engine routes through (repro.core.backends).
        self.backend = create_backend(self.options)
        #: Per-(strategy, backend) wall-clock service model: the host
        #: cost of executing bulks, fed by execute_bulk. The simulated
        #: clock is backend-independent; this model is what shows the
        #: vectorized backend's wall-clock win to the serving layer.
        self.wall_feedback = StrategyFeedback()
        #: Dropped-option warnings already issued by THIS engine
        #: (dedup is per engine, not per process -- see _filter_options).
        self._warned_options: Set[Tuple[str, Tuple[str, ...]]] = set()
        self._initialized = False
        #: Bulks traced so far (names the per-bulk telemetry spans).
        self._bulk_count = 0

    # ------------------------------------------------------------------
    # Registration and submission.
    # ------------------------------------------------------------------
    def register(self, txn_type: TransactionType) -> int:
        """Add a stored procedure to the combined kernel."""
        return self.registry.register(txn_type)

    def submit(
        self, type_name: str, params: Iterable[Any], submit_time: float = 0.0
    ) -> Transaction:
        return self.pool.submit(type_name, params, submit_time)

    def submit_many(
        self,
        transactions: Iterable[
            Union[Transaction, Tuple[str, tuple], Tuple[str, tuple, float]]
        ],
    ) -> int:
        """Submit pre-built transactions, (type, params) pairs, or
        (type, params, submit_time) triples."""
        return self.pool.submit_specs(transactions)

    def rebuild_on(self, db: Database) -> "GPUTx":
        """A fresh engine over ``db`` with this engine's configuration.

        Registers the same transaction types in the same order, so
        type ids are preserved -- the contract replica promotion needs
        when it swaps a recovered database under a shard id
        (:mod:`repro.cluster.durability`).
        """
        return GPUTx(
            db,
            procedures=[
                self.registry.get(name)
                for name in self.registry.type_names
            ],
            spec=self.spec,
            block_size=self.engine.block_size,
            use_undo_logging=self.use_undo_logging,
            thresholds=self.thresholds,
            options=self.options,
        )

    # ------------------------------------------------------------------
    # Device initialization (Figure 16's one-off component).
    # ------------------------------------------------------------------
    def initialize_device(self) -> float:
        """Copy tables and indexes to device memory; returns seconds."""
        report = self.db.device_bytes_report()
        seconds = self.pcie.initialize(report["total"])
        self._initialized = True
        return seconds

    # ------------------------------------------------------------------
    # Bulk execution.
    # ------------------------------------------------------------------
    def make_executor(self, strategy: str, **options: Any) -> StrategyExecutor:
        """Build a strategy executor sharing this engine's plumbing."""
        try:
            cls = _STRATEGIES[strategy]
        except KeyError:
            raise ConfigError(
                f"unknown strategy {strategy!r}; "
                f"choose from {sorted(_STRATEGIES)}"
            ) from None
        return cls(
            self.registry,
            self.adapter,
            self.engine,
            primitives=self.primitives,
            pcie=self.pcie,
            use_undo_logging=self.use_undo_logging,
            backend=self.backend,
            **options,
        )

    def profile_pool(self, max_txns: Optional[int] = None) -> BulkProfile:
        """Profile the pending transactions without executing them."""
        return self.profiler.profile(self.pool.peek(max_txns))

    def run_bulk(
        self,
        strategy: str = "auto",
        max_txns: Optional[int] = None,
        **options: Any,
    ) -> ExecutionResult:
        """Generate one bulk from the pool and execute it.

        ``strategy="auto"`` profiles the bulk and applies Algorithm 1.
        Strategy-specific options (``grouping_passes``,
        ``partition_size``, ...) pass through to the executor.
        """
        # Validate before draining the pool: a typo'd option or
        # strategy name must not cost the caller the bulk.
        validate_strategy_options(strategy, options)
        return self.execute_bulk(
            self.pool.take(max_txns), strategy=strategy, **options
        )

    def execute_bulk(
        self,
        transactions: Sequence[Transaction],
        strategy: str = "auto",
        **options: Any,
    ) -> ExecutionResult:
        """The reusable bulk pipeline: profile, choose, execute, record.

        Unlike :meth:`run_bulk` this takes the transactions directly
        instead of draining the pool, so callers that own the bulk
        boundary -- the cluster runtime's per-shard sub-bulks, the
        pipelined bulk scheduler -- share one code path. Deferred
        transactions (streaming K-SET) are requeued into this engine's
        pool; results land in this engine's result pool.
        """
        validate_strategy_options(strategy, options)
        if not transactions:
            return ExecutionResult(strategy, [], breakdown=_empty_breakdown())
        chosen = strategy
        profile_seconds = 0.0
        if strategy == "auto":
            profile = self.profiler.profile(transactions)
            chosen = choose_strategy(profile, self.thresholds)
            profile_seconds = profile.gen_seconds
            options = _filter_options(chosen, options, self._warned_options)
        executor = self.make_executor(chosen, **options)
        vec_before = getattr(self.backend, "waves_vectorized", 0)
        interp_before = getattr(self.backend, "waves_interpreted", 0)
        wall_start = time.perf_counter()
        result = executor.execute(transactions)
        result.wall_seconds = time.perf_counter() - wall_start
        # Label the bulk with the backend that *actually* ran its waves
        # (the vectorized backend falls back per wave), so the
        # per-backend wall-clock model never files interpreter times
        # under the vectorized curve.
        if executor.uses_backend:
            vec = getattr(self.backend, "waves_vectorized", 0) - vec_before
            interp = (
                getattr(self.backend, "waves_interpreted", 0) - interp_before
            )
            if vec and not interp:
                result.backend = "vectorized"
            elif vec:
                result.backend = "mixed"
            else:
                result.backend = "interpreted"
        else:
            result.backend = "interpreted"
        self.wall_feedback.observe(
            chosen,
            len(result.results),
            result.wall_seconds,
            backend=result.backend,
        )
        if profile_seconds:
            result.breakdown.add("profiling", profile_seconds)
        self.results.record_many(result.results)
        if result.deferred:
            self.pool.requeue(result.deferred)
        session = telemetry.current()
        if session is not None:
            self._trace_bulk(session, result, len(transactions))
        return result

    def _trace_bulk(
        self,
        session: "telemetry.TelemetrySession",
        result: ExecutionResult,
        n_txns: int,
    ) -> None:
        """Emit the life-of-a-bulk span tree and metrics for ``result``.

        The tree is laid out purely from the result's breakdown (the
        simulated decomposition), so tracing observes the engine
        without perturbing it: phase spans sum to ``result.seconds``
        per layer, and wave spans tile the execution phase in kernel
        order. DMA-borne phases land on the ``dma`` track.
        """
        tracer = session.tracer
        self._bulk_count += 1
        bulk = tracer.begin(
            f"bulk-{self._bulk_count}",
            cat=telemetry.CAT_BULK,
            n_txns=n_txns,
            strategy=result.strategy,
            backend=result.backend,
            committed=result.committed,
            aborted=result.aborted,
            deferred=len(result.deferred),
        )
        from repro.core.executor import PHASE_EXECUTION

        for phase, seconds in result.breakdown.phases.items():
            track = tracer.dma_track if phase in telemetry.DMA_PHASES else None
            if phase != PHASE_EXECUTION or not result.kernel_reports:
                tracer.phase(phase, seconds, track=track)
                continue
            # The execution phase opens a sub-tree: one wave span per
            # kernel launch, clamped inside the phase so float
            # accumulation can never push a child past its parent.
            exec_span = tracer.begin(phase, cat=telemetry.CAT_PHASE)
            exec_end = exec_span.sim_start_s + seconds
            for w, rep in enumerate(result.kernel_reports):
                dur = max(0.0, min(rep.seconds, exec_end - exec_span.cursor))
                tracer.phase(
                    f"wave-{w}",
                    dur,
                    cat=telemetry.CAT_WAVE,
                    strategy=result.strategy,
                    backend=result.backend,
                    threads=rep.stats.threads_launched,
                    aborted=rep.aborted_count,
                    rounds=rep.stats.rounds,
                    atomic_conflicts=rep.stats.atomic_conflicts,
                    bound=rep.timing.bound,
                )
            tracer.end(exec_span, sim_end=exec_end, advance_parent=True)
        tracer.end(bulk, waves=len(result.kernel_reports))

        metrics = session.metrics
        metrics.counter(
            "bulks_executed", "bulks run through GPUTx.execute_bulk"
        ).inc(strategy=result.strategy, backend=result.backend)
        metrics.counter(
            "waves_executed", "kernel launches (waves)"
        ).inc(len(result.kernel_reports), strategy=result.strategy,
              backend=result.backend)
        metrics.counter("txns_committed", "committed transactions").inc(
            result.committed
        )
        metrics.counter("txns_aborted", "aborted transactions").inc(
            result.aborted
        )
        if result.deferred:
            metrics.counter(
                "txns_deferred", "transactions requeued by streaming K-SET"
            ).inc(len(result.deferred))
        if n_txns and result.strategy.startswith("kset"):
            metrics.gauge(
                "kset_conflict_rate",
                "deferred share of the last K-SET bulk",
            ).set(len(result.deferred) / n_txns)
        metrics.histogram(
            "bulk_sim_seconds", "simulated seconds per bulk"
        ).observe(result.seconds, strategy=result.strategy)
        metrics.histogram(
            "bulk_wall_seconds", "host wall seconds per bulk"
        ).observe(result.wall_seconds, strategy=result.strategy,
                  backend=result.backend)

    # ------------------------------------------------------------------
    # Response time vs. throughput simulation (Figures 9, 15).
    # ------------------------------------------------------------------
    def simulate_arrivals(
        self,
        transactions: Sequence[Tuple[str, tuple]],
        arrival_rate_tps: float,
        interval_s: float,
        strategy: str = "kset",
        **options: Any,
    ) -> ArrivalReport:
        """Feed transactions at a uniform rate, bulk every ``interval_s``.

        Transaction *i* arrives at ``i / rate``. At each interval
        boundary (or as soon as the GPU frees up, whichever is later)
        every arrived-but-unexecuted transaction forms a bulk. The
        response time of a transaction is bulk-finish-time minus its
        arrival time.
        """
        if arrival_rate_tps <= 0 or interval_s <= 0:
            raise ConfigError("arrival rate and interval must be positive")
        executor = self.make_executor(strategy, **options)
        n = len(transactions)
        arrive = [i / arrival_rate_tps for i in range(n)]
        submitted = 0
        clock = 0.0
        total_response = 0.0
        max_response = 0.0
        executed = 0
        bulk_sizes: List[int] = []
        next_boundary = interval_s
        while executed < n:
            clock = max(clock, next_boundary)
            next_boundary += interval_s
            # Admit everything that has arrived by now.
            while submitted < n and arrive[submitted] <= clock:
                type_name, params = transactions[submitted]
                self.pool.submit(type_name, params, submit_time=arrive[submitted])
                submitted += 1
            batch = self.pool.take()
            if not batch:
                continue
            result = executor.execute(batch)
            self.results.record_many(result.results)
            clock += result.seconds
            bulk_sizes.append(len(batch))
            for txn in batch:
                response = clock - txn.submit_time
                total_response += response
                max_response = max(max_response, response)
            executed += len(batch)
        # Throughput is measured from the first bulk boundary (when the
        # engine starts processing) to the last bulk's completion --
        # the steady-state view of the paper's long-running runs, not
        # diluted by the initial fill of the pool.
        return ArrivalReport(
            interval_s=interval_s,
            arrival_rate_tps=arrival_rate_tps,
            executed=executed,
            elapsed_s=max(clock - interval_s, 1e-12),
            avg_response_s=total_response / executed if executed else 0.0,
            max_response_s=max_response,
            bulk_sizes=bulk_sizes,
        )


def _empty_breakdown():
    from repro.gpu.costmodel import TimeBreakdown

    return TimeBreakdown()


#: Options each strategy's executor accepts (beyond the shared ones).
_STRATEGY_OPTIONS: Dict[str, set] = {
    "tpl": {"grouping_passes"},
    "part": {"partition_size"},
    "kset": {"grouping_passes", "max_rounds"},
    "adhoc": {"per_task_launch_overhead"},
    "tpl-relaxed": set(),
    "part-relaxed": {"partition_size"},
    "kset-relaxed": {"grouping_passes"},
}


def validate_strategy_options(strategy: str, options: Dict[str, Any]) -> None:
    """Reject misdirected strategy options (tuning typos).

    Called before a bulk is consumed, so a typo costs an error, not
    the workload. Under ``"auto"`` any option some strategy accepts is
    legitimate (the inapplicable ones are dropped with a warning once
    Algorithm 1 has chosen); under an explicit strategy the option set
    is known up front and unknown names are rejected outright.
    """
    if strategy == "auto":
        known_anywhere = set().union(*_STRATEGY_OPTIONS.values())
        unknown = sorted(set(options) - known_anywhere)
        if unknown:
            raise ConfigError(
                f"unknown strategy option(s) {unknown}; valid options are "
                f"{sorted(known_anywhere)}"
            )
        return
    allowed = _STRATEGY_OPTIONS.get(strategy)
    if allowed is None:
        raise ConfigError(
            f"unknown strategy {strategy!r}; choose from {sorted(_STRATEGIES)}"
        )
    unknown = sorted(set(options) - allowed)
    if unknown:
        raise ConfigError(
            f"strategy {strategy!r} does not accept option(s) {unknown}; "
            f"allowed options are {sorted(allowed)}"
        )


def _filter_options(
    strategy: str,
    options: Dict[str, Any],
    warned: Optional[Set[Tuple[str, Tuple[str, ...]]]] = None,
) -> Dict[str, Any]:
    """Keep only the options the chosen strategy's executor accepts.

    Under ``strategy="auto"`` the caller cannot know which executor
    Algorithm 1 will pick, so passing an option another strategy owns
    is legitimate -- it is *dropped with a warning*. Unknown names
    were already rejected by :func:`validate_strategy_options`.

    Warning dedup is **per engine**, via the caller-owned ``warned``
    set: each engine warns once per (strategy, dropped-set). Relying
    on Python's default once-per-location warning memo instead would
    let the first engine in a process swallow every later engine's
    first warning, so the warning is emitted through
    ``warnings.warn_explicit`` with a fresh registry -- bypassing only
    the per-location memo while still honouring the process's warning
    *filters* (``-W error``, ``filterwarnings`` configs, ...).
    """
    allowed = _STRATEGY_OPTIONS[strategy]
    dropped = set(options) - allowed
    if dropped:
        key = (strategy, tuple(sorted(dropped)))
        if warned is None or key not in warned:
            if warned is not None:
                warned.add(key)
            warnings.warn_explicit(
                f"option(s) {sorted(dropped)} are not used by the chosen "
                f"strategy {strategy!r} and were dropped",
                UserWarning,
                filename=__file__,
                lineno=0,
                module=__name__,
                registry={},
            )
    return {k: v for k, v in options.items() if k in allowed}
