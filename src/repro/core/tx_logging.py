"""Undo logging and recovery utilities (Appendix D).

The paper eliminates logging wherever practical:

* **Re-do logging** is dropped entirely -- durability is out of scope
  ("applications may achieve durability with non-logging methods, such
  as replications on multiple machines").
* **Undo logging** is avoided for *two-phase* transactions: a read-only
  first phase that may abort, then a write phase that never aborts.
  :func:`validate_two_phase` checks a procedure instance against that
  contract (used at registration time in tests and by workload
  authors).
* For the remaining types, undo records are captured during execution
  (by the SIMT engine for TPL/K-SET, inline by the PART wrapper) and
  rolled back afterwards; :func:`rollback` replays a log against a
  store in reverse order, handling writes, buffered inserts, and
  buffered deletes.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from repro.errors import RecoveryError
from repro.gpu import ops as op_ir

#: One undo record: (table, column, row, old_value) for writes, or the
#: sentinel forms ("__insert__", table, provisional_row, None) and
#: ("__delete__", table, row, None) for buffered mutations.
UndoEntry = Tuple[str, str, int, Any]

INSERT_SENTINEL = "__insert__"
DELETE_SENTINEL = "__delete__"


def rollback(adapter, entries: Sequence[UndoEntry]) -> int:
    """Undo ``entries`` in reverse order against a StoreAdapter.

    Returns the number of records rolled back. Raises
    :class:`~repro.errors.RecoveryError` when an entry cannot be
    applied (a malformed log is a bug, not a recoverable condition).
    """
    count = 0
    for entry in reversed(entries):
        table, column, row, old = entry
        try:
            if table == INSERT_SENTINEL:
                adapter.cancel_insert(column, row)
            elif table == DELETE_SENTINEL:
                adapter.cancel_delete(column, row)
            else:
                adapter.write(table, column, row, old)
        except Exception as exc:
            raise RecoveryError(f"cannot roll back {entry!r}: {exc}") from exc
        count += 1
    return count


def validate_two_phase(stream: op_ir.OpStream, feed: Any = 0) -> bool:
    """Check that an op stream follows the two-phase contract.

    Drives the generator to completion, feeding ``feed`` for every
    value-producing op, and returns False if an ``Abort`` appears after
    any ``Write``/``InsertRow``/``DeleteRow``. Because the check
    consumes the stream, callers should build a throwaway instance.
    """
    wrote = False
    send: Any = None
    while True:
        try:
            op = stream.send(send)
        except StopIteration:
            return True
        kind = op.kind
        if kind in (op_ir.WRITE, op_ir.INSERT_ROW, op_ir.DELETE_ROW):
            wrote = True
        elif kind == op_ir.ABORT:
            return not wrote
        if kind in (op_ir.READ, op_ir.INDEX_PROBE, op_ir.ATOMIC_ADD,
                    op_ir.ATOMIC_CAS, op_ir.INSERT_ROW):
            send = feed
        else:
            send = None


def undo_bytes(entries: Iterable[UndoEntry]) -> int:
    """Device memory consumed by a log (16 B per record, Appendix D)."""
    return 16 * sum(1 for _ in entries)
