"""Undo logging and recovery utilities (Appendix D).

The paper eliminates logging wherever practical:

* **Re-do logging** is dropped entirely -- durability is out of scope
  ("applications may achieve durability with non-logging methods, such
  as replications on multiple machines").
* **Undo logging** is avoided for *two-phase* transactions: a read-only
  first phase that may abort, then a write phase that never aborts.
  :func:`validate_two_phase` checks a procedure instance against that
  contract (used at registration time in tests and by workload
  authors).
* For the remaining types, undo records are captured during execution
  (by the SIMT engine for TPL/K-SET, inline by the PART wrapper) and
  rolled back afterwards; :func:`rollback` replays a log against a
  store in reverse order, handling writes, buffered inserts, and
  buffered deletes.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from repro.errors import RecoveryError
from repro.gpu import ops as op_ir

#: One undo record: (table, column, row, old_value) for writes, or the
#: sentinel forms ("__insert__", table, provisional_row, None) and
#: ("__delete__", table, row, None) for buffered mutations.
UndoEntry = Tuple[str, str, int, Any]

INSERT_SENTINEL = "__insert__"
DELETE_SENTINEL = "__delete__"


def rollback(adapter, entries: Sequence[UndoEntry]) -> int:
    """Undo ``entries`` in reverse order against a StoreAdapter.

    Returns the number of records rolled back. Raises
    :class:`~repro.errors.RecoveryError` when an entry cannot be
    applied (a malformed log is a bug, not a recoverable condition).
    """
    count = 0
    for entry in reversed(entries):
        table, column, row, old = entry
        try:
            if table == INSERT_SENTINEL:
                adapter.cancel_insert(column, row)
            elif table == DELETE_SENTINEL:
                adapter.cancel_delete(column, row)
            else:
                adapter.write(table, column, row, old)
        except Exception as exc:
            raise RecoveryError(f"cannot roll back {entry!r}: {exc}") from exc
        count += 1
    return count


def validate_two_phase(stream: op_ir.OpStream, feed: Any = 0) -> bool:
    """Check that an op stream follows the two-phase contract.

    Drives the generator to completion, feeding ``feed`` for every
    value-producing op, and returns False if an ``Abort`` appears after
    any ``Write``/``InsertRow``/``DeleteRow``. Because the check
    consumes the stream, callers should build a throwaway instance.
    """
    wrote = False
    send: Any = None
    while True:
        try:
            op = stream.send(send)
        except StopIteration:
            return True
        kind = op.kind
        if kind in (op_ir.WRITE, op_ir.INSERT_ROW, op_ir.DELETE_ROW):
            wrote = True
        elif kind == op_ir.ABORT:
            return not wrote
        if kind in (op_ir.READ, op_ir.INDEX_PROBE, op_ir.ATOMIC_ADD,
                    op_ir.ATOMIC_CAS, op_ir.INSERT_ROW):
            send = feed
        else:
            send = None


def undo_bytes(entries: Iterable[UndoEntry]) -> int:
    """Device memory consumed by a log (16 B per record, Appendix D)."""
    return 16 * sum(1 for _ in entries)


def remap_handle_rows(
    entries: Sequence[UndoEntry],
    handle_row: "dict[int, int]",
    handle_base: int,
) -> List[UndoEntry]:
    """Rewrite handle-encoded rows in a vectorized-capture undo log.

    The vectorized backend journals before-images during the wave
    kernel, *before* the replay materialises staged inserts -- rows the
    wave itself inserted are therefore recorded under their encoded
    handle (``handle_base + handle``). Once the replay has assigned
    physical row ids (``handle -> row``), this rewrites those entries
    to the exact ids the interpreter would have logged. Entries naming
    real rows pass through untouched.
    """
    out: List[UndoEntry] = []
    for table, column, row, old in entries:
        if row >= handle_base:
            row = handle_row[row - handle_base]
        out.append((table, column, row, old))
    return out


# ---------------------------------------------------------------------------
# Redo logging (the durability layer's write-ahead records).
#
# The paper drops re-do logging on the single device ("applications may
# achieve durability with non-logging methods, such as replications on
# multiple machines"); the cluster runtime takes exactly that route --
# per-shard WALs shipped to replicas (repro.cluster.durability). A redo
# entry is one *physical* mutation in application order; replaying a
# shard's entries in order against a checkpoint of its partition is
# byte-identical to the original execution, because the simulator is
# deterministic and the entries capture the post-image of every store
# mutation (including abort rollbacks, which appear as ordinary writes
# and cancel records).
# ---------------------------------------------------------------------------

#: One redo record: (kind, table, column, row, payload). ``column`` is
#: empty and ``payload`` is the inserted row tuple for inserts; both
#: are empty/None for deletes and cancels.
RedoEntry = Tuple[str, str, str, int, Any]

REDO_WRITE = "write"
REDO_INSERT = "insert"
REDO_DELETE = "delete"
REDO_CANCEL_INSERT = "cancel-insert"
REDO_CANCEL_DELETE = "cancel-delete"


def apply_redo(adapter, entries: Sequence[RedoEntry]) -> int:
    """Apply redo ``entries`` in order against a StoreAdapter.

    Returns the number of entries applied. Raises
    :class:`~repro.errors.RecoveryError` when an entry cannot be
    applied, or when a replayed insert lands on a different physical
    row than it did originally (replay divergence -- the checkpoint
    and the log disagree).
    """
    count = 0
    for entry in entries:
        kind, table, column, row, payload = entry
        try:
            if kind == REDO_WRITE:
                adapter.write(table, column, row, payload)
            elif kind == REDO_INSERT:
                landed = adapter.insert(table, payload)
                if landed != row:
                    raise RecoveryError(
                        f"replayed insert into {table!r} landed on row "
                        f"{landed}, originally row {row}: checkpoint and "
                        "WAL disagree"
                    )
            elif kind == REDO_DELETE:
                adapter.delete(table, row)
            elif kind == REDO_CANCEL_INSERT:
                adapter.cancel_insert(table, row)
            elif kind == REDO_CANCEL_DELETE:
                adapter.cancel_delete(table, row)
            else:
                raise RecoveryError(f"unknown redo kind {kind!r}")
        except RecoveryError:
            raise
        except Exception as exc:
            raise RecoveryError(f"cannot redo {entry!r}: {exc}") from exc
        count += 1
    return count


def redo_bytes(entries: Iterable[RedoEntry]) -> int:
    """Wire size of a redo log: 16 B header per entry plus payload."""
    total = 0
    for kind, _table, _column, _row, payload in entries:
        total += 16
        if kind == REDO_WRITE:
            total += len(payload) if isinstance(payload, (str, bytes)) else 8
        elif kind == REDO_INSERT:
            for value in payload:
                total += (
                    len(value) if isinstance(value, (str, bytes)) else 8
                )
    return total
