"""Data-oriented k-set calculation (Section 4.2).

The paper computes k-set membership *without constructing the
T-dependency graph*, as a five-step pipeline of data-parallel
primitives over the basic operations, represented as (v, id) tuples:

1. sort by (v, id) -- group potentially conflicting ops by data item;
2. map -- find group boundaries;
3. per-group rank assignment: the first entry gets rank 0; entry *i*
   gets ``r+1`` if it is a write, ``r`` if both it and entry *i-1* are
   reads, ``r+1`` otherwise (``r`` = rank of entry *i-1*);
4. sort the (id, rank) output by id;
5. map -- group boundaries per transaction; the last (maximum) rank of
   a transaction is its depth, and the 0-set is the set of
   transactions with depth 0.

Entries here are *merged* per (item, transaction) with write dominating,
matching the paper's worked example (Figure 1(b), where T1's ``Ra Wa``
is one write entry in group ``a``).

The same rank values drive TPL's counter-lock keys (Section 5.1), and
the per-(item, rank) reader-run sizes initialise the lock table's
shared-run countdowns.

**Documented deviation** (see DESIGN.md): the per-group maximum rank is
a *lower bound* of the true T-dependency depth -- ranks do not
propagate across items (``T1:Wa; T2:Ra,Wb; T3:Rb`` gives T3 rank 1 but
TDG depth 2). The 0-set is nevertheless exact, so the iterative
:class:`IncrementalKSetExtractor` used by the K-SET strategy is
correct; tests cover both facts.

GPU costs of every step are charged through
:class:`~repro.gpu.primitives.PrimitiveLibrary` and reported in
``gen_seconds`` -- this is the "sort" share of the time breakdowns in
Figures 5 and 17.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.procedure import Access
from repro.errors import ExecutionError
from repro.gpu.primitives import PrimitiveLibrary


def merge_accesses(
    transactions: Iterable[Tuple[int, Sequence[Access]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten to merged (item, txn, write) arrays, write dominating."""
    items: List[int] = []
    txns: List[int] = []
    writes: List[bool] = []
    for txn_id, accesses in transactions:
        if len(accesses) == 1:
            # OLTP fast path: one basic operation needs no merge dict.
            acc = accesses[0]
            items.append(acc.item)
            txns.append(txn_id)
            writes.append(acc.write)
            continue
        merged: Dict[int, bool] = {}
        for acc in accesses:
            merged[acc.item] = merged.get(acc.item, False) or acc.write
        for item, wrote in merged.items():
            items.append(item)
            txns.append(txn_id)
            writes.append(wrote)
    return (
        np.asarray(items, dtype=np.int64),
        np.asarray(txns, dtype=np.int64),
        np.asarray(writes, dtype=bool),
    )


@dataclass
class RankResult:
    """Output of the five-step pipeline."""

    #: Unique transaction ids, ascending.
    txn_ids: np.ndarray
    #: Max rank (pipeline depth) per transaction, aligned to txn_ids.
    depths: np.ndarray
    #: Per merged entry, sorted by (item, txn): the detail TPL needs.
    entry_item: np.ndarray
    entry_txn: np.ndarray
    entry_write: np.ndarray
    entry_rank: np.ndarray
    #: Simulated GPU time of the pipeline (bulk-generation cost).
    gen_seconds: float

    def zero_set(self) -> List[int]:
        return [int(t) for t in self.txn_ids[self.depths == 0]]

    def depth_of(self, txn_id: int) -> int:
        pos = np.searchsorted(self.txn_ids, txn_id)
        if pos >= len(self.txn_ids) or self.txn_ids[pos] != txn_id:
            raise ExecutionError(f"unknown transaction {txn_id} in ranks")
        return int(self.depths[pos])

    def max_depth(self) -> int:
        return int(self.depths.max()) if len(self.depths) else 0

    def lock_keys(self) -> Dict[Tuple[int, int], Tuple[int, bool]]:
        """(item, txn) -> (counter key, shared?) for TPL (Section 5.1)."""
        out: Dict[Tuple[int, int], Tuple[int, bool]] = {}
        for item, txn, write, rank in zip(
            self.entry_item, self.entry_txn, self.entry_write, self.entry_rank
        ):
            out[(int(item), int(txn))] = (int(rank), not bool(write))
        return out

    def reader_run_sizes(self) -> Dict[Tuple[int, int], int]:
        """(item, rank) -> number of readers sharing that rank level."""
        out: Dict[Tuple[int, int], int] = {}
        for item, write, rank in zip(
            self.entry_item, self.entry_write, self.entry_rank
        ):
            if not write:
                key = (int(item), int(rank))
                out[key] = out.get(key, 0) + 1
        return out


def compute_ranks(
    transactions: Sequence[Tuple[int, Sequence[Access]]],
    lib: PrimitiveLibrary | None = None,
) -> RankResult:
    """Run the five-step pipeline; see module docstring."""
    lib = lib or PrimitiveLibrary()
    item, txn, write = merge_accesses(transactions)
    n = len(item)
    gen_seconds = 0.0
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return RankResult(
            txn_ids=empty,
            depths=empty.copy(),
            entry_item=empty.copy(),
            entry_txn=empty.copy(),
            entry_write=np.zeros(0, dtype=bool),
            entry_rank=empty.copy(),
            gen_seconds=0.0,
        )

    # Step 1: sort by (item, txn).
    order, cost = lib.sort_by_composite(item, txn)
    gen_seconds += cost
    item_s, txn_s, write_s = item[order], txn[order], write[order]

    # Step 2: group boundaries (map primitive).
    starts, cost = lib.group_boundaries(item_s)
    gen_seconds += cost

    # Step 3: per-group ranks -- one thread per group in the paper;
    # vectorised here, charged as a map.
    incr = np.zeros(n, dtype=np.int64)
    if n > 1:
        incr[1:] = (write_s[1:] | write_s[:-1]).astype(np.int64)
    is_start = np.zeros(n, dtype=bool)
    is_start[starts] = True
    incr[is_start] = 0
    cumulative = np.cumsum(incr)
    group_of = np.cumsum(is_start) - 1
    base = cumulative[starts]
    rank = cumulative - base[group_of]
    gen_seconds += lib.map_cost(n)

    # Step 4: sort (id, rank) by id.
    order2, cost = lib.sort_by_composite(txn_s, rank)
    gen_seconds += cost
    txn_2, rank_2 = txn_s[order2], rank[order2]

    # Step 5: boundaries per transaction; last element = max rank.
    t_starts, cost = lib.group_boundaries(txn_2)
    gen_seconds += cost
    ends = np.append(t_starts[1:], n) - 1
    txn_ids = txn_2[t_starts]
    depths = rank_2[ends]

    return RankResult(
        txn_ids=txn_ids,
        depths=depths,
        entry_item=item_s,
        entry_txn=txn_s,
        entry_write=write_s,
        entry_rank=rank,
        gen_seconds=gen_seconds,
    )


class IncrementalKSetExtractor:
    """Incremental 0-set extraction (Section 5.3).

    "When new transactions are added to the pool, their basic
    operations are merged into the sorted array. Next, we can select
    the bulk for the transactions with the key value of zero" -- i.e.
    repeatedly peel the current 0-set without recomputing all k-sets.

    A transaction is in the current 0-set iff, in every item group it
    touches, its entry either comes first or is a read preceded only by
    reads.

    Internally the merged entries live as columnar ``(item, txn,
    write)`` arrays sorted by ``(item, txn)`` -- literally the paper's
    "sorted array" -- so each round's scan is whole-array numpy work
    instead of per-entry Python; peeled transactions are removed with
    one boolean mask, which preserves the sort. ``add`` only appends;
    the sort is (re)established lazily at the next scan.
    """

    def __init__(self, lib: PrimitiveLibrary | None = None) -> None:
        self._lib = lib or PrimitiveLibrary()
        #: Merged entries, sorted by (item, txn) once ``_merged`` ran.
        self._items = np.zeros(0, dtype=np.int64)
        self._txns = np.zeros(0, dtype=np.int64)
        self._writes = np.zeros(0, dtype=bool)
        #: Entries appended since the last merge (unsorted).
        self._new_items: List[int] = []
        self._new_txns: List[int] = []
        self._new_writes: List[bool] = []
        #: Item -> dense id (items need only be hashable; dense ids
        #: keep the sorted array numeric).
        self._item_ids: Dict[Any, int] = {}
        self._txn_ids: set = set()
        self._last_ts: int = -1
        #: Raw (pre-merge) basic-operation count, for callers charging
        #: map passes over the unmerged ops.
        self.raw_ops = 0
        self.gen_seconds = 0.0

    def __len__(self) -> int:
        return len(self._txn_ids)

    @property
    def pending(self) -> List[int]:
        return sorted(self._txn_ids)

    def add(self, txn_id: int, accesses: Sequence[Access]) -> None:
        """Merge one transaction's ops into the sorted groups."""
        if txn_id <= self._last_ts:
            raise ExecutionError(
                f"transactions must be added in timestamp order "
                f"({txn_id} after {self._last_ts})"
            )
        self._last_ts = txn_id
        self._txn_ids.add(txn_id)
        self.raw_ops += len(accesses)
        item_ids = self._item_ids
        if len(accesses) == 1:
            acc = accesses[0]
            dense = item_ids.setdefault(acc.item, len(item_ids))
            self._new_items.append(dense)
            self._new_txns.append(txn_id)
            self._new_writes.append(acc.write)
        else:
            merged: Dict[Any, bool] = {}
            for acc in accesses:
                merged[acc.item] = merged.get(acc.item, False) or acc.write
            for item, wrote in merged.items():
                self._new_items.append(item_ids.setdefault(item, len(item_ids)))
                self._new_txns.append(txn_id)
                self._new_writes.append(wrote)
        # The merge of a whole batch into the sorted array is one GPU
        # pass charged by the caller (KsetExecutor) -- charging per
        # transaction would bill one kernel launch per add.

    def _merged(self) -> None:
        if not self._new_items:
            return
        items = np.concatenate(
            [self._items, np.asarray(self._new_items, dtype=np.int64)]
        )
        txns = np.concatenate(
            [self._txns, np.asarray(self._new_txns, dtype=np.int64)]
        )
        writes = np.concatenate(
            [self._writes, np.asarray(self._new_writes, dtype=bool)]
        )
        order = np.lexsort((txns, items))
        self._items, self._txns, self._writes = (
            items[order], txns[order], writes[order]
        )
        self._new_items, self._new_txns, self._new_writes = [], [], []

    @property
    def merged_entry_count(self) -> int:
        """Number of merged (item, txn) entries in the sorted array."""
        self._merged()
        return len(self._items)

    def zero_set(self) -> List[int]:
        """Transactions with no preceding conflicting transaction."""
        self._merged()
        n = len(self._items)
        blocked: set = set()
        if n:
            first = np.empty(n, dtype=bool)
            first[0] = True
            np.not_equal(self._items[1:], self._items[:-1], out=first[1:])
            writes = self._writes.astype(np.int64)
            excl = np.cumsum(writes) - writes
            group_first = np.maximum.accumulate(
                np.where(first, np.arange(n), 0)
            )
            writes_before = excl - excl[group_first]
            blocked_mask = ~first & ((writes_before > 0) | self._writes)
            blocked = set(np.unique(self._txns[blocked_mask]).tolist())
        result = sorted(self._txn_ids - blocked)
        self.gen_seconds += self._lib.map_cost(max(1, n))
        return result

    def pop_zero_set(self) -> List[int]:
        """Remove and return the current 0-set."""
        zero = self.zero_set()
        if not zero:
            return zero
        keep = ~np.isin(self._txns, np.asarray(zero, dtype=np.int64))
        self._items = self._items[keep]
        self._txns = self._txns[keep]
        self._writes = self._writes[keep]
        self._txn_ids -= set(zero)
        return zero
