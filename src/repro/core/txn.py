"""Transactions, the transaction pool, and the result pool.

A transaction in GPUTx is an *instance of a registered transaction
type* with parameter values (Section 3.1): its signature is
``<id, type, parameter value list>`` where the auto-increment ``id``
doubles as the submission timestamp (Section 3.2). Users submit
signatures into a :class:`TransactionPool`; the engine periodically
generates a bulk from the pool; results land in a
:class:`ResultPool` and are returned to users.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import ProcedureError


@dataclass(frozen=True)
class Transaction:
    """A transaction signature: ``<id, type, parameter values>``.

    ``txn_id`` is unique, auto-increment, and *is* the timestamp used
    by the correctness definition (Definition 1) and the T-dependency
    graph. ``submit_time`` optionally carries the wall-clock submission
    instant for response-time experiments (Figures 9, 15).
    """

    txn_id: int
    type_name: str
    params: Tuple[Any, ...]
    submit_time: float = 0.0

    @property
    def timestamp(self) -> int:
        return self.txn_id

    def signature_bytes(self) -> int:
        """Approximate wire size of the signature (id + type + params)."""
        size = 8 + 4
        for p in self.params:
            size += len(p) if isinstance(p, (str, bytes)) else 8
        return size


@dataclass(frozen=True)
class TxnResult:
    """Outcome of one executed transaction."""

    txn_id: int
    type_name: str
    committed: bool
    abort_reason: str = ""
    value: Any = None

    def result_bytes(self) -> int:
        """Approximate size of the result copied back to the host."""
        size = 8 + 1
        value = self.value
        if isinstance(value, (list, tuple)):
            size += 8 * len(value)
        elif value is not None:
            size += 8
        return size


class TransactionPool:
    """FIFO pool of submitted-but-unexecuted transaction signatures.

    Ids are handed out in submission order, so iterating the pool is
    iterating in timestamp order.
    """

    def __init__(self) -> None:
        self._pending: List[Transaction] = []
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._pending)

    def submit(
        self,
        type_name: str,
        params: Iterable[Any],
        submit_time: float = 0.0,
    ) -> Transaction:
        """Register one signature; returns the stamped transaction."""
        txn = Transaction(
            txn_id=self._next_id,
            type_name=type_name,
            params=tuple(params),
            submit_time=submit_time,
        )
        self._next_id += 1
        self._pending.append(txn)
        return txn

    def submit_batch(
        self,
        items: Iterable[Tuple[str, tuple, float]],
    ) -> List[Transaction]:
        """Stamp a batch of ``(type, params, submit_time)`` triples in
        order -- one append and one id-range grab instead of per-item
        calls (the serving front half admits arrival slices this way)."""
        base = self._next_id
        txns = [
            Transaction(
                txn_id=base + i,
                type_name=type_name,
                params=tuple(params),
                submit_time=submit_time,
            )
            for i, (type_name, params, submit_time) in enumerate(items)
        ]
        self._next_id = base + len(txns)
        self._pending.extend(txns)
        return txns

    def submit_specs(
        self,
        specs: Iterable[
            "Union[Transaction, Tuple[str, tuple], Tuple[str, tuple, float]]"
        ],
    ) -> int:
        """Admit a mixed stream of pre-built transactions, ``(type,
        params)`` pairs, or ``(type, params, submit_time)`` triples;
        returns how many were submitted."""
        count = 0
        for item in specs:
            if isinstance(item, Transaction):
                self.submit_transaction(item)
            elif len(item) == 3:
                self.submit(item[0], item[1], item[2])
            else:
                self.submit(item[0], item[1])
            count += 1
        return count

    def submit_transaction(self, txn: Transaction) -> Transaction:
        """Admit an externally built transaction (id must be fresh)."""
        if txn.txn_id < self._next_id:
            raise ProcedureError(
                f"transaction id {txn.txn_id} is not monotonically increasing"
            )
        self._next_id = txn.txn_id + 1
        self._pending.append(txn)
        return txn

    def take(self, n: Optional[int] = None) -> List[Transaction]:
        """Remove and return up to ``n`` oldest transactions (all if None)."""
        if n is None or n >= len(self._pending):
            out, self._pending = self._pending, []
            return out
        out = self._pending[:n]
        del self._pending[:n]
        return out

    def take_matching(self, txn_ids: Iterable[int]) -> List[Transaction]:
        """Remove and return the pool entries with the given ids."""
        wanted = set(txn_ids)
        taken = [t for t in self._pending if t.txn_id in wanted]
        if taken:
            self._pending = [t for t in self._pending if t.txn_id not in wanted]
        return taken

    def peek(self, n: Optional[int] = None) -> List[Transaction]:
        """Oldest ``n`` transactions without removing them."""
        if n is None:
            return list(self._pending)
        return self._pending[:n]

    def requeue(self, transactions: Iterable[Transaction]) -> None:
        """Return deferred transactions to the pool.

        Used by the streaming K-SET mode (Section 5.3) and the
        cluster's halted-bulk failover path: transactions whose turn
        has not come keep their original ids/timestamps and re-enter
        ahead of younger work. The pool is re-sorted by *timestamp*
        (:attr:`Transaction.timestamp`, the Definition-1 ordering
        key) so iteration order remains timestamp order -- never by
        wall-clock ``submit_time``, which arrives in any order.
        """
        self._pending.extend(transactions)
        self._pending.sort(key=lambda t: t.timestamp)


class ResultPool:
    """Collected outcomes, keyed by transaction id."""

    def __init__(self) -> None:
        self._results: Dict[int, TxnResult] = {}

    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, txn_id: int) -> bool:
        return txn_id in self._results

    def record(self, result: TxnResult) -> None:
        if result.txn_id in self._results:
            raise ProcedureError(
                f"duplicate result for transaction {result.txn_id}"
            )
        self._results[result.txn_id] = result

    def record_many(self, results: Iterable[TxnResult]) -> None:
        for result in results:
            self.record(result)

    def get(self, txn_id: int) -> Optional[TxnResult]:
        return self._results.get(txn_id)

    @property
    def committed_count(self) -> int:
        return sum(1 for r in self._results.values() if r.committed)

    @property
    def aborted_count(self) -> int:
        return sum(1 for r in self._results.values() if not r.committed)

    def output_bytes(self) -> int:
        """Total result bytes copied device -> host."""
        return sum(r.result_bytes() for r in self._results.values())

    def clear(self) -> None:
        self._results.clear()
