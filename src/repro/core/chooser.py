"""Rule-based execution strategy choice -- Algorithm 1 (Appendix D).

The three strategies trade off differently: K-SET has little runtime
overhead but needs a wide 0-set to fill the GPU; PART needs
single-partition transactions and suffers on deep graphs less than TPL
does on contended locks; TPL is fully general but pays spin-lock
overhead proportional to contention.

Algorithm 1 verbatim:

1. obtain ``w0`` (size of the 0-set);
2. if ``w0 >= w0_bar``: return **K-SET**;
3. else, with ``c`` cross-partition transactions and depth ``d``:
   if ``c <= c_bar`` or ``d >= d_bar``: return **PART**;
4. else return **TPL**.

The ``w0_bar`` default follows the paper's guidance that "executing a
k-set of smaller than M transactions is likely to underutilize the GPU
computation resource (M is the number of processors on the GPU)", with
a multiplier for latency hiding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.profiler import BulkProfile
from repro.gpu.spec import C1060, GPUSpec

STRATEGY_TPL = "tpl"
STRATEGY_PART = "part"
STRATEGY_KSET = "kset"


@dataclass(frozen=True)
class ChooserThresholds:
    """Tunable thresholds of Algorithm 1."""

    #: Minimum 0-set width for K-SET to fully utilise the GPU.
    w0_bar: int = C1060.total_cores * 4
    #: Maximum tolerable cross-partition transactions for PART.
    c_bar: int = 0
    #: Depth beyond which lock contention makes TPL hopeless.
    d_bar: int = 64

    @classmethod
    def for_spec(cls, spec: GPUSpec, occupancy: int = 4) -> "ChooserThresholds":
        return cls(w0_bar=spec.total_cores * occupancy)


def choose_strategy(
    profile: BulkProfile,
    thresholds: ChooserThresholds | None = None,
) -> str:
    """Algorithm 1: pick "kset", "part", or "tpl" for this bulk."""
    t = thresholds or ChooserThresholds()
    if profile.w0 >= t.w0_bar:
        return STRATEGY_KSET
    if profile.cross_partition <= t.c_bar or profile.depth >= t.d_bar:
        return STRATEGY_PART
    return STRATEGY_TPL


@dataclass
class _StrategyModel:
    """Decaying moments of (bulk size, bulk seconds) observations."""

    n: int = 0
    size: float = 0.0
    seconds: float = 0.0
    size_sq: float = 0.0
    size_seconds: float = 0.0

    def observe(self, size: int, seconds: float, alpha: float) -> None:
        if self.n == 0:
            self.size = float(size)
            self.seconds = seconds
            self.size_sq = float(size) ** 2
            self.size_seconds = float(size) * seconds
        else:
            keep = 1.0 - alpha
            self.size = keep * self.size + alpha * size
            self.seconds = keep * self.seconds + alpha * seconds
            self.size_sq = keep * self.size_sq + alpha * size * size
            self.size_seconds = keep * self.size_seconds + alpha * size * seconds
        self.n += 1

    def fit(self) -> "tuple[float, float]":
        """Least-squares (fixed_s, per_txn_s) over the decayed moments.

        With effectively one observed size the variance degenerates;
        fall back to a through-the-origin rate (no fixed cost), which
        under-estimates small bulks but never divides by noise.
        """
        var = self.size_sq - self.size * self.size
        if var > max(1.0, 0.01 * self.size * self.size):
            slope = (self.size_seconds - self.size * self.seconds) / var
            slope = max(slope, 0.0)
            fixed = max(self.seconds - slope * self.size, 0.0)
            return fixed, slope
        if self.size > 0:
            return 0.0, self.seconds / self.size
        return 0.0, 0.0


@dataclass
class StrategyFeedback:
    """Online per-strategy service-time model (closes the serve loop).

    Algorithm 1 predicts *which* strategy wins; it says nothing about
    *how long* the bulk will take, which is what an SLO-driven bulk
    former needs. This accumulator learns an affine model
    ``seconds(bulk) ~= fixed_s + per_txn_s * size`` per strategy from
    the engine's observed wave times (exponentially decayed, so the
    model tracks workload drift), and answers the former's question:
    the largest bulk a strategy can execute within a time budget.
    """

    alpha: float = 0.3
    _models: Dict[str, _StrategyModel] = field(default_factory=dict)

    @staticmethod
    def _key(strategy: str, backend: Optional[str]) -> str:
        return strategy if backend is None else f"{strategy}@{backend}"

    def observe(
        self,
        strategy: str,
        size: int,
        seconds: float,
        backend: Optional[str] = None,
    ) -> None:
        """Record one executed bulk's (size, service seconds).

        ``backend`` adds a second, backend-keyed observation (e.g.
        ``"kset@vectorized"``): the simulated service time is
        backend-independent, but wall-clock cost models -- the
        engine's ``wall_feedback`` -- are only meaningful per backend.
        The plain per-strategy curve is always updated, so existing
        consumers see identical behaviour.
        """
        if size <= 0 or seconds < 0.0:
            return
        model = self._models.setdefault(strategy, _StrategyModel())
        model.observe(size, seconds, self.alpha)
        if backend is not None:
            keyed = self._models.setdefault(
                self._key(strategy, backend), _StrategyModel()
            )
            keyed.observe(size, seconds, self.alpha)

    def observations(
        self, strategy: str, backend: Optional[str] = None
    ) -> int:
        model = self._models.get(self._key(strategy, backend))
        return model.n if model else 0

    def predict_seconds(
        self, strategy: str, size: int, backend: Optional[str] = None
    ) -> Optional[float]:
        """Expected service seconds of a ``size``-transaction bulk."""
        model = self._models.get(self._key(strategy, backend))
        if model is None or model.n == 0:
            return None
        fixed, per_txn = model.fit()
        return fixed + per_txn * size

    def size_for_budget(
        self, strategy: str, budget_s: float, lo: int, hi: int
    ) -> Optional[int]:
        """Largest bulk size in ``[lo, hi]`` predicted to fit the budget.

        Returns ``lo`` when even the smallest bulk overshoots (the
        former still has to make progress), and ``None`` when no
        observation of ``strategy`` exists yet.
        """
        model = self._models.get(strategy)
        if model is None or model.n == 0:
            return None
        fixed, per_txn = model.fit()
        if per_txn <= 0.0:
            return hi
        size = int((budget_s - fixed) / per_txn)
        return max(lo, min(hi, size))
