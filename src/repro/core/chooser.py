"""Rule-based execution strategy choice -- Algorithm 1 (Appendix D).

The three strategies trade off differently: K-SET has little runtime
overhead but needs a wide 0-set to fill the GPU; PART needs
single-partition transactions and suffers on deep graphs less than TPL
does on contended locks; TPL is fully general but pays spin-lock
overhead proportional to contention.

Algorithm 1 verbatim:

1. obtain ``w0`` (size of the 0-set);
2. if ``w0 >= w0_bar``: return **K-SET**;
3. else, with ``c`` cross-partition transactions and depth ``d``:
   if ``c <= c_bar`` or ``d >= d_bar``: return **PART**;
4. else return **TPL**.

The ``w0_bar`` default follows the paper's guidance that "executing a
k-set of smaller than M transactions is likely to underutilize the GPU
computation resource (M is the number of processors on the GPU)", with
a multiplier for latency hiding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import BulkProfile
from repro.gpu.spec import C1060, GPUSpec

STRATEGY_TPL = "tpl"
STRATEGY_PART = "part"
STRATEGY_KSET = "kset"


@dataclass(frozen=True)
class ChooserThresholds:
    """Tunable thresholds of Algorithm 1."""

    #: Minimum 0-set width for K-SET to fully utilise the GPU.
    w0_bar: int = C1060.total_cores * 4
    #: Maximum tolerable cross-partition transactions for PART.
    c_bar: int = 0
    #: Depth beyond which lock contention makes TPL hopeless.
    d_bar: int = 64

    @classmethod
    def for_spec(cls, spec: GPUSpec, occupancy: int = 4) -> "ChooserThresholds":
        return cls(w0_bar=spec.total_cores * occupancy)


def choose_strategy(
    profile: BulkProfile,
    thresholds: ChooserThresholds | None = None,
) -> str:
    """Algorithm 1: pick "kset", "part", or "tpl" for this bulk."""
    t = thresholds or ChooserThresholds()
    if profile.w0 >= t.w0_bar:
        return STRATEGY_KSET
    if profile.cross_partition <= t.c_bar or profile.depth >= t.d_bar:
        return STRATEGY_PART
    return STRATEGY_TPL
