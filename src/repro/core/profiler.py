"""Bulk profiler: the structural indicators of Appendix D.

Before choosing an execution strategy, GPUTx profiles the candidate
bulk's T-dependency structure:

* ``d`` -- the depth of the T-dependency graph (critical-path length of
  the bulk execution);
* ``w0`` -- the size of the 0-set (available parallelism: K-SET can
  launch this many lock-free threads immediately);
* ``c`` -- the number of cross-partition transactions (vertices with
  more than one predecessor / transactions PART cannot place).

``d`` and ``w0`` come from the sort-based rank pipeline (Section 4.2)
so profiling costs one pipeline run, charged in ``gen_seconds``. By
default ``d`` is the pipeline's max rank -- a fast lower bound of the
exact depth (see the documented deviation in DESIGN.md); pass
``exact_depth=True`` to compute the true longest path from the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.kset import compute_ranks
from repro.core.procedure import ProcedureRegistry
from repro.core.tdg import TDependencyGraph
from repro.core.txn import Transaction
from repro.gpu.primitives import PrimitiveLibrary


@dataclass(frozen=True)
class BulkProfile:
    """Structural summary of one candidate bulk."""

    size: int
    w0: int
    depth: int
    cross_partition: int
    gen_seconds: float

    @property
    def parallel_fraction(self) -> float:
        """Share of the bulk immediately executable without locks."""
        return self.w0 / self.size if self.size else 0.0

    def predicted_strategy(self, thresholds=None) -> str:
        """The strategy Algorithm 1 would choose for this profile.

        Lets callers that profile *candidate* bulks (the online bulk
        former sizing the next cut) consult the chooser without
        constructing an engine. Imported lazily: the chooser module
        depends on this one.
        """
        from repro.core.chooser import choose_strategy

        return choose_strategy(self, thresholds)


class BulkProfiler:
    """Computes :class:`BulkProfile` for candidate bulks."""

    def __init__(
        self,
        registry: ProcedureRegistry,
        primitives: Optional[PrimitiveLibrary] = None,
    ) -> None:
        self.registry = registry
        self.primitives = primitives or PrimitiveLibrary()

    def profile(
        self,
        transactions: Sequence[Transaction],
        exact_depth: bool = False,
    ) -> BulkProfile:
        if not transactions:
            return BulkProfile(0, 0, 0, 0, 0.0)
        access_lists = [
            (t.txn_id, self.registry.get(t.type_name).accesses(t.params))
            for t in transactions
        ]
        ranks = compute_ranks(access_lists, self.primitives)
        if exact_depth:
            depth = TDependencyGraph.build(access_lists).depth()
        else:
            depth = ranks.max_depth()
        cross = 0
        for txn in transactions:
            txn_type = self.registry.get(txn.type_name)
            if txn_type.partition_of(txn.params) is None:
                cross += 1
        return BulkProfile(
            size=len(transactions),
            w0=len(ranks.zero_set()),
            depth=depth,
            cross_partition=cross,
            gen_seconds=ranks.gen_seconds,
        )
