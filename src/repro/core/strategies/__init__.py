"""Bulk execution strategies: TPL, PART, K-SET, ad-hoc, relaxed."""

from repro.core.strategies.adhoc import AdhocExecutor
from repro.core.strategies.kset_exec import KsetExecutor
from repro.core.strategies.part import PartExecutor
from repro.core.strategies.relaxed import (
    RelaxedKsetExecutor,
    RelaxedPartExecutor,
    RelaxedTplExecutor,
)
from repro.core.strategies.tpl import TplExecutor

__all__ = [
    "AdhocExecutor",
    "KsetExecutor",
    "PartExecutor",
    "RelaxedKsetExecutor",
    "RelaxedPartExecutor",
    "RelaxedTplExecutor",
    "TplExecutor",
]
