"""TPL: two-phase locking bulk execution (Section 5.1, Appendix C).

Locks are counter-based spin locks implemented with GPU atomics
(Figure 11). A transaction's key for each data item is its *rank* in
that item's group from the k-set pipeline (Section 4.2): a thread
spins until the item's counter equals its key, which

* enforces timestamp order among conflicting transactions (fixing the
  non-determinism of the basic 0/1 lock), and
* rules out deadlock -- a thread only ever waits for strictly
  smaller-timestamp transactions, so the wait-for relation is acyclic.

Consecutive readers of an item share a rank; they pass the gate
concurrently and the last one to finish advances the counter (the
lock table's reader-run countdown).

Following the two-phase protocol, a transaction acquires the locks of
all its data items up front (growing phase) and releases them all
after its last operation (shrinking phase).

Abort handling (Appendix D): with TPL, "data operations from some
conflicting transactions can be executed concurrently", so when a
non-two-phase transaction aborts after writing, its successors in the
T-dependency sub-DAG may have read dirty state. Recovery marks the
aborted transaction, rolls it back, and also rolls back (and marks as
cascaded aborts) every executed transaction in the sub-DAG rooted at
it. Two-phase transactions abort before writing and cascade nothing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.executor import (
    PHASE_EXECUTION,
    PHASE_GENERATION,
    PHASE_TRANSFER_IN,
    PHASE_TRANSFER_OUT,
    ExecutionResult,
    StrategyExecutor,
)
from repro.core.kset import compute_ranks
from repro.core.procedure import Access
from repro.core.tdg import TDependencyGraph
from repro.core.txn import Transaction, TxnResult
from repro.gpu import ops as op_ir
from repro.gpu.atomics import LockTable
from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.simt import ThreadTask


class TplExecutor(StrategyExecutor):
    """Two-phase locking with deterministic counter locks."""

    name = "tpl"
    #: TPL routes through the execution-backend registry: counter-lock
    #: pass rounds are a deterministic function of the release
    #: schedule, which the vectorized backend derives in closed form
    #: (repro.core.backends.lockstep) -- spin iterations, lock-word
    #: atomics, and reader-run countdowns included, byte-identical to
    #: the interpreter.
    uses_backend = True

    def __init__(self, *args, grouping_passes: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.grouping_passes = grouping_passes

    def execute(self, transactions: Sequence[Transaction]) -> ExecutionResult:
        breakdown = TimeBreakdown()
        if not transactions:
            return ExecutionResult(self.name, [], breakdown)
        breakdown.add(
            PHASE_TRANSFER_IN, self.input_transfer_seconds(transactions)
        )

        # ---- bulk generation: ranks -> lock keys ----------------------
        access_lists = [
            (t.txn_id, self.registry.get(t.type_name).accesses(t.params))
            for t in transactions
        ]
        ranks = compute_ranks(access_lists, self.primitives)
        breakdown.add(PHASE_GENERATION, ranks.gen_seconds)

        # Dense lock ids for the touched items.
        items = sorted({int(i) for i in ranks.entry_item})
        lock_of: Dict[int, int] = {item: i for i, item in enumerate(items)}
        locks = LockTable(len(items))
        for (item, rank), size in ranks.reader_run_sizes().items():
            locks.set_run_size(lock_of[item], rank, size)
        keys = ranks.lock_keys()

        # Optional grouping by type to cut branch divergence (App. D).
        ordered = list(transactions)
        if self.grouping_passes > 0:
            ordered, group_cost = self._group_by_type(ordered)
            breakdown.add(PHASE_GENERATION, group_cost)

        # ---- kernel ----------------------------------------------------
        access_map = {txn_id: accesses for txn_id, accesses in access_lists}
        plans = [
            self._lock_plan(txn, access_map[txn.txn_id], lock_of, keys)
            for txn in ordered
        ]
        report = self.backend.launch_locked(self, ordered, plans, locks)
        breakdown.add(PHASE_EXECUTION, report.seconds)

        # ---- recovery (aborts + TPL cascade) ---------------------------
        results, cascaded = self._recover(transactions, access_lists, report)
        breakdown.add(PHASE_TRANSFER_OUT, self.output_transfer_seconds(results))
        return ExecutionResult(
            self.name,
            results,
            breakdown,
            kernel_reports=[report],
            cascaded_aborts=cascaded,
        )

    # ------------------------------------------------------------------
    def _group_by_type(
        self, transactions: List[Transaction]
    ) -> Tuple[List[Transaction], float]:
        import numpy as np

        type_ids = np.asarray(
            [self.registry.type_id(t.type_name) for t in transactions],
            dtype=np.int64,
        )
        n_types = max(1, len(self.registry))
        key_bits = max(1, (n_types - 1).bit_length())
        order, cost = self.primitives.radix_partition(
            type_ids, self.grouping_passes, key_bits=key_bits
        )
        return [transactions[i] for i in order], cost

    @staticmethod
    def _lock_plan(
        txn: Transaction,
        accesses: Sequence[Access],
        lock_of: Dict[int, int],
        keys: Dict[Tuple[int, int], Tuple[int, bool]],
    ) -> List[Tuple[int, int, bool]]:
        """The transaction's ``(lock, key, shared)`` plan, merged item
        order -- the order both locking phases walk."""
        merged: Dict[int, bool] = {}
        for acc in accesses:
            merged[acc.item] = merged.get(acc.item, False) or acc.write
        plan = []
        for item in sorted(merged):
            key, shared = keys[(item, txn.txn_id)]
            plan.append((lock_of[item], key, shared))
        return plan

    def locked_task(
        self, txn: Transaction, plan: Sequence[Tuple[int, int, bool]]
    ) -> ThreadTask:
        """Wrap the stored procedure with the two locking phases."""
        inner = self.registry.build_stream(txn.type_name, txn.params)

        def stream():
            for lock_id, key, shared in plan:
                yield op_ir.LockAcquire(lock_id, key=key, shared=shared)
            result = yield from inner
            for lock_id, _key, _shared in plan:
                yield op_ir.LockRelease(lock_id)
            return result

        return ThreadTask(
            txn_id=txn.txn_id,
            type_id=self.registry.type_id(txn.type_name),
            body=stream(),
            capture_undo=self._needs_undo(txn),
        )

    def _recover(self, transactions, access_lists, report):
        """Roll back aborted transactions, cascading through the sub-DAG."""
        aborted_ids = {
            o.txn_id for o in report.outcomes if not o.committed
        }
        cascaded: Set[int] = set()
        if aborted_ids:
            # Only non-two-phase aborters can have dirtied state.
            dirty_roots = {
                o.txn_id
                for o in report.outcomes
                if not o.committed and o.undo
            }
            if dirty_roots:
                graph = TDependencyGraph.build(access_lists)
                for root in sorted(dirty_roots):
                    cascaded |= graph.sub_dag_from(root)
                cascaded -= aborted_ids
        outcome_by_id = {o.txn_id: o for o in report.outcomes}
        # Roll back in reverse timestamp order so earlier states win.
        for txn_id in sorted(aborted_ids | cascaded, reverse=True):
            self.rollback_outcome(outcome_by_id[txn_id])

        results: List[TxnResult] = []
        for txn in transactions:
            outcome = outcome_by_id[txn.txn_id]
            if txn.txn_id in cascaded:
                results.append(
                    TxnResult(
                        txn_id=txn.txn_id,
                        type_name=txn.type_name,
                        committed=False,
                        abort_reason="cascaded-rollback",
                    )
                )
            else:
                results.append(
                    TxnResult(
                        txn_id=txn.txn_id,
                        type_name=txn.type_name,
                        committed=outcome.committed,
                        abort_reason=outcome.abort_reason,
                        value=outcome.result,
                    )
                )
        self.adapter.apply_batch()
        return results, sorted(cascaded)
