"""Ad-hoc execution baseline: one transaction at a time (Section 6.3).

"We simulate the ad-hoc transaction executions on the GPU by evaluating
the transaction sequentially using one GPU core." Against this baseline
the bulk execution model achieves its 16-146x improvement. The single
core loses coalescing and latency hiding, which the serial cost model
reflects. With ``per_task_launch_overhead=True`` every transaction
additionally pays a kernel launch (true ad-hoc dispatch, an upper bound
on the ad-hoc penalty); the paper's baseline is the plain sequential
single-core run, the default here.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.executor import (
    PHASE_EXECUTION,
    PHASE_TRANSFER_IN,
    PHASE_TRANSFER_OUT,
    ExecutionResult,
    StrategyExecutor,
)
from repro.core.txn import Transaction
from repro.gpu.costmodel import TimeBreakdown


class AdhocExecutor(StrategyExecutor):
    """Sequential single-core GPU execution, in timestamp order."""

    name = "adhoc"

    def __init__(self, *args, per_task_launch_overhead: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.per_task_launch_overhead = per_task_launch_overhead

    def execute(self, transactions: Sequence[Transaction]) -> ExecutionResult:
        breakdown = TimeBreakdown()
        if not transactions:
            return ExecutionResult(self.name, [], breakdown)
        breakdown.add(
            PHASE_TRANSFER_IN, self.input_transfer_seconds(transactions)
        )
        ordered = sorted(transactions, key=lambda t: t.txn_id)
        tasks = [self.build_task(t) for t in ordered]
        report = self.engine.launch_serial(
            tasks,
            self.adapter,
            per_task_launch_overhead=self.per_task_launch_overhead,
        )
        breakdown.add(PHASE_EXECUTION, report.seconds)
        results = self.finalize_kernel(ordered, report)
        results.sort(key=lambda r: r.txn_id)
        breakdown.add(PHASE_TRANSFER_OUT, self.output_transfer_seconds(results))
        return ExecutionResult(
            self.name, results, breakdown, kernel_reports=[report]
        )
