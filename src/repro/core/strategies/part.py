"""PART: partition-based bulk execution (Section 5.2).

The H-Store idea on a GPU: the database is horizontally partitioned on
the workload's partition key; a *single thread* executes each
partition's transactions sequentially, so no locks are needed inside a
partition. Parallelism comes from executing many partitions at once.
Where H-Store *pushes* transactions to worker threads, the GPU uses a
*pull* model:

1. a map primitive computes each transaction's partition id into P;
2. P is radix-sorted by partition id (stable, so timestamp order is
   preserved within a partition);
3. each GPU thread binary-searches the boundaries of its partition in
   P and executes its transactions back to back.

The partition size is a tuning knob (Figure 13): ``partition_size``
coarsens the raw partition key by that factor, trading fewer/longer
threads (less sorting + boundary overhead, longer critical path)
against more/shorter ones.

PART "works correctly on single-partitioned transactions. If there are
cross-partition transactions, we use TPL for execution" -- the executor
delegates the whole bulk to :class:`~repro.core.strategies.tpl.TplExecutor`
in that case, exactly the severe degradation the paper describes.

Aborts only affect the aborting transaction (its partition-mates have
not run yet), so the wrapper rolls its writes back inline and moves on.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.executor import (
    PHASE_EXECUTION,
    PHASE_GENERATION,
    PHASE_TRANSFER_IN,
    PHASE_TRANSFER_OUT,
    ExecutionResult,
    StrategyExecutor,
)
from repro.core.strategies.tpl import TplExecutor
from repro.core.txn import Transaction, TxnResult
from repro.gpu import ops as op_ir
from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.simt import ThreadTask


class PartExecutor(StrategyExecutor):
    """Partitioned single-threaded execution (pull model)."""

    name = "part"
    uses_backend = True
    #: When True, bulk generation sorts P by partition id (the paper's
    #: default). The relaxed variant (Appendix G) groups with atomic
    #: counters + prefix sum instead, skipping the sort.
    timestamp_constrained = True

    def __init__(self, *args, partition_size: int = 1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if partition_size < 1:
            raise ValueError("partition_size must be >= 1")
        self.partition_size = partition_size

    # ------------------------------------------------------------------
    def execute(self, transactions: Sequence[Transaction]) -> ExecutionResult:
        breakdown = TimeBreakdown()
        if not transactions:
            return ExecutionResult(self.name, [], breakdown)

        # Cross-partition transactions force the TPL fallback.
        partitions: List[Optional[int]] = []
        for txn in transactions:
            pid = self.registry.get(txn.type_name).partition_of(txn.params)
            partitions.append(pid)
        if any(pid is None for pid in partitions):
            fallback = TplExecutor(
                self.registry,
                self.adapter,
                self.engine,
                primitives=self.primitives,
                pcie=self.pcie,
                use_undo_logging=self.use_undo_logging,
                backend=self.backend,
            )
            result = fallback.execute(transactions)
            return ExecutionResult(
                f"{self.name}(tpl-fallback)",
                result.results,
                result.breakdown,
                kernel_reports=result.kernel_reports,
                cascaded_aborts=result.cascaded_aborts,
            )

        breakdown.add(
            PHASE_TRANSFER_IN, self.input_transfer_seconds(transactions)
        )

        # ---- bulk generation: map + sort by partition ------------------
        coarse = np.asarray(
            [pid // self.partition_size for pid in partitions], dtype=np.int64
        )
        breakdown.add(PHASE_GENERATION, self.primitives.map_cost(len(coarse)))
        if self.timestamp_constrained:
            order, sort_cost = self.primitives.sort_by_composite(
                coarse, np.arange(len(coarse), dtype=np.int64)
            )
        else:
            # Appendix G: per-partition atomic counters + prefix sum +
            # scatter replace the sort (functionally, a stable group-by).
            order = np.argsort(coarse, kind="stable")
            n = len(coarse)
            sort_cost = (
                self.primitives.map_cost(n)
                + self.primitives.scan_cost(int(coarse.max()) + 1)
                + self.primitives.map_cost(n)
            )
        breakdown.add(PHASE_GENERATION, sort_cost)

        # ---- build one thread per non-empty partition ------------------
        grouped: Dict[int, List[Transaction]] = {}
        coarse_list = coarse.tolist()
        for idx in order.tolist():
            grouped.setdefault(coarse_list[idx], []).append(transactions[idx])
        boundary_cycles = 8 * max(1, math.ceil(math.log2(max(2, len(transactions)))))
        # The partition schedule executes through the configured
        # backend: one interpreted generator per partition thread, or
        # the vectorized backend's slot-parallel column kernels.
        report = self.backend.launch_partitions(
            self, sorted(grouped.items()), boundary_cycles
        )
        breakdown.add(PHASE_EXECUTION, report.seconds)

        # ---- per-transaction outcomes ----------------------------------
        results, cancels = self._collect(transactions, report)
        for table, provisional in cancels["inserts"]:
            self.adapter.cancel_insert(table, provisional)
        for table, row in cancels["deletes"]:
            self.adapter.cancel_delete(table, row)
        self.adapter.apply_batch()
        breakdown.add(PHASE_TRANSFER_OUT, self.output_transfer_seconds(results))
        return ExecutionResult(
            self.name, results, breakdown, kernel_reports=[report]
        )

    # ------------------------------------------------------------------
    def partition_task(
        self, pid: int, txns: List[Transaction], boundary_cycles: int
    ) -> ThreadTask:
        """One GPU thread running a partition's transactions serially."""
        prepared = [
            (
                txn.txn_id,
                self.registry.type_id(txn.type_name),
                self._needs_undo(txn),
                self.registry.build_stream(txn.type_name, txn.params),
            )
            for txn in txns
        ]

        def stream():
            # Binary searches for the partition's [start, end) in P.
            yield op_ir.Compute(boundary_cycles)
            outcomes: List[Tuple[int, bool, str, Any, list, list]] = []
            for txn_id, type_id, needs_undo, inner in prepared:
                yield op_ir.SetBranch(type_id)
                undo: List[Tuple[str, str, int, Any]] = []
                ins_cancel: List[Tuple[str, int]] = []
                del_cancel: List[Tuple[str, int]] = []
                aborted = False
                reason = ""
                result = None
                send: Any = None
                while True:
                    try:
                        op = inner.send(send)
                    except StopIteration as stop:
                        result = stop.value
                        break
                    send = None
                    if op.kind == op_ir.ABORT:
                        aborted = True
                        reason = op.reason
                        # Inline rollback: compensating writes.
                        for table, column, row, old in reversed(undo):
                            yield op_ir.Write(table, column, row, old)
                        break
                    if op.kind == op_ir.WRITE and needs_undo:
                        old = yield op_ir.Read(op.table, op.column, op.row)
                        undo.append((op.table, op.column, op.row, old))
                        send = yield op
                    elif op.kind == op_ir.INSERT_ROW:
                        provisional = yield op
                        ins_cancel.append((op.table, provisional))
                        send = provisional
                    elif op.kind == op_ir.DELETE_ROW:
                        send = yield op
                        del_cancel.append((op.table, op.row))
                    else:
                        send = yield op
                outcomes.append(
                    (
                        txn_id,
                        not aborted,
                        reason,
                        result,
                        ins_cancel if aborted else [],
                        del_cancel if aborted else [],
                    )
                )
                # Loop bookkeeping between transactions.
                yield op_ir.Compute(2)
            return outcomes

        return ThreadTask(txn_id=pid, type_id=-1, body=stream())

    def _collect(self, transactions, report):
        """Flatten per-partition outcome lists into per-txn results."""
        per_txn: Dict[int, Tuple[bool, str, Any]] = {}
        cancels = {"inserts": [], "deletes": []}
        for outcome in report.outcomes:
            for txn_id, committed, reason, value, ins, dels in outcome.result:
                per_txn[txn_id] = (committed, reason, value)
                if ins:
                    cancels["inserts"].extend(ins)
                if dels:
                    cancels["deletes"].extend(dels)
        results: List[TxnResult] = []
        append = results.append
        for txn in transactions:
            committed, reason, value = per_txn[txn.txn_id]
            append(
                TxnResult(
                    txn_id=txn.txn_id,
                    type_name=txn.type_name,
                    committed=committed,
                    abort_reason=reason,
                    value=value,
                )
            )
        return results, cancels
