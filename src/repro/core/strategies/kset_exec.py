"""K-SET: 0-set based bulk execution (Section 5.3).

The strategy designed *for* the bulk execution model: iteratively pick
the current 0-set of the T-dependency graph -- the transactions with no
preceding conflicting transaction -- and execute it as one kernel with
no concurrency control at all (Property 1: members of a k-set are
pairwise conflict-free). After removing an executed 0-set, the old
1-set becomes the new 0-set, and so on.

Bulk generation uses the incremental extractor of Section 5.3: new
transactions' basic operations are merged into the sorted item groups
(one sort when the bulk arrives, charged here), and each round's 0-set
is found by a scan, not by recomputing all k-sets.

Because a round's transactions are mutually conflict-free, an abort can
only affect the aborting transaction itself (Appendix D): rollback is
its own undo log, applied post-kernel. The insert/delete batch is
applied after every round so later rounds observe earlier rounds'
mutations.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.executor import (
    PHASE_EXECUTION,
    PHASE_GENERATION,
    PHASE_TRANSFER_IN,
    PHASE_TRANSFER_OUT,
    ExecutionResult,
    StrategyExecutor,
)
from repro.core.kset import IncrementalKSetExtractor
from repro.core.txn import Transaction, TxnResult
from repro.gpu.costmodel import TimeBreakdown


class KsetExecutor(StrategyExecutor):
    """Iterative 0-set execution without locks."""

    name = "kset"
    uses_backend = True
    #: With the timestamp constraint, merging a fresh bulk into the
    #: sorted groups costs a sort (Figure 5's dominant share); the
    #: relaxed variant (Appendix G) groups by counters instead.
    timestamp_constrained = True

    def __init__(self, *args, grouping_passes: int = 0,
                 max_rounds: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.grouping_passes = grouping_passes
        #: Streaming mode (Section 5.3): execute at most this many
        #: 0-set rounds per bulk, deferring blocked transactions back to
        #: the pool where they merge with newly submitted work. None =
        #: drain the bulk completely.
        self.max_rounds = max_rounds

    def execute(self, transactions: Sequence[Transaction]) -> ExecutionResult:
        breakdown = TimeBreakdown()
        if not transactions:
            return ExecutionResult(self.name, [], breakdown)
        breakdown.add(
            PHASE_TRANSFER_IN, self.input_transfer_seconds(transactions)
        )

        # ---- bulk generation: merge ops into sorted groups -------------
        by_id: Dict[int, Transaction] = {t.txn_id: t for t in transactions}
        extractor = IncrementalKSetExtractor(self.primitives)
        gen_before = extractor.gen_seconds
        registry_get = self.registry.get
        for txn in transactions:
            extractor.add(
                txn.txn_id, registry_get(txn.type_name).accesses(txn.params)
            )
        if self.timestamp_constrained:
            # The sort merges the bulk's (merged) entries into the
            # sorted item groups -- the same count merge_accesses
            # would produce, read off the extractor's sorted array.
            breakdown.add(
                PHASE_GENERATION,
                self.primitives.sort_cost(
                    max(1, extractor.merged_entry_count)
                ),
            )
        else:
            breakdown.add(
                PHASE_GENERATION,
                self.primitives.map_cost(max(1, extractor.raw_ops))
                + self.primitives.scan_cost(max(1, len(transactions))),
            )

        # ---- iterate 0-sets ---------------------------------------------
        all_results: List[TxnResult] = []
        reports = []
        rounds = 0
        while len(extractor):
            if self.max_rounds is not None and rounds >= self.max_rounds:
                break
            rounds += 1
            zero = extractor.pop_zero_set()
            breakdown.add(PHASE_GENERATION, extractor.gen_seconds - gen_before)
            gen_before = extractor.gen_seconds
            round_txns = [by_id[t] for t in zero]
            if self.grouping_passes > 0:
                round_txns, group_cost = self._group_by_type(round_txns)
                breakdown.add(PHASE_GENERATION, group_cost)
            # The wave executes through the configured backend: the
            # interpreter steps one generator per thread; the
            # vectorized backend runs the whole 0-set as batched
            # column kernels with an identical simulated cost.
            report = self.backend.launch_wave(self, round_txns)
            reports.append(report)
            breakdown.add(PHASE_EXECUTION, report.seconds)
            all_results.extend(self.finalize_kernel(round_txns, report))

        all_results.sort(key=lambda r: r.txn_id)
        breakdown.add(
            PHASE_TRANSFER_OUT, self.output_transfer_seconds(all_results)
        )
        deferred = [by_id[t] for t in extractor.pending]
        return ExecutionResult(
            self.name, all_results, breakdown, kernel_reports=reports,
            deferred=deferred,
        )

    # ------------------------------------------------------------------
    def _group_by_type(self, transactions: List[Transaction]):
        type_ids = np.asarray(
            [self.registry.type_id(t.type_name) for t in transactions],
            dtype=np.int64,
        )
        n_types = max(1, len(self.registry))
        key_bits = max(1, (n_types - 1).bit_length())
        order, cost = self.primitives.radix_partition(
            type_ids, self.grouping_passes, key_bits=key_bits
        )
        return [transactions[i] for i in order], cost
