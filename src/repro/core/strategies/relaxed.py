"""Relaxed-timestamp execution strategies (Appendix G).

Some applications only need serializability, not Definition 1's
timestamp order. Dropping the constraint removes the sort from bulk
generation and loosens execution order:

* **TPL-relaxed**: the basic 0/1 spin lock of Figure 10 instead of the
  counter lock -- no rank computation at all. Conflicting transactions
  commit in whatever order the hardware resolves the CAS races; locks
  are acquired in globally sorted item order, which (unlike the
  arbitrary order of the naive kernel) keeps the lock graph acyclic so
  the bulk cannot deadlock.
* **PART-relaxed**: partitions are grouped with per-partition atomic
  counters + a prefix sum + a scatter, replacing the radix sort
  ("transactions can be grouped without sort").
* **K-SET-relaxed**: same counter-based grouping trick for the item
  groups; the 0-set iteration itself is unchanged (it is already
  arrival-ordered).

Figure 17 shows the effect: both generation and execution shrink, and
with cheap locks TPL comes out ahead -- the opposite of Figure 5.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.executor import (
    PHASE_EXECUTION,
    PHASE_GENERATION,
    PHASE_TRANSFER_IN,
    PHASE_TRANSFER_OUT,
    ExecutionResult,
    StrategyExecutor,
)
from repro.core.strategies.kset_exec import KsetExecutor
from repro.core.strategies.part import PartExecutor
from repro.core.txn import Transaction
from repro.gpu import ops as op_ir
from repro.gpu.atomics import LockTable
from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.simt import ThreadTask


class RelaxedTplExecutor(StrategyExecutor):
    """TPL with basic 0/1 spin locks; serializable, not ts-ordered."""

    name = "tpl-relaxed"

    def execute(self, transactions: Sequence[Transaction]) -> ExecutionResult:
        breakdown = TimeBreakdown()
        if not transactions:
            return ExecutionResult(self.name, [], breakdown)
        breakdown.add(
            PHASE_TRANSFER_IN, self.input_transfer_seconds(transactions)
        )

        # Bulk generation: nothing but assigning dense lock ids (a map).
        item_sets: Dict[int, List[int]] = {}
        for txn in transactions:
            accesses = self.registry.get(txn.type_name).accesses(txn.params)
            item_sets[txn.txn_id] = sorted({a.item for a in accesses})
        all_items = sorted({i for items in item_sets.values() for i in items})
        lock_of = {item: i for i, item in enumerate(all_items)}
        breakdown.add(
            PHASE_GENERATION, self.primitives.map_cost(max(1, len(all_items)))
        )

        locks = LockTable(len(all_items))
        tasks = [
            self._locked_task(txn, item_sets[txn.txn_id], lock_of)
            for txn in transactions
        ]
        report = self.engine.launch(tasks, self.adapter, locks=locks)
        breakdown.add(PHASE_EXECUTION, report.seconds)

        results = self.finalize_kernel(list(transactions), report)
        breakdown.add(PHASE_TRANSFER_OUT, self.output_transfer_seconds(results))
        return ExecutionResult(
            self.name, results, breakdown, kernel_reports=[report]
        )

    def _locked_task(
        self, txn: Transaction, items: List[int], lock_of: Dict[int, int]
    ) -> ThreadTask:
        inner = self.registry.build_stream(txn.type_name, txn.params)
        lock_ids = [lock_of[item] for item in items]  # sorted order

        def stream():
            for lock_id in lock_ids:
                yield op_ir.LockAcquire(lock_id)  # basic 0/1 lock
            result = yield from inner
            for lock_id in lock_ids:
                yield op_ir.LockRelease(lock_id)
            return result

        return ThreadTask(
            txn_id=txn.txn_id,
            type_id=self.registry.type_id(txn.type_name),
            body=stream(),
            capture_undo=self._needs_undo(txn),
        )


class RelaxedPartExecutor(PartExecutor):
    """PART grouped by atomic counters + scan instead of a sort."""

    name = "part-relaxed"
    timestamp_constrained = False


class RelaxedKsetExecutor(KsetExecutor):
    """K-SET with counter-based grouping of the item groups."""

    name = "kset-relaxed"
    timestamp_constrained = False
