"""One composable options object for the whole runtime stack.

The engine surface grew one knob at a time: ``GPUTx`` takes
:class:`~repro.core.backends.EngineOptions`, ``ClusterTx`` adds
``durability=``, ``cross_shard=`` and ``elastic=`` keyword arguments
on top. :class:`ClusterOptions` composes all of them into a single
frozen value that can be built once, logged, and handed to any
constructor::

    >>> from repro.config import ClusterOptions
    >>> from repro.core.backends import EngineOptions
    >>> opts = ClusterOptions(engine=EngineOptions(backend="vector"))
    >>> opts.cross_shard
    'parallel'

The old keyword arguments keep working, but emit a
:class:`DeprecationWarning` through the same warn-dedup machinery the
engine's option filtering uses (``warnings.warn_explicit`` with a
caller-owned memo and a fresh registry -- see
:func:`repro.core.engine._filter_options`): each distinct message
warns once per process, later call sites are not swallowed by the
first, and the process's warning *filters* (``-W error`` and
``filterwarnings`` configs) still apply.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional, Set, Union

from repro.cluster.durability.failover import DurabilityConfig
from repro.cluster.elastic import ElasticConfig
from repro.core.backends import EngineOptions
from repro.errors import ConfigError

__all__ = ["ClusterOptions", "warn_deprecated", "resolve_cluster_options"]

#: Cross-shard commit modes ClusterTx understands.
_CROSS_SHARD_MODES = ("parallel", "serial")


@dataclass(frozen=True)
class ClusterOptions:
    """Every runtime knob, in one composable frozen value.

    ``engine`` configures each shard's (or the single device's)
    execution backend; ``durability``, ``cross_shard`` and ``elastic``
    are cluster-level and ignored-with-a-warning by single-device
    consumers.
    """

    engine: EngineOptions = field(default_factory=EngineOptions)
    durability: Optional[DurabilityConfig] = None
    cross_shard: str = "parallel"
    elastic: Optional[ElasticConfig] = None

    def __post_init__(self) -> None:
        if self.cross_shard not in _CROSS_SHARD_MODES:
            raise ConfigError(
                f"unknown cross_shard mode {self.cross_shard!r}; "
                f"expected one of {_CROSS_SHARD_MODES}"
            )
        if not isinstance(self.engine, EngineOptions):
            raise ConfigError(
                "ClusterOptions.engine must be an EngineOptions, got "
                f"{type(self.engine).__name__}"
            )


#: Deprecation messages already issued this process (cleared by the
#: unit tests that assert the shims warn).
_WARNED: Set[str] = set()


def warn_deprecated(message: str) -> None:
    """Emit ``message`` as a once-per-process DeprecationWarning.

    Dedup is by message text through the caller-owned memo above, not
    Python's per-location registry, so a second *call site* with a new
    message still warns -- the `_filter_options` discipline.
    """
    if message in _WARNED:
        return
    _WARNED.add(message)
    warnings.warn_explicit(
        message,
        DeprecationWarning,
        filename=__file__,
        lineno=0,
        module=__name__,
        registry={},
    )


def resolve_cluster_options(
    options: Union[ClusterOptions, EngineOptions, None],
    *,
    durability: Optional[DurabilityConfig] = None,
    cross_shard: Optional[str] = None,
    elastic: Optional[ElasticConfig] = None,
    owner: str = "ClusterTx",
) -> ClusterOptions:
    """Fold new-style ``options`` and legacy kwargs into one value.

    The legacy keyword arguments keep working -- and override the
    corresponding ``ClusterOptions`` field when both are given -- but
    each use emits a deprecation warning pointing at the field that
    replaces it.
    """
    if isinstance(options, ClusterOptions):
        resolved = options
    elif isinstance(options, EngineOptions):
        warn_deprecated(
            f"{owner}(options=EngineOptions(...)) is deprecated; pass "
            "options=ClusterOptions(engine=EngineOptions(...))"
        )
        resolved = ClusterOptions(engine=options)
    elif options is None:
        resolved = ClusterOptions()
    else:
        raise ConfigError(
            f"{owner} options must be ClusterOptions or EngineOptions, "
            f"got {type(options).__name__}"
        )
    if durability is not None:
        warn_deprecated(
            f"{owner}(durability=...) is deprecated; pass "
            "options=ClusterOptions(durability=...)"
        )
        resolved = replace(resolved, durability=durability)
    if cross_shard is not None:
        warn_deprecated(
            f"{owner}(cross_shard=...) is deprecated; pass "
            "options=ClusterOptions(cross_shard=...)"
        )
        resolved = replace(resolved, cross_shard=cross_shard)
    if elastic is not None:
        warn_deprecated(
            f"{owner}(elastic=...) is deprecated; pass "
            "options=ClusterOptions(elastic=...)"
        )
        resolved = replace(resolved, elastic=elastic)
    return resolved


def coerce_engine_options(
    options: Union[ClusterOptions, EngineOptions, None],
    *,
    owner: str = "GPUTx",
) -> EngineOptions:
    """The ``EngineOptions`` a single-device consumer should use.

    Accepts a full :class:`ClusterOptions` everywhere an
    ``EngineOptions`` used to go; cluster-only fields are ignored with
    a warning (a single device has no shards to make durable, route
    across, or rebalance).
    """
    if isinstance(options, ClusterOptions):
        ignored = [
            name
            for name, is_set in (
                ("durability", options.durability is not None),
                ("cross_shard", options.cross_shard != "parallel"),
                ("elastic", options.elastic is not None),
            )
            if is_set
        ]
        if ignored:
            warn_deprecated(
                f"{owner} is a single-device engine and ignores "
                f"ClusterOptions field(s) {ignored}"
            )
        return options.engine
    if isinstance(options, EngineOptions):
        return options
    if options is None:
        return EngineOptions()
    raise ConfigError(
        f"{owner} options must be ClusterOptions or EngineOptions, "
        f"got {type(options).__name__}"
    )


def _reset_deprecation_memo() -> None:
    """Test hook: forget which deprecations have been issued."""
    _WARNED.clear()
