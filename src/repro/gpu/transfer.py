"""PCIe transfer model between host and device memory.

The paper's throughput measurements include the transfer of transaction
signatures to the device and results back (Section 6.1 / Appendix E),
and Figure 16 breaks the three components out: one-off initialization
(tables + indexes), per-bulk input, per-bulk output -- the latter two
contributing less than 5 % of execution time. This module provides that
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.gpu.spec import C1060, GPUSpec


@dataclass
class TransferLedger:
    """Accumulated host<->device traffic, by component."""

    bytes_by_component: Dict[str, int] = field(default_factory=dict)
    seconds_by_component: Dict[str, float] = field(default_factory=dict)

    def record(self, component: str, nbytes: int, seconds: float) -> None:
        self.bytes_by_component[component] = (
            self.bytes_by_component.get(component, 0) + nbytes
        )
        self.seconds_by_component[component] = (
            self.seconds_by_component.get(component, 0.0) + seconds
        )

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_component.values())


@dataclass
class TransferTimeline:
    """Busy timeline of one DMA engine, for overlap scheduling.

    The pipeline scheduler (``repro.cluster.pipeline``) lays bulk
    transfers onto this timeline in queue order: a transfer starts as
    soon as the engine is free *and* its payload is ready, so copies of
    bulk *k+1* slide underneath kernel *k* whenever the interconnect is
    idle. ``busy_seconds`` accumulates pure transfer time, which lets
    callers report how much of it the pipeline managed to hide.
    """

    busy_until: float = 0.0
    busy_seconds: float = 0.0

    def schedule(self, seconds: float, ready_at: float = 0.0) -> "tuple[float, float]":
        """Queue one transfer; returns its (start, end) instants."""
        start = max(self.busy_until, ready_at)
        if seconds <= 0.0:
            return start, start
        end = start + seconds
        self.busy_until = end
        self.busy_seconds += seconds
        return start, end


class PCIeModel:
    """Latency + bandwidth model of the host-device interconnect."""

    def __init__(self, spec: GPUSpec = C1060) -> None:
        self.spec = spec
        self.ledger = TransferLedger()

    def timeline(self) -> TransferTimeline:
        """A fresh DMA timeline over this link (overlap scheduling)."""
        return TransferTimeline()

    def transfer_seconds(self, nbytes: int) -> float:
        """Time for one DMA of ``nbytes`` in either direction."""
        if nbytes <= 0:
            return 0.0
        return self.spec.pcie_latency_s + nbytes / self.spec.pcie_bandwidth_bytes_per_s

    def to_device(self, nbytes: int, component: str = "input") -> float:
        seconds = self.transfer_seconds(nbytes)
        self.ledger.record(component, nbytes, seconds)
        return seconds

    def to_host(self, nbytes: int, component: str = "output") -> float:
        seconds = self.transfer_seconds(nbytes)
        self.ledger.record(component, nbytes, seconds)
        return seconds

    def to_peer(self, nbytes: int, component: str = "replication") -> float:
        """One DMA to a peer device (replica feed, checkpoint ship).

        Peer copies ride the same interconnect as host<->device
        traffic, so they share the latency/bandwidth model; the
        separate ledger component keeps durability traffic visible in
        the per-bulk accounting.
        """
        return self.to_device(nbytes, component=component)

    def initialize(self, nbytes: int) -> float:
        """One-off load of tables and indexes into device memory."""
        return self.to_device(nbytes, component="initialization")
