"""Lockstep SIMT execution engine -- the simulated GPU.

This is the substrate substituting for CUDA on a Tesla C1060 (see
DESIGN.md, "Hardware substitution"). Threads are Python generators
yielding micro-ops (:mod:`repro.gpu.ops`); the engine

* packs them into warps of 32 and thread blocks, assigns blocks to SMs
  round-robin,
* steps every live warp once per *round*, executing at most one op per
  thread per round,
* serialises threads of one warp that sit on different op shapes
  (branch divergence, Appendix A),
* lets spin locks really spin: a failed acquire leaves the thread on
  the same op and burns issue cycles next round,
* serialises conflicting atomics to the same address,
* coalesces each warp-group memory access into 64 B transactions,
* detects deadlock: a full round in which no thread makes progress
  while some are blocked (this is how the basic 0/1-lock TPL of
  Figure 10 fails; the counter lock never trips it).

Functional effects (reads/writes/inserts) are *real*, applied to the
backing :class:`~repro.gpu.memory.DeviceStore`; only time is simulated.
``launch_serial`` implements the paper's ad-hoc baseline: transactions
executed one at a time on a single GPU core (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DeadlockError, ExecutionError, KernelTimeoutError
from repro.gpu import ops as op_ir
from repro.gpu.atomics import CounterSpace, LockTable
from repro.gpu.costmodel import (
    GpuCostModel,
    KernelStats,
    KernelTiming,
    with_perf_handicap,
)
from repro.gpu.memory import DeviceStore
from repro.gpu.spec import C1060, GPUSpec

#: Pretend base address of the lock table in device memory (only used
#: for coalescing accounting; any constant clear of table data works).
_LOCK_SPACE_BASE = 1 << 48
_COUNTER_SPACE_BASE = 1 << 49


@dataclass
class ThreadTask:
    """One GPU thread: a generator plus scheduling metadata."""

    txn_id: int
    type_id: int
    body: op_ir.OpStream
    capture_undo: bool = False


def warp_layout(
    n_threads: int, block_size: int, spec: GPUSpec
) -> Tuple[List[Tuple[int, int]], List[List[int]], List[int]]:
    """Pack ``n_threads`` into warps, blocks, and SMs.

    The single source of truth for thread placement, shared by the
    interpreter's :meth:`SIMTEngine.launch` and the vectorized
    backend's cost replay (:mod:`repro.core.backends.replay`), which
    must agree on it exactly. Returns ``(warp_bounds, sm_warp_ids,
    resident_warps)``: per-warp ``[start, end)`` thread ranges, each
    SM's warp ids in schedule order, and the per-SM resident-warp
    count (capped by the occupancy ceiling).
    """
    sm_warp_ids: List[List[int]] = [[] for _ in range(spec.num_sms)]
    bounds: List[Tuple[int, int]] = []
    wid = 0
    for b_start in range(0, n_threads, block_size):
        b_end = min(b_start + block_size, n_threads)
        sm = (b_start // block_size) % spec.num_sms
        for w_start in range(b_start, b_end, spec.warp_size):
            bounds.append((w_start, min(w_start + spec.warp_size, b_end)))
            sm_warp_ids[sm].append(wid)
            wid += 1
    resident = [
        min(len(ids), spec.max_blocks_per_sm * (block_size // spec.warp_size))
        for ids in sm_warp_ids
    ]
    return bounds, sm_warp_ids, resident


@dataclass
class ThreadOutcome:
    """What happened to one thread's transaction(s)."""

    txn_id: int
    type_id: int
    committed: bool
    abort_reason: str = ""
    result: Any = None
    undo: List[Tuple[str, str, int, Any]] = field(default_factory=list)


@dataclass
class KernelReport:
    """Stats + timing + per-thread outcomes of one kernel launch."""

    stats: KernelStats
    timing: KernelTiming
    outcomes: List[ThreadOutcome]

    @property
    def seconds(self) -> float:
        return self.timing.seconds

    @property
    def aborted_count(self) -> int:
        return sum(1 for o in self.outcomes if not o.committed)


class _Thread:
    """Mutable per-thread interpreter state."""

    __slots__ = (
        "task",
        "gen",
        "op",
        "send_value",
        "done",
        "aborted",
        "abort_reason",
        "undo",
        "result",
        "held",
        "branch",
    )

    def __init__(self, task: ThreadTask) -> None:
        self.task = task
        self.gen = task.body
        self.op: Optional[op_ir.Op] = None
        self.send_value: Any = None
        self.done = False
        self.aborted = False
        self.abort_reason = ""
        self.undo: List[Tuple[str, str, int, Any]] = []
        self.result: Any = None
        # lock_id -> (key or None, shared)
        self.held: Dict[int, Tuple[Optional[int], bool]] = {}
        # Current switch-case (PC region) for divergence grouping.
        self.branch = task.type_id

    def outcome(self) -> ThreadOutcome:
        return ThreadOutcome(
            txn_id=self.task.txn_id,
            type_id=self.task.type_id,
            committed=not self.aborted,
            abort_reason=self.abort_reason,
            result=self.result,
            undo=self.undo,
        )


class SIMTEngine:
    """Executes :class:`ThreadTask` populations on a simulated GPU."""

    def __init__(
        self,
        spec: GPUSpec = C1060,
        *,
        block_size: int = 256,
        max_rounds: int = 2_000_000,
    ) -> None:
        if block_size % spec.warp_size:
            raise ExecutionError(
                f"block size {block_size} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        self.spec = spec
        self.cost = GpuCostModel(spec)
        self.block_size = block_size
        self.max_rounds = max_rounds
        self._locks: Optional[LockTable] = None

    # ------------------------------------------------------------------
    # Parallel (bulk) launch.
    # ------------------------------------------------------------------
    def launch(
        self,
        tasks: Sequence[ThreadTask],
        store: DeviceStore,
        *,
        locks: Optional[LockTable] = None,
        counters: Optional[CounterSpace] = None,
    ) -> KernelReport:
        """Run all tasks as one kernel; return stats/timing/outcomes."""
        spec = self.spec
        stats = KernelStats(num_sms=spec.num_sms)
        stats.threads_launched = len(tasks)
        self._locks = locks
        threads = [_Thread(t) for t in tasks]

        # Blocks round-robin over SMs; blocks split into warps.
        bounds, sm_warp_ids, resident = warp_layout(
            len(threads), self.block_size, spec
        )
        sm_warps: List[List[List[_Thread]]] = [
            [threads[bounds[w][0] : bounds[w][1]] for w in ids]
            for ids in sm_warp_ids
        ]
        for sm in range(spec.num_sms):
            stats.resident_warps[sm] = resident[sm]

        # Prime every generator with its first op.
        alive = 0
        for thread in threads:
            self._fetch(thread)
            if not thread.done:
                alive += 1

        rounds = 0
        while alive > 0:
            progressed = False
            blocked = 0
            for sm in range(spec.num_sms):
                warps = sm_warps[sm]
                w = 0
                while w < len(warps):
                    warp = warps[w]
                    live = [t for t in warp if not t.done]
                    if not live:
                        warps[w] = warps[-1]
                        warps.pop()
                        continue
                    adv, blk = self._step_warp(live, sm, stats, store, locks, counters)
                    progressed = progressed or adv
                    blocked += blk
                    alive -= sum(1 for t in live if t.done)
                    w += 1
            rounds += 1
            if alive > 0 and not progressed:
                raise DeadlockError(
                    f"no thread progressed in round {rounds}; "
                    f"{blocked} thread(s) blocked on locks "
                    "(basic 0/1 spin locks can deadlock -- see Appendix C)"
                )
            if rounds > self.max_rounds:
                raise KernelTimeoutError(
                    f"kernel exceeded {self.max_rounds} rounds"
                )

        stats.rounds = rounds
        stats.threads_aborted = sum(1 for t in threads if t.aborted)
        timing = with_perf_handicap(self.cost.resolve(stats))
        return KernelReport(
            stats=stats, timing=timing, outcomes=[t.outcome() for t in threads]
        )

    # ------------------------------------------------------------------
    # Warp stepping.
    # ------------------------------------------------------------------
    def _fetch(self, thread: _Thread) -> None:
        """Advance the generator to its next op (or completion)."""
        try:
            thread.op = thread.gen.send(thread.send_value)
        except StopIteration as stop:
            thread.result = stop.value
            self._finish(thread)
        except Exception as exc:
            raise ExecutionError(
                f"transaction {thread.task.txn_id} raised {exc!r}"
            ) from exc
        thread.send_value = None

    def _finish(self, thread: _Thread) -> None:
        thread.done = True
        thread.op = None
        # Safety net: auto-release anything still held so one aborted
        # transaction cannot wedge the rest of the kernel.
        if thread.held and self._locks is not None:
            for lock_id, (key, shared) in list(thread.held.items()):
                if key is None:
                    self._locks.release_basic(lock_id)
                else:
                    self._locks.release_counter(lock_id, key, shared, advance=True)
            thread.held.clear()

    def _step_warp(
        self,
        live: List[_Thread],
        sm: int,
        stats: KernelStats,
        store: DeviceStore,
        locks: Optional[LockTable],
        counters: Optional[CounterSpace],
    ) -> Tuple[bool, int]:
        """Execute one round of a warp; return (progressed, blocked)."""
        self._locks = locks  # used by _finish for auto-release
        groups: Dict[tuple, List[_Thread]] = {}
        for t in live:
            groups.setdefault((t.branch,) + t.op.shape(), []).append(t)
        if len(groups) > 1:
            stats.divergent_serializations += len(groups) - 1

        cost = self.cost
        progressed = False
        blocked = 0
        for shape, members in groups.items():
            kind = shape[1]
            if kind == op_ir.LOCK_ACQUIRE:
                acquired = 0
                addrs = [_LOCK_SPACE_BASE + t.op.lock_id * 8 for t in members]
                per_lock: Dict[int, int] = {}
                for t in members:
                    op = t.op
                    per_lock[op.lock_id] = per_lock.get(op.lock_id, 0) + 1
                    if op.key is None:
                        ok = locks.try_acquire_basic(op.lock_id)
                    else:
                        ok = locks.try_pass_counter(op.lock_id, op.key)
                    if ok:
                        t.held[op.lock_id] = (op.key, op.shared)
                        self._advance(t, None)
                        acquired += 1
                    else:
                        blocked += 1
                        stats.spin_iterations += 1
                stats.issue_cycles[sm] += cost.issue_spin()
                # Each lane's CAS/read of the lock word is an atomic RMW:
                # lanes hitting the same lock serialise (Appendix C).
                for count in per_lock.values():
                    if count > 1:
                        stats.atomic_cycles[sm] += cost.atomic_serialization(count)
                        stats.atomic_conflicts += count - 1
                ntx = cost.coalesce(addrs, 8)
                stats.mem_transactions[sm] += ntx
                stats.mem_bytes[sm] += ntx * self.spec.memory_transaction_bytes
                if acquired:
                    progressed = True
                stats.ops_executed += acquired
                continue

            # Every other kind always completes this round.
            progressed = True
            stats.ops_executed += len(members)
            if kind == op_ir.READ:
                addrs = []
                width = 8
                for t in members:
                    op = t.op
                    value = store.read(op.table, op.column, op.row)
                    addr, width = store.address_of(op.table, op.column, op.row)
                    addrs.append(addr)
                    self._advance(t, value)
                self._charge_mem(stats, sm, addrs, width)
                stats.issue_cycles[sm] += cost.issue_plain()
            elif kind == op_ir.WRITE:
                addrs = []
                width = 8
                undo_writes = 0
                for t in members:
                    op = t.op
                    old = store.write(op.table, op.column, op.row, op.value)
                    if t.task.capture_undo:
                        t.undo.append((op.table, op.column, op.row, old))
                        undo_writes += 1
                    addr, width = store.address_of(op.table, op.column, op.row)
                    addrs.append(addr)
                    self._advance(t, None)
                self._charge_mem(stats, sm, addrs, width)
                if undo_writes:
                    # Undo-log append in device memory (Appendix D): the
                    # warp's log entries are consecutive, so they coalesce.
                    seg = self.spec.memory_transaction_bytes
                    ntx = (undo_writes * 16 + seg - 1) // seg
                    stats.mem_transactions[sm] += ntx
                    stats.mem_instructions[sm] += 1
                    stats.mem_bytes[sm] += ntx * seg
                    stats.issue_cycles[sm] += cost.issue_plain()
                stats.issue_cycles[sm] += cost.issue_plain()
            elif kind == op_ir.COMPUTE:
                amount = max(t.op.amount for t in members)
                stats.issue_cycles[sm] += cost.issue_compute(amount)
                for t in members:
                    self._advance(t, None)
            elif kind == op_ir.SFU_COMPUTE:
                amount = max(t.op.amount for t in members)
                stats.issue_cycles[sm] += cost.issue_sfu(amount)
                for t in members:
                    self._advance(t, None)
            elif kind == op_ir.LOCK_RELEASE:
                addrs = [_LOCK_SPACE_BASE + t.op.lock_id * 8 for t in members]
                for t in members:
                    op = t.op
                    if op.lock_id not in t.held:
                        raise ExecutionError(
                            f"transaction {t.task.txn_id} released lock "
                            f"{op.lock_id} it does not hold"
                        )
                    key, shared = t.held.pop(op.lock_id)
                    if key is None:
                        locks.release_basic(op.lock_id)
                    else:
                        locks.release_counter(op.lock_id, key, shared, op.advance)
                    self._advance(t, None)
                # The release is an atomic RMW on the lock word.
                ntx = cost.coalesce(addrs, 8)
                stats.mem_transactions[sm] += ntx
                stats.mem_instructions[sm] += 1
                stats.mem_bytes[sm] += ntx * self.spec.memory_transaction_bytes
                stats.issue_cycles[sm] += cost.issue_plain()
            elif kind in (op_ir.ATOMIC_ADD, op_ir.ATOMIC_CAS):
                per_slot: Dict[Tuple[str, int], int] = {}
                for t in members:
                    op = t.op
                    if kind == op_ir.ATOMIC_ADD:
                        old = counters.atomic_add(op.space, op.index, op.value)
                    else:
                        old = counters.atomic_cas(
                            op.space, op.index, op.compare, op.value
                        )
                    slot = (op.space, op.index)
                    per_slot[slot] = per_slot.get(slot, 0) + 1
                    self._advance(t, old)
                stats.issue_cycles[sm] += cost.issue_plain()
                stats.mem_instructions[sm] += 1
                for (space, index), count in per_slot.items():
                    stats.mem_transactions[sm] += 1
                    stats.mem_bytes[sm] += self.spec.memory_transaction_bytes
                    if count > 1:
                        stats.atomic_cycles[sm] += cost.atomic_serialization(count)
                        stats.atomic_conflicts += count - 1
            elif kind == op_ir.INDEX_PROBE:
                addrs: List[int] = []
                width = 8
                for t in members:
                    op = t.op
                    row = store.probe(op.index, op.key)
                    for addr, width in store.probe_cost_addresses(op.index, op.key):
                        addrs.append(addr)
                    self._advance(t, row)
                self._charge_mem(stats, sm, addrs, width)
                stats.issue_cycles[sm] += 2 * cost.issue_plain()
            elif kind == op_ir.INSERT_ROW:
                per_table: Dict[str, int] = {}
                for t in members:
                    op = t.op
                    provisional = store.insert(op.table, op.values)
                    if t.task.capture_undo:
                        t.undo.append(("__insert__", op.table, provisional, None))
                    width = store.row_width(op.table)
                    seg = self.spec.memory_transaction_bytes
                    ntx = (width + seg - 1) // seg
                    stats.mem_transactions[sm] += ntx
                    stats.mem_bytes[sm] += ntx * seg
                    per_table[op.table] = per_table.get(op.table, 0) + 1
                    self._advance(t, provisional)
                stats.mem_instructions[sm] += 1
                stats.issue_cycles[sm] += cost.issue_plain()
                for count in per_table.values():
                    # Buffer-tail allocation is an atomicAdd per insert.
                    if count > 1:
                        stats.atomic_cycles[sm] += cost.atomic_serialization(count)
                        stats.atomic_conflicts += count - 1
            elif kind == op_ir.DELETE_ROW:
                for t in members:
                    op = t.op
                    store.delete(op.table, op.row)
                    if t.task.capture_undo:
                        t.undo.append(("__delete__", op.table, op.row, None))
                    stats.mem_transactions[sm] += 1
                    stats.mem_bytes[sm] += self.spec.memory_transaction_bytes
                    self._advance(t, None)
                stats.mem_instructions[sm] += 1
                stats.issue_cycles[sm] += cost.issue_plain()
            elif kind == op_ir.SET_BRANCH:
                for t in members:
                    t.branch = t.op.tag
                    self._advance(t, None)
                stats.issue_cycles[sm] += cost.issue_plain()
            elif kind == op_ir.ABORT:
                for t in members:
                    t.aborted = True
                    t.abort_reason = t.op.reason
                    self._finish(t)
                stats.issue_cycles[sm] += cost.issue_plain()
            elif kind == op_ir.THREAD_FENCE:
                stats.issue_cycles[sm] += cost.issue_plain()
                for t in members:
                    self._advance(t, None)
            else:  # pragma: no cover - op table is closed
                raise ExecutionError(f"unknown op kind {kind}")
        return progressed, blocked

    def _advance(self, thread: _Thread, result: Any) -> None:
        thread.send_value = result
        self._fetch(thread)

    def _charge_mem(
        self, stats: KernelStats, sm: int, addrs: List[int], width: int
    ) -> None:
        ntx = self.cost.coalesce(addrs, width)
        stats.mem_transactions[sm] += ntx
        stats.mem_instructions[sm] += 1
        stats.mem_bytes[sm] += ntx * self.spec.memory_transaction_bytes

    # ------------------------------------------------------------------
    # Serial (ad-hoc) launch: one transaction at a time, one GPU core.
    # ------------------------------------------------------------------
    def launch_serial(
        self,
        tasks: Sequence[ThreadTask],
        store: DeviceStore,
        *,
        counters: Optional[CounterSpace] = None,
        per_task_launch_overhead: bool = True,
    ) -> KernelReport:
        """Ad-hoc execution baseline (Section 6.3).

        Each transaction runs to completion on a single scalar core
        before the next starts. Lock ops are no-ops (there is no
        concurrency), every memory access pays the full device latency
        (no coalescing partner, no latency hiding), and -- when
        ``per_task_launch_overhead`` -- every transaction pays one
        kernel launch.
        """
        spec = self.spec
        stats = KernelStats(num_sms=spec.num_sms)
        stats.threads_launched = len(tasks)
        stats.resident_warps[0] = 1
        outcomes: List[ThreadOutcome] = []
        serial_overhead = float(spec.serial_op_overhead_cycles)
        issue = 0.0
        launches = 0

        for task in tasks:
            thread = _Thread(task)
            launches += 1
            gen = thread.gen
            send: Any = None
            while not thread.done:
                try:
                    op = gen.send(send)
                except StopIteration as stop:
                    thread.result = stop.value
                    thread.done = True
                    break
                send = None
                stats.ops_executed += 1
                kind = op.kind
                issue += serial_overhead
                if kind == op_ir.READ:
                    send = store.read(op.table, op.column, op.row)
                    stats.mem_transactions[0] += 1
                    stats.mem_bytes[0] += spec.memory_transaction_bytes
                elif kind == op_ir.WRITE:
                    old = store.write(op.table, op.column, op.row, op.value)
                    if task.capture_undo:
                        thread.undo.append((op.table, op.column, op.row, old))
                    stats.mem_transactions[0] += 1
                    stats.mem_bytes[0] += spec.memory_transaction_bytes
                elif kind == op_ir.COMPUTE:
                    issue += float(op.amount)
                elif kind == op_ir.SFU_COMPUTE:
                    issue += float(op.amount * spec.sfu_op_cycles)
                elif kind == op_ir.INDEX_PROBE:
                    send = store.probe(op.index, op.key)
                    stats.mem_transactions[0] += 2
                    stats.mem_bytes[0] += 2 * spec.memory_transaction_bytes
                elif kind == op_ir.INSERT_ROW:
                    send = store.insert(op.table, op.values)
                    if task.capture_undo:
                        thread.undo.append(("__insert__", op.table, send, None))
                    width = store.row_width(op.table)
                    seg = spec.memory_transaction_bytes
                    ntx = (width + seg - 1) // seg
                    stats.mem_transactions[0] += ntx
                    stats.mem_bytes[0] += ntx * seg
                elif kind == op_ir.DELETE_ROW:
                    store.delete(op.table, op.row)
                    if task.capture_undo:
                        thread.undo.append(("__delete__", op.table, op.row, None))
                    stats.mem_transactions[0] += 1
                    stats.mem_bytes[0] += spec.memory_transaction_bytes
                elif kind == op_ir.ABORT:
                    thread.aborted = True
                    thread.abort_reason = op.reason
                    thread.done = True
                    # Serial semantics: successors run immediately after
                    # us, so roll our effects back inline (the bulk
                    # executors roll back post-kernel instead, which is
                    # safe there because conflicting successors are
                    # ordered into later rounds/partition slots).
                    for entry in reversed(thread.undo):
                        table, column, row, old = entry
                        if table == "__insert__":
                            store.cancel_insert(column, row)
                        elif table == "__delete__":
                            store.cancel_delete(column, row)
                        else:
                            store.write(table, column, row, old)
                        stats.mem_transactions[0] += 1
                        stats.mem_bytes[0] += spec.memory_transaction_bytes
                    thread.undo.clear()
                # Lock ops and fences are free of contention when serial.
            outcomes.append(thread.outcome())

        stats.issue_cycles[0] = issue
        stats.threads_aborted = sum(1 for o in outcomes if not o.committed)
        # A lone thread cannot overlap memory stalls with issue: the
        # dependent chain pays latency *additively*, unlike the warp
        # path where resolve() models overlap and bandwidth limits.
        stats.mem_instructions[0] = stats.mem_transactions[0]
        mem_cycles = stats.mem_transactions[0] * float(spec.memory_latency_cycles)
        cycles = issue + mem_cycles
        extra = spec.kernel_launch_overhead_s * (
            launches if per_task_launch_overhead else 1
        )
        timing = with_perf_handicap(
            KernelTiming(
                cycles=cycles,
                seconds=spec.seconds(cycles) + extra,
                issue_cycles=issue,
                memory_cycles=mem_cycles,
                atomic_cycles=0.0,
                bound="memory" if mem_cycles > issue else "compute",
            )
        )
        return KernelReport(stats=stats, timing=timing, outcomes=outcomes)
