"""The simulated GPU substrate (SIMT engine, cost model, primitives).

This package substitutes for CUDA on the paper's NVIDIA Tesla C1060 --
see DESIGN.md for the substitution rationale. It never imports from the
rest of the library, so it can be reused standalone.
"""

from repro.gpu import ops
from repro.gpu.atomics import CounterSpace, LockTable
from repro.gpu.costmodel import GpuCostModel, KernelStats, KernelTiming, TimeBreakdown
from repro.gpu.memory import DeviceStore, DictStore
from repro.gpu.primitives import PrimitiveLibrary
from repro.gpu.simt import KernelReport, SIMTEngine, ThreadOutcome, ThreadTask
from repro.gpu.spec import (
    C1060,
    CPU_PRICE_USD,
    GPU_PRICE_USD,
    PAPER_MACHINE,
    XEON_E5520,
    CPUSpec,
    GPUSpec,
    MachineSpec,
)
from repro.gpu.transfer import PCIeModel, TransferLedger

__all__ = [
    "ops",
    "CounterSpace",
    "LockTable",
    "GpuCostModel",
    "KernelStats",
    "KernelTiming",
    "TimeBreakdown",
    "DeviceStore",
    "DictStore",
    "PrimitiveLibrary",
    "KernelReport",
    "SIMTEngine",
    "ThreadOutcome",
    "ThreadTask",
    "C1060",
    "XEON_E5520",
    "CPUSpec",
    "GPUSpec",
    "MachineSpec",
    "PAPER_MACHINE",
    "GPU_PRICE_USD",
    "CPU_PRICE_USD",
    "PCIeModel",
    "TransferLedger",
]
