"""Cycle accounting for simulated kernels.

The timing model is deliberately simple and *mechanistic*: every number
it produces is the sum of effects the simulator actually observed
(instructions issued warp-by-warp, divergent groups serialised, memory
transactions after coalescing, atomic conflicts, spin iterations).

Per SM we accumulate:

* ``issue_cycles`` -- warp-instruction issue, including divergence
  serialisation and spin-lock retries;
* ``mem_transactions`` / ``mem_bytes`` -- coalesced 64 B transactions;
* ``mem_instructions`` -- warp-group memory accesses (the latency unit:
  a warp's lane requests pipeline concurrently, so an uncoalesced
  access pays bandwidth per transaction but latency only once);
* ``atomic_cycles`` -- serialisation of conflicting atomics.

An SM's time is ``max(issue, memory) + atomic``, where the memory term
is the larger of the bandwidth cost (bytes at the SM's bandwidth share)
and the latency cost (transactions x latency, divided by the number of
warps available to hide it). The kernel's time is the maximum over SMs
plus the fixed launch overhead -- i.e. the critical path, which is what
the paper repeatedly identifies as the determinant of bulk-execution
time (Sections 5.2, 6.2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.gpu.spec import GPUSpec


@dataclass
class KernelStats:
    """Mutable per-kernel accounting, one slot per SM."""

    num_sms: int
    issue_cycles: List[float] = field(default_factory=list)
    mem_transactions: List[int] = field(default_factory=list)
    #: Memory *instructions* (warp-group accesses): the unit that pays
    #: latency. One instruction may produce many transactions, but the
    #: lanes' requests pipeline concurrently -- only dependent
    #: instructions stall.
    mem_instructions: List[int] = field(default_factory=list)
    mem_bytes: List[int] = field(default_factory=list)
    atomic_cycles: List[float] = field(default_factory=list)
    resident_warps: List[int] = field(default_factory=list)
    # Aggregate event counters (whole kernel).
    ops_executed: int = 0
    divergent_serializations: int = 0
    spin_iterations: int = 0
    atomic_conflicts: int = 0
    rounds: int = 0
    threads_launched: int = 0
    threads_aborted: int = 0

    def __post_init__(self) -> None:
        zeros = [0] * self.num_sms
        self.issue_cycles = [0.0] * self.num_sms
        self.mem_transactions = list(zeros)
        self.mem_instructions = list(zeros)
        self.mem_bytes = list(zeros)
        self.atomic_cycles = [0.0] * self.num_sms
        self.resident_warps = list(zeros)

    def merge(self, other: "KernelStats") -> None:
        """Fold another kernel's stats into this one (sequential launches)."""
        for i in range(self.num_sms):
            self.issue_cycles[i] += other.issue_cycles[i]
            self.mem_transactions[i] += other.mem_transactions[i]
            self.mem_instructions[i] += other.mem_instructions[i]
            self.mem_bytes[i] += other.mem_bytes[i]
            self.atomic_cycles[i] += other.atomic_cycles[i]
            self.resident_warps[i] = max(
                self.resident_warps[i], other.resident_warps[i]
            )
        self.ops_executed += other.ops_executed
        self.divergent_serializations += other.divergent_serializations
        self.spin_iterations += other.spin_iterations
        self.atomic_conflicts += other.atomic_conflicts
        self.rounds += other.rounds
        self.threads_launched += other.threads_launched
        self.threads_aborted += other.threads_aborted


@dataclass(frozen=True)
class KernelTiming:
    """Resolved timing of one kernel launch."""

    cycles: float
    seconds: float
    issue_cycles: float
    memory_cycles: float
    atomic_cycles: float
    bound: str  # "compute" | "memory"

    def __add__(self, other: "KernelTiming") -> "KernelTiming":
        return KernelTiming(
            cycles=self.cycles + other.cycles,
            seconds=self.seconds + other.seconds,
            issue_cycles=self.issue_cycles + other.issue_cycles,
            memory_cycles=self.memory_cycles + other.memory_cycles,
            atomic_cycles=self.atomic_cycles + other.atomic_cycles,
            bound=self.bound if self.issue_cycles >= other.issue_cycles else other.bound,
        )


#: Perf-canary hook: ``REPRO_PERF_HANDICAP=<factor>`` multiplies the
#: simulated seconds of every kernel launch. The CI perf-trajectory
#: lane uses it to prove the regression gate actually fires (a 2x
#: handicap must turn ``scripts/bench_compare.py`` red); it must never
#: be set in normal runs. Applying it here -- at the source, where
#: each :class:`KernelReport`'s timing is resolved -- rather than
#: editing a bulk's breakdown after the fact keeps every consumer of
#: kernel time consistent: per-wave trace spans, the execution phase
#: of the breakdown, and the bench figures all see the same slowdown.
PERF_HANDICAP_ENV = "REPRO_PERF_HANDICAP"


def perf_handicap_factor() -> float:
    """The active handicap multiplier (1.0 when the canary is off)."""
    raw = os.environ.get(PERF_HANDICAP_ENV)
    if not raw:
        return 1.0
    factor = float(raw)
    return factor if factor > 1.0 else 1.0


def with_perf_handicap(timing: KernelTiming) -> KernelTiming:
    """Scale a resolved kernel timing by the active handicap."""
    factor = perf_handicap_factor()
    if factor == 1.0:
        return timing
    return replace(timing, seconds=timing.seconds * factor)


class GpuCostModel:
    """Translates micro-op events into cycles for a given :class:`GPUSpec`."""

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec
        # Pre-computed per-warp issue costs.
        self._warp_issue = float(spec.warp_issue_cycles)
        # A full warp of transcendentals: 32 lanes over the SM's SFUs.
        self._sfu_warp_cycles = float(spec.sfu_op_cycles * 2)

    # ------------------------------------------------------------------
    # Issue costs (charged once per divergent group per round).
    # ------------------------------------------------------------------
    def issue_plain(self) -> float:
        """Issue cost of one simple warp instruction (read/write/etc.)."""
        return self._warp_issue

    def issue_compute(self, amount: int) -> float:
        """Issue cost of ``amount`` back-to-back ALU instructions."""
        return self._warp_issue * max(1, amount)

    def issue_sfu(self, amount: int) -> float:
        """Issue cost of ``amount`` transcendental (``sinf``) calls."""
        return self._sfu_warp_cycles * max(1, amount)

    def issue_spin(self) -> float:
        """Cycles burnt by one spin-lock retry iteration."""
        return float(self.spec.spin_iteration_cycles)

    # ------------------------------------------------------------------
    # Memory and atomics.
    # ------------------------------------------------------------------
    def coalesce(self, addresses: List[int], width: int) -> int:
        """Number of memory transactions for one warp-group access.

        GT200 coalescing: the addresses touched by the group are packed
        into aligned ``memory_transaction_bytes`` segments; each distinct
        segment is one transaction.
        """
        if not addresses:
            return 0
        seg = self.spec.memory_transaction_bytes
        segments = set()
        for addr in addresses:
            first = addr // seg
            last = (addr + max(1, width) - 1) // seg
            segments.add(first)
            if last != first:
                segments.add(last)
        return len(segments)

    def coalesce_groups(
        self,
        group_idx: "np.ndarray",
        addresses: "np.ndarray",
        widths: "np.ndarray",
        n_groups: int,
    ) -> "np.ndarray":
        """Array form of :meth:`coalesce` for many warp-group accesses.

        ``group_idx`` assigns each address to a dense group id in
        ``[0, n_groups)``; ``widths`` is the per-address effective
        width (one warp-group access applies a single width to all its
        lanes, so callers broadcast the group's width). Returns the
        per-group transaction count, bit-identical to calling
        :meth:`coalesce` per group -- the vectorized execution
        backend's replay depends on that equivalence.
        """
        import numpy as np

        seg = self.spec.memory_transaction_bytes
        first = addresses // seg
        last = (addresses + np.maximum(widths, 1) - 1) // seg
        gids = np.concatenate([group_idx, group_idx])
        segs = np.concatenate([first, last])
        # Sort (group, segment) pairs -- packed into one int64 when the
        # value ranges allow (segments are bounded by the pretend
        # address space), falling back to a two-key lexsort otherwise.
        seg_bits = max(1, int(segs.max()).bit_length()) if len(segs) else 1
        grp_bits = max(1, int(n_groups).bit_length())
        if segs.min() >= 0 and seg_bits + grp_bits <= 62:
            packed = np.sort((gids.astype(np.int64) << seg_bits) | segs)
            fresh = np.ones(len(packed), dtype=bool)
            if len(packed) > 1:
                fresh[1:] = packed[1:] != packed[:-1]
            return np.bincount(packed[fresh] >> seg_bits, minlength=n_groups)
        order = np.lexsort((segs, gids))
        g, s = gids[order], segs[order]
        fresh = np.ones(len(g), dtype=bool)
        if len(g) > 1:
            fresh[1:] = (g[1:] != g[:-1]) | (s[1:] != s[:-1])
        return np.bincount(g[fresh], minlength=n_groups)

    def atomic_serialization(self, conflicts: int) -> float:
        """Extra cycles when ``conflicts`` lanes hit the same address."""
        if conflicts <= 1:
            return 0.0
        return float((conflicts - 1) * self.spec.atomic_serialize_cycles)

    # ------------------------------------------------------------------
    # Kernel resolution.
    # ------------------------------------------------------------------
    def resolve(self, stats: KernelStats) -> KernelTiming:
        """Collapse per-SM accounting into the kernel's critical path."""
        spec = self.spec
        bw_per_cycle = spec.bandwidth_bytes_per_cycle_per_sm
        worst = 0.0
        worst_parts = (0.0, 0.0, 0.0)
        bound = "compute"
        for sm in range(stats.num_sms):
            issue = stats.issue_cycles[sm]
            bw_cycles = stats.mem_bytes[sm] / bw_per_cycle if bw_per_cycle else 0.0
            hiding = max(1, min(stats.resident_warps[sm], spec.latency_hiding_warps))
            lat_cycles = (
                stats.mem_instructions[sm] * spec.memory_latency_cycles / hiding
            )
            mem = max(bw_cycles, lat_cycles)
            total = max(issue, mem) + stats.atomic_cycles[sm]
            if total > worst:
                worst = total
                worst_parts = (issue, mem, stats.atomic_cycles[sm])
                bound = "memory" if mem > issue else "compute"
        seconds = spec.seconds(worst) + spec.kernel_launch_overhead_s
        return KernelTiming(
            cycles=worst,
            seconds=seconds,
            issue_cycles=worst_parts[0],
            memory_cycles=worst_parts[1],
            atomic_cycles=worst_parts[2],
            bound=bound,
        )


@dataclass
class TimeBreakdown:
    """Named phase timings for a bulk execution (Figures 5, 12, 17)."""

    phases: Dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fraction(self, phase: str) -> float:
        """Share of ``phase`` in the total (0 when nothing was timed)."""
        total = self.total
        if total <= 0.0:
            return 0.0
        return self.phases.get(phase, 0.0) / total

    def merged(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown(dict(self.phases))
        for phase, seconds in other.phases.items():
            out.add(phase, seconds)
        return out
