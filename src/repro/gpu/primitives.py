"""GPU data-parallel primitives with analytic cost models.

Section 4.2 of the paper builds the k-set pipeline out of "existing
efficient data-parallel primitives on the GPU" (sort, map, scatter --
the primitive library of He et al. [8]), and PART/grouping use radix
sort / radix partitioning. These kernels are perfectly regular, so
instead of stepping them thread-by-thread through the SIMT engine we
execute them *functionally* with numpy and charge an *analytic* cost:
bytes moved against device bandwidth plus per-pass kernel launches.
That is both faster to simulate and more accurate than an interpreter
for streaming kernels whose performance is bandwidth-bound by design.

Every method returns ``(result, seconds)`` so callers can fold the cost
into their bulk-generation phase timings (Figures 5, 12, 17).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.errors import ConfigError
from repro.gpu.spec import C1060, GPUSpec


class PrimitiveLibrary:
    """Sort/scan/map/search primitives bound to a :class:`GPUSpec`."""

    def __init__(self, spec: GPUSpec = C1060) -> None:
        self.spec = spec
        self._bw = spec.memory_bandwidth_bytes_per_s
        self._launch = spec.kernel_launch_overhead_s

    # ------------------------------------------------------------------
    # Cost helpers.
    # ------------------------------------------------------------------
    def _stream_cost(self, bytes_moved: float, kernels: int = 1) -> float:
        """Seconds for a bandwidth-bound pass over ``bytes_moved``."""
        return bytes_moved / self._bw + kernels * self._launch

    def map_cost(self, n: int, bytes_per_elem: int = 8, flops: int = 4) -> float:
        """Cost of a map over ``n`` elements (read + write + ALU)."""
        compute = n * flops / (self.spec.total_cores * self.spec.clock_hz)
        return max(self._stream_cost(2 * n * bytes_per_elem), compute + self._launch)

    def scan_cost(self, n: int, width: int = 4) -> float:
        """Cost of an exclusive prefix sum (up-sweep + down-sweep)."""
        return self._stream_cost(4 * n * width, kernels=2)

    def radix_pass_cost(self, n: int, record_bytes: int = 12) -> float:
        """One radix partitioning pass: histogram read + scatter write."""
        return self._stream_cost(3 * n * record_bytes, kernels=2)

    def sort_cost(self, n: int, key_bits: int = 32, record_bytes: int = 12,
                  bits_per_pass: int = 4) -> float:
        """Full LSD radix sort of ``n`` records."""
        passes = max(1, math.ceil(key_bits / bits_per_pass))
        return passes * self.radix_pass_cost(n, record_bytes)

    def binary_search_cost(self, n_queries: int, haystack: int) -> float:
        """``n_queries`` binary searches over a sorted array."""
        if haystack <= 1 or n_queries == 0:
            return self._launch
        probes = max(1, math.ceil(math.log2(haystack)))
        bytes_moved = n_queries * probes * self.spec.memory_transaction_bytes
        return self._stream_cost(bytes_moved)

    # ------------------------------------------------------------------
    # Functional primitives (numpy-backed) returning (result, seconds).
    # ------------------------------------------------------------------
    def sort_pairs(
        self, keys: np.ndarray, values: np.ndarray, key_bits: int = 32
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Stable sort of ``values`` by ``keys`` (LSD radix cost)."""
        if keys.shape != values.shape and keys.shape[0] != values.shape[0]:
            raise ConfigError("keys/values length mismatch")
        order = np.argsort(keys, kind="stable")
        cost = self.sort_cost(len(keys), key_bits=key_bits)
        return keys[order], values[order], cost

    def sort_by_composite(
        self, primary: np.ndarray, secondary: np.ndarray, key_bits: int = 64
    ) -> Tuple[np.ndarray, float]:
        """Order (argsort) by ``(primary, secondary)``; radix cost."""
        order = np.lexsort((secondary, primary))
        cost = self.sort_cost(len(primary), key_bits=key_bits)
        return order, cost

    def radix_partition(
        self, keys: np.ndarray, passes: int, bits_per_pass: int = 4,
        key_bits: int | None = None,
    ) -> Tuple[np.ndarray, float]:
        """Partial MSD radix partitioning (the grouping of Appendix D).

        After ``passes`` passes of ``bits_per_pass`` bits each, records
        are grouped by the top ``passes * bits_per_pass`` bits of the
        key, stably. ``passes=ceil(key_bits/bits)`` is a full grouping.
        Returns the permutation and the cost of the executed passes.
        """
        if passes < 0:
            raise ConfigError("passes must be >= 0")
        n = len(keys)
        if passes == 0 or n == 0:
            return np.arange(n, dtype=np.int64), 0.0
        if key_bits is None:
            high = int(keys.max()) if n else 0
            key_bits = max(1, high.bit_length())
        used_bits = min(key_bits, passes * bits_per_pass)
        shift = key_bits - used_bits
        buckets = (keys.astype(np.int64) >> shift) if shift > 0 else keys
        order = np.argsort(buckets, kind="stable")
        executed = math.ceil(used_bits / bits_per_pass)
        cost = executed * self.radix_pass_cost(n)
        return order, cost

    def exclusive_scan(self, values: np.ndarray) -> Tuple[np.ndarray, float]:
        """Exclusive prefix sum."""
        out = np.zeros_like(values)
        if len(values) > 1:
            np.cumsum(values[:-1], out=out[1:])
        return out, self.scan_cost(len(values))

    def group_boundaries(self, sorted_keys: np.ndarray) -> Tuple[np.ndarray, float]:
        """Start offsets of each run of equal keys (a map primitive).

        Returns an index array ``starts`` such that group ``i`` spans
        ``sorted_keys[starts[i]:starts[i+1]]`` (with an implicit final
        boundary at ``len``).
        """
        n = len(sorted_keys)
        if n == 0:
            return np.zeros(0, dtype=np.int64), self._launch
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=change[1:])
        starts = np.flatnonzero(change).astype(np.int64)
        return starts, self.map_cost(n)

    def binary_search(
        self, haystack: np.ndarray, needles: np.ndarray
    ) -> Tuple[np.ndarray, float]:
        """Left insertion points of ``needles`` in sorted ``haystack``."""
        idx = np.searchsorted(haystack, needles, side="left").astype(np.int64)
        return idx, self.binary_search_cost(len(needles), len(haystack))

    @staticmethod
    def stable_group_runs(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Array form of a stable group-by: ``(order, starts)``.

        ``keys[order]`` is stably sorted and ``starts`` marks each
        run's first position, so run ``i`` spans
        ``order[starts[i]:starts[i+1]]``. This is the functional shape
        of radix grouping, reused host-side by the vectorized
        execution backend to split waves by transaction type; it
        charges no simulated cost -- the device-side work it stands in
        for is already charged by the callers (sort/partition costs in
        bulk generation, per-op costs in the replay).
        """
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        n = len(sorted_keys)
        if n == 0:
            return order, np.zeros(0, dtype=np.int64)
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=change[1:])
        return order, np.flatnonzero(change).astype(np.int64)
