"""Hardware specifications for the simulated devices.

The paper (Appendix E) evaluates on one NVIDIA Tesla C1060 GPU and one
Intel Xeon E5520 CPU. These dataclasses carry the published parameters
of both parts plus the handful of micro-architectural constants the
cost model needs (instruction issue width, memory transaction size,
atomic serialisation cost). One parameter set drives *every*
experiment -- there are no per-figure fudge factors.

Sources for the numbers:

* C1060: 30 SMs x 8 SPs = 240 cores at 1.3 GHz, 4 GB GDDR3; the paper
  measures 73 GB/s device bandwidth and 3.4 GB/s PCIe bandwidth.
* E5520: 4 cores at 2.26 GHz, 8 MB shared L3; ~25.6 GB/s peak memory
  bandwidth (3 channels DDR3-1066).
* Warp size 32 and 4-cycle warp issue (32 lanes over 8 SPs) are the
  GT200 architecture's published figures.
* The paper reports a single GPU core achieves 25-50 % of the
  throughput of a single CPU core (Section 6.3); with the clock ratio
  1.3/2.26 and a superscalar factor of 2 for the Nehalem core the model
  lands at ~0.29, inside that band.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class GPUSpec:
    """Parameters of a simulated GPU.

    The defaults describe the NVIDIA Tesla C1060 used in the paper.
    """

    name: str = "NVIDIA Tesla C1060"
    num_sms: int = 30
    cores_per_sm: int = 8
    clock_hz: float = 1.3e9
    warp_size: int = 32
    device_memory_bytes: int = 4 * 1024**3
    #: Measured device-memory bandwidth (paper, Appendix E).
    memory_bandwidth_bytes_per_s: float = 73e9
    #: Measured PCIe bandwidth between host and device (paper, App. E).
    pcie_bandwidth_bytes_per_s: float = 3.4e9
    #: One-way latency charged per host<->device transfer call.
    pcie_latency_s: float = 15e-6
    #: Fixed kernel launch overhead (driver + dispatch), seconds.
    kernel_launch_overhead_s: float = 8e-6
    #: Size of one coalesced memory transaction (GT200 segment), bytes.
    memory_transaction_bytes: int = 64
    #: Issue cycles for one warp instruction (32 lanes over 8 SPs).
    warp_issue_cycles: int = 4
    #: Extra cycles to serialise one conflicting atomic to an address.
    atomic_serialize_cycles: int = 36
    #: Cycles burnt by one iteration of a spin-lock retry loop: the
    #: volatile read of the lock word goes to device memory every time
    #: (GT200 has no coherent cache), so a retry costs a full memory
    #: round trip.
    spin_iteration_cycles: int = 300
    #: Cycles for one transcendental (sinf) on the SFU.
    sfu_op_cycles: int = 8
    #: Maximum thread blocks resident per SM (occupancy ceiling).
    max_blocks_per_sm: int = 8
    #: Device-memory access latency (GT200 has no general L2 cache).
    memory_latency_cycles: int = 300
    #: Resident warps needed on an SM to fully hide memory latency.
    latency_hiding_warps: int = 16
    #: Pipeline cycles per dependent scalar op when a single thread
    #: runs alone (the ad-hoc baseline). One micro-op expands to ~5-10
    #: machine instructions; a lone thread pays the full ~24-cycle
    #: dependent-issue latency for each, with nothing to overlap --
    #: which is exactly why a single GPU core loses to a CPU core
    #: (Section 6.3).
    serial_op_overhead_cycles: int = 128

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ConfigError("GPU must have positive SM/core counts")
        if self.warp_size <= 0 or self.warp_size % 2:
            raise ConfigError("warp size must be a positive even number")
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")

    @property
    def total_cores(self) -> int:
        """Total scalar cores (SMs x cores per SM): 240 on the C1060."""
        return self.num_sms * self.cores_per_sm

    @property
    def bandwidth_bytes_per_cycle_per_sm(self) -> float:
        """Device bandwidth share of one SM, in bytes per clock cycle."""
        per_sm = self.memory_bandwidth_bytes_per_s / self.num_sms
        return per_sm / self.clock_hz

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count on this device to seconds."""
        return cycles / self.clock_hz


@dataclass(frozen=True)
class CPUSpec:
    """Parameters of the simulated CPU counterpart.

    Defaults describe the Intel Xeon E5520 from the paper. The
    ``superscalar_factor`` folds out-of-order multi-issue into a single
    effective-IPC multiplier, which is the right granularity for an
    op-stream cost model.
    """

    name: str = "Intel Xeon E5520"
    num_cores: int = 4
    clock_hz: float = 2.26e9
    #: Effective instructions per cycle relative to one GPU SP lane.
    superscalar_factor: float = 2.0
    memory_bandwidth_bytes_per_s: float = 25.6e9
    l3_cache_bytes: int = 8 * 1024**2
    #: Average cycles for a cache-missing random access.
    memory_latency_cycles: int = 200
    #: Fraction of random accesses served by the cache hierarchy
    #: (OLTP working sets far exceed the 8 MB L3).
    cache_hit_ratio: float = 0.4
    #: Per-transaction dispatch overhead, cycles (H-Store-style engine:
    #: queue pop, stored-procedure call, commit bookkeeping).
    txn_dispatch_cycles: int = 1000

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("CPU must have a positive core count")
        if not 0.0 <= self.cache_hit_ratio <= 1.0:
            raise ConfigError("cache_hit_ratio must be within [0, 1]")

    @property
    def effective_ops_per_s_per_core(self) -> float:
        """Scalar op throughput of one core (clock x IPC factor)."""
        return self.clock_hz * self.superscalar_factor

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count on this device to seconds."""
        return cycles / self.clock_hz


#: The exact devices used in the paper's evaluation (Appendix E).
C1060 = GPUSpec()
XEON_E5520 = CPUSpec()

#: Unit prices used for the cost-efficiency comparison (Section 6.3,
#: quoted from dell.com, Nov-15 2010).
GPU_PRICE_USD = 1699.00
CPU_PRICE_USD = 649.00


@dataclass(frozen=True)
class MachineSpec:
    """The full evaluation machine: one GPU + one CPU + prices."""

    gpu: GPUSpec = field(default_factory=GPUSpec)
    cpu: CPUSpec = field(default_factory=CPUSpec)
    gpu_price_usd: float = GPU_PRICE_USD
    cpu_price_usd: float = CPU_PRICE_USD


PAPER_MACHINE = MachineSpec()
