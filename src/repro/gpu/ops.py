"""Micro-op instruction set interpreted by the SIMT simulator.

Stored procedures in this reproduction are Python *generator functions*
that yield micro-ops and receive their results back via ``send``. A
generator is the natural encoding of a resumable GPU thread: the SIMT
engine (:mod:`repro.gpu.simt`) steps thousands of such generators in
warp lockstep, one op per thread per round, exactly as an SM issues one
warp instruction at a time.

The op vocabulary mirrors what the paper's CUDA kernels do:

* :class:`Read` / :class:`Write` -- a *basic operation* in the paper's
  sense (Section 4.1): a read or write of one data item (one column
  value of one row).
* :class:`Compute` / :class:`SfuCompute` -- ALU work; the micro
  benchmark's ``sinf`` loop (Section 6.1) is ``SfuCompute``.
* :class:`LockAcquire` / :class:`LockRelease` -- the spin locks of
  Appendix C. With ``key=None`` this is the basic 0/1 spin lock of
  Figure 10 (may deadlock); with an integer key it is the counter-based
  deterministic lock of Figure 11.
* :class:`AtomicAdd` / :class:`AtomicCAS` -- raw device atomics.
* :class:`IndexProbe` -- a hash-index lookup (two dependent memory
  reads' worth of traffic).
* :class:`InsertRow` / :class:`DeleteRow` -- deferred mutations routed
  through the temporary insert buffer (Section 3.2: "for transactions
  with insertions, we allocate a temporary buffer ... after the kernel
  execution, we perform a batched update").
* :class:`Abort` -- the transaction aborts; the executor rolls back via
  the undo log if the transaction type required one (Appendix D).

Each op class carries a small integer ``kind`` used for fast dispatch
and for warp-divergence detection: threads of one warp whose current
ops have different ``(kind, tag)`` shapes are serialised, which is how
branch divergence manifests in the cost model.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

# Kind tags (ints for fast dispatch in the simulator hot loop).
READ = 0
WRITE = 1
COMPUTE = 2
SFU_COMPUTE = 3
LOCK_ACQUIRE = 4
LOCK_RELEASE = 5
ATOMIC_ADD = 6
ATOMIC_CAS = 7
INDEX_PROBE = 8
INSERT_ROW = 9
DELETE_ROW = 10
ABORT = 11
THREAD_FENCE = 12
SET_BRANCH = 13

KIND_NAMES = {
    READ: "READ",
    WRITE: "WRITE",
    COMPUTE: "COMPUTE",
    SFU_COMPUTE: "SFU_COMPUTE",
    LOCK_ACQUIRE: "LOCK_ACQUIRE",
    LOCK_RELEASE: "LOCK_RELEASE",
    ATOMIC_ADD: "ATOMIC_ADD",
    ATOMIC_CAS: "ATOMIC_CAS",
    INDEX_PROBE: "INDEX_PROBE",
    INSERT_ROW: "INSERT_ROW",
    DELETE_ROW: "DELETE_ROW",
    ABORT: "ABORT",
    THREAD_FENCE: "THREAD_FENCE",
    SET_BRANCH: "SET_BRANCH",
}


class Op:
    """Base class for all micro-ops. Subclasses set ``kind``."""

    __slots__ = ()
    kind: int = -1

    def shape(self) -> tuple:
        """Divergence signature: threads with different shapes serialise.

        The default shape is just the kind; memory ops do not diverge on
        *address* (SIMT lanes may touch different addresses in one
        instruction), only on which instruction they sit at.
        """
        return (self.kind,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = KIND_NAMES.get(self.kind, str(self.kind))
        fields = ", ".join(
            f"{slot}={getattr(self, slot)!r}"
            for slot in getattr(self, "__slots__", ())
        )
        return f"{name}({fields})"


class Read(Op):
    """Read ``table.column[row]``; the op's result is the value."""

    __slots__ = ("table", "column", "row")
    kind = READ

    def __init__(self, table: str, column: str, row: int) -> None:
        self.table = table
        self.column = column
        self.row = row


class Write(Op):
    """Write ``value`` into ``table.column[row]``."""

    __slots__ = ("table", "column", "row", "value")
    kind = WRITE

    def __init__(self, table: str, column: str, row: int, value: Any) -> None:
        self.table = table
        self.column = column
        self.row = row
        self.value = value


class Compute(Op):
    """``amount`` scalar ALU operations (cycles on one SP lane)."""

    __slots__ = ("amount",)
    kind = COMPUTE

    def __init__(self, amount: int) -> None:
        self.amount = int(amount)


class SfuCompute(Op):
    """``amount`` transcendental ops (``sinf`` calls) on the SFU."""

    __slots__ = ("amount",)
    kind = SFU_COMPUTE

    def __init__(self, amount: int) -> None:
        self.amount = int(amount)


class LockAcquire(Op):
    """Acquire the spin lock ``lock_id``.

    With ``key=None`` this is the basic 0/1 spin lock (Figure 10):
    whoever wins the ``atomicCAS`` race proceeds -- non-deterministic
    order and deadlock-prone across multiple locks.

    With an integer ``key`` this is the counter lock (Figure 11): the
    thread spins until the lock's counter equals ``key``. Keys are
    assigned from T-dependency ranks, which both orders conflicting
    transactions by timestamp and makes deadlock impossible. A reader
    whose run shares a key passes the gate without taking exclusive
    ownership (``shared=True``).
    """

    __slots__ = ("lock_id", "key", "shared")
    kind = LOCK_ACQUIRE

    def __init__(
        self, lock_id: int, key: Optional[int] = None, shared: bool = False
    ) -> None:
        self.lock_id = lock_id
        self.key = key
        self.shared = shared


class LockRelease(Op):
    """Release the spin lock ``lock_id``.

    For counter locks, ``advance`` says whether this release bumps the
    counter to the next key ("flag == marked" in Figure 11). For a
    shared reader run the engine maintains a countdown so that exactly
    the last finishing reader advances the counter.
    """

    __slots__ = ("lock_id", "advance")
    kind = LOCK_RELEASE

    def __init__(self, lock_id: int, advance: bool = True) -> None:
        self.lock_id = lock_id
        self.advance = advance


class AtomicAdd(Op):
    """``atomicAdd`` on a named counter space; result is the old value."""

    __slots__ = ("space", "index", "value")
    kind = ATOMIC_ADD

    def __init__(self, space: str, index: int, value: int) -> None:
        self.space = space
        self.index = index
        self.value = value


class AtomicCAS(Op):
    """``atomicCAS`` on a named counter space; result is the old value."""

    __slots__ = ("space", "index", "compare", "value")
    kind = ATOMIC_CAS

    def __init__(self, space: str, index: int, compare: int, value: int) -> None:
        self.space = space
        self.index = index
        self.compare = compare
        self.value = value


class IndexProbe(Op):
    """Probe hash index ``index`` with ``key``; result is a row id or -1."""

    __slots__ = ("index", "key")
    kind = INDEX_PROBE

    def __init__(self, index: str, key: Any) -> None:
        self.index = index
        self.key = key


class InsertRow(Op):
    """Append ``values`` to ``table``'s insert buffer.

    The result is the *provisional* row id the row will occupy after the
    post-kernel batched apply (Section 3.2).
    """

    __slots__ = ("table", "values")
    kind = INSERT_ROW

    def __init__(self, table: str, values: Sequence[Any]) -> None:
        self.table = table
        self.values = values


class DeleteRow(Op):
    """Mark ``table`` row ``row`` deleted (applied with the batch)."""

    __slots__ = ("table", "row")
    kind = DELETE_ROW

    def __init__(self, table: str, row: int) -> None:
        self.table = table
        self.row = row


class Abort(Op):
    """Abort the transaction; the result pool records ``reason``."""

    __slots__ = ("reason",)
    kind = ABORT

    def __init__(self, reason: str = "") -> None:
        self.reason = reason


class ThreadFence(Op):
    """``__threadfence()`` -- a memory barrier; timing-only."""

    __slots__ = ()
    kind = THREAD_FENCE


class SetBranch(Op):
    """Enter a branch of the combined kernel's ``switch`` clause.

    The registry wraps every stored procedure so its first op is
    ``SetBranch(type_id)``: from then on the thread diverges from
    warp-mates sitting in a different case, even where the per-op
    shapes coincide -- the compiled switch puts each case at a distinct
    PC (Section 3.2). Threads that execute several transactions in a
    row (PART) re-tag themselves at each transaction boundary.
    """

    __slots__ = ("tag",)
    kind = SET_BRANCH

    def __init__(self, tag: int) -> None:
        self.tag = tag


#: Type alias for a stored procedure body: a generator over micro-ops.
OpStream = Generator[Op, Any, None]

#: Op kinds the vectorized execution backend can express and replay
#: exactly (repro.core.backends). Raw-atomic ops (AtomicAdd/AtomicCAS)
#: and the basic 0/1 spin lock stay interpreter-only: their outcomes
#: depend on CAS races the closed form cannot predict. Counter locks
#: (LOCK_ACQUIRE with a key, LOCK_RELEASE) *are* vectorizable: the
#: rank gates make every pass round a deterministic function of the
#: release schedule, which the lockstep scheduler
#: (repro.core.backends.lockstep) derives in closed form.
VECTORIZABLE_KINDS = frozenset(
    {
        READ,
        WRITE,
        COMPUTE,
        SFU_COMPUTE,
        LOCK_ACQUIRE,
        LOCK_RELEASE,
        INDEX_PROBE,
        INSERT_ROW,
        DELETE_ROW,
        ABORT,
        THREAD_FENCE,
        SET_BRANCH,
    }
)
