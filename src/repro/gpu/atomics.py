"""Atomic counters and spin locks for the simulated device.

Two lock flavours, exactly as Appendix C of the paper:

* **Basic 0/1 spin lock** (Figure 10): ``atomicCAS(lock, 0, 1)`` in a
  retry loop. Simple, but execution order is non-deterministic and
  multi-lock transactions can deadlock -- the simulator's scheduler
  detects that and raises :class:`~repro.errors.DeadlockError`.
* **Counter lock** (Figure 11): the lock value is a monotonically
  increasing counter; a thread holding key ``k`` spins until the
  counter equals ``k``. Keys are assigned from T-dependency-graph
  ranks, which simultaneously enforces timestamp order and rules out
  deadlock (the rank order is a DAG order).

Reader runs: consecutive readers of one item share a rank, so they all
carry the same key and pass the gate concurrently (``shared=True``).
The counter must advance only after the *whole* run finishes, so the
lock table keeps a per-``(lock, key)`` countdown initialised to the run
size; the last reader to release advances the counter ("flag == marked"
in Figure 11).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigError


class CounterSpace:
    """Named arrays of device counters targeted by atomic ops."""

    def __init__(self) -> None:
        self._arrays: Dict[str, np.ndarray] = {}

    def allocate(self, name: str, size: int, fill: int = 0) -> np.ndarray:
        if size < 0:
            raise ConfigError(f"counter space {name!r} size must be >= 0")
        arr = np.full(size, fill, dtype=np.int64)
        self._arrays[name] = arr
        return arr

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def array(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise ConfigError(f"unknown counter space {name!r}") from None

    def atomic_add(self, name: str, index: int, value: int) -> int:
        arr = self.array(name)
        old = int(arr[index])
        arr[index] = old + value
        return old

    def atomic_cas(self, name: str, index: int, compare: int, value: int) -> int:
        arr = self.array(name)
        old = int(arr[index])
        if old == compare:
            arr[index] = value
        return old


class LockTable:
    """Spin locks over a dense id space ``[0, n_locks)``.

    One instance serves both flavours: :meth:`try_acquire_basic` is the
    0/1 CAS lock, :meth:`try_pass_counter` / :meth:`release_counter`
    implement the deterministic counter lock.
    """

    def __init__(self, n_locks: int) -> None:
        if n_locks < 0:
            raise ConfigError("lock table size must be >= 0")
        self.n_locks = n_locks
        self.values = np.zeros(n_locks, dtype=np.int64)
        #: Countdown of shared readers still holding (lock, key) runs.
        self._run_remaining: Dict[Tuple[int, int], int] = {}

    # -- basic 0/1 lock (Figure 10) ------------------------------------
    def try_acquire_basic(self, lock_id: int) -> bool:
        """``atomicCAS(lock, 0, 1)``; True when the lock was taken."""
        if self.values[lock_id] == 0:
            self.values[lock_id] = 1
            return True
        return False

    def release_basic(self, lock_id: int) -> None:
        self.values[lock_id] = 0

    # -- counter lock (Figure 11) --------------------------------------
    def set_run_size(self, lock_id: int, key: int, size: int) -> None:
        """Register the size of a shared-reader run at (lock, key)."""
        if size <= 0:
            raise ConfigError("reader run size must be positive")
        self._run_remaining[(lock_id, key)] = size

    def try_pass_counter(self, lock_id: int, key: int) -> bool:
        """True when the lock counter has reached ``key``."""
        return int(self.values[lock_id]) == key

    def release_counter(
        self, lock_id: int, key: int, shared: bool, advance: bool = True
    ) -> None:
        """Finish the critical section; maybe advance the counter.

        Exclusive holders (writers) advance unconditionally when
        ``advance``; shared holders decrement the run countdown and the
        last one advances.
        """
        if not advance:
            return
        if shared:
            slot = (lock_id, key)
            remaining = self._run_remaining.get(slot, 1) - 1
            if remaining <= 0:
                self._run_remaining.pop(slot, None)
                self.values[lock_id] += 1
            else:
                self._run_remaining[slot] = remaining
        else:
            self.values[lock_id] += 1

    def reset(self) -> None:
        self.values[:] = 0
        self._run_remaining.clear()
