"""Device-memory interface between the SIMT engine and storage.

The simulator is storage-agnostic: any object satisfying
:class:`DeviceStore` can back a kernel. The storage package provides
the real column-/row-store adapters; :class:`DictStore` here is a tiny
reference implementation used by unit tests and examples that exercise
the simulator directly.

Addresses are flat byte offsets in a pretend device address space. The
cost model only uses them for *coalescing* -- deciding how many 64 B
transactions one warp access needs -- so the only property that matters
is relative layout: column stores place consecutive rows of a column
contiguously (coalesced), row stores stride them by the row width
(uncoalesced). That is precisely the effect behind the paper's
column-vs-row result (Appendix F.2).
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, Sequence, Tuple

from repro.errors import StorageError


class DeviceStore(Protocol):
    """What the SIMT engine needs from a storage backend."""

    def read(self, table: str, column: str, row: int) -> Any:
        """Return ``table.column[row]``."""

    def write(self, table: str, column: str, row: int, value: Any) -> Any:
        """Set ``table.column[row]``; return the previous value."""

    def address_of(self, table: str, column: str, row: int) -> Tuple[int, int]:
        """Return ``(byte_address, width)`` of the cell for coalescing."""

    def probe(self, index: str, key: Any) -> int:
        """Hash-index lookup; row id or -1."""

    def probe_cost_addresses(self, index: str, key: Any) -> List[Tuple[int, int]]:
        """Addresses touched by one probe (for traffic accounting)."""

    def insert(self, table: str, values: Sequence[Any]) -> int:
        """Buffer an insert; return the provisional row id."""

    def delete(self, table: str, row: int) -> None:
        """Buffer a delete of ``row``."""

    def cancel_insert(self, table: str, row: int) -> None:
        """Roll back one insert (transaction abort)."""

    def cancel_delete(self, table: str, row: int) -> None:
        """Roll back one delete (transaction abort)."""

    def row_width(self, table: str) -> int:
        """Bytes per row (used to charge insert traffic)."""


class DictStore:
    """Minimal in-memory :class:`DeviceStore` for tests and demos.

    Tables are ``{column: list}`` dicts laid out column-major: the
    address of ``(column, row)`` is ``base(column) + row * width``, so
    neighbouring rows coalesce -- the same layout the real column store
    uses.
    """

    _WIDTH = 8  # pretend every value is a 64-bit word

    def __init__(self, tables: Dict[str, Dict[str, List[Any]]]) -> None:
        self._tables = tables
        self._indexes: Dict[str, Dict[Any, int]] = {}
        self._pending_inserts: Dict[str, List[Sequence[Any]]] = {}
        self._pending_deletes: Dict[str, List[int]] = {}
        self._bases: Dict[Tuple[str, str], int] = {}
        base = 0
        for tname, columns in sorted(tables.items()):
            for cname, values in sorted(columns.items()):
                self._bases[(tname, cname)] = base
                base += (len(values) + 1024) * self._WIDTH

    # -- functional ----------------------------------------------------
    def read(self, table: str, column: str, row: int) -> Any:
        try:
            return self._tables[table][column][row]
        except (KeyError, IndexError) as exc:
            raise StorageError(f"bad read {table}.{column}[{row}]") from exc

    def write(self, table: str, column: str, row: int, value: Any) -> Any:
        try:
            col = self._tables[table][column]
            old = col[row]
            col[row] = value
            return old
        except (KeyError, IndexError) as exc:
            raise StorageError(f"bad write {table}.{column}[{row}]") from exc

    def create_index(self, name: str, mapping: Dict[Any, int]) -> None:
        self._indexes[name] = dict(mapping)

    def probe(self, index: str, key: Any) -> int:
        return self._indexes.get(index, {}).get(key, -1)

    def probe_cost_addresses(self, index: str, key: Any) -> List[Tuple[int, int]]:
        # A hash probe is roughly two dependent reads; fake bucket address.
        bucket = hash((index, key)) & 0xFFFFF
        return [(bucket * self._WIDTH, self._WIDTH), ((bucket + 7) * self._WIDTH, self._WIDTH)]

    def insert(self, table: str, values: Sequence[Any]) -> int:
        pending = self._pending_inserts.setdefault(table, [])
        columns = self._tables[table]
        first = next(iter(columns.values()), [])
        provisional = len(first) + len(pending)
        pending.append(list(values))
        return provisional

    def delete(self, table: str, row: int) -> None:
        self._pending_deletes.setdefault(table, []).append(row)

    def cancel_insert(self, table: str, row: int) -> None:
        pending = self._pending_inserts.get(table, [])
        columns = self._tables[table]
        first = next(iter(columns.values()), [])
        pos = row - len(first)
        if 0 <= pos < len(pending):
            pending[pos] = None

    def cancel_delete(self, table: str, row: int) -> None:
        rows = self._pending_deletes.get(table, [])
        if row in rows:
            rows.remove(row)

    def apply_batch(self) -> None:
        """Apply buffered inserts/deletes (post-kernel batched update)."""
        for table, rows in self._pending_inserts.items():
            columns = self._tables[table]
            names = list(columns)
            for values in rows:
                if values is None:
                    continue
                if len(values) != len(names):
                    raise StorageError(
                        f"insert into {table}: {len(values)} values for "
                        f"{len(names)} columns"
                    )
                for cname, value in zip(names, values):
                    columns[cname].append(value)
        self._pending_inserts.clear()
        for table, rows in self._pending_deletes.items():
            columns = self._tables[table]
            for row in rows:
                for col in columns.values():
                    col[row] = None
        self._pending_deletes.clear()

    # -- layout --------------------------------------------------------
    def address_of(self, table: str, column: str, row: int) -> Tuple[int, int]:
        base = self._bases[(table, column)]
        return base + row * self._WIDTH, self._WIDTH

    def row_width(self, table: str) -> int:
        return self._WIDTH * len(self._tables[table])
