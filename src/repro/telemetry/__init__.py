"""Unified telemetry: tracing, metrics, and Perfetto-loadable export.

The package bundles three pieces:

* :mod:`repro.telemetry.trace` -- span trees over the simulated and
  the wall clock (life-of-a-bulk tracing);
* :mod:`repro.telemetry.metrics` -- a cross-layer registry of
  counters, gauges, and exact-sample histograms (also the home of the
  repository's single percentile implementation);
* :mod:`repro.telemetry.export` -- Chrome trace-event JSON emission
  plus the schema validator CI runs on emitted artifacts.

Instrumented code never touches those directly; it asks for the
ambient :class:`TelemetrySession` via :func:`current`, which costs one
context-var read when telemetry is off::

    session = telemetry.current()
    if session is not None:
        session.tracer.phase("transfer_in", seconds)

Enable telemetry for a block of code with :func:`session`, for a whole
process with :func:`install`, or for any example/bench run -- no code
changes -- with ``REPRO_TRACE=1`` (see :func:`install_from_env`).
"""

from __future__ import annotations

import atexit
import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.telemetry.export import (
    load_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile,
)
from repro.telemetry.trace import (
    CAT_BULK,
    CAT_PHASE,
    CAT_SPAN,
    CAT_WAVE,
    DMA_PHASES,
    Span,
    Tracer,
)

__all__ = [
    "CAT_BULK",
    "CAT_PHASE",
    "CAT_SPAN",
    "CAT_WAVE",
    "DMA_PHASES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetrySession",
    "Tracer",
    "current",
    "install",
    "install_from_env",
    "load_trace",
    "percentile",
    "session",
    "to_chrome_trace",
    "uninstall",
    "validate_chrome_trace",
    "write_metrics",
    "write_trace",
]

#: Environment toggle: ``REPRO_TRACE=1`` traces the whole process and
#: writes ``repro-trace.json`` (or ``$REPRO_TRACE_FILE``) at exit.
TRACE_ENV = "REPRO_TRACE"
TRACE_FILE_ENV = "REPRO_TRACE_FILE"
DEFAULT_TRACE_FILE = "repro-trace.json"


@dataclass
class TelemetrySession:
    """One tracer + one metrics registry, active together."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def trace(self) -> dict:
        """Render the session as a Chrome trace-event object."""
        self.tracer.close_all()
        return to_chrome_trace(self.tracer, self.metrics)

    def write(self, path: str) -> str:
        """Write the session's trace JSON; returns the path."""
        self.tracer.close_all()
        return write_trace(path, self.tracer, self.metrics)


_session: ContextVar[Optional[TelemetrySession]] = ContextVar(
    "repro_telemetry_session", default=None
)


def current() -> Optional[TelemetrySession]:
    """The ambient session, or ``None`` when telemetry is off.

    This is the *only* call instrumented hot paths make when tracing
    is disabled -- a single context-var read and a branch.
    """
    return _session.get()


@contextmanager
def session(
    existing: Optional[TelemetrySession] = None,
) -> Iterator[TelemetrySession]:
    """Activate a telemetry session for the ``with`` block."""
    active = existing if existing is not None else TelemetrySession()
    token = _session.set(active)
    try:
        yield active
    finally:
        active.tracer.close_all()
        _session.reset(token)


def install(
    existing: Optional[TelemetrySession] = None,
) -> TelemetrySession:
    """Activate a session process-wide (until :func:`uninstall`)."""
    active = existing if existing is not None else TelemetrySession()
    _session.set(active)
    return active


def uninstall() -> Optional[TelemetrySession]:
    """Deactivate the ambient session and return it."""
    active = _session.get()
    if active is not None:
        active.tracer.close_all()
    _session.set(None)
    return active


def _env_truthy(value: Optional[str]) -> bool:
    return bool(value) and value.strip().lower() not in ("0", "false", "no", "")


def install_from_env() -> Optional[TelemetrySession]:
    """Honor ``REPRO_TRACE=1``: trace the process, write at exit.

    Called from :mod:`repro`'s package init so *every* example, bench
    run, and script gains ``--trace``-like behavior from the
    environment with zero per-caller changes. The trace lands in
    ``$REPRO_TRACE_FILE`` (default ``repro-trace.json``).
    """
    if not _env_truthy(os.environ.get(TRACE_ENV)):
        return None
    active = install()
    path = os.environ.get(TRACE_FILE_ENV) or DEFAULT_TRACE_FILE

    def _flush() -> None:
        try:
            active.write(path)
        except OSError:  # pragma: no cover - exit-time best effort
            pass

    atexit.register(_flush)
    return active
