"""Paper-style reporting over an exported trace.

``python -m repro.telemetry report trace.json`` prints the
phase-breakdown table (the Figure-5 view: per-phase simulated totals
and shares) and the top-N slowest bulks. The aggregation helpers are
importable so tests can reconcile a trace against the engine's
:class:`~repro.gpu.costmodel.TimeBreakdown` to the float.

Phase totals aggregate ``cat == "phase"`` events, grouped by the
``layer`` each span was recorded at (``engine``, ``shard``,
``cluster``, ``serve``): a cluster bulk's critical-path phases live at
the ``cluster`` layer while the per-shard sub-bulk detail lives at
``shard``, so no phase is ever counted twice within one layer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _spans_from_events(
    events: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Rebuild completed spans from matched B/E pairs, per track."""
    stacks: Dict[Any, List[Dict[str, Any]]] = {}
    spans: List[Dict[str, Any]] = []
    for event in events:
        ph = event.get("ph")
        if ph == "B":
            key = (event.get("pid"), event.get("tid"))
            stacks.setdefault(key, []).append(event)
        elif ph == "E":
            key = (event.get("pid"), event.get("tid"))
            stack = stacks.get(key)
            if not stack:
                continue
            opener = stack.pop()
            args = opener.get("args", {}) or {}
            spans.append(
                {
                    "name": opener.get("name", ""),
                    "cat": opener.get("cat", ""),
                    "layer": args.get("layer", ""),
                    "track": key,
                    "ts_us": float(opener.get("ts", 0.0)),
                    "dur_us": max(
                        0.0,
                        float(event.get("ts", 0.0))
                        - float(opener.get("ts", 0.0)),
                    ),
                    "args": args,
                }
            )
    return spans


def trace_spans(trace: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Completed spans of a loaded trace object."""
    return _spans_from_events(trace.get("traceEvents", []))


def phase_totals(
    trace: Dict[str, Any], layer: Optional[str] = None
) -> Dict[str, float]:
    """Per-phase simulated totals in **seconds**, optionally filtered
    to one layer. This is the table that must reconcile with the
    engine's ``TimeBreakdown``."""
    totals: Dict[str, float] = {}
    for span in trace_spans(trace):
        if span["cat"] != "phase":
            continue
        if layer is not None and span["layer"] != layer:
            continue
        totals[span["name"]] = (
            totals.get(span["name"], 0.0) + span["dur_us"] / 1e6
        )
    return totals


def layers(trace: Dict[str, Any]) -> List[str]:
    """Layers present in the trace, sorted."""
    return sorted(
        {s["layer"] for s in trace_spans(trace) if s["cat"] == "phase"}
    )


def slowest_bulks(
    trace: Dict[str, Any], top: int = 10
) -> List[Dict[str, Any]]:
    """The ``top`` slowest bulk spans, by simulated duration."""
    bulks = [s for s in trace_spans(trace) if s["cat"] == "bulk"]
    bulks.sort(key=lambda s: -s["dur_us"])
    return bulks[:top]


def _rows_to_table(columns: List[str], rows: List[List[str]]) -> str:
    widths = [len(c) for c in columns]
    for row in rows:
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-|-".join("-" * w for w in widths)
    lines = [f"| {header} |", f"|-{rule}-|"]
    for row in rows:
        body = " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        lines.append(f"| {body} |")
    return "\n".join(lines)


def format_phase_table(
    trace: Dict[str, Any], layer: Optional[str] = None
) -> str:
    """Markdown phase-breakdown table (one section per layer)."""
    sections: List[str] = []
    for current in [layer] if layer is not None else layers(trace):
        totals = phase_totals(trace, layer=current)
        grand = sum(totals.values())
        rows = [
            [
                phase,
                f"{seconds * 1e3:.6g}",
                f"{(seconds / grand * 100.0) if grand else 0.0:.1f}%",
            ]
            for phase, seconds in sorted(
                totals.items(), key=lambda kv: -kv[1]
            )
        ]
        rows.append(["total", f"{grand * 1e3:.6g}", "100.0%" if grand else "0.0%"])
        sections.append(
            f"## Phase breakdown [{current or 'all'}]\n\n"
            + _rows_to_table(["phase", "sim ms", "share"], rows)
        )
    return "\n\n".join(sections) if sections else "(no phase spans)"


def format_slowest_bulks(trace: Dict[str, Any], top: int = 10) -> str:
    """Markdown table of the slowest bulks."""
    bulks = slowest_bulks(trace, top)
    if not bulks:
        return "(no bulk spans)"
    rows = []
    for span in bulks:
        args = span["args"]
        rows.append(
            [
                span["name"],
                str(args.get("layer", "")),
                f"{span['dur_us'] / 1e3:.6g}",
                str(args.get("n_txns", "")),
                str(args.get("strategy", "")),
                str(args.get("backend", "")),
            ]
        )
    return (
        f"## Top {len(bulks)} slowest bulks\n\n"
        + _rows_to_table(
            ["bulk", "layer", "sim ms", "n_txns", "strategy", "backend"],
            rows,
        )
    )


def format_report(
    trace: Dict[str, Any], top: int = 10, layer: Optional[str] = None
) -> str:
    """The full ``telemetry report`` output."""
    return (
        format_phase_table(trace, layer=layer)
        + "\n\n"
        + format_slowest_bulks(trace, top=top)
    )


# ---------------------------------------------------------------------------
# CLI (python -m repro.telemetry ...).
# ---------------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    """``report <trace.json>`` and ``validate <trace.json>``."""
    import argparse

    from repro.telemetry.export import load_trace, validate_chrome_trace

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Inspect and validate exported traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="phase breakdown + slowest bulks")
    rep.add_argument("trace", help="Chrome trace-event JSON file")
    rep.add_argument("--top", type=int, default=10)
    rep.add_argument(
        "--layer", default=None,
        help="restrict the phase table to one layer (engine/cluster/...)",
    )
    val = sub.add_parser("validate", help="schema-check a trace file")
    val.add_argument("trace", help="Chrome trace-event JSON file")
    args = parser.parse_args(argv)

    trace = load_trace(args.trace)
    problems = validate_chrome_trace(trace)
    if args.command == "validate":
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        events = [
            e for e in trace.get("traceEvents", []) if e.get("ph") != "M"
        ]
        print(f"OK: {len(events)} events, {len(layers(trace))} layer(s)")
        return 0
    if problems:
        print(f"warning: trace has {len(problems)} schema problem(s)")
    try:
        print(format_report(trace, top=args.top, layer=args.layer))
    except BrokenPipeError:  # piped into head/less that exited early
        return 0
    return 0
