"""CLI entry: ``python -m repro.telemetry report|validate <trace>``."""

from repro.telemetry.report import main

if __name__ == "__main__":
    raise SystemExit(main())
