"""CLI entry: ``python -m repro.telemetry report|validate <trace>``.

Alias of ``python -m repro telemetry``: routes through the unified
CLI front door (:mod:`repro.cli`).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main(["telemetry", *sys.argv[1:]]))
