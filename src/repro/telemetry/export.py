"""Chrome trace-event export, schema validation, metrics snapshots.

The exporter emits the `Chrome trace-event format`_ (the JSON-object
flavour: ``{"traceEvents": [...]}``) so a trace loads directly in
Perfetto or ``chrome://tracing``. Spans become matched ``B``/``E``
duration events on the **simulated** clock (microsecond timestamps --
the paper's unit); each track (per-shard lanes, the DMA lane, the
serving lane) becomes its own named thread, and wall-clock timings
ride along in ``args``.

:func:`validate_chrome_trace` is the schema check the CI bench-smoke
lane runs on an emitted artifact: well-formed events, per-track
monotone timestamps, and strictly matched ``B``/``E`` pairs.

.. _Chrome trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Span, Tracer

#: Process id every simulated-clock track lives under.
SIM_PID = 1

#: Largest per-track timestamp regression the exporter smooths away,
#: in microseconds (1 ns). Adjacent spans whose boundaries are equal
#: modulo float association order -- a bulk opening exactly where the
#: previous one closed, each side summed in a different order -- can
#: land a few ulps apart after the second->microsecond conversion.
#: Anything larger is a real instrumentation bug and is deliberately
#: left in place for :func:`validate_chrome_trace` to flag.
TS_CLAMP_US = 1e-3


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in sorted(value, key=repr)] \
            if isinstance(value, (set, frozenset)) else [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def to_chrome_trace(
    tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, Any]:
    """Render a tracer's span tree as a Chrome trace-event object.

    Events are emitted track by track in tree order (depth-first over
    each root), which keeps every track's ``B``/``E`` stream sorted
    and properly nested -- the invariant
    :func:`validate_chrome_trace` asserts.
    """
    children: Dict[Optional[int], List[Span]] = {}
    for span in tracer.spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.sim_start_s, s.span_id))

    track_events: Dict[str, List[Dict[str, Any]]] = {}
    track_order: List[str] = []

    def _events_for(span: Span) -> None:
        if span.track not in track_events:
            track_events[span.track] = []
            track_order.append(span.track)
        out = track_events[span.track]
        sim_end = span.sim_end_s
        if sim_end is None:  # still open: close at its layout cursor
            sim_end = max(span.cursor, span.sim_start_s)
        args = {str(k): _jsonable(v) for k, v in span.tags.items()}
        args["layer"] = span.layer
        args["wall_ms"] = round(span.wall_duration_s * 1e3, 6)
        base = {
            "pid": SIM_PID,
            "name": span.name,
            "cat": span.cat,
        }
        out.append({**base, "ph": "B", "ts": span.sim_start_s * 1e6,
                    "args": args})
        for child in children.get(span.span_id, []):
            _events_for(child)
        out.append({**base, "ph": "E", "ts": max(sim_end, span.sim_start_s) * 1e6})

    for root in children.get(None, []):
        _events_for(root)

    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": SIM_PID, "ts": 0,
            "args": {"name": "repro simulated clock"},
        }
    ]
    for tid, track in enumerate(track_order, start=1):
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": SIM_PID,
                "tid": tid, "ts": 0, "args": {"name": track},
            }
        )
    for tid, track in enumerate(track_order, start=1):
        last_ts = 0.0
        for event in track_events[track]:
            event["tid"] = tid
            ts = event["ts"]
            if 0.0 < last_ts - ts <= TS_CLAMP_US:
                event["ts"] = ts = last_ts
            if ts > last_ts:
                last_ts = ts
            events.append(event)
    trace: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.telemetry"},
    }
    if metrics is not None:
        trace["otherData"]["metrics"] = metrics.snapshot()
    return trace


# ---------------------------------------------------------------------------
# Validation (the CI trace-schema gate).
# ---------------------------------------------------------------------------
def validate_chrome_trace(trace: Any) -> List[str]:
    """Schema-check a Chrome trace-event object; returns problems.

    Checks: the container shape, per-event required fields, per-track
    timestamp monotonicity, and matched/properly nested ``B``/``E``
    pairs. An empty list means the trace is well-formed.
    """
    problems: List[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["trace must be an object with a 'traceEvents' list"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    stacks: Dict[Any, List[Dict[str, Any]]] = {}
    last_ts: Dict[Any, float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("B", "E", "M", "X", "i", "C"):
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts != ts or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if "pid" not in event or "tid" not in event:
            problems.append(f"event {i}: missing pid/tid")
            continue
        key = (event["pid"], event["tid"])
        if ts < last_ts.get(key, 0.0):
            problems.append(
                f"event {i}: ts {ts} goes backwards on track {key}"
            )
        last_ts[key] = ts
        if ph == "B":
            if not event.get("name"):
                problems.append(f"event {i}: B event without a name")
            stacks.setdefault(key, []).append(event)
        elif ph == "E":
            stack = stacks.setdefault(key, [])
            if not stack:
                problems.append(f"event {i}: E without a matching B")
                continue
            opener = stack.pop()
            name = event.get("name")
            if name is not None and name != opener.get("name"):
                problems.append(
                    f"event {i}: E named {name!r} closes B named "
                    f"{opener.get('name')!r}"
                )
    for key, stack in stacks.items():
        if stack:
            names = [e.get("name") for e in stack]
            problems.append(f"track {key}: unclosed B events {names}")
    return problems


# ---------------------------------------------------------------------------
# File helpers.
# ---------------------------------------------------------------------------
def write_trace(
    path: str, tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> str:
    """Write the Chrome trace JSON; returns the path."""
    trace = to_chrome_trace(tracer, metrics)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def write_metrics(path: str, metrics: MetricsRegistry) -> str:
    """Write the metrics snapshot JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics.snapshot(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


def load_trace(path: str) -> Dict[str, Any]:
    """Read a trace JSON file back."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
