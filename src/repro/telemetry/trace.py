"""Life-of-a-bulk tracing on the simulated and the wall clock.

A :class:`Tracer` records a tree of :class:`Span`\\ s per bulk:
admission wait, bulk forming, ``transfer_in``, each wave (tagged with
strategy, backend, transaction and conflict counts), WAL sync,
checkpoint ship, replica ship, and the failover recovery phases.
Every span carries *two* clocks:

* the **simulated** clock -- the paper's microsecond decomposition,
  byte-identical whether tracing is on or off (tracing only *observes*
  the engine's :class:`~repro.gpu.costmodel.TimeBreakdown` accounting,
  it never feeds back into it);
* the **wall** clock -- host ``perf_counter`` seconds, for finding
  interpreter hot spots.

Spans are grouped into **tracks** (the lanes a Chrome/Perfetto viewer
shows: one per shard, one for the DMA engine, one for the serving
front half) and **layers** (which subsystem's accounting a span
belongs to: ``engine``, ``shard``, ``cluster``, ``serve``). Layers
exist so per-phase totals aggregate without double counting: a
cluster bulk charges the critical shard's phases at the ``cluster``
layer while every shard's own sub-bulk detail stays at the ``shard``
layer.

Instrumentation goes through the context-var session in
:mod:`repro.telemetry` and is no-op-cheap when disabled: each
instrumented call path performs one context-var read and branches
away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Breakdown phases that ride the interconnect (DMA) rather than the
#: device; the exporter lays them on a dedicated trace track.
DMA_PHASES = frozenset(
    {
        "transfer_in",
        "transfer_out",
        "wal_sync",
        "checkpoint",
        "replication",
        "migration",
        "sync",
    }
)

#: Span categories (the ``cat`` field of exported trace events).
CAT_BULK = "bulk"
CAT_PHASE = "phase"
CAT_WAVE = "wave"
CAT_SPAN = "span"


@dataclass
class Span:
    """One completed (or still-open) region of the trace."""

    span_id: int
    parent_id: Optional[int]
    name: str
    cat: str
    track: str
    layer: str
    sim_start_s: float
    wall_start_s: float
    sim_end_s: Optional[float] = None
    wall_end_s: Optional[float] = None
    tags: Dict[str, Any] = field(default_factory=dict)
    #: Layout cursor for children laid out sequentially inside this
    #: span (simulated seconds). Not exported.
    cursor: float = 0.0

    @property
    def sim_duration_s(self) -> float:
        end = self.sim_end_s if self.sim_end_s is not None else self.cursor
        return max(0.0, end - self.sim_start_s)

    @property
    def wall_duration_s(self) -> float:
        if self.wall_end_s is None:
            return 0.0
        return max(0.0, self.wall_end_s - self.wall_start_s)


class Tracer:
    """Records span trees over a simulated-clock cursor.

    The tracer owns a simulated-time cursor (:attr:`sim_now`) that
    root spans start from and advance; nested spans lay out from their
    parent's cursor. Callers that know better (the serve loop, which
    knows each bulk's true start time; the cluster runtime, whose
    parallel waves share one start) pass explicit times.
    """

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.sim_now = 0.0
        #: Default track and layer for new spans; the cluster runtime
        #: repoints these around shard-engine calls so nested engine
        #: instrumentation lands on the right lane unchanged.
        self.track = "gpu0"
        self.layer = "engine"
        #: Track DMA-borne phases default to. Sequential callers (a
        #: single engine, the cluster's critical path) share the "dma"
        #: lane; the cluster repoints it to the shard's own lane around
        #: parallel sub-bulks, where a shared lane would interleave.
        self.dma_track = "dma"
        self._stack: List[Span] = []
        self._next_id = 1
        self._wall_origin = time.perf_counter()

    # ------------------------------------------------------------------
    def _wall(self) -> float:
        return time.perf_counter() - self._wall_origin

    def _new_span(
        self,
        name: str,
        cat: str,
        track: Optional[str],
        layer: Optional[str],
        parent: Optional[Span],
        sim_start: float,
        tags: Dict[str, Any],
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            cat=cat,
            track=track if track is not None else self.track,
            layer=layer if layer is not None else self.layer,
            sim_start_s=sim_start,
            wall_start_s=self._wall(),
            tags=dict(tags),
        )
        span.cursor = sim_start
        self._next_id += 1
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        *,
        cat: str = CAT_SPAN,
        track: Optional[str] = None,
        layer: Optional[str] = None,
        sim_start: Optional[float] = None,
        **tags: Any,
    ) -> Span:
        """Open a span; children lay out from its cursor.

        ``sim_start`` defaults to the enclosing open span's cursor, or
        :attr:`sim_now` at top level.
        """
        parent = self._stack[-1] if self._stack else None
        if sim_start is None:
            sim_start = parent.cursor if parent is not None else self.sim_now
        span = self._new_span(name, cat, track, layer, parent, sim_start, tags)
        self._stack.append(span)
        return span

    def end(
        self,
        span: Span,
        *,
        sim_end: Optional[float] = None,
        advance_parent: bool = False,
        **tags: Any,
    ) -> Span:
        """Close ``span`` (and anything left open inside it).

        ``sim_end`` defaults to the span's cursor -- i.e. the end of
        its last sequentially laid-out child. ``advance_parent`` moves
        the parent's cursor to ``sim_end`` (for sequential nesting;
        parallel children -- shard sub-bulks -- leave it alone and the
        parent closes itself explicitly). Closing a root span advances
        :attr:`sim_now`.
        """
        while self._stack and self._stack[-1] is not span:
            self.end(self._stack[-1])
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if sim_end is None:
            sim_end = max(span.cursor, span.sim_start_s)
        span.sim_end_s = sim_end
        span.wall_end_s = self._wall()
        span.tags.update(tags)
        if span.parent_id is None:
            self.sim_now = max(self.sim_now, sim_end)
        elif advance_parent and self._stack:
            parent = self._stack[-1]
            parent.cursor = max(parent.cursor, sim_end)
        return span

    def phase(
        self,
        name: str,
        seconds: float,
        *,
        cat: str = CAT_PHASE,
        track: Optional[str] = None,
        layer: Optional[str] = None,
        **tags: Any,
    ) -> Span:
        """Record a completed child span of ``seconds`` at the cursor.

        The enclosing open span's cursor advances past it (sequential
        layout); at top level :attr:`sim_now` advances instead. This
        is how a :class:`~repro.gpu.costmodel.TimeBreakdown` becomes
        trace geometry -- one phase call per breakdown entry keeps the
        per-phase totals reconcilable to the float.
        """
        parent = self._stack[-1] if self._stack else None
        start = parent.cursor if parent is not None else self.sim_now
        span = self._new_span(name, cat, track, layer, parent, start, tags)
        span.sim_end_s = start + seconds
        span.wall_end_s = span.wall_start_s
        if parent is not None:
            parent.cursor = span.sim_end_s
        else:
            self.sim_now = span.sim_end_s
        return span

    def complete(
        self,
        name: str,
        sim_start: float,
        sim_end: float,
        *,
        parent: Optional[Span] = None,
        cat: str = CAT_SPAN,
        track: Optional[str] = None,
        layer: Optional[str] = None,
        **tags: Any,
    ) -> Span:
        """Record a finished span at explicit simulated times."""
        span = self._new_span(name, cat, track, layer, parent, sim_start, tags)
        span.sim_end_s = max(sim_start, sim_end)
        span.wall_end_s = span.wall_start_s
        return span

    # ------------------------------------------------------------------
    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def close_all(self) -> None:
        """Close any spans left open (crash/early-exit hygiene)."""
        while self._stack:
            self.end(self._stack[-1])
