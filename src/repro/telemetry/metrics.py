"""Cross-layer metrics registry: counters, gauges, exact histograms.

One :class:`MetricsRegistry` per telemetry session; every layer
(engine, cluster, durability, serve) records into it under stable
metric names with free-form labels (``waves_executed{strategy,
backend}``, ``admission_sheds``, ``shard_queue_depth{shard}``,
``wal_bytes`` ...). The registry is plain dictionaries -- zero
dependencies, deterministic snapshots.

The :class:`Histogram` here is *the* percentile implementation of the
repository: it keeps every observation (these are simulation-scale
series, thousands of points, not production firehoses) and computes
linear-interpolation percentiles exactly.
:mod:`repro.serve.metrics`' ``LatencySummary`` is built on it, so the
serving layer's p50/p95/p99 and a trace's metrics snapshot can never
disagree about what a percentile means.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]).

    The single shared implementation -- ``repro.serve.metrics``
    re-exports it and :class:`Histogram` delegates to it.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Metric:
    """Shared naming/label plumbing of the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def _check_amount(self, value: Any) -> float:
        number = float(value)
        if number != number:  # NaN guard
            raise ValueError(f"{self.name}: NaN is not a valid observation")
        return number


class Counter(_Metric):
    """Monotone event counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        amount = self._check_amount(amount)
        if amount < 0:
            raise ValueError(f"{self.name}: counters only move forward")
        key = _label_key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum over every label combination."""
        return sum(self._series.values())

    def series(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Gauge(_Metric):
    """Point-in-time value (queue depth, conflict rate, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._series[_label_key(labels)] = self._check_amount(value)

    def value(self, **labels: Any) -> float:
        return self._series.get(_label_key(labels), 0.0)

    def series(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._series.items())
        ]


class Histogram(_Metric):
    """Exact-sample histogram with shared percentile math."""

    kind = "histogram"

    def __init__(self, name: str = "", help: str = "") -> None:
        super().__init__(name, help)
        self._series: Dict[LabelKey, List[float]] = {}

    def observe(self, value: float, **labels: Any) -> None:
        self._series.setdefault(_label_key(labels), []).append(
            self._check_amount(value)
        )

    def values(self, **labels: Any) -> List[float]:
        return list(self._series.get(_label_key(labels), []))

    def count(self, **labels: Any) -> int:
        return len(self._series.get(_label_key(labels), []))

    def percentile(self, q: float, **labels: Any) -> float:
        return percentile(self._series.get(_label_key(labels), []), q)

    def summary(self, **labels: Any) -> Dict[str, float]:
        """``mean/p50/p95/p99/max`` plus ``count`` and ``sum``.

        Empty series summarise to zeros -- the same convention
        ``LatencySummary`` always used.
        """
        values = self._series.get(_label_key(labels), [])
        if not values:
            return {
                "count": 0, "sum": 0.0, "mean": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
            }
        return {
            "count": len(values),
            "sum": sum(values),
            "mean": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p95": percentile(values, 95.0),
            "p99": percentile(values, 99.0),
            "max": max(values),
        }

    def series(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), **self.summary(**dict(key))}
            for key in sorted(self._series)
        ]


class MetricsRegistry:
    """Get-or-create registry keyed by metric name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    def _get(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of every metric, sorted and stable."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            bucket = {
                "counter": "counters",
                "gauge": "gauges",
                "histogram": "histograms",
            }[metric.kind]
            out[bucket][name] = {
                "help": metric.help,
                "series": metric.series(),  # type: ignore[attr-defined]
            }
        return out
