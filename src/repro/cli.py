"""The one CLI front door: ``python -m repro <subcommand>``.

Subcommands:

* ``bench`` -- run the benchmark suite and emit the perf-trajectory
  headline JSON (delegates to :func:`repro.bench.harness.main`);
* ``telemetry report|validate`` -- inspect or schema-check an exported
  Chrome trace (delegates to :func:`repro.telemetry.report.main`);
* ``migrate-demo`` -- build a small range-sharded SmallBank cluster,
  execute a bulk, and perform one live range migration, printing the
  router table before/after and the cost breakdown;
* ``scenarios list|run|verify`` -- the declarative multi-tenant
  scenario harness (:mod:`repro.scenarios`): enumerate the registered
  scenarios, execute one, or run the built-in verifiers (Definition-1
  equivalence, tenant isolation, byte-identical recovery).

``python -m repro.bench`` and ``python -m repro.telemetry`` remain as
aliases and route through this module, so both spellings stay
byte-identical in behavior.
"""

from __future__ import annotations

import sys
from typing import List, Optional

_USAGE = """\
usage: python -m repro <command> [args...]

commands:
  bench           run the benchmark suite (see: python -m repro bench --help)
  telemetry       inspect/validate exported traces (report | validate)
  migrate-demo    live shard-migration walkthrough on a SmallBank cluster
  scenarios       multi-tenant scenario harness (list | run | verify)
"""


def _migrate_demo(argv: List[str]) -> int:
    """A self-contained elastic-shards walkthrough."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro migrate-demo",
        description=(
            "Build a range-sharded SmallBank cluster, run one bulk, "
            "then split the busiest shard's range live."
        ),
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--txns", type=int, default=400)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--theta", type=float, default=0.9,
        help="zipfian skew of the demo workload (0 = uniform)",
    )
    args = parser.parse_args(argv)

    import repro.telemetry as telemetry
    from repro.cluster.durability import DurabilityConfig
    from repro.cluster.elastic import MigrationPlan
    from repro.cluster.runtime import ClusterTx
    from repro.config import ClusterOptions
    from repro.workloads import smallbank

    db = smallbank.build_database(scale_factor=1)
    cluster = ClusterTx(
        db,
        procedures=smallbank.PROCEDURES,
        n_shards=args.shards,
        router="range",
        options=ClusterOptions(durability=DurabilityConfig()),
    )

    def show_table(title: str) -> None:
        print(title)
        for lo, hi, owner in cluster.router.range_table:
            print(f"  [{lo:>5}, {hi:>5}) -> shard {owner}")

    show_table("range table (before):")
    cluster.submit_many(
        smallbank.generate_transactions(
            db, args.txns, seed=args.seed, theta=args.theta
        )
    )
    with telemetry.session():
        out = cluster.execute_bulk(cluster.pool.take())
        print(
            f"bulk: {len(out.results)} txns, {out.committed} committed, "
            f"{len(out.waves)} waves, {out.seconds * 1e3:.3f} ms simulated"
        )
        busiest = max(
            range(cluster.n_shards), key=lambda k: out.shard_busy_s[k]
        )
        coolest = min(
            (k for k in range(cluster.n_shards) if k != busiest),
            key=lambda k: out.shard_busy_s[k],
        )
        lo, hi = max(
            cluster.router.ranges_of(busiest), key=lambda r: r[1] - r[0]
        )
        mid = (lo + hi) // 2
        report = cluster.migrate(
            MigrationPlan(src=busiest, dst=coolest, key_lo=mid, key_hi=hi)
        )
    print(
        f"migrated [{report.key_lo}, {report.key_hi}) from shard "
        f"{report.src} to shard {report.dst}: {report.moved_rows} rows "
        f"({report.moved_bytes} B), {report.tail_records} WAL tail "
        "records replayed"
    )
    print(
        "cost (simulated ms): "
        f"fork {report.fork_seconds * 1e3:.4f}, "
        f"wal_replay {report.replay_seconds * 1e3:.4f}, "
        f"copy {report.transfer_seconds * 1e3:.4f}, "
        f"wal_sync {report.wal_sync_seconds * 1e3:.4f}, "
        f"swap {report.swap_seconds * 1e3:.4f}, "
        f"total {report.seconds * 1e3:.4f}"
    )
    show_table("range table (after):")
    return 0


def _scenarios(argv: List[str]) -> int:
    """``python -m repro scenarios list|run|verify``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro scenarios",
        description=(
            "Declarative multi-tenant scenarios with built-in "
            "verifiers (see docs/SCENARIOS.md)."
        ),
    )
    sub = parser.add_subparsers(dest="action", required=True)
    sub.add_parser("list", help="show every registered scenario")

    def add_common(p: "argparse.ArgumentParser") -> None:
        p.add_argument(
            "--scale", type=float, default=None,
            help="workload scale factor (default: 1.0, or the smoke "
            "scale when REPRO_SCENARIO_SMOKE is set)",
        )
        p.add_argument(
            "--seed", type=int, default=None,
            help="override the scenario's declared seed",
        )

    run_p = sub.add_parser("run", help="execute one scenario")
    run_p.add_argument("name")
    add_common(run_p)
    verify_p = sub.add_parser(
        "verify", help="run the built-in verifiers against scenarios"
    )
    verify_p.add_argument("names", nargs="*", metavar="name")
    verify_p.add_argument(
        "--all", action="store_true", dest="all_scenarios",
        help="verify every registered scenario",
    )
    add_common(verify_p)
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; keep both.
        return int(exc.code or 0)

    from repro.errors import ConfigError
    from repro.scenarios import names, get, run_scenario, verify_scenario

    if args.action == "list":
        for name in names():
            scenario = get(name)
            tenants = ",".join(t.name for t in scenario.tenants) or "-"
            faults = len(scenario.faults)
            print(
                f"{name:<18} {scenario.workload:<10} "
                f"mode={scenario.mode:<6} n={scenario.n_txns:<6} "
                f"shards={scenario.n_shards} tenants={tenants} "
                f"faults={faults}"
            )
            print(f"  {scenario.description}")
        return 0

    if args.action == "run":
        try:
            run = run_scenario(
                args.name, scale=args.scale, seed=args.seed
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"scenario {run.scenario} ({run.mode}): n={run.n} "
            f"seed={run.seed} executed={run.executed} "
            f"committed={run.committed} aborted={run.aborted} "
            f"kills={run.kills_injected} "
            f"migrations={len(run.migrations)} "
            f"busy={run.busy_s * 1e3:.2f}ms"
        )
        for tenant, summary in sorted(run.tenants.items()):
            p50 = (
                summary.components["total"].p50 if summary.components else 0.0
            )
            print(
                f"  tenant {tenant}: n={summary.count} "
                f"shed={summary.shed} "
                f"p50={p50 * 1e3:.2f}ms "
                f"p95={summary.p95_total_s * 1e3:.2f}ms"
            )
        return 0

    # verify
    if args.all_scenarios:
        targets = names()
    elif args.names:
        targets = args.names
    else:
        print(
            "error: give scenario names or --all\n", file=sys.stderr
        )
        return 2
    ok = True
    for name in targets:
        try:
            report = verify_scenario(
                name, scale=args.scale, seed=args.seed
            )
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.format())
        ok = ok and report.ok
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "bench":
        from repro.bench.harness import main as bench_main

        return bench_main(rest)
    if command == "telemetry":
        from repro.telemetry.report import main as telemetry_main

        return telemetry_main(rest)
    if command == "migrate-demo":
        return _migrate_demo(rest)
    if command == "scenarios":
        return _scenarios(rest)
    print(f"unknown command {command!r}\n{_USAGE}", end="", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via -m repro
    raise SystemExit(main())
