"""The CPU-based counterpart engine (Section 6.3).

"The CPU-based counterpart adopts the design of H-Store": the database
is horizontally partitioned; each partition is owned by one
single-threaded worker (core), which executes its transactions serially
in timestamp order with *no* locking or latching. Cross-partition
transactions fall back to a blocking protocol that quiesces every
worker (the cost every partitioned system pays; H-Store's "every node
blocks" single-site fallback).

Functionally, transactions execute in global timestamp order against
the shared database -- which is exactly what partition-serial execution
produces for single-partition workloads -- while *time* is accounted
per core: the engine's makespan is the maximum core time, so a skewed
partition load lengthens the critical path just as it would on real
silicon. ``num_cores=1`` gives the single-core baseline against which
the paper normalises Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.procedure import ProcedureRegistry, TransactionType
from repro.core.txn import Transaction, TxnResult
from repro.cpu.costmodel import CpuCostModel
from repro.errors import ConfigError, ExecutionError
from repro.gpu import ops as op_ir
from repro.gpu.spec import CPUSpec, XEON_E5520
from repro.storage.catalog import Database, StoreAdapter


@dataclass
class CpuExecutionResult:
    """Outcome and timing of one CPU batch execution."""

    results: List[TxnResult]
    seconds: float
    core_seconds: List[float] = field(default_factory=list)

    @property
    def committed(self) -> int:
        return sum(1 for r in self.results if r.committed)

    def throughput_tps(self) -> float:
        return len(self.results) / self.seconds if self.seconds > 0 else 0.0

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps() / 1e3


class CpuEngine:
    """H-Store-style partitioned single-threaded execution engine."""

    def __init__(
        self,
        db: Database,
        procedures: Optional[Sequence[TransactionType]] = None,
        *,
        spec: CPUSpec = XEON_E5520,
        num_cores: Optional[int] = None,
    ) -> None:
        self.db = db
        self.spec = spec
        self.num_cores = num_cores if num_cores is not None else spec.num_cores
        if self.num_cores < 1:
            raise ConfigError("num_cores must be >= 1")
        self.registry = ProcedureRegistry()
        if procedures:
            self.registry.register_many(procedures)
        self.adapter = StoreAdapter(db)
        self.cost = CpuCostModel(spec)

    def register(self, txn_type: TransactionType) -> int:
        return self.registry.register(txn_type)

    # ------------------------------------------------------------------
    def execute(self, transactions: Sequence[Transaction]) -> CpuExecutionResult:
        """Run a batch to completion; returns outcomes + makespan."""
        core_cycles = [0.0] * self.num_cores
        results: List[TxnResult] = []
        ordered = sorted(transactions, key=lambda t: t.txn_id)
        for txn in ordered:
            txn_type = self.registry.get(txn.type_name)
            partition = txn_type.partition_of(txn.params)
            cycles, committed, reason, value = self._run_one(txn, txn_type)
            cycles += self.cost.dispatch()
            if partition is None:
                # Cross-partition: quiesce -- every worker blocks for it.
                for core in range(self.num_cores):
                    core_cycles[core] += cycles
            else:
                core_cycles[partition % self.num_cores] += cycles
            results.append(
                TxnResult(
                    txn_id=txn.txn_id,
                    type_name=txn.type_name,
                    committed=committed,
                    abort_reason=reason,
                    value=value,
                )
            )
        self.adapter.apply_batch()
        seconds = self.cost.seconds(max(core_cycles)) if core_cycles else 0.0
        return CpuExecutionResult(
            results=results,
            seconds=seconds,
            core_seconds=[self.cost.seconds(c) for c in core_cycles],
        )

    # ------------------------------------------------------------------
    def _run_one(
        self, txn: Transaction, txn_type: TransactionType
    ) -> Tuple[float, bool, str, Any]:
        """Execute one transaction's op stream; serial, inline rollback."""
        stream = self.registry.build_stream(txn.type_name, txn.params)
        adapter = self.adapter
        cost = self.cost
        cycles = 0.0
        undo: List[Tuple[str, str, int, Any]] = []
        pending_inserts: List[Tuple[str, int]] = []
        pending_deletes: List[Tuple[str, int]] = []
        send: Any = None
        while True:
            try:
                op = stream.send(send)
            except StopIteration as stop:
                return cycles, True, "", stop.value
            except Exception as exc:
                raise ExecutionError(
                    f"transaction {txn.txn_id} raised {exc!r}"
                ) from exc
            send = None
            kind = op.kind
            if kind == op_ir.READ:
                send = adapter.read(op.table, op.column, op.row)
                cycles += cost.memory_access()
            elif kind == op_ir.WRITE:
                old = adapter.write(op.table, op.column, op.row, op.value)
                undo.append((op.table, op.column, op.row, old))
                cycles += cost.memory_access()
            elif kind == op_ir.COMPUTE:
                cycles += cost.compute(op.amount)
            elif kind == op_ir.SFU_COMPUTE:
                cycles += cost.sfu(op.amount)
            elif kind == op_ir.INDEX_PROBE:
                send = adapter.probe(op.index, op.key)
                cycles += 2 * cost.memory_access()
            elif kind == op_ir.INSERT_ROW:
                provisional = adapter.insert(op.table, op.values)
                pending_inserts.append((op.table, provisional))
                send = provisional
                cycles += cost.insert(adapter.row_width(op.table))
            elif kind == op_ir.DELETE_ROW:
                adapter.delete(op.table, op.row)
                pending_deletes.append((op.table, op.row))
                cycles += cost.memory_access()
            elif kind == op_ir.ABORT:
                # Inline rollback: serial execution makes this trivial
                # (no other transaction has observed our writes).
                for table, column, row, old in reversed(undo):
                    adapter.write(table, column, row, old)
                    cycles += cost.memory_access()
                for table, provisional in pending_inserts:
                    adapter.cancel_insert(table, provisional)
                for table, row in pending_deletes:
                    adapter.cancel_delete(table, row)
                return cycles, False, op.reason, None
            elif kind in (op_ir.LOCK_ACQUIRE, op_ir.LOCK_RELEASE,
                          op_ir.THREAD_FENCE, op_ir.SET_BRANCH):
                cycles += cost.compute(1)
            elif kind in (op_ir.ATOMIC_ADD, op_ir.ATOMIC_CAS):
                raise ExecutionError(
                    "raw device atomics are not part of the CPU engine"
                )
            else:  # pragma: no cover - closed op table
                raise ExecutionError(f"unknown op kind {kind}")
