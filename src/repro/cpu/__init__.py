"""CPU counterpart: H-Store-style partitioned execution engine."""

from repro.cpu.costmodel import CpuCostModel
from repro.cpu.engine import CpuEngine, CpuExecutionResult

__all__ = ["CpuCostModel", "CpuEngine", "CpuExecutionResult"]
