"""Cycle cost model for the CPU counterpart.

Mirrors the GPU cost model at the same granularity (micro-ops), with
the Xeon E5520's characteristics: higher clock, superscalar issue, a
cache hierarchy that absorbs most random accesses, and a per-
transaction dispatch overhead for the H-Store-style engine loop.

Why model instead of measuring Python wall-clock: measuring would
benchmark the CPython interpreter, not the paper's design. Both engines
run identical op streams through their respective cost models, so every
GPU/CPU ratio reflects modelled hardware and scheduling, not
interpreter noise (see DESIGN.md).
"""

from __future__ import annotations

from repro.gpu.spec import CPUSpec, XEON_E5520


class CpuCostModel:
    """Per-op cycle charges for one CPU core."""

    def __init__(self, spec: CPUSpec = XEON_E5520) -> None:
        self.spec = spec
        #: Expected cycles of one random memory access given the cache.
        hit, miss = spec.cache_hit_ratio, 1.0 - spec.cache_hit_ratio
        self._mem_cycles = hit * 8.0 + miss * float(spec.memory_latency_cycles)
        self._ipc = spec.superscalar_factor
        #: ``sinf`` via SSE/libm on Nehalem.
        self._sfu_cycles = 20.0

    def memory_access(self) -> float:
        """One random read or write (index probe counts as two)."""
        return self._mem_cycles

    def compute(self, amount: int) -> float:
        """``amount`` ALU ops through the superscalar pipeline."""
        return max(1, amount) / self._ipc

    def sfu(self, amount: int) -> float:
        """``amount`` transcendental calls."""
        return max(1, amount) * self._sfu_cycles

    def insert(self, row_width: int) -> float:
        """Append one row: sequential writes, cache friendly."""
        return 8.0 + row_width / 16.0

    def dispatch(self) -> float:
        """Per-transaction engine overhead (queueing, stored-proc call)."""
        return float(self.spec.txn_dispatch_cycles)

    def seconds(self, cycles: float) -> float:
        return self.spec.seconds(cycles)
