"""Admission control: bounded queues and backpressure at the front door.

The paper's engine assumes bulks arrive fully formed; a server facing
an open arrival stream has to bound how much work it buffers, or a
burst turns into unbounded queue growth and unbounded latency. The
:class:`AdmissionController` enforces two limits as arrivals are
offered:

* a **global** cap on pending (admitted-but-unexecuted) transactions;
* optionally a **per-tenant** quota: each tenant named in
  ``tenant_quotas`` may hold at most that many pending transactions,
  so a saturating tenant sheds its own overflow instead of crowding
  everyone else out of the global buffer (the isolation contract the
  scenario verifiers assert);
* optionally a **per-shard** cap: arrivals are routed through the
  cluster's :class:`~repro.cluster.router.ShardRouter` at admission
  time, so one hot shard saturating its queue sheds its own load
  instead of stalling the whole cluster (a cross-shard transaction
  counts against every shard it touches).

Rejected arrivals are dropped and counted -- the client-visible
backpressure signal. Admitted arrivals are stamped into the backend's
transaction pool immediately, in arrival order, so pool ids (the
Definition-1 timestamps) agree with arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cluster.router import ShardRouter
from repro.core.procedure import ProcedureRegistry
from repro.core.txn import Transaction, TransactionPool
from repro.errors import ConfigError
from repro.serve.stream import Arrival


@dataclass
class AdmissionStats:
    """Counters the server reports alongside latency percentiles."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    rejected_by_shard: Dict[int, int] = field(default_factory=dict)
    #: Deepest the global queue ever got (pending transactions).
    high_water: int = 0
    #: Per-tenant splits of the counters above (tenanted arrivals only).
    admitted_by_tenant: Dict[str, int] = field(default_factory=dict)
    rejected_by_tenant: Dict[str, int] = field(default_factory=dict)
    #: Deepest each tenant's share of the queue ever got -- the number
    #: the quota-isolation verifier compares against the quota.
    tenant_high_water: Dict[str, int] = field(default_factory=dict)

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


class AdmissionController:
    """Bounded-queue gatekeeper between the stream and the pool."""

    def __init__(
        self,
        max_pending: int = 8192,
        *,
        max_pending_per_shard: Optional[int] = None,
        router: Optional[ShardRouter] = None,
        registry: Optional[ProcedureRegistry] = None,
        tenant_quotas: Optional[Dict[str, int]] = None,
        record_admitted: bool = False,
    ) -> None:
        if max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if max_pending_per_shard is not None:
            if max_pending_per_shard < 1:
                raise ConfigError("max_pending_per_shard must be >= 1")
            if router is None or registry is None:
                raise ConfigError(
                    "per-shard admission limits need a router and a "
                    "procedure registry to route arrivals"
                )
        if tenant_quotas is not None:
            for tenant, quota in tenant_quotas.items():
                if not tenant:
                    raise ConfigError("tenant names must be non-empty")
                if quota < 1:
                    raise ConfigError(
                        f"tenant {tenant!r} quota must be >= 1"
                    )
        self.max_pending = max_pending
        self.max_pending_per_shard = max_pending_per_shard
        self.router = router
        self.registry = registry
        self.tenant_quotas = (
            dict(tenant_quotas) if tenant_quotas is not None else None
        )
        self.stats = AdmissionStats()
        #: Admitted transactions in admission (= timestamp) order, kept
        #: only when asked: the scenario verifiers replay this log
        #: through the serial oracle for Definition-1 checks.
        self.record_admitted = record_admitted
        self.admitted_log: List[Transaction] = []
        self._shard_depth: Dict[int, int] = {}
        self._shards_of_txn: Dict[int, "frozenset[int]"] = {}
        self._tenant_depth: Dict[str, int] = {}
        self._tenant_of_txn: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def _route(self, arrival: Arrival) -> "frozenset[int]":
        assert self.router is not None and self.registry is not None
        return self.router.shards_of(
            self.registry.get(arrival.type_name), arrival.params
        )

    def offer(self, arrival: Arrival, pool: TransactionPool) -> bool:
        """Admit ``arrival`` into ``pool``, or reject it (backpressure).

        Admission is the only path into the pool while a server runs,
        so ``len(pool)`` is the authoritative global queue depth --
        including transactions a strategy deferred back (streaming
        K-SET), which still occupy buffer space.
        """
        self.stats.offered += 1
        return self._offer_one(arrival, pool)

    def offer_batch(
        self, arrivals: List[Arrival], pool: TransactionPool
    ) -> List[bool]:
        """Admit a slice of arrivals at once; returns per-arrival fates.

        Decision-identical to calling :meth:`offer` on each arrival in
        order -- same admit/shed choices, same counters, same tenant
        and shard accounting, same pool ids. The common untenanted,
        unsharded case short-circuits to a closed form: within a batch
        the queue only deepens, so the global cap admits exactly the
        first ``max_pending - len(pool)`` arrivals and sheds the rest,
        and the whole slice stamps into the pool with one batched
        submit. Tenant quotas and per-shard caps make fates depend on
        the running depths, so those walk the slice (routing is
        state-independent either way).
        """
        n = len(arrivals)
        if n == 0:
            return []
        self.stats.offered += n
        plain = (
            self.tenant_quotas is None
            and self.max_pending_per_shard is None
            and not any(a.tenant for a in arrivals)
        )
        if not plain:
            return [self._offer_one(a, pool) for a in arrivals]
        k = min(n, max(0, self.max_pending - len(pool)))
        if k:
            txns = pool.submit_batch(
                (a.type_name, a.params, a.submit_time)
                for a in arrivals[:k]
            )
            if self.record_admitted:
                self.admitted_log.extend(txns)
            self.stats.admitted += k
            # len(pool) is monotone over the batch, so the running max
            # the per-arrival path tracks is just the final depth.
            self.stats.high_water = max(self.stats.high_water, len(pool))
        if k < n:
            self.stats.rejected += n - k
        return [True] * k + [False] * (n - k)

    def _offer_one(self, arrival: Arrival, pool: TransactionPool) -> bool:
        tenant = arrival.tenant
        if len(pool) >= self.max_pending:
            self._reject(tenant)
            return False
        if tenant and self.tenant_quotas is not None:
            quota = self.tenant_quotas.get(tenant)
            if (
                quota is not None
                and self._tenant_depth.get(tenant, 0) >= quota
            ):
                self._reject(tenant)
                return False
        shards: Optional[frozenset] = None
        if self.max_pending_per_shard is not None:
            shards = self._route(arrival)
            for shard in shards:
                if (
                    self._shard_depth.get(shard, 0)
                    >= self.max_pending_per_shard
                ):
                    self._reject(tenant)
                    by_shard = self.stats.rejected_by_shard
                    by_shard[shard] = by_shard.get(shard, 0) + 1
                    return False
        txn = pool.submit(
            arrival.type_name, arrival.params, arrival.submit_time
        )
        if shards is not None:
            self._shards_of_txn[txn.txn_id] = shards
            for shard in shards:
                self._shard_depth[shard] = self._shard_depth.get(shard, 0) + 1
        if tenant:
            self._tenant_of_txn[txn.txn_id] = tenant
            depth = self._tenant_depth.get(tenant, 0) + 1
            self._tenant_depth[tenant] = depth
            high = self.stats.tenant_high_water
            high[tenant] = max(high.get(tenant, 0), depth)
            by_tenant = self.stats.admitted_by_tenant
            by_tenant[tenant] = by_tenant.get(tenant, 0) + 1
        if self.record_admitted:
            self.admitted_log.append(txn)
        self.stats.admitted += 1
        self.stats.high_water = max(self.stats.high_water, len(pool))
        return True

    def _reject(self, tenant: str) -> None:
        self.stats.rejected += 1
        if tenant:
            by_tenant = self.stats.rejected_by_tenant
            by_tenant[tenant] = by_tenant.get(tenant, 0) + 1

    def note_executed(self, transactions: Iterable[Transaction]) -> None:
        """Release per-shard and per-tenant slots once transactions
        finish for good.

        Called with the *executed* (not merely dequeued) transactions:
        deferred/requeued ones keep their slots because they still sit
        in the pool.
        """
        for txn in transactions:
            tenant = self._tenant_of_txn.pop(txn.txn_id, None)
            if tenant is not None:
                depth = self._tenant_depth.get(tenant, 0)
                self._tenant_depth[tenant] = max(0, depth - 1)
            if self.max_pending_per_shard is None:
                continue
            shards = self._shards_of_txn.pop(txn.txn_id, None)
            if not shards:
                continue
            for shard in shards:
                depth = self._shard_depth.get(shard, 0)
                self._shard_depth[shard] = max(0, depth - 1)

    def shard_depth(self, shard: int) -> int:
        return self._shard_depth.get(shard, 0)

    def tenant_depth(self, tenant: str) -> int:
        """Pending (admitted-but-unexecuted) transactions of a tenant."""
        return self._tenant_depth.get(tenant, 0)

    def tenant_of(self, txn_id: int) -> str:
        """Tenant an admitted, still-pending transaction came from.

        Valid until :meth:`note_executed` releases the transaction;
        untenanted (or unknown) ids map to ``""``.
        """
        return self._tenant_of_txn.get(txn_id, "")
