"""Admission control: bounded queues and backpressure at the front door.

The paper's engine assumes bulks arrive fully formed; a server facing
an open arrival stream has to bound how much work it buffers, or a
burst turns into unbounded queue growth and unbounded latency. The
:class:`AdmissionController` enforces two limits as arrivals are
offered:

* a **global** cap on pending (admitted-but-unexecuted) transactions;
* optionally a **per-shard** cap: arrivals are routed through the
  cluster's :class:`~repro.cluster.router.ShardRouter` at admission
  time, so one hot shard saturating its queue sheds its own load
  instead of stalling the whole cluster (a cross-shard transaction
  counts against every shard it touches).

Rejected arrivals are dropped and counted -- the client-visible
backpressure signal. Admitted arrivals are stamped into the backend's
transaction pool immediately, in arrival order, so pool ids (the
Definition-1 timestamps) agree with arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.cluster.router import ShardRouter
from repro.core.procedure import ProcedureRegistry
from repro.core.txn import Transaction, TransactionPool
from repro.errors import ConfigError
from repro.serve.stream import Arrival


@dataclass
class AdmissionStats:
    """Counters the server reports alongside latency percentiles."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    rejected_by_shard: Dict[int, int] = field(default_factory=dict)
    #: Deepest the global queue ever got (pending transactions).
    high_water: int = 0

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0


class AdmissionController:
    """Bounded-queue gatekeeper between the stream and the pool."""

    def __init__(
        self,
        max_pending: int = 8192,
        *,
        max_pending_per_shard: Optional[int] = None,
        router: Optional[ShardRouter] = None,
        registry: Optional[ProcedureRegistry] = None,
    ) -> None:
        if max_pending < 1:
            raise ConfigError("max_pending must be >= 1")
        if max_pending_per_shard is not None:
            if max_pending_per_shard < 1:
                raise ConfigError("max_pending_per_shard must be >= 1")
            if router is None or registry is None:
                raise ConfigError(
                    "per-shard admission limits need a router and a "
                    "procedure registry to route arrivals"
                )
        self.max_pending = max_pending
        self.max_pending_per_shard = max_pending_per_shard
        self.router = router
        self.registry = registry
        self.stats = AdmissionStats()
        self._shard_depth: Dict[int, int] = {}
        self._shards_of_txn: Dict[int, "frozenset[int]"] = {}

    # ------------------------------------------------------------------
    def _route(self, arrival: Arrival) -> "frozenset[int]":
        assert self.router is not None and self.registry is not None
        return self.router.shards_of(
            self.registry.get(arrival.type_name), arrival.params
        )

    def offer(self, arrival: Arrival, pool: TransactionPool) -> bool:
        """Admit ``arrival`` into ``pool``, or reject it (backpressure).

        Admission is the only path into the pool while a server runs,
        so ``len(pool)`` is the authoritative global queue depth --
        including transactions a strategy deferred back (streaming
        K-SET), which still occupy buffer space.
        """
        self.stats.offered += 1
        if len(pool) >= self.max_pending:
            self.stats.rejected += 1
            return False
        shards: Optional[frozenset] = None
        if self.max_pending_per_shard is not None:
            shards = self._route(arrival)
            for shard in shards:
                if (
                    self._shard_depth.get(shard, 0)
                    >= self.max_pending_per_shard
                ):
                    self.stats.rejected += 1
                    by_shard = self.stats.rejected_by_shard
                    by_shard[shard] = by_shard.get(shard, 0) + 1
                    return False
        txn = pool.submit(
            arrival.type_name, arrival.params, arrival.submit_time
        )
        if shards is not None:
            self._shards_of_txn[txn.txn_id] = shards
            for shard in shards:
                self._shard_depth[shard] = self._shard_depth.get(shard, 0) + 1
        self.stats.admitted += 1
        self.stats.high_water = max(self.stats.high_water, len(pool))
        return True

    def note_executed(self, transactions: Iterable[Transaction]) -> None:
        """Release per-shard slots once transactions finish for good.

        Called with the *executed* (not merely dequeued) transactions:
        deferred/requeued ones keep their slots because they still sit
        in the pool.
        """
        if self.max_pending_per_shard is None:
            return
        for txn in transactions:
            shards = self._shards_of_txn.pop(txn.txn_id, None)
            if not shards:
                continue
            for shard in shards:
                depth = self._shard_depth.get(shard, 0)
                self._shard_depth[shard] = max(0, depth - 1)

    def shard_depth(self, shard: int) -> int:
        return self._shard_depth.get(shard, 0)
