"""ServeRuntime: the streaming front half of the bulk execution model.

The paper hands the GPU fully formed bulks; this runtime builds them
from an open-ended arrival stream under a latency SLO, closing the gap
between ``simulate_arrivals``' fixed-interval replay and a server:

* arrivals flow through an :class:`~repro.serve.admission.AdmissionController`
  (bounded queues, per-shard backpressure under sharding) into the
  backend's transaction pool -- in arrival order, so pool ids (the
  Definition-1 timestamps) respect the stream;
* a :class:`~repro.serve.controller.BulkFormer` decides each cut: when
  the queue reaches its target size, when the oldest admitted
  transaction has waited its budget, or when the stream runs dry
  (shutdown drains the queue completely);
* each bulk executes through the backend's ``execute_bulk`` -- a
  single-device :class:`~repro.core.engine.GPUTx` or a sharded
  :class:`~repro.cluster.runtime.ClusterTx`, whose wave machinery
  keeps timestamp order within and across bulks;
* observed wave times feed back into the former's size controller,
  and every executed transaction gets an end-to-end
  :class:`~repro.serve.metrics.TxnLatency` (queue wait + execution +
  transfer), summarised as percentiles in the final report.

The clock is simulated, like everything else in this reproduction:
arrival times come from the stream, service times from the engine's
cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

import repro.telemetry as telemetry
from repro.core.engine import validate_strategy_options
from repro.core.txn import Transaction
from repro.errors import ServeError
from repro.gpu.costmodel import TimeBreakdown
from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.controller import AdaptiveBulkFormer, BulkFormer
from repro.serve.metrics import (
    LatencySummary,
    Percentiles,
    TxnLatency,
    split_service,
    tenant_summaries,
)
from repro.serve.stream import ArrivalLike, ArrivalStream


@dataclass
class BulkTrace:
    """One executed bulk, as the server saw it."""

    start_s: float
    seconds: float
    size: int
    executed: int
    target: int
    strategy: str


@dataclass
class ServeReport:
    """Outcome of serving one arrival stream to completion."""

    former: str
    executed: int = 0
    committed: int = 0
    aborted: int = 0
    elapsed_s: float = 0.0
    #: Simulated seconds the device(s) were busy executing bulks.
    busy_s: float = 0.0
    latency: LatencySummary = field(
        default_factory=lambda: LatencySummary(count=0)
    )
    admission: AdmissionStats = field(default_factory=AdmissionStats)
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    bulks: List[BulkTrace] = field(default_factory=list)
    #: Live shard migrations performed between bulks (elastic clusters;
    #: :class:`~repro.cluster.elastic.MigrationReport` entries).
    migrations: List[Any] = field(default_factory=list)
    #: Per-tenant latency summaries (tenanted arrivals only; see
    #: :func:`~repro.serve.metrics.tenant_summaries`).
    tenants: Dict[str, LatencySummary] = field(default_factory=dict)

    @property
    def sustained_tps(self) -> float:
        """Executed transactions per second over the serving horizon
        (first admitted arrival to last bulk finish) -- the open-system
        view, so a former cannot look faster by starting late."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.executed / self.elapsed_s

    @property
    def sustained_ktps(self) -> float:
        return self.sustained_tps / 1e3

    @property
    def p95_total_s(self) -> float:
        return self.latency.p95_total_s

    @property
    def mean_bulk(self) -> float:
        if not self.bulks:
            return 0.0
        return sum(b.size for b in self.bulks) / len(self.bulks)

    def met_slo(self, target_p95_s: float) -> bool:
        return self.latency.p95_total_s <= target_p95_s


class ServeRuntime:
    """Drives a bulk engine from an arrival stream under an SLO."""

    def __init__(
        self,
        engine: Any,
        *,
        former: Optional[BulkFormer] = None,
        admission: Optional[AdmissionController] = None,
        strategy: str = "auto",
        probe_composition: bool = False,
        **options: Any,
    ) -> None:
        """``engine`` is any bulk backend exposing ``pool``,
        ``registry`` and ``execute_bulk`` -- a ``GPUTx`` or a
        ``ClusterTx``. ``probe_composition`` makes the adaptive former
        profile the queue head before each cut and size against the
        strategy Algorithm 1 predicts for it (slower, but reacts to
        composition shifts before the bulk executes rather than
        after)."""
        validate_strategy_options(strategy, options)
        self.engine = engine
        self.former = former or AdaptiveBulkFormer()
        self.admission = admission or AdmissionController()
        self.strategy = strategy
        self.options = options
        self.probe_composition = probe_composition
        self._profiler = getattr(engine, "profiler", None)
        if self._profiler is None:
            shards = getattr(engine, "shards", None)
            if shards:
                self._profiler = shards[0].profiler
        self.thresholds = getattr(engine, "thresholds", None)
        if self.thresholds is None:
            shards = getattr(engine, "shards", None)
            if shards:
                self.thresholds = shards[0].thresholds
        # Telemetry bookkeeping: the serve lane's layout cursor (so
        # forming spans never overlap the previous bulk), the origin
        # this runtime's stream clock is anchored at (several serve
        # runs sharing one session must not rewind the lane), the
        # per-bulk span counter, and the admission counters already
        # reported.
        self._trace_cursor = 0.0
        self._trace_origin: Optional[float] = None
        self._trace_bulk_n = 0
        self._trace_prev_offered = 0
        self._trace_prev_rejected = 0
        self._trace_prev_tenant_rejected: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _admit_until(self, stream: ArrivalStream, clock: float) -> None:
        self.admission.offer_batch(
            stream.pop_until(clock), self.engine.pool
        )

    def _probe_strategy(self, target: int) -> Optional[str]:
        """Predict the chooser's pick for the current queue head."""
        if not self.probe_composition or self._profiler is None:
            return None
        head = self.engine.pool.peek(target)
        if not head:
            return None
        profile = self._profiler.profile(head)
        return profile.predicted_strategy(self.thresholds)

    def run(self, arrivals: Iterable[ArrivalLike]) -> ServeReport:
        """Serve the stream to completion and drain the queue."""
        stream = ArrivalStream(arrivals)
        pool = self.engine.pool
        report = ServeReport(former=self.former.name)
        latencies: List[TxnLatency] = []
        clock = 0.0
        gpu_free = 0.0
        first_submit: Optional[float] = None
        last_finish = 0.0
        while True:
            self._admit_until(stream, clock)
            if len(pool) == 0:
                if stream.exhausted:
                    break
                clock = max(clock, stream.peek_time())
                continue
            target = self.former.target_size()
            if self.probe_composition:
                probed = self._probe_strategy(target)
                retarget = getattr(self.former, "retarget", None)
                if probed is not None and retarget is not None:
                    target = retarget(probed)
            deadline = pool.peek(1)[0].submit_time + self.former.max_form_wait_s
            if (
                len(pool) < target
                and not stream.exhausted
                and stream.peek_time() <= deadline
            ):
                # The bulk is still filling and more arrivals fit the
                # oldest transaction's wait budget: wait for them.
                clock = max(clock, stream.peek_time())
                continue
            # Cut: the queue hit the target, the wait budget expired,
            # or the stream ran dry (shutdown drain).
            start = max(clock, gpu_free)
            self._admit_until(stream, start)
            batch = pool.take(target)
            session = telemetry.current()
            serve_span = None
            result = None
            if session is not None:
                serve_span = self._trace_bulk_open(
                    session, batch, start, target
                )
            try:
                result = self.engine.execute_bulk(
                    batch, strategy=self.strategy, **dict(self.options)
                )
            finally:
                if serve_span is not None:
                    done = result is not None
                    bulk_end = (self._trace_origin or 0.0) + start + (
                        result.seconds if done else 0.0
                    )
                    session.tracer.end(
                        serve_span,
                        sim_end=bulk_end,
                        strategy=result.strategy if done else "",
                        executed=len(result.results) if done else 0,
                    )
                    self._trace_cursor = bulk_end
                    self._trace_bulk_metrics(session, batch, start)
            finish = start + result.seconds
            executed_ids = {r.txn_id for r in result.results}
            if not executed_ids and finish <= start:
                # The whole batch bounced back (deferred/halted) and
                # no simulated time passed: nothing can change, so
                # looping again would spin forever.
                raise ServeError(
                    "backend made no progress on a "
                    f"{len(batch)}-transaction bulk"
                )
            self._record_bulk(
                report, latencies, batch, result, start, finish, target,
                executed_ids,
            )
            self.admission.note_executed(
                [t for t in batch if t.txn_id in executed_ids]
            )
            if first_submit is None and batch:
                first_submit = min(t.submit_time for t in batch)
            last_finish = finish
            gpu_free = finish
            clock = finish
            # Elastic clusters rebalance between bulks: the engine is
            # idle here, so a hot-shard split delays only the next
            # dispatch (its cost shows up as interconnect time).
            rebalance = getattr(self.engine, "maybe_rebalance", None)
            if rebalance is not None:
                migration = rebalance()
                if migration is not None:
                    report.migrations.append(migration)
                    report.breakdown.add("migration", migration.seconds)
                    gpu_free = finish + migration.seconds
                    last_finish = gpu_free
        report.latency = LatencySummary.of(
            latencies, admission=self.admission.stats
        )
        report.tenants = tenant_summaries(
            latencies, admission=self.admission.stats
        )
        report.admission = self.admission.stats
        if first_submit is not None:
            report.elapsed_s = max(last_finish - first_submit, 1e-12)
        return report

    # ------------------------------------------------------------------
    def _trace_bulk_open(
        self,
        session: "telemetry.TelemetrySession",
        batch: List[Transaction],
        start: float,
        target: int,
    ) -> "telemetry.Span":
        """Open the serve-layer span for one dispatched bulk.

        The serve lane shows, per bulk, a ``forming`` span (the window
        in which the bulk queued and filled, clamped at the previous
        dispatch so lane timestamps stay monotone -- the *full*
        per-transaction wait is carried in tags and the queue-wait
        histogram) followed by the ``serve_bulk`` span the engine's
        own emission nests under.
        """
        tracer = session.tracer
        self._trace_bulk_n += 1
        if self._trace_origin is None:
            self._trace_origin = tracer.sim_now
            self._trace_cursor = self._trace_origin
        origin = self._trace_origin
        oldest = min((t.submit_time for t in batch), default=start)
        form_start = min(max(self._trace_cursor, origin + oldest),
                         origin + start)
        if origin + start > form_start:
            tracer.complete(
                "forming",
                form_start,
                origin + start,
                cat=telemetry.CAT_PHASE,
                track="serve",
                layer="serve",
                queued=len(batch),
            )
        self._trace_cursor = origin + start
        return tracer.begin(
            f"serve_bulk-{self._trace_bulk_n}",
            cat=telemetry.CAT_BULK,
            track="serve",
            layer="serve",
            sim_start=origin + start,
            size=len(batch),
            target=target,
            queue_wait_s=start - oldest,
        )

    def _trace_bulk_metrics(
        self,
        session: "telemetry.TelemetrySession",
        batch: List[Transaction],
        start: float,
    ) -> None:
        """Serve-layer metrics after one dispatched bulk."""
        metrics = session.metrics
        stats = self.admission.stats
        offered = stats.offered - self._trace_prev_offered
        if offered:
            metrics.counter(
                "admission_offered", "arrivals offered to admission"
            ).inc(offered)
        shed = stats.rejected - self._trace_prev_rejected
        if shed:
            metrics.counter(
                "admission_sheds", "arrivals rejected by admission control"
            ).inc(shed)
        self._trace_prev_offered = stats.offered
        self._trace_prev_rejected = stats.rejected
        metrics.gauge(
            "serve_queue_depth", "pool depth after the bulk was cut"
        ).set(len(self.engine.pool))
        metrics.gauge(
            "admission_high_water", "deepest queue admission has seen"
        ).set(stats.high_water)
        for shard, depth in sorted(self.admission._shard_depth.items()):
            metrics.gauge(
                "shard_queue_depth", "queued transactions per home shard"
            ).set(depth, shard=shard)
        for tenant in sorted(stats.admitted_by_tenant):
            metrics.gauge(
                "tenant_queue_depth", "queued transactions per tenant"
            ).set(self.admission.tenant_depth(tenant), tenant=tenant)
        for tenant, rejected in sorted(stats.rejected_by_tenant.items()):
            prev = self._trace_prev_tenant_rejected.get(tenant, 0)
            if rejected > prev:
                metrics.counter(
                    "tenant_sheds", "arrivals shed per tenant"
                ).inc(rejected - prev, tenant=tenant)
                self._trace_prev_tenant_rejected[tenant] = rejected
        wait_hist = metrics.histogram(
            "queue_wait_seconds", "admission-to-dispatch wait per txn"
        )
        for txn in batch:
            wait_hist.observe(start - txn.submit_time)

    # ------------------------------------------------------------------
    def _record_bulk(
        self,
        report: ServeReport,
        latencies: List[TxnLatency],
        batch: List[Transaction],
        result: Any,
        start: float,
        finish: float,
        target: int,
        executed_ids: "set[int]",
    ) -> None:
        exec_s, transfer_s = split_service(result.breakdown)
        submit_of: Dict[int, Transaction] = {t.txn_id: t for t in batch}
        bulk_latencies = [
            TxnLatency(
                txn_id=r.txn_id,
                type_name=r.type_name,
                submit_s=submit_of[r.txn_id].submit_time,
                start_s=start,
                finish_s=finish,
                exec_s=exec_s,
                transfer_s=transfer_s,
                tenant=self.admission.tenant_of(r.txn_id),
            )
            for r in result.results
        ]
        latencies.extend(bulk_latencies)
        report.executed += len(result.results)
        report.committed += sum(1 for r in result.results if r.committed)
        report.aborted += sum(1 for r in result.results if not r.committed)
        report.busy_s += result.seconds
        for phase, seconds in result.breakdown.phases.items():
            report.breakdown.add(phase, seconds)
        strategy = getattr(result, "strategy", "unknown")
        report.bulks.append(
            BulkTrace(
                start_s=start,
                seconds=result.seconds,
                size=len(batch),
                executed=len(result.results),
                target=target,
                strategy=strategy,
            )
        )
        # Close the loop: the bulk's observed service time updates the
        # former's per-strategy model; its own p95 is the freshest
        # latency signal available.
        p95 = (
            Percentiles.of([lat.total_s for lat in bulk_latencies]).p95
            if bulk_latencies
            else 0.0
        )
        self.former.observe(
            size=len(batch),
            strategy=strategy,
            service_s=result.seconds,
            p95_total_s=p95,
            backend=getattr(result, "backend", None),
        )


def serve(
    engine: Any,
    arrivals: Iterable[ArrivalLike],
    *,
    former: Optional[BulkFormer] = None,
    admission: Optional[AdmissionController] = None,
    strategy: str = "auto",
    **options: Any,
) -> ServeReport:
    """One-call convenience: build a runtime and serve the stream."""
    runtime = ServeRuntime(
        engine,
        former=former,
        admission=admission,
        strategy=strategy,
        **options,
    )
    return runtime.run(arrivals)
