"""End-to-end latency accounting for the online ingest runtime.

Each executed transaction gets a :class:`TxnLatency`: when it arrived,
when its bulk started, when the bulk finished, and how the bulk-level
service time splits between device execution and interconnect
transfer. The server aggregates these into a :class:`LatencySummary`
-- percentiles per component (queue wait, execution, transfer, total)
-- which is the "latency breakdown" the README documents: queue wait
is the admission-to-bulk-start share (the bulk former's knob),
execution and transfer are the engine-side shares every transaction of
a bulk pays together.

Percentile math is the telemetry layer's single shared implementation
(:func:`repro.telemetry.metrics.percentile` via
:class:`~repro.telemetry.metrics.Histogram`), so the serving report
and a trace's metrics snapshot can never disagree about what "p95"
means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.gpu.costmodel import TimeBreakdown
from repro.telemetry.metrics import Histogram
from repro.telemetry.metrics import percentile as percentile  # noqa: PLC0414
# (re-export: this module's ``percentile`` is, and must remain, the
# telemetry registry's -- one definition of a percentile repo-wide.)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing
    from repro.serve.admission import AdmissionStats

#: Breakdown phases that ride the interconnect rather than the device.
TRANSFER_PHASES = frozenset(
    {"transfer_in", "transfer_out", "wal_sync", "checkpoint", "migration",
     "sync"}
)

#: Component keys of the latency breakdown.
QUEUE, EXECUTION, TRANSFER, TOTAL = "queue", "execution", "transfer", "total"


@dataclass(frozen=True)
class TxnLatency:
    """One transaction's end-to-end timing through the server."""

    txn_id: int
    type_name: str
    submit_s: float
    start_s: float
    finish_s: float
    exec_s: float
    transfer_s: float
    #: Originating tenant ("" = untenanted), carried from admission so
    #: the report can split percentiles per tenant.
    tenant: str = ""

    @property
    def queue_s(self) -> float:
        """Admission to bulk start: the wait the former controls."""
        return self.start_s - self.submit_s

    @property
    def total_s(self) -> float:
        return self.finish_s - self.submit_s

    def component(self, name: str) -> float:
        if name == QUEUE:
            return self.queue_s
        if name == EXECUTION:
            return self.exec_s
        if name == TRANSFER:
            return self.transfer_s
        if name == TOTAL:
            return self.total_s
        raise KeyError(name)


@dataclass(frozen=True)
class Percentiles:
    """Summary of one latency component (seconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Percentiles":
        """Summarise ``values`` through the shared telemetry histogram."""
        histogram = Histogram()
        for value in values:
            histogram.observe(value)
        summary = histogram.summary()
        return cls(
            mean=summary["mean"],
            p50=summary["p50"],
            p95=summary["p95"],
            p99=summary["p99"],
            max=summary["max"],
        )


@dataclass
class LatencySummary:
    """Per-component percentiles over every executed transaction.

    Also surfaces what the percentiles *exclude*: arrivals shed by
    admission control never execute, so a latency distribution quoted
    without its shed count can look better under overload, not worse.
    """

    count: int
    components: Dict[str, Percentiles] = field(default_factory=dict)
    #: Arrivals rejected by admission control (never executed, so
    #: absent from every percentile above).
    shed: int = 0
    #: The shed count split by the home shard whose queue was full.
    shed_by_shard: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def of(
        cls,
        latencies: Sequence[TxnLatency],
        admission: "Optional[AdmissionStats]" = None,
    ) -> "LatencySummary":
        components = {
            name: Percentiles.of([lat.component(name) for lat in latencies])
            for name in (QUEUE, EXECUTION, TRANSFER, TOTAL)
        }
        summary = cls(count=len(latencies), components=components)
        if admission is not None:
            summary.shed = admission.rejected
            summary.shed_by_shard = dict(admission.rejected_by_shard)
        return summary

    @property
    def shed_rate(self) -> float:
        """Shed arrivals as a share of everything that asked to run."""
        asked = self.count + self.shed
        return self.shed / asked if asked else 0.0

    def __getitem__(self, name: str) -> Percentiles:
        return self.components[name]

    @property
    def p95_total_s(self) -> float:
        return self.components[TOTAL].p95 if self.components else 0.0


def tenant_summaries(
    latencies: Sequence[TxnLatency],
    admission: "Optional[AdmissionStats]" = None,
) -> Dict[str, LatencySummary]:
    """Per-tenant :class:`LatencySummary` over tenanted transactions.

    Tenants that only ever got shed (every arrival rejected) still
    appear, with ``count=0`` -- an isolation report that silently
    dropped the tenant it throttled would hide exactly the behaviour
    it exists to show.
    """
    groups: Dict[str, List[TxnLatency]] = {}
    for latency in latencies:
        if latency.tenant:
            groups.setdefault(latency.tenant, []).append(latency)
    tenants = set(groups)
    if admission is not None:
        tenants.update(admission.rejected_by_tenant)
    out: Dict[str, LatencySummary] = {}
    for tenant in sorted(tenants):
        summary = LatencySummary.of(groups.get(tenant, []))
        if admission is not None:
            summary.shed = admission.rejected_by_tenant.get(tenant, 0)
        out[tenant] = summary
    return out


def split_service(breakdown: TimeBreakdown) -> "tuple[float, float]":
    """Split one bulk's service seconds into (execution, transfer).

    "Execution" is every device-side phase (generation, kernels,
    profiling, coordination); "transfer" is the interconnect share --
    input/output copies plus durability traffic when enabled.
    """
    transfer = sum(
        seconds
        for phase, seconds in breakdown.phases.items()
        if phase in TRANSFER_PHASES
    )
    return max(0.0, breakdown.total - transfer), transfer
