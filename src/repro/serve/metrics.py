"""End-to-end latency accounting for the online ingest runtime.

Each executed transaction gets a :class:`TxnLatency`: when it arrived,
when its bulk started, when the bulk finished, and how the bulk-level
service time splits between device execution and interconnect
transfer. The server aggregates these into a :class:`LatencySummary`
-- percentiles per component (queue wait, execution, transfer, total)
-- which is the "latency breakdown" the README documents: queue wait
is the admission-to-bulk-start share (the bulk former's knob),
execution and transfer are the engine-side shares every transaction of
a bulk pays together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.gpu.costmodel import TimeBreakdown

#: Breakdown phases that ride the interconnect rather than the device.
TRANSFER_PHASES = frozenset(
    {"transfer_in", "transfer_out", "wal_sync", "checkpoint", "sync"}
)

#: Component keys of the latency breakdown.
QUEUE, EXECUTION, TRANSFER, TOTAL = "queue", "execution", "transfer", "total"


@dataclass(frozen=True)
class TxnLatency:
    """One transaction's end-to-end timing through the server."""

    txn_id: int
    type_name: str
    submit_s: float
    start_s: float
    finish_s: float
    exec_s: float
    transfer_s: float

    @property
    def queue_s(self) -> float:
        """Admission to bulk start: the wait the former controls."""
        return self.start_s - self.submit_s

    @property
    def total_s(self) -> float:
        return self.finish_s - self.submit_s

    def component(self, name: str) -> float:
        if name == QUEUE:
            return self.queue_s
        if name == EXECUTION:
            return self.exec_s
        if name == TRANSFER:
            return self.transfer_s
        if name == TOTAL:
            return self.total_s
        raise KeyError(name)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100])."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class Percentiles:
    """Summary of one latency component (seconds)."""

    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Percentiles":
        if not values:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            mean=sum(values) / len(values),
            p50=percentile(values, 50.0),
            p95=percentile(values, 95.0),
            p99=percentile(values, 99.0),
            max=max(values),
        )


@dataclass
class LatencySummary:
    """Per-component percentiles over every executed transaction."""

    count: int
    components: Dict[str, Percentiles] = field(default_factory=dict)

    @classmethod
    def of(cls, latencies: Sequence[TxnLatency]) -> "LatencySummary":
        components = {
            name: Percentiles.of([lat.component(name) for lat in latencies])
            for name in (QUEUE, EXECUTION, TRANSFER, TOTAL)
        }
        return cls(count=len(latencies), components=components)

    def __getitem__(self, name: str) -> Percentiles:
        return self.components[name]

    @property
    def p95_total_s(self) -> float:
        return self.components[TOTAL].p95 if self.components else 0.0


def split_service(breakdown: TimeBreakdown) -> "tuple[float, float]":
    """Split one bulk's service seconds into (execution, transfer).

    "Execution" is every device-side phase (generation, kernels,
    profiling, coordination); "transfer" is the interconnect share --
    input/output copies plus durability traffic when enabled.
    """
    transfer = sum(
        seconds
        for phase, seconds in breakdown.phases.items()
        if phase in TRANSFER_PHASES
    )
    return max(0.0, breakdown.total - transfer), transfer
