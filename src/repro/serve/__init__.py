"""Online ingest runtime: streaming admission + adaptive bulk forming.

Turns an open-ended arrival stream into well-sized bulks for a
:class:`~repro.core.engine.GPUTx` or
:class:`~repro.cluster.runtime.ClusterTx` backend, under a latency
SLO. See :mod:`repro.serve.runtime` for the architecture.
"""

from repro.serve.admission import AdmissionController, AdmissionStats
from repro.serve.controller import (
    AdaptiveBulkFormer,
    BulkFormer,
    FixedBulkFormer,
    SLOConfig,
)
from repro.serve.metrics import (
    LatencySummary,
    Percentiles,
    TxnLatency,
    percentile,
    tenant_summaries,
)
from repro.serve.runtime import BulkTrace, ServeReport, ServeRuntime, serve
from repro.serve.stream import Arrival, ArrivalStream

__all__ = [
    "AdaptiveBulkFormer",
    "AdmissionController",
    "AdmissionStats",
    "Arrival",
    "ArrivalStream",
    "BulkFormer",
    "BulkTrace",
    "FixedBulkFormer",
    "LatencySummary",
    "Percentiles",
    "ServeReport",
    "ServeRuntime",
    "SLOConfig",
    "TxnLatency",
    "percentile",
    "serve",
    "tenant_summaries",
]
