"""Arrival streams: the open-ended input of the online ingest runtime.

An :class:`Arrival` is one not-yet-admitted transaction request --
``(type, params, submit_time)`` -- and an :class:`ArrivalStream` wraps
any iterable of them (or of raw triples) behind a one-item lookahead,
so the serve loop can ask "when does the next request land?" without
materialising the stream. Streams may be unbounded generators; nothing
here ever calls ``len``.

Submit times must be nondecreasing: the transaction pool's
auto-increment ids double as Definition-1 timestamps, so admitting out
of arrival order would silently reorder commits. The stream validates
this as it goes and raises :class:`~repro.errors.ServeError` on the
first violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Tuple, Union

from repro.errors import ServeError

#: Raw forms accepted wherever an arrival stream is expected: an
#: ``Arrival``, a ``(type, params, submit_time)`` triple, or a
#: ``(type, params, submit_time, tenant)`` quadruple.
ArrivalLike = Union[
    "Arrival",
    Tuple[str, tuple, float],
    Tuple[str, tuple, float, str],
]


@dataclass(frozen=True)
class Arrival:
    """One transaction request offered to the server."""

    type_name: str
    params: Tuple[Any, ...]
    submit_time: float
    #: Originating tenant ("" = untenanted). Admission control can
    #: enforce per-tenant quotas and the latency report splits by it.
    tenant: str = ""

    @classmethod
    def of(cls, item: ArrivalLike) -> "Arrival":
        if isinstance(item, Arrival):
            return item
        type_name, params, submit_time = item[0], item[1], item[2]
        tenant = str(item[3]) if len(item) > 3 else ""
        return cls(type_name, tuple(params), float(submit_time), tenant)


class ArrivalStream:
    """One-item-lookahead iterator over a (possibly unbounded) stream."""

    def __init__(self, items: Iterable[ArrivalLike]) -> None:
        self._iter: Iterator[ArrivalLike] = iter(items)
        self._head: Optional[Arrival] = None
        self._last_time = float("-inf")
        self._advance()

    def _advance(self) -> None:
        try:
            item = next(self._iter)
        except StopIteration:
            self._head = None
            return
        arrival = Arrival.of(item)
        if arrival.submit_time < self._last_time:
            raise ServeError(
                f"arrival stream went backwards: {arrival.submit_time} "
                f"after {self._last_time}"
            )
        self._last_time = arrival.submit_time
        self._head = arrival

    @property
    def exhausted(self) -> bool:
        return self._head is None

    def peek_time(self) -> float:
        """Submit time of the next arrival (+inf when exhausted)."""
        return self._head.submit_time if self._head else float("inf")

    def pop(self) -> Arrival:
        """Consume and return the next arrival."""
        if self._head is None:
            raise ServeError("arrival stream is exhausted")
        out = self._head
        self._advance()
        return out

    def pop_until(self, clock: float) -> "list[Arrival]":
        """Consume every arrival with ``submit_time <= clock``."""
        out = []
        while self._head is not None and self._head.submit_time <= clock:
            out.append(self.pop())
        return out
