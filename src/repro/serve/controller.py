"""Bulk formers: when to cut the next bulk, and how big.

The tension is the paper's Figure 9 trade-off made operational. Bigger
bulks amortise kernel launch and k-set generation overhead (higher
throughput, Figure 4), but every queued transaction waits for the cut
and then for the whole bulk, so latency grows with bulk size. A server
with a latency SLO has to pick the largest bulk that still meets it --
and keep re-picking as the workload drifts.

Two formers share one interface:

* :class:`FixedBulkFormer` -- cut at a constant target size (or when
  the oldest queued transaction has waited ``max_form_wait_s``). The
  baseline, and what ``simulate_arrivals``' fixed interval amounts to.
* :class:`AdaptiveBulkFormer` -- closed-loop sizing against an
  :class:`SLOConfig`. Each executed bulk feeds the chooser-keyed
  :class:`~repro.core.chooser.StrategyFeedback` service model
  (``seconds ~= fixed + per_txn * size``); the controller proposes the
  largest size whose predicted service time fits the SLO's service
  budget, then tempers the proposal with AIMD feedback on *observed*
  end-to-end p95: breach -> multiplicative backoff, headroom ->
  additive growth. Everything clamps to ``[min_bulk, max_bulk]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.chooser import StrategyFeedback
from repro.errors import ConfigError


@dataclass(frozen=True)
class SLOConfig:
    """Latency-vs-throughput target of the online server."""

    #: End-to-end p95 latency target (queue wait + service), seconds.
    target_p95_s: float = 0.05
    #: Bulk size bounds the controller may never leave.
    min_bulk: int = 32
    max_bulk: int = 8192
    #: Share of the latency budget granted to bulk *service* (execution
    #: + transfer); the rest covers queue wait while the bulk forms.
    service_fraction: float = 0.5
    #: Backoff multiplier on a service-driven p95 breach.
    decrease_factor: float = 0.5
    #: Additive growth (in transactions) when p95 has headroom.
    increase_step: int = 64
    #: Multiplicative growth while draining a backlog (a p95 breach
    #: whose cause is queue wait, not service time): bigger bulks
    #: drain faster, so the controller ramps aggressively.
    drain_growth: float = 2.0
    #: Longest the oldest queued transaction may wait for a cut.
    #: Defaults to the queue share of the latency budget.
    max_form_wait_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.target_p95_s <= 0:
            raise ConfigError("target_p95_s must be positive")
        if self.min_bulk < 1 or self.max_bulk < self.min_bulk:
            raise ConfigError("need 1 <= min_bulk <= max_bulk")
        if not 0.0 < self.service_fraction < 1.0:
            raise ConfigError("service_fraction must be within (0, 1)")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ConfigError("decrease_factor must be within (0, 1)")
        if self.increase_step < 1:
            raise ConfigError("increase_step must be >= 1")
        if self.drain_growth <= 1.0:
            raise ConfigError("drain_growth must be > 1")

    @property
    def service_budget_s(self) -> float:
        return self.target_p95_s * self.service_fraction

    @property
    def form_wait_s(self) -> float:
        if self.max_form_wait_s is not None:
            return self.max_form_wait_s
        return self.target_p95_s * (1.0 - self.service_fraction)


class BulkFormer:
    """Interface the serve loop drives."""

    name = "base"

    @property
    def max_form_wait_s(self) -> float:
        raise NotImplementedError

    def target_size(self) -> int:
        """Bulk size the next cut should aim for."""
        raise NotImplementedError

    def observe(
        self,
        *,
        size: int,
        strategy: str,
        service_s: float,
        p95_total_s: float,
        backend: Optional[str] = None,
    ) -> None:
        """Feed back one executed bulk's outcome (no-op by default)."""


class FixedBulkFormer(BulkFormer):
    """Constant target size -- the non-adaptive baseline."""

    name = "fixed"

    def __init__(self, size: int, *, max_form_wait_s: float = 0.05) -> None:
        if size < 1:
            raise ConfigError("bulk size must be >= 1")
        if max_form_wait_s <= 0:
            raise ConfigError("max_form_wait_s must be positive")
        self._size = size
        self._wait = max_form_wait_s

    @property
    def max_form_wait_s(self) -> float:
        return self._wait

    def target_size(self) -> int:
        return self._size


class AdaptiveBulkFormer(BulkFormer):
    """SLO-driven closed-loop bulk sizing."""

    name = "adaptive"

    def __init__(
        self,
        slo: Optional[SLOConfig] = None,
        *,
        feedback: Optional[StrategyFeedback] = None,
    ) -> None:
        self.slo = slo or SLOConfig()
        #: Per-strategy service model, shared with (and keyed like)
        #: the engine's chooser: the strategy Algorithm 1 picked for a
        #: bulk determines which curve the observation updates.
        self.feedback = feedback or StrategyFeedback()
        #: AIMD ceiling; starts at min_bulk so the first bulks are
        #: cheap probes that seed the service model.
        self._aimd = float(self.slo.min_bulk)
        self._target = self.slo.min_bulk
        self._last_strategy: Optional[str] = None
        #: (size, target, strategy) per executed bulk, for reports.
        self.trajectory: List["tuple[int, int, str]"] = []
        self._draining = False

    @property
    def max_form_wait_s(self) -> float:
        return self.slo.form_wait_s

    def target_size(self) -> int:
        return self._target

    def observe(
        self,
        *,
        size: int,
        strategy: str,
        service_s: float,
        p95_total_s: float,
        backend: Optional[str] = None,
    ) -> None:
        slo = self.slo
        # The simulated service model is backend-independent; the
        # backend-keyed curve is kept alongside so operators can read
        # per-backend behaviour off one feedback object.
        self.feedback.observe(strategy, size, service_s, backend=backend)
        self._last_strategy = strategy
        self.trajectory.append((size, self._target, strategy))
        # AIMD on the observed end-to-end p95 -- but a breach has two
        # causes with opposite cures. If the bulk's own service time
        # blew the service budget, the bulk was too big: back off
        # multiplicatively. If service was fine, the breach is queue
        # wait (a backlog): bigger bulks drain it faster, so growing
        # -- not shrinking -- restores the SLO.
        self._draining = False
        if p95_total_s > slo.target_p95_s:
            if service_s > slo.service_budget_s:
                self._aimd = max(
                    float(slo.min_bulk), self._aimd * slo.decrease_factor
                )
            else:
                self._draining = True
                self._aimd = min(
                    float(slo.max_bulk), self._aimd * slo.drain_growth
                )
        else:
            self._aimd = min(
                float(slo.max_bulk), self._aimd + slo.increase_step
            )
        # Model proposal: largest bulk whose predicted service time
        # fits the service share of the latency budget.
        self._target = self._combine(strategy)

    def retarget(self, strategy: str) -> int:
        """Re-aim the target at ``strategy``'s service curve.

        The serve loop calls this when composition probing predicts
        the chooser will pick a different strategy for the queue head
        than the one the last bulk ran with.
        """
        self._target = self._combine(strategy)
        return self._target

    def _combine(self, strategy: str) -> int:
        """Model proposal capped by the AIMD ceiling, clamped to SLO
        bounds.

        While draining a backlog the proposal cap is waived: service
        time has headroom by construction (the breach was
        queue-driven), and the early service model -- fit from a few
        small probe bulks -- systematically overestimates per-txn cost
        on launch-overhead-dominated workloads, which would strangle
        the ramp exactly when throughput matters most.
        """
        slo = self.slo
        ceiling = int(self._aimd)
        if self._draining:
            target = ceiling
        else:
            proposal = self.feedback.size_for_budget(
                strategy, slo.service_budget_s, slo.min_bulk, slo.max_bulk
            )
            target = ceiling if proposal is None else min(proposal, ceiling)
        return max(slo.min_bulk, min(slo.max_bulk, target))


@dataclass
class FormerReport:
    """What the former did over a serve run (for benches/README)."""

    name: str
    bulk_sizes: List[int] = field(default_factory=list)
    bulk_targets: List[int] = field(default_factory=list)

    @property
    def mean_bulk(self) -> float:
        if not self.bulk_sizes:
            return 0.0
        return sum(self.bulk_sizes) / len(self.bulk_sizes)
