"""Quickstart: run a TPC-B bulk through GPUTx in ~20 lines.

Builds the bank database, registers the TPC-B stored procedure,
submits a few thousand transaction signatures, executes them as one
bulk with the K-SET strategy, and prints the throughput the simulator
measured.

Run:  python examples/quickstart.py
"""

from repro import GPUTx
from repro.workloads import tpcb


def main() -> None:
    # 1. An in-memory TPC-B database: 512 branches (column layout).
    db = tpcb.build_database(scale_factor=512, accounts_per_branch=20)

    # 2. The engine: registers the stored procedures (the "combined
    #    kernel" of Section 3.2) and owns the simulated C1060.
    engine = GPUTx(db, procedures=tpcb.PROCEDURES)
    init_ms = engine.initialize_device() * 1e3
    print(f"loaded tables+indexes onto the device in {init_ms:.2f} ms")

    # 3. Submit transaction signatures <id, type, params> into the pool.
    engine.submit_many(tpcb.generate_transactions(db, n=4_000, seed=7))
    print(f"pool holds {len(engine.pool)} transactions")

    # 4. Execute one bulk. "auto" would apply Algorithm 1; here we ask
    #    for K-SET explicitly.
    report = engine.run_bulk(strategy="kset")

    # 5. Results.
    print(f"strategy          : {report.strategy}")
    print(f"committed/aborted : {report.committed}/{report.aborted}")
    print(f"simulated time    : {report.seconds * 1e3:.3f} ms")
    print(f"throughput        : {report.throughput_ktps:,.0f} ktps")
    for phase, seconds in sorted(report.breakdown.phases.items()):
        print(f"  {phase:<13s}: {seconds * 1e6:9.1f} us")

    # The database actually changed: check one branch's balance.
    branch0 = db.table("branch").read("b_balance", 0)
    print(f"branch 0 balance  : {branch0:,.0f}")


if __name__ == "__main__":
    main()
