"""Durable cluster walkthrough: WAL, checkpoints, and shard failover.

Runs a 4-shard TM1 cluster with per-shard write-ahead logging, two
synchronous replicas per shard, and copy-on-write checkpoints every
four bulks. Mid-run, shard 2's device is killed; the in-flight bulk's
younger waves are halted, a replica is promoted (checkpoint restore +
deterministic WAL replay, byte-identical to the lost state), and the
run resumes. The final state is compared against an uninterrupted run
and the serial CPU oracle.

Run:  python examples/cluster_failover.py
"""

from repro import (
    ClusterOptions,
    ClusterTx,
    CpuEngine,
    DurabilityConfig,
    TransactionPool,
)
from repro.workloads import tm1

N_SHARDS = 4
N_BULKS = 12
BULK_TXNS = 250


def build_cluster(db, durable: bool) -> ClusterTx:
    options = ClusterOptions(
        durability=DurabilityConfig(checkpoint_interval=4, n_replicas=2)
        if durable
        else None
    )
    return ClusterTx(
        db,
        procedures=tm1.CLUSTER_PROCEDURES,
        n_shards=N_SHARDS,
        options=options,
    )


def run_bulks(cluster, bulks):
    reports, seconds = [], 0.0
    for bulk in bulks:
        cluster.submit_many(bulk)
        while len(cluster.pool):
            result = cluster.run_bulk(strategy="kset")
            seconds += result.seconds
            reports.extend(result.failovers)
    return reports, seconds


def main() -> None:
    db = tm1.build_database(scale_factor=1)
    probe = build_cluster(db, durable=False)
    bulks = [
        tm1.generate_cluster_transactions(
            db, BULK_TXNS, shard_of=probe.router.shard_of_key,
            cross_shard_fraction=0.1, seed=70 + k,
        )
        for k in range(N_BULKS)
    ]

    # 1. Uninterrupted durable run (the reference).
    reference = build_cluster(db, durable=True)
    _, ref_seconds = run_bulks(reference, bulks)
    print(f"uninterrupted run : {ref_seconds * 1e3:.3f} ms over "
          f"{reference.bulk_seq} bulks")

    # 2. Same run, but shard 2's device dies before wave 1 of bulk 6.
    cluster = build_cluster(db, durable=True)
    cluster.failover.schedule_kill(2, bulk=6, wave=1)
    reports, seconds = run_bulks(cluster, bulks)
    print(f"crashed run       : {seconds * 1e3:.3f} ms over "
          f"{cluster.bulk_seq} bulks "
          f"(+{(seconds - ref_seconds) * 1e3:.3f} ms for the failover)")

    for report in reports:
        print(
            f"  failover: shard {report.shard} promoted from device "
            f"{report.replica_device}; checkpoint @lsn {report.checkpoint_lsn} "
            f"+ {report.replayed_records} WAL records "
            f"({report.replayed_entries} redo entries) replayed in "
            f"{report.seconds * 1e3:.3f} ms; byte-identical: {report.verified}"
        )

    durability = cluster.durability
    print(f"WAL               : {durability.wal_records} records, "
          f"{durability.wal_bytes / 1024:.1f} KiB appended")
    print(f"checkpoints       : {durability.checkpoints_taken} taken, "
          f"{durability.checkpoint_bytes / 1024:.1f} KiB snapshotted")
    print(f"replication       : {durability.replication_bytes / 1024:.1f} KiB "
          f"shipped to replicas")

    # 3. Definition 1 survives the failover: both runs equal the
    #    serial timestamp-order oracle, state and outcomes alike.
    oracle_db = db.clone()
    cpu = CpuEngine(oracle_db, procedures=tm1.CLUSTER_PROCEDURES, num_cores=1)
    pool = TransactionPool()
    cpu.execute([pool.submit(n, p) for bulk in bulks for n, p in bulk])

    state_ok = (
        cluster.logical_state()
        == reference.logical_state()
        == oracle_db.logical_state()
    )
    n_txns = sum(len(b) for b in bulks)
    outcomes_ok = all(
        cluster.results.get(i).committed == reference.results.get(i).committed
        for i in range(n_txns)
    )
    print(f"state identical   : {state_ok} (crashed == uninterrupted == oracle)")
    print(f"outcomes identical: {outcomes_ok} ({n_txns} transactions)")


if __name__ == "__main__":
    main()
