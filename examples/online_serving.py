"""Online serving quickstart: stream TM1 arrivals through the ingest
runtime under a latency SLO.

Builds a TM1 database, generates a Poisson arrival stream, and serves
it three ways: with the SLO-driven adaptive bulk former, with a fixed
bulk size, and sharded over a 4-GPU ClusterTx with per-shard admission
queues. Prints sustained throughput, the end-to-end latency breakdown
(queue wait / execution / transfer percentiles), and the adaptive
former's bulk-size trajectory.

Run:  python examples/online_serving.py
"""

from repro import (
    AdaptiveBulkFormer,
    AdmissionController,
    ClusterTx,
    FixedBulkFormer,
    GPUTx,
    ServeRuntime,
    SLOConfig,
)
from repro.workloads import tm1
from repro.workloads.base import make_rng, poisson_arrival_times, timed_specs


def describe(label: str, report) -> None:
    lat = report.latency
    print(f"{label:16s}: {report.sustained_ktps:8.1f} ktps sustained, "
          f"p95 {lat['total'].p95 * 1e3:6.2f} ms "
          f"(queue {lat['queue'].p95 * 1e3:.2f} "
          f"+ exec {lat['execution'].p95 * 1e3:.2f} "
          f"+ xfer {lat['transfer'].p95 * 1e3:.2f}), "
          f"mean bulk {report.mean_bulk:6.0f}, "
          f"shed {report.admission.rejected}")


def main() -> None:
    db = tm1.build_database(scale_factor=2)
    arrivals = tm1.generate_timed_transactions(
        db, 6_000, rate_tps=200_000, pattern="poisson", seed=11
    )
    slo = SLOConfig(target_p95_s=0.005, min_bulk=24, max_bulk=4096)
    print(f"{len(arrivals)} TM1 arrivals at 200 ktps offered; "
          f"SLO: p95 <= {slo.target_p95_s * 1e3:.1f} ms\n")

    # 1. Adaptive former on a single simulated GPU.
    engine = GPUTx(tm1.build_database(2), procedures=tm1.PROCEDURES)
    runtime = ServeRuntime(engine, former=AdaptiveBulkFormer(slo))
    report = runtime.run(arrivals)
    describe("adaptive", report)
    sizes = [b.size for b in report.bulks]
    print(f"  bulk-size trajectory: {sizes[:8]} ... {sizes[-3:]}")

    # 2. A fixed bulk size for comparison.
    engine = GPUTx(tm1.build_database(2), procedures=tm1.PROCEDURES)
    runtime = ServeRuntime(
        engine, former=FixedBulkFormer(256, max_form_wait_s=slo.form_wait_s)
    )
    describe("fixed-256", runtime.run(arrivals))

    # 3. Sharded: arrivals route through the ShardRouter at admission;
    #    per-shard queues bound each device's backlog.
    db = tm1.build_database(2)
    cluster = ClusterTx(db, procedures=tm1.CLUSTER_PROCEDURES, n_shards=4)
    specs = tm1.generate_cluster_transactions(
        db, 2_000, shard_of=cluster.router.shard_of_key,
        cross_shard_fraction=0.05, seed=13,
    )
    times = poisson_arrival_times(make_rng(17), len(specs), 40_000)
    runtime = ServeRuntime(
        cluster,
        former=AdaptiveBulkFormer(slo),
        admission=AdmissionController(
            1 << 16,
            max_pending_per_shard=1 << 14,
            router=cluster.router,
            registry=cluster.registry,
        ),
    )
    describe("4-shard cluster", runtime.run(timed_specs(specs, times)))


if __name__ == "__main__":
    main()
