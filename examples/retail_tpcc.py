"""Retail scenario: TPC-C order processing on GPUTx.

Demonstrates the full order lifecycle (new order -> payment -> order
status -> delivery -> stock level) running as bulks, plus two effects
specific to partitioned execution:

* with the default single-partition workload, PART runs partition-
  parallel;
* with remote payments/items enabled (the TPC-C spec's 15 % / 1 %),
  cross-partition transactions appear and PART falls back to TPL for
  the bulk -- the "severe degradation" of Section 5.2, visible in the
  strategy name and the throughput drop.

Run:  python examples/retail_tpcc.py
"""

from repro import GPUTx
from repro.workloads import tpcc

WAREHOUSES = 8


def build_db():
    return tpcc.build_database(
        WAREHOUSES, customers_per_district=40, n_items=200,
        init_orders_per_district=10,
    )


def run(specs, label: str) -> None:
    engine = GPUTx(build_db(), procedures=tpcc.PROCEDURES)
    engine.submit_many(specs)
    report = engine.run_bulk(strategy="part")
    mix = {}
    for result in report.results:
        mix[result.type_name] = mix.get(result.type_name, 0) + 1
    print(f"{label}:")
    print(f"  strategy used : {report.strategy}")
    print(f"  throughput    : {report.throughput_ktps:,.0f} ktps")
    print(f"  committed     : {report.committed}, aborted {report.aborted}")
    print(f"  mix           : { {k.replace('tpcc_', ''): v for k, v in sorted(mix.items())} }")


def main() -> None:
    local = tpcc.generate_transactions(build_db(), 800, seed=5)
    run(local, "single-partition workload (remote probabilities = 0)")

    print()
    remote = tpcc.generate_transactions(
        build_db(), 800, seed=5,
        remote_payment_prob=0.15, remote_item_prob=0.01,
    )
    run(remote, "spec workload (15% remote payments, 1% remote items)")

    # Show the order pipeline actually moved goods: deliveries shrink
    # the NEW_ORDER table, new orders grow it.
    db = build_db()
    engine = GPUTx(db, procedures=tpcc.PROCEDURES)
    before = db.table("new_order").live_row_count
    engine.submit_many(local)
    engine.run_bulk(strategy="kset", grouping_passes=1)
    after = db.table("new_order").live_row_count
    print(f"\nNEW_ORDER rows: {before} -> {after} "
          "(new orders inserted, deliveries consumed the oldest)")


if __name__ == "__main__":
    main()
