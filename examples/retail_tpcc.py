"""Retail scenario: TPC-C order processing on GPUTx.

Demonstrates the full order lifecycle (new order -> payment -> order
status -> delivery -> stock level) running as bulks, plus three
effects specific to this engine:

* with the default single-partition workload, PART runs partition-
  parallel;
* with remote payments/items enabled (the TPC-C spec's 15 % / 1 %),
  cross-partition transactions appear and PART falls back to TPL for
  the bulk -- the "severe degradation" of Section 5.2, visible in the
  strategy name and the throughput drop;
* `EngineOptions(backend="vectorized")` swaps the per-thread
  interpreter for batched NumPy column kernels: identical outcomes
  and simulated clock, several times less host wall-clock on the
  execution phase (every TPC-C type has a vector kernel -- see
  docs/WORKLOADS.md).

Run:  python examples/retail_tpcc.py
"""

import time

from repro import EngineOptions, GPUTx
from repro.workloads import tpcc

WAREHOUSES = 8


def build_db(warehouses: int = WAREHOUSES):
    return tpcc.build_database(
        warehouses, customers_per_district=40, n_items=200,
        init_orders_per_district=10,
    )


def run(specs, label: str, backend: str = "interpreted",
        strategy: str = "part", warehouses: int = WAREHOUSES):
    engine = GPUTx(
        build_db(warehouses),
        procedures=tpcc.PROCEDURES,
        options=EngineOptions(backend=backend),
    )
    engine.submit_many(specs)
    start = time.perf_counter()
    report = engine.run_bulk(strategy=strategy)
    wall = time.perf_counter() - start
    mix = {}
    for result in report.results:
        mix[result.type_name] = mix.get(result.type_name, 0) + 1
    print(f"{label}:")
    print(f"  strategy used : {report.strategy}  (backend: {report.backend})")
    print(f"  throughput    : {report.throughput_ktps:,.0f} ktps (simulated)")
    print(f"  committed     : {report.committed}, aborted {report.aborted}")
    print(f"  mix           : { {k.replace('tpcc_', ''): v for k, v in sorted(mix.items())} }")
    return report, wall, engine.backend.wall_launch_seconds


def main() -> None:
    local = tpcc.generate_transactions(build_db(), 800, seed=5)
    run(local, "single-partition workload (remote probabilities = 0)")

    print()
    remote = tpcc.generate_transactions(
        build_db(), 800, seed=5,
        remote_payment_prob=0.15, remote_item_prob=0.01,
    )
    run(remote, "spec workload (15% remote payments, 1% remote items)")

    # Backend selection: same bulk, both execution backends. The
    # simulated clock and every outcome are byte-identical; only the
    # host wall-clock differs. The vectorized win needs wide waves --
    # here an order-entry burst (NewOrder-heavy) over 32 warehouses
    # under K-SET; benchmarks/bench_workload_coverage.py gates >=4x
    # at bulks >= 8k.
    busy_db = build_db(warehouses=32)
    burst = tpcc.generate_transactions(
        busy_db, 4000, seed=5,
        mix=[("tpcc_new_order", 90.0), ("tpcc_payment", 10.0)],
    )
    print("\nbackend comparison (order-entry burst, n=4000, kset):")
    interp, wall_i, exec_i = run(
        burst, "  interpreted", "interpreted", "kset", warehouses=32
    )
    print()
    vector, wall_v, exec_v = run(
        burst, "  vectorized", "vectorized", "kset", warehouses=32
    )
    assert vector.seconds == interp.seconds, "simulated clocks must match"
    assert [r.value for r in vector.results] == [
        r.value for r in interp.results
    ], "outcomes must match"
    print(f"\n  identical simulated clock ({interp.seconds * 1e3:.2f} ms) "
          "and outcomes; host wall-clock:")
    print(f"  exec phase  : {exec_i * 1e3:7.1f} ms -> {exec_v * 1e3:7.1f} ms "
          f"({exec_i / exec_v:.1f}x)")
    print(f"  end to end  : {wall_i * 1e3:7.1f} ms -> {wall_v * 1e3:7.1f} ms "
          f"({wall_i / wall_v:.1f}x)")

    # Show the order pipeline actually moved goods: deliveries shrink
    # the NEW_ORDER table, new orders grow it.
    db = build_db()
    engine = GPUTx(db, procedures=tpcc.PROCEDURES)
    before = db.table("new_order").live_row_count
    engine.submit_many(local)
    engine.run_bulk(strategy="kset", grouping_passes=1)
    after = db.table("new_order").live_row_count
    print(f"\nNEW_ORDER rows: {before} -> {after} "
          "(new orders inserted, deliveries consumed the oldest)")


if __name__ == "__main__":
    main()
