"""Tuning the optimizations of Section 5.4 on the micro benchmark.

Three knobs the paper studies, reproduced interactively:

1. grouping by transaction type (radix passes) vs. branch divergence
   (Figures 3 / 12);
2. PART's partition size (Figure 13);
3. the rule-based strategy chooser (Algorithm 1) reacting to workload
   structure (0-set width, depth, cross-partition count).

Run:  python examples/strategy_tuning.py
"""

from repro import ChooserThresholds, GPUTx
from repro.workloads import micro

N_TUPLES = 16_384


def engine_with(procedures):
    return GPUTx(micro.build_database(N_TUPLES), procedures=procedures)


def main() -> None:
    # --- 1. branch divergence vs. grouping passes ------------------------
    branches = 16
    procedures = micro.build_procedures(branches, x=32)
    specs = micro.generate_transactions(
        4_096, n_tuples=N_TUPLES, n_branches=branches, seed=1
    )
    print(f"micro benchmark, {branches} transaction types, heavy compute:")
    print("passes  ktps     divergent_serializations")
    for passes in (0, 1, 2, 4):
        engine = engine_with(procedures)
        engine.submit_many(specs)
        report = engine.run_bulk(strategy="kset", grouping_passes=passes)
        divergence = sum(
            r.stats.divergent_serializations for r in report.kernel_reports
        )
        print(f"{passes:6d} {report.throughput_ktps:8,.0f} {divergence:12d}")
    print("grouping removes switch-case divergence; past full grouping "
          "extra passes only add cost.\n")

    # --- 2. PART partition size ------------------------------------------
    procedures = micro.build_procedures(8, x=16)
    specs = micro.generate_transactions(
        8_192, n_tuples=N_TUPLES, n_branches=8, seed=2
    )
    print("PART partition size sweep (Figure 13):")
    print("size    partitions  ktps")
    for size in (1, 16, 128, 1024):
        engine = engine_with(procedures)
        engine.submit_many(specs)
        report = engine.run_bulk(strategy="part", partition_size=size)
        print(f"{size:6d} {N_TUPLES // size:11d} {report.throughput_ktps:8,.0f}")
    print("small partitions pay per-thread overhead, large ones serialise: "
          "the optimum sits in between.\n")

    # --- 3. Algorithm 1 ----------------------------------------------------
    thresholds = ChooserThresholds(w0_bar=2_000, c_bar=0, d_bar=64)
    profiler_procs = micro.build_procedures(8, x=1)
    print("Algorithm 1 on three workload shapes (w0_bar=2000):")
    for label, alpha, n in [
        ("uniform, wide 0-set", None, 4_000),
        ("skewed (deep graph)", 0.4, 1_500),
    ]:
        engine = engine_with(profiler_procs)
        engine.thresholds = thresholds
        engine.submit_many(
            micro.generate_transactions(
                n, n_tuples=N_TUPLES, n_branches=8, alpha=alpha, seed=3
            )
        )
        profile = engine.profile_pool()
        choice = profile.predicted_strategy(thresholds)
        print(f"  {label:<22s} w0={profile.w0:5d} depth={profile.depth:4d} "
              f"cross={profile.cross_partition:3d} -> {choice}")
        report = engine.run_bulk(strategy="auto")
        print(f"  {'':22s} auto ran {report.strategy!r} at "
              f"{report.throughput_ktps:,.0f} ktps")


if __name__ == "__main__":
    main()
