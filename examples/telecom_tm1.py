"""Telecom scenario: TM1 on GPUTx vs. the H-Store-style CPU engine.

The workload the paper's introduction motivates: tens of thousands of
small telecom transactions (subscriber lookups, location updates, call
forwarding changes) that must be executed at high throughput. This
example:

1. compares all three execution strategies and the auto-chooser;
2. compares against the CPU counterpart (1 core and 4 cores);
3. sweeps the bulk interval to show the response-time/throughput
   trade-off of Figure 9.

Run:  python examples/telecom_tm1.py
"""

from repro import CpuEngine, GPUTx, TransactionPool
from repro.workloads import tm1

SCALE_FACTOR = 4
N_TXNS = 8_000


def build_db():
    return tm1.build_database(SCALE_FACTOR, subscribers_per_sf=2_000)


def main() -> None:
    specs = tm1.generate_transactions(build_db(), N_TXNS, seed=42)
    print(f"TM1, scale factor {SCALE_FACTOR}: {len(specs)} transactions "
          "(string-lookup transactions split per Appendix E)\n")

    # --- execution strategies ------------------------------------------
    print("strategy     ktps      committed  aborted")
    for strategy, options in [
        ("tpl", {}),
        ("part", {"partition_size": 4}),
        ("kset", {"grouping_passes": 1}),
        ("auto", {}),
    ]:
        engine = GPUTx(build_db(), procedures=tm1.PROCEDURES)
        engine.submit_many(specs)
        report = engine.run_bulk(strategy=strategy, **options)
        print(f"{report.strategy:<10s} {report.throughput_ktps:9,.0f} "
              f"{report.committed:9d} {report.aborted:8d}")

    # --- CPU counterpart ------------------------------------------------
    print()
    for cores in (1, 4):
        db = build_db()
        cpu = CpuEngine(db, procedures=tm1.PROCEDURES, num_cores=cores)
        pool = TransactionPool()
        txns = [pool.submit(name, params) for name, params in specs]
        result = cpu.execute(txns)
        print(f"CPU {cores} core(s): {result.throughput_ktps:9,.0f} ktps")

    # --- response time vs. throughput (Figure 9) -------------------------
    print("\nbulk interval sweep (16M tx/s arrivals, near capacity):")
    print("interval_ms  avg_response_ms  ktps    largest_bulk")
    for interval_ms in (0.05, 0.5, 2.0):
        engine = GPUTx(build_db(), procedures=tm1.PROCEDURES)
        report = engine.simulate_arrivals(
            specs, arrival_rate_tps=16e6,
            interval_s=interval_ms * 1e-3, strategy="kset",
        )
        print(f"{interval_ms:11.1f}  {report.avg_response_s * 1e3:15.2f} "
              f"{report.throughput_ktps:7,.0f} {max(report.bulk_sizes):13d}")
    print("\nlarger bulks amortize generation cost: throughput rises "
          "with tolerated latency, then saturates (the paper's knee).")


if __name__ == "__main__":
    main()
