"""Using the SIMT substrate directly (no OLTP layer).

The simulated GPU is a reusable component: write your own "kernel" as a
generator of micro-ops and launch thousands of threads. This example

1. runs a custom counter kernel and inspects divergence/coalescing
   statistics;
2. orders conflicting threads with the deterministic counter lock of
   Figure 11;
3. reproduces the classic deadlock of the basic 0/1 spin lock
   (Figure 10) and shows the engine detecting it.

Run:  python examples/gpu_playground.py
"""

from repro import DeadlockError
from repro.gpu import DictStore, LockTable, SIMTEngine, ThreadTask, ops


def main() -> None:
    engine = SIMTEngine()  # a simulated Tesla C1060

    # --- 1. a custom kernel ----------------------------------------------
    store = DictStore({"grid": {"cell": [0] * 1024}})

    def life_step(row: int, tag: int):
        def body():
            yield ops.SetBranch(tag)          # pretend switch-case
            value = yield ops.Read("grid", "cell", row)
            yield ops.Compute(8)
            yield ops.Write("grid", "cell", row, value + row % 3)
            return value

        return body()

    tasks = [ThreadTask(i, i % 4, life_step(i, i % 4)) for i in range(1024)]
    report = engine.launch(tasks, store)
    stats = report.stats
    print("custom kernel over 1024 threads:")
    print(f"  simulated time : {report.seconds * 1e6:.1f} us")
    print(f"  ops executed   : {stats.ops_executed}")
    print(f"  divergence     : {stats.divergent_serializations} "
          "(4 interleaved switch cases per warp)")
    print(f"  memory         : {sum(stats.mem_transactions)} transactions, "
          f"{sum(stats.mem_bytes) // 1024} KiB")

    # --- 2. deterministic counter locks ------------------------------------
    store = DictStore({"t": {"log": [None] * 1, "v": [0]}})
    locks = LockTable(1)

    def appender(key: int):
        def body():
            yield ops.LockAcquire(0, key=key)
            value = yield ops.Read("t", "v", 0)
            yield ops.Write("t", "v", 0, value * 10 + key)
            yield ops.LockRelease(0)

        return body()

    # Submit in scrambled order; keys enforce 0,1,2,3.
    order = [2, 0, 3, 1]
    engine.launch(
        [ThreadTask(i, 0, appender(k)) for i, k in enumerate(order)],
        store,
        locks=locks,
    )
    print(f"\ncounter-lock execution order encoded in digits: "
          f"{store.read('t', 'v', 0)} (expected 123)")

    # --- 3. the Figure 10 deadlock -----------------------------------------
    locks = LockTable(2)

    def embrace(first: int, second: int):
        def body():
            yield ops.LockAcquire(first)     # basic 0/1 lock
            yield ops.Compute(1)
            yield ops.LockAcquire(second)
            yield ops.LockRelease(second)
            yield ops.LockRelease(first)

        return body()

    try:
        engine.launch(
            [ThreadTask(0, 0, embrace(0, 1)), ThreadTask(1, 0, embrace(1, 0))],
            DictStore({"x": {"y": [0]}}),
            locks=locks,
        )
    except DeadlockError as exc:
        print(f"\nbasic 0/1 locks, opposite acquisition order:\n  {exc}")
        print("the counter lock keyed by T-dependency ranks cannot "
              "deadlock -- ranks order all waits by timestamp.")


if __name__ == "__main__":
    main()
