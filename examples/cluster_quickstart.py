"""Quickstart for the sharded cluster runtime.

Partitions a TM1 database over four simulated GPUs, executes one bulk
with per-shard strategy choice, compares the simulated time against a
single-device GPUTx run over the same transactions, and finishes with
a double-buffered pipelined run of several bulks.

Run:  python examples/cluster_quickstart.py
"""

from repro import ClusterTx, GPUTx, run_pipelined
from repro.workloads import tm1


def main() -> None:
    # 1. One TM1 database; ClusterTx partitions a copy, so the same
    #    instance can seed the single-device baseline too.
    db = tm1.build_database(scale_factor=4)
    specs = tm1.generate_transactions(db, n=4_000, seed=7)

    # 2. Single device baseline.
    single = GPUTx(db.clone(), procedures=tm1.PROCEDURES)
    single.submit_many(specs)
    baseline = single.run_bulk(strategy="kset")
    print(f"single GPU        : {baseline.seconds * 1e3:.3f} ms "
          f"({baseline.throughput_ktps:,.0f} ktps)")

    # 3. Four shards: hash partitioning on the subscriber id, one GPUTx
    #    engine per shard, single-shard waves run in parallel.
    cluster = ClusterTx(db, procedures=tm1.PROCEDURES, n_shards=4)
    init_ms = cluster.initialize_devices() * 1e3
    print(f"loaded 4 shards onto their devices in {init_ms:.2f} ms")
    cluster.submit_many(specs)
    result = cluster.run_bulk(strategy="kset")
    print(f"4-shard cluster   : {result.seconds * 1e3:.3f} ms "
          f"({result.throughput_ktps:,.0f} ktps)")
    print(f"speedup           : {baseline.seconds / result.seconds:.2f}x")
    print(f"committed/aborted : {result.committed}/{result.aborted}")
    print(f"waves             : {len(result.waves)} "
          f"(cross-shard txns: {result.n_cross_shard})")
    print(f"GPU utilization   : {result.utilization:.0%}")
    for phase, seconds in sorted(result.breakdown.phases.items()):
        print(f"  {phase:<13s}: {seconds * 1e6:9.1f} us")

    # 4. A cross-shard mix: 10% of transactions span two subscribers on
    #    different shards and serialise through the leader pass.
    db2 = tm1.build_database(scale_factor=1)
    cross = ClusterTx(db2, procedures=tm1.CLUSTER_PROCEDURES, n_shards=4)
    cross.submit_many(
        tm1.generate_cluster_transactions(
            db2, 600, shard_of=cross.router.shard_of_key,
            cross_shard_fraction=0.1, seed=9,
        )
    )
    mixed = cross.run_bulk(strategy="kset")
    leader_share = (mixed.breakdown.fraction("coordinator")
                    + mixed.breakdown.fraction("sync"))
    print(f"\n10% cross-shard   : {mixed.seconds * 1e3:.3f} ms over "
          f"{len(mixed.waves)} waves (leader share {leader_share:.0%})")

    # 5. Pipelined bulks: transfer of bulk k+1 overlaps kernels of k.
    stream = [tm1.generate_transactions(db, n=1_000, seed=50 + k)
              for k in range(5)]
    engine = GPUTx(db.clone(), procedures=tm1.PROCEDURES)
    piped = run_pipelined(engine, stream, strategy="kset", depth=2)
    pipe = piped.pipeline
    hidden_ms = (pipe.dma_busy_seconds - pipe.exposed_transfer_seconds) * 1e3
    print(f"\npipelined bulks   : {pipe.serial_seconds * 1e3:.3f} ms"
          f" serial -> {pipe.pipelined_seconds * 1e3:.3f} ms"
          f" ({pipe.speedup:.2f}x, {hidden_ms:.3f} ms of transfer hidden)")


if __name__ == "__main__":
    main()
