#!/usr/bin/env python
"""Gate the CI perf trajectory: compare a BENCH_PR<k>.json against the
committed baseline and fail on regressions.

Usage::

    python scripts/bench_compare.py BENCH_PR3.json \
        [--baseline benchmarks/baselines/BENCH_baseline.json] \
        [--threshold 0.25]

Both files are produced by ``python -m repro.bench.harness --out ...``
(figure id -> headline metric). Every headline metric is
higher-is-better (throughputs, speedups), and the simulated clock
makes them deterministic for a given code state, so any drop is a real
change to the modelled hot path -- the threshold only absorbs
intentional small remodelling, not machine noise.

Exit status: 0 when every shared figure is within threshold, 1 on any
regression or on a figure the baseline has but the current run lost
(a lane that silently drops a figure must go red too). Figures new in
the current run pass with a note; refresh the baseline to start
tracking them.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

DEFAULT_BASELINE = "benchmarks/baselines/BENCH_baseline.json"
DEFAULT_THRESHOLD = 0.25
#: Baselines at or below this magnitude are treated as zero: a metric
#: legitimately at (or within float noise of) 0 -- a shed rate, an
#: overhead share -- has no meaningful *relative* delta, and dividing
#: by it would either crash (exactly 0) or turn a negligible absolute
#: change into a million-percent swing (denormal baselines).
ZERO_BASELINE_EPS = 1e-12


def relative_delta(base_value: float, cur_value: float) -> float:
    """Higher-is-better relative change, defined for zero baselines.

    For a zero/near-zero baseline the row cannot regress relative to
    nothing: any current value at or above the baseline reports 0.0,
    and a drop below it reports -1.0 (a full regression, so the gate
    still fires if a figure somehow falls below an already-zero
    baseline).
    """
    if abs(base_value) <= ZERO_BASELINE_EPS:
        return 0.0 if cur_value >= base_value else -1.0
    return (cur_value - base_value) / base_value


def load_payload(path: str) -> Dict[str, Any]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload.get("figures"), dict):
        raise SystemExit(f"{path}: not a bench JSON (no 'figures' map)")
    return payload


def check_same_context(
    baseline: Dict[str, Any], current: Dict[str, Any]
) -> None:
    """Refuse to compare runs from different workload regimes.

    A baseline refreshed under ``--full`` or ``REPRO_SCALE=paper``
    must not silently gate smoke-mode CI runs (or vice versa): every
    figure would differ for reasons unrelated to any code change.
    """
    for key in ("smoke", "scale"):
        if baseline.get(key) != current.get(key):
            raise SystemExit(
                f"refusing to compare: baseline has {key}="
                f"{baseline.get(key)!r} but current run has "
                f"{key}={current.get(key)!r}; regenerate the baseline "
                "in the same mode (python -m repro.bench --out ...)"
            )


def compare(
    baseline: Dict[str, Dict[str, Any]],
    current: Dict[str, Dict[str, Any]],
    threshold: float,
) -> int:
    """Print the comparison table; return the number of failures."""
    failures = 0
    width = max((len(f) for f in baseline | current), default=10)
    header = (
        f"{'figure'.ljust(width)}  {'metric':22s}  {'baseline':>12s}  "
        f"{'current':>12s}  {'delta':>8s}"
    )
    print(header)
    print("-" * len(header))
    for figure in sorted(baseline):
        base = baseline[figure]
        label = str(base.get("metric", "?"))
        base_value = float(base["value"])
        if figure not in current:
            failures += 1
            print(
                f"{figure.ljust(width)}  {label:22s}  {base_value:12.4g}  "
                f"{'MISSING':>12s}  {'FAIL':>8s}"
            )
            continue
        cur_metric = str(current[figure].get("metric", "?"))
        if cur_metric != label:
            # The figure's headline changed identity (column renamed or
            # dropped): the numbers are not comparable.
            failures += 1
            print(
                f"{figure.ljust(width)}  {label:22s}  {base_value:12.4g}  "
                f"{'now ' + cur_metric:>12s}  {'FAIL':>8s}"
            )
            continue
        cur_value = float(current[figure]["value"])
        delta = relative_delta(base_value, cur_value)
        verdict = f"{delta:+8.1%}"
        if delta < -threshold:
            failures += 1
            verdict += "  FAIL"
        print(
            f"{figure.ljust(width)}  {label:22s}  {base_value:12.4g}  "
            f"{cur_value:12.4g}  {verdict}"
        )
    for figure in sorted(set(current) - set(baseline)):
        cur_value = float(current[figure]["value"])
        label = str(current[figure].get("metric", "?"))
        print(
            f"{figure.ljust(width)}  {label:22s}  {'(new)':>12s}  "
            f"{cur_value:12.4g}  {'new':>8s}"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on perf-trajectory regressions vs. the baseline."
    )
    parser.add_argument("current", help="BENCH_PR<k>.json of this run")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="maximum tolerated relative drop (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    baseline_payload = load_payload(args.baseline)
    current_payload = load_payload(args.current)
    check_same_context(baseline_payload, current_payload)
    failures = compare(
        baseline_payload["figures"],
        current_payload["figures"],
        args.threshold,
    )
    if failures:
        print(
            f"\n{failures} figure(s) regressed more than "
            f"{args.threshold:.0%} (or went missing) vs. {args.baseline}"
        )
        return 1
    print(f"\nperf trajectory OK vs. {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
