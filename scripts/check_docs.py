#!/usr/bin/env python
"""Keep the documentation executable and internally consistent.

Two checks over ``README.md`` and ``docs/*.md``:

1. **Doctests** -- every fenced code block containing ``>>>`` examples
   is run through :mod:`doctest` (ELLIPSIS and NORMALIZE_WHITESPACE
   enabled; blocks of one file share a namespace, so a later block can
   reuse an earlier block's variables). Examples in the docs are
   therefore guaranteed to run against the current API.
2. **Intra-repo links** -- every relative markdown link target must
   exist on disk (http(s)/mailto/anchor links are skipped), so a
   renamed file breaks CI instead of leaving dead links.

Usage::

    PYTHONPATH=src python scripts/check_docs.py [files...]

Exit status 0 when everything passes, 1 otherwise.
"""

from __future__ import annotations

import doctest
import glob
import re
import sys
from pathlib import Path
from typing import List, Tuple

_FENCE = re.compile(r"^```")
#: Markdown link target, with or without an optional "title" part.
_LINK = re.compile(r"\[[^\]\[]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_OPTIONFLAGS = doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE


def fenced_blocks(text: str) -> List[Tuple[int, str]]:
    """(first line number, body) of every fenced code block."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        if _FENCE.match(lines[i]):
            start = i + 1
            i += 1
            body: List[str] = []
            while i < len(lines) and not _FENCE.match(lines[i]):
                body.append(lines[i])
                i += 1
            blocks.append((start + 1, "\n".join(body)))
        i += 1
    return blocks


def run_doctests(path: Path) -> List[str]:
    """Run every ``>>>`` block of ``path``; return failure messages."""
    failures: List[str] = []
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(
        optionflags=_OPTIONFLAGS, verbose=False
    )
    globs: dict = {}
    for lineno, body in fenced_blocks(path.read_text(encoding="utf-8")):
        if ">>>" not in body:
            continue
        test = parser.get_doctest(
            body, globs, name=f"{path}:{lineno}", filename=str(path),
            lineno=lineno,
        )
        result = runner.run(test, out=failures.append, clear_globs=False)
        if result.failed:
            failures.append(
                f"{path}:{lineno}: {result.failed} doctest failure(s)"
            )
        globs = test.globs  # share state with later blocks of the file
    return failures


def check_links(path: Path) -> List[str]:
    """Relative link targets of ``path`` that do not exist on disk."""
    problems = []
    for match in _LINK.finditer(path.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    repo_root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(a) for a in argv]
    else:
        files = [repo_root / "README.md"] + sorted(
            Path(p) for p in glob.glob(str(repo_root / "docs" / "*.md"))
        )
    problems: List[str] = []
    checked_examples = 0
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file not found")
            continue
        failures = run_doctests(path)
        problems.extend(failures)
        checked_examples += sum(
            1 for _ln, body in fenced_blocks(path.read_text()) if ">>>" in body
        )
        problems.extend(check_links(path))
    for problem in problems:
        print(problem)
    print(
        f"checked {len(files)} file(s), {checked_examples} doctest "
        f"block(s): {'FAIL' if problems else 'ok'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
