"""Shared fixtures and helpers for the test suite.

The central helper is the *bank* mini-workload: a tiny, fully
controllable schema (one table of accounts) with transfer/deposit/audit
transaction types. Integration and property tests use it to compare
every execution strategy against the serial-by-timestamp oracle
(Definition 1) without the noise of the full benchmarks.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np
import pytest

from repro.core.procedure import Access, TransactionType
from repro.core.txn import Transaction, TransactionPool
from repro.cpu.engine import CpuEngine
from repro.gpu import ops as op_ir
from repro.storage.catalog import Database
from repro.storage.schema import ColumnDef, DataType, TableSchema

ACCOUNTS = "accounts"


def build_bank_db(n_accounts: int = 32, layout: str = "column") -> Database:
    """One table: accounts(id, balance, version)."""
    db = Database(layout)
    table = db.create_table(
        TableSchema(
            ACCOUNTS,
            [
                ColumnDef("id", DataType.INT64),
                ColumnDef("balance", DataType.INT64),
                ColumnDef("version", DataType.INT64),
            ],
            primary_key=("id",),
            partition_key="id",
        ),
        capacity=n_accounts,
    )
    ids = np.arange(n_accounts, dtype=np.int64)
    table.append_columns(
        {
            "id": ids,
            "balance": np.full(n_accounts, 100, dtype=np.int64),
            "version": np.zeros(n_accounts, dtype=np.int64),
        }
    )
    return db


def _deposit_body(account: int, amount: int) -> op_ir.OpStream:
    balance = yield op_ir.Read(ACCOUNTS, "balance", account)
    yield op_ir.Compute(4)
    yield op_ir.Write(ACCOUNTS, "balance", account, balance + amount)
    return balance + amount


def _transfer_body(src: int, dst: int, amount: int) -> op_ir.OpStream:
    src_balance = yield op_ir.Read(ACCOUNTS, "balance", src)
    if src_balance < amount:
        yield op_ir.Abort("insufficient funds")
    dst_balance = yield op_ir.Read(ACCOUNTS, "balance", dst)
    yield op_ir.Write(ACCOUNTS, "balance", src, src_balance - amount)
    yield op_ir.Write(ACCOUNTS, "balance", dst, dst_balance + amount)
    return src_balance - amount


def _audit_body(account: int) -> op_ir.OpStream:
    balance = yield op_ir.Read(ACCOUNTS, "balance", account)
    version = yield op_ir.Read(ACCOUNTS, "version", account)
    return (balance, version)


def _risky_body(account: int, amount: int, fail: int) -> op_ir.OpStream:
    """NOT two-phase: writes, then maybe aborts (exercises undo logs)."""
    balance = yield op_ir.Read(ACCOUNTS, "balance", account)
    yield op_ir.Write(ACCOUNTS, "balance", account, balance + amount)
    version = yield op_ir.Read(ACCOUNTS, "version", account)
    yield op_ir.Write(ACCOUNTS, "version", account, version + 1)
    if fail:
        yield op_ir.Abort("post-write failure")
    return balance + amount


BANK_PROCEDURES = [
    TransactionType(
        name="deposit",
        body=_deposit_body,
        access_fn=lambda p: [Access(int(p[0]), write=True)],
        partition_fn=lambda p: int(p[0]),
        two_phase=True,
        conflict_classes=frozenset({ACCOUNTS}),
    ),
    TransactionType(
        name="transfer",
        body=_transfer_body,
        access_fn=lambda p: [
            Access(int(p[0]), write=True),
            Access(int(p[1]), write=True),
        ],
        partition_fn=lambda p: None,  # two accounts: cross-partition
        two_phase=True,
        conflict_classes=frozenset({ACCOUNTS}),
    ),
    TransactionType(
        name="audit",
        body=_audit_body,
        access_fn=lambda p: [Access(int(p[0]), write=False)],
        partition_fn=lambda p: int(p[0]),
        two_phase=True,
        conflict_classes=frozenset({ACCOUNTS}),
    ),
    TransactionType(
        name="risky",
        body=_risky_body,
        access_fn=lambda p: [Access(int(p[0]), write=True)],
        partition_fn=lambda p: int(p[0]),
        two_phase=False,  # aborts after writing -> undo logging
        conflict_classes=frozenset({ACCOUNTS}),
    ),
]


# ---------------------------------------------------------------------------
# Vector forms of the bank procedures: the same op streams, authored as
# batched column kernels. BANK_VECTOR_PROCEDURES keeps them on separate
# type objects so fallback tests can still rely on BANK_PROCEDURES
# having no vector form.
# ---------------------------------------------------------------------------
def _v_deposit(ctx) -> None:
    account = ctx.param_i64(0)
    amount = ctx.param_i64(1)
    balance = ctx.read(ACCOUNTS, "balance", account)
    ctx.compute(4)
    ctx.write(ACCOUNTS, "balance", account, balance + amount)
    ctx.finish([int(v) for v in balance + amount])


def _v_transfer(ctx) -> None:
    src = ctx.param_i64(0)
    dst = ctx.param_i64(1)
    amount = ctx.param_i64(2)
    src_balance = ctx.read(ACCOUNTS, "balance", src)
    ctx.abort_where(src_balance < amount, "insufficient funds")
    dst_balance = ctx.read(ACCOUNTS, "balance", dst)
    ctx.write(ACCOUNTS, "balance", src, src_balance - amount)
    ctx.write(ACCOUNTS, "balance", dst, dst_balance + amount)
    ctx.finish([int(v) for v in src_balance - amount])


def _v_audit(ctx) -> None:
    account = ctx.param_i64(0)
    balance = ctx.read(ACCOUNTS, "balance", account)
    version = ctx.read(ACCOUNTS, "version", account)
    ctx.finish([(int(b), int(v)) for b, v in zip(balance, version)])


def _v_risky(ctx) -> None:
    account = ctx.param_i64(0)
    amount = ctx.param_i64(1)
    fail = ctx.param_i64(2)
    balance = ctx.read(ACCOUNTS, "balance", account)
    ctx.write(ACCOUNTS, "balance", account, balance + amount)
    version = ctx.read(ACCOUNTS, "version", account)
    ctx.write(ACCOUNTS, "version", account, version + 1)
    ctx.abort_where(fail != 0, "post-write failure")
    ctx.finish([int(v) for v in balance + amount])


_VECTOR_BODIES = {
    "deposit": _v_deposit,
    "transfer": _v_transfer,
    "audit": _v_audit,
    "risky": _v_risky,
}

BANK_VECTOR_PROCEDURES = [
    dataclasses.replace(t, vector_body=_VECTOR_BODIES[t.name])
    for t in BANK_PROCEDURES
]


def make_transactions(specs: Sequence[Tuple[str, tuple]]) -> List[Transaction]:
    """Stamp (type, params) pairs with sequential ids."""
    pool = TransactionPool()
    return [pool.submit(name, params) for name, params in specs]


def serial_oracle_state(
    specs: Sequence[Tuple[str, tuple]],
    n_accounts: int = 32,
    procedures=None,
) -> dict:
    """Definition 1's reference: serial execution in timestamp order."""
    db = build_bank_db(n_accounts)
    cpu = CpuEngine(db, procedures=procedures or BANK_PROCEDURES, num_cores=1)
    cpu.execute(make_transactions(specs))
    return db.logical_state()


def random_bank_specs(
    rng: np.random.Generator, n: int, n_accounts: int, abort_prob: float = 0.0
) -> List[Tuple[str, tuple]]:
    """A random mixed workload over the bank schema."""
    specs: List[Tuple[str, tuple]] = []
    for _ in range(n):
        kind = rng.integers(0, 4)
        if kind == 0:
            specs.append(
                ("deposit", (int(rng.integers(0, n_accounts)),
                             int(rng.integers(1, 50))))
            )
        elif kind == 1:
            src = int(rng.integers(0, n_accounts))
            dst = int(rng.integers(0, n_accounts))
            if dst == src:
                dst = (src + 1) % n_accounts
            specs.append(("transfer", (src, dst, int(rng.integers(1, 30)))))
        elif kind == 2:
            specs.append(("audit", (int(rng.integers(0, n_accounts)),)))
        else:
            fail = 1 if rng.random() < abort_prob else 0
            specs.append(
                ("risky", (int(rng.integers(0, n_accounts)),
                           int(rng.integers(1, 20)), fail))
            )
    return specs


@pytest.fixture
def bank_db() -> Database:
    return build_bank_db()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
