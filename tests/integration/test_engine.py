"""End-to-end tests of the GPUTx engine facade."""

import warnings

import pytest

from repro import GPUTx
from repro.errors import ConfigError
from repro.workloads import micro

from tests.conftest import BANK_PROCEDURES, build_bank_db


class TestEngineLifecycle:
    def test_submit_run_collect(self):
        engine = GPUTx(build_bank_db(8), procedures=BANK_PROCEDURES)
        engine.submit("deposit", (0, 5))
        engine.submit("audit", (0,))
        result = engine.run_bulk(strategy="kset")
        assert len(result.results) == 2
        assert engine.results.get(0).committed
        assert engine.results.get(1).value == (105, 0)

    def test_empty_pool_is_noop(self):
        engine = GPUTx(build_bank_db(4), procedures=BANK_PROCEDURES)
        result = engine.run_bulk(strategy="kset")
        assert result.results == []
        assert result.seconds == 0.0

    def test_max_txns_leaves_remainder_in_pool(self):
        engine = GPUTx(build_bank_db(8), procedures=BANK_PROCEDURES)
        for i in range(10):
            engine.submit("deposit", (i % 8, 1))
        engine.run_bulk(strategy="kset", max_txns=4)
        assert len(engine.pool) == 6
        engine.run_bulk(strategy="kset")
        assert len(engine.pool) == 0
        assert len(engine.results) == 10

    def test_unknown_strategy_rejected(self):
        engine = GPUTx(build_bank_db(4), procedures=BANK_PROCEDURES)
        engine.submit("deposit", (0, 1))
        with pytest.raises(ConfigError, match="unknown strategy"):
            engine.run_bulk(strategy="warp-drive")

    def test_late_registration(self):
        engine = GPUTx(build_bank_db(4))
        engine.register(BANK_PROCEDURES[0])
        engine.submit("deposit", (1, 2))
        result = engine.run_bulk(strategy="kset")
        assert result.committed == 1

    def test_initialize_device_charges_pcie(self):
        engine = GPUTx(build_bank_db(1024), procedures=BANK_PROCEDURES)
        seconds = engine.initialize_device()
        assert seconds > 0
        ledger = engine.pcie.ledger
        assert ledger.bytes_by_component["initialization"] > 0

    def test_profile_pool(self):
        engine = GPUTx(build_bank_db(8), procedures=BANK_PROCEDURES)
        for i in range(6):
            engine.submit("deposit", (0, 1))
        profile = engine.profile_pool()
        assert profile.size == 6
        assert profile.w0 == 1
        assert len(engine.pool) == 6  # profiling does not consume

    def test_sequential_bulks_share_state(self):
        engine = GPUTx(build_bank_db(4), procedures=BANK_PROCEDURES)
        engine.submit("deposit", (0, 10))
        engine.run_bulk(strategy="kset")
        engine.submit("deposit", (0, 10))
        engine.run_bulk(strategy="part")
        assert engine.db.table("accounts").read("balance", 0) == 120


class TestArrivalSimulation:
    """Figures 9 / 15: response time vs. throughput."""

    @staticmethod
    def make_engine(n_tuples=256):
        db = micro.build_database(n_tuples)
        return GPUTx(db, procedures=micro.build_procedures(4, x=1))

    @staticmethod
    def workload(n, n_tuples=256):
        return micro.generate_transactions(
            n, n_tuples=n_tuples, n_branches=4, seed=3
        )

    def test_all_transactions_executed(self):
        engine = self.make_engine()
        report = engine.simulate_arrivals(
            self.workload(400), arrival_rate_tps=2e6,
            interval_s=1e-4, strategy="kset",
        )
        assert report.executed == 400
        assert report.avg_response_s > 0
        assert report.max_response_s >= report.avg_response_s
        assert sum(report.bulk_sizes) == 400

    def test_larger_interval_larger_response_and_bulks(self):
        def run(interval):
            engine = self.make_engine()
            return engine.simulate_arrivals(
                self.workload(600), arrival_rate_tps=4e6,
                interval_s=interval, strategy="kset",
            )

        small = run(2e-5)
        large = run(8e-4)
        assert large.avg_response_s > small.avg_response_s
        assert max(large.bulk_sizes) > max(small.bulk_sizes)

    def test_throughput_saturates_with_interval(self):
        """The paper's knee: throughput rises sharply, then flattens."""
        def tput(interval):
            engine = self.make_engine()
            return engine.simulate_arrivals(
                self.workload(800), arrival_rate_tps=4e6,
                interval_s=interval, strategy="kset",
            ).throughput_tps

        t_small, t_mid, t_large = (
            tput(1e-5), tput(2e-4), tput(1e-3)
        )
        assert t_mid > t_small
        gain_late = (t_large - t_mid) / t_mid
        gain_early = (t_mid - t_small) / t_small
        assert gain_early > gain_late

    def test_bad_parameters_rejected(self):
        engine = self.make_engine()
        with pytest.raises(ConfigError):
            engine.simulate_arrivals(self.workload(10), 0, 1e-3)
        with pytest.raises(ConfigError):
            engine.simulate_arrivals(self.workload(10), 1e6, 0)

    def test_empty_transaction_list(self):
        engine = self.make_engine()
        report = engine.simulate_arrivals(
            [], arrival_rate_tps=1e6, interval_s=1e-4, strategy="kset",
        )
        assert report.executed == 0
        assert report.bulk_sizes == []
        assert report.avg_response_s == 0.0
        assert report.max_response_s == 0.0
        assert report.throughput_tps == 0.0

    def test_everything_arrives_within_first_interval(self):
        """A rate fast enough that the run is one single bulk."""
        engine = self.make_engine()
        report = engine.simulate_arrivals(
            self.workload(50), arrival_rate_tps=1e9,
            interval_s=1e-3, strategy="kset",
        )
        assert report.bulk_sizes == [50]
        assert report.executed == 50
        # Everyone waited at least until the first bulk boundary.
        assert report.avg_response_s >= report.interval_s - 50 / 1e9

    def test_slow_arrivals_skip_empty_boundaries(self):
        """A rate slow enough that some boundaries see no arrivals:
        the continue path must skip them without recording a bulk."""
        engine = self.make_engine()
        # One transaction every 10 intervals: most boundaries are empty.
        report = engine.simulate_arrivals(
            self.workload(5), arrival_rate_tps=1e3,
            interval_s=1e-4, strategy="kset",
        )
        assert report.executed == 5
        assert all(size > 0 for size in report.bulk_sizes)
        assert sum(report.bulk_sizes) == 5
        # Empty boundaries produced no bulks: far fewer bulks than the
        # elapsed span contains interval boundaries.
        assert len(report.bulk_sizes) <= 5


class TestSubmitMany:
    def test_pairs_and_transactions(self):
        engine = GPUTx(build_bank_db(8), procedures=BANK_PROCEDURES)
        assert engine.submit_many([("deposit", (0, 5)), ("audit", (1,))]) == 2
        assert len(engine.pool) == 2

    def test_triples_carry_submit_time(self):
        engine = GPUTx(build_bank_db(8), procedures=BANK_PROCEDURES)
        engine.submit_many(
            [("deposit", (0, 5), 0.5), ("audit", (1,), 1.25)]
        )
        times = [txn.submit_time for txn in engine.pool]
        assert times == [0.5, 1.25]

    def test_mixed_arities(self):
        engine = GPUTx(build_bank_db(8), procedures=BANK_PROCEDURES)
        engine.submit_many([("deposit", (0, 5)), ("deposit", (1, 2), 2.0)])
        times = [txn.submit_time for txn in engine.pool]
        assert times == [0.0, 2.0]


class TestAutoStrategyOptions:
    """Option filtering under strategy='auto' (Algorithm 1)."""

    @staticmethod
    def make_engine():
        engine = GPUTx(build_bank_db(8), procedures=BANK_PROCEDURES)
        for i in range(8):
            engine.submit("deposit", (i, 1))
        return engine

    def test_inapplicable_option_warns(self):
        engine = self.make_engine()
        # Tiny bulk: Algorithm 1 never picks adhoc, so an adhoc-only
        # option must be dropped with a warning naming it.
        with pytest.warns(UserWarning, match="per_task_launch_overhead"):
            result = engine.run_bulk(
                strategy="auto", per_task_launch_overhead=1e-6
            )
        assert result.committed == 8

    def test_unknown_option_raises_and_preserves_pool(self):
        engine = self.make_engine()
        with pytest.raises(ConfigError, match="partion_size"):
            engine.run_bulk(strategy="auto", partion_size=64)  # typo
        # Options are validated before the pool is drained: the typo
        # costs an error, not the workload.
        assert len(engine.pool) == 8
        result = engine.run_bulk(strategy="auto", partition_size=64)
        assert len(result.results) == 8

    def test_explicit_strategy_rejects_foreign_option(self):
        engine = self.make_engine()
        with pytest.raises(ConfigError, match="does not accept"):
            engine.run_bulk(strategy="part", grouping_passes=2)
        assert len(engine.pool) == 8
        with pytest.raises(ConfigError, match="partion_size"):
            engine.run_bulk(strategy="part", partion_size=64)  # typo
        assert len(engine.pool) == 8
        result = engine.run_bulk(strategy="part", partition_size=64)
        assert len(result.results) == 8

    def test_unknown_strategy_preserves_pool(self):
        engine = self.make_engine()
        with pytest.raises(ConfigError, match="unknown strategy"):
            engine.run_bulk(strategy="warp-drive")
        assert len(engine.pool) == 8

    def test_applicable_option_passes_through_silently(self):
        # This bulk is small and fully partitioned, so Algorithm 1
        # picks PART; PART's own option must pass through untouched.
        engine = self.make_engine()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = engine.run_bulk(strategy="auto", partition_size=4)
        assert result.strategy == "part"
        assert len(result.results) == 8
